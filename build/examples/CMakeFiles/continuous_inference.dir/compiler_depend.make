# Empty compiler generated dependencies file for continuous_inference.
# This may be replaced when dependencies are built.
