file(REMOVE_RECURSE
  "CMakeFiles/continuous_inference.dir/continuous_inference.cpp.o"
  "CMakeFiles/continuous_inference.dir/continuous_inference.cpp.o.d"
  "continuous_inference"
  "continuous_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
