file(REMOVE_RECURSE
  "CMakeFiles/ondemand_install.dir/ondemand_install.cpp.o"
  "CMakeFiles/ondemand_install.dir/ondemand_install.cpp.o.d"
  "ondemand_install"
  "ondemand_install.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ondemand_install.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
