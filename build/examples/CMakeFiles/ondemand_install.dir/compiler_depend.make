# Empty compiler generated dependencies file for ondemand_install.
# This may be replaced when dependencies are built.
