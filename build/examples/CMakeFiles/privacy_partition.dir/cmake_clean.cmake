file(REMOVE_RECURSE
  "CMakeFiles/privacy_partition.dir/privacy_partition.cpp.o"
  "CMakeFiles/privacy_partition.dir/privacy_partition.cpp.o.d"
  "privacy_partition"
  "privacy_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
