# Empty dependencies file for privacy_partition.
# This may be replaced when dependencies are built.
