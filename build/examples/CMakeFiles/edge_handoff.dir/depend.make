# Empty dependencies file for edge_handoff.
# This may be replaced when dependencies are built.
