# Empty compiler generated dependencies file for edge_handoff.
# This may be replaced when dependencies are built.
