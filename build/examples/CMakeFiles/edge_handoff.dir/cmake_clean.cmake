file(REMOVE_RECURSE
  "CMakeFiles/edge_handoff.dir/edge_handoff.cpp.o"
  "CMakeFiles/edge_handoff.dir/edge_handoff.cpp.o.d"
  "edge_handoff"
  "edge_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
