# Empty compiler generated dependencies file for bench_micro_compress.
# This may be replaced when dependencies are built.
