file(REMOVE_RECURSE
  "CMakeFiles/bench_privacy_inversion.dir/bench_privacy_inversion.cpp.o"
  "CMakeFiles/bench_privacy_inversion.dir/bench_privacy_inversion.cpp.o.d"
  "bench_privacy_inversion"
  "bench_privacy_inversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_privacy_inversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
