# Empty dependencies file for bench_privacy_inversion.
# This may be replaced when dependencies are built.
