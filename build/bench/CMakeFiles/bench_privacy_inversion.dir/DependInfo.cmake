
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_privacy_inversion.cpp" "bench/CMakeFiles/bench_privacy_inversion.dir/bench_privacy_inversion.cpp.o" "gcc" "bench/CMakeFiles/bench_privacy_inversion.dir/bench_privacy_inversion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/offload_core.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/offload_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/offload_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/jsvm/CMakeFiles/offload_jsvm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/offload_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vmsynth/CMakeFiles/offload_vmsynth.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/offload_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/offload_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/offload_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
