file(REMOVE_RECURSE
  "CMakeFiles/bench_presend_bandwidth.dir/bench_presend_bandwidth.cpp.o"
  "CMakeFiles/bench_presend_bandwidth.dir/bench_presend_bandwidth.cpp.o.d"
  "bench_presend_bandwidth"
  "bench_presend_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_presend_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
