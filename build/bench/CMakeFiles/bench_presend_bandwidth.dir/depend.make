# Empty dependencies file for bench_presend_bandwidth.
# This may be replaced when dependencies are built.
