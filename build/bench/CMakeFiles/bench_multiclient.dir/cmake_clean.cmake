file(REMOVE_RECURSE
  "CMakeFiles/bench_multiclient.dir/bench_multiclient.cpp.o"
  "CMakeFiles/bench_multiclient.dir/bench_multiclient.cpp.o.d"
  "bench_multiclient"
  "bench_multiclient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiclient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
