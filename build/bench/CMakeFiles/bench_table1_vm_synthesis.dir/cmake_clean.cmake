file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_vm_synthesis.dir/bench_table1_vm_synthesis.cpp.o"
  "CMakeFiles/bench_table1_vm_synthesis.dir/bench_table1_vm_synthesis.cpp.o.d"
  "bench_table1_vm_synthesis"
  "bench_table1_vm_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_vm_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
