# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/jsvm_interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/jsvm_snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/jsvm_diff_test[1]_include.cmake")
include("/root/repo/build/tests/jsvm_property_test[1]_include.cmake")
include("/root/repo/build/tests/jsvm_members_test[1]_include.cmake")
include("/root/repo/build/tests/vmsynth_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/followup_offload_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_net_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/nn_reference_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/privacy_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/edge_server_test[1]_include.cmake")
