file(REMOVE_RECURSE
  "CMakeFiles/edge_server_test.dir/edge_server_test.cpp.o"
  "CMakeFiles/edge_server_test.dir/edge_server_test.cpp.o.d"
  "edge_server_test"
  "edge_server_test.pdb"
  "edge_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
