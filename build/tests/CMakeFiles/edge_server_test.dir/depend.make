# Empty dependencies file for edge_server_test.
# This may be replaced when dependencies are built.
