# Empty compiler generated dependencies file for followup_offload_test.
# This may be replaced when dependencies are built.
