file(REMOVE_RECURSE
  "CMakeFiles/followup_offload_test.dir/followup_offload_test.cpp.o"
  "CMakeFiles/followup_offload_test.dir/followup_offload_test.cpp.o.d"
  "followup_offload_test"
  "followup_offload_test.pdb"
  "followup_offload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/followup_offload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
