# Empty dependencies file for nn_reference_test.
# This may be replaced when dependencies are built.
