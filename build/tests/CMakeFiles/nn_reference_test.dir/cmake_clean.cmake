file(REMOVE_RECURSE
  "CMakeFiles/nn_reference_test.dir/nn_reference_test.cpp.o"
  "CMakeFiles/nn_reference_test.dir/nn_reference_test.cpp.o.d"
  "nn_reference_test"
  "nn_reference_test.pdb"
  "nn_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
