# Empty compiler generated dependencies file for vmsynth_test.
# This may be replaced when dependencies are built.
