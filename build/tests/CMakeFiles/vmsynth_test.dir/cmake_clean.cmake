file(REMOVE_RECURSE
  "CMakeFiles/vmsynth_test.dir/vmsynth_test.cpp.o"
  "CMakeFiles/vmsynth_test.dir/vmsynth_test.cpp.o.d"
  "vmsynth_test"
  "vmsynth_test.pdb"
  "vmsynth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmsynth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
