file(REMOVE_RECURSE
  "CMakeFiles/jsvm_interpreter_test.dir/jsvm_interpreter_test.cpp.o"
  "CMakeFiles/jsvm_interpreter_test.dir/jsvm_interpreter_test.cpp.o.d"
  "jsvm_interpreter_test"
  "jsvm_interpreter_test.pdb"
  "jsvm_interpreter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsvm_interpreter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
