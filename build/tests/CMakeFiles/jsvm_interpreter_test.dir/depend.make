# Empty dependencies file for jsvm_interpreter_test.
# This may be replaced when dependencies are built.
