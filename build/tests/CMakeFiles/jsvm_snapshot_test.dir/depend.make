# Empty dependencies file for jsvm_snapshot_test.
# This may be replaced when dependencies are built.
