file(REMOVE_RECURSE
  "CMakeFiles/jsvm_snapshot_test.dir/jsvm_snapshot_test.cpp.o"
  "CMakeFiles/jsvm_snapshot_test.dir/jsvm_snapshot_test.cpp.o.d"
  "jsvm_snapshot_test"
  "jsvm_snapshot_test.pdb"
  "jsvm_snapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsvm_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
