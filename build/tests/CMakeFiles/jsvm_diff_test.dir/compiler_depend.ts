# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for jsvm_diff_test.
