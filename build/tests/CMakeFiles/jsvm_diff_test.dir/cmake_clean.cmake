file(REMOVE_RECURSE
  "CMakeFiles/jsvm_diff_test.dir/jsvm_diff_test.cpp.o"
  "CMakeFiles/jsvm_diff_test.dir/jsvm_diff_test.cpp.o.d"
  "jsvm_diff_test"
  "jsvm_diff_test.pdb"
  "jsvm_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsvm_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
