# Empty dependencies file for jsvm_diff_test.
# This may be replaced when dependencies are built.
