file(REMOVE_RECURSE
  "CMakeFiles/jsvm_property_test.dir/jsvm_property_test.cpp.o"
  "CMakeFiles/jsvm_property_test.dir/jsvm_property_test.cpp.o.d"
  "jsvm_property_test"
  "jsvm_property_test.pdb"
  "jsvm_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsvm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
