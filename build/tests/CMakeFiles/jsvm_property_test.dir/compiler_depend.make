# Empty compiler generated dependencies file for jsvm_property_test.
# This may be replaced when dependencies are built.
