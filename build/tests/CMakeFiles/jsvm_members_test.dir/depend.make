# Empty dependencies file for jsvm_members_test.
# This may be replaced when dependencies are built.
