file(REMOVE_RECURSE
  "CMakeFiles/jsvm_members_test.dir/jsvm_members_test.cpp.o"
  "CMakeFiles/jsvm_members_test.dir/jsvm_members_test.cpp.o.d"
  "jsvm_members_test"
  "jsvm_members_test.pdb"
  "jsvm_members_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsvm_members_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
