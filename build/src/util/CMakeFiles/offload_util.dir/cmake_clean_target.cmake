file(REMOVE_RECURSE
  "liboffload_util.a"
)
