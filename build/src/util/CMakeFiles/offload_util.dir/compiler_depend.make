# Empty compiler generated dependencies file for offload_util.
# This may be replaced when dependencies are built.
