file(REMOVE_RECURSE
  "CMakeFiles/offload_util.dir/base64.cpp.o"
  "CMakeFiles/offload_util.dir/base64.cpp.o.d"
  "CMakeFiles/offload_util.dir/bytes.cpp.o"
  "CMakeFiles/offload_util.dir/bytes.cpp.o.d"
  "CMakeFiles/offload_util.dir/crc32.cpp.o"
  "CMakeFiles/offload_util.dir/crc32.cpp.o.d"
  "CMakeFiles/offload_util.dir/logging.cpp.o"
  "CMakeFiles/offload_util.dir/logging.cpp.o.d"
  "CMakeFiles/offload_util.dir/stats.cpp.o"
  "CMakeFiles/offload_util.dir/stats.cpp.o.d"
  "CMakeFiles/offload_util.dir/strings.cpp.o"
  "CMakeFiles/offload_util.dir/strings.cpp.o.d"
  "CMakeFiles/offload_util.dir/table.cpp.o"
  "CMakeFiles/offload_util.dir/table.cpp.o.d"
  "liboffload_util.a"
  "liboffload_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
