
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmsynth/compress.cpp" "src/vmsynth/CMakeFiles/offload_vmsynth.dir/compress.cpp.o" "gcc" "src/vmsynth/CMakeFiles/offload_vmsynth.dir/compress.cpp.o.d"
  "/root/repo/src/vmsynth/overlay.cpp" "src/vmsynth/CMakeFiles/offload_vmsynth.dir/overlay.cpp.o" "gcc" "src/vmsynth/CMakeFiles/offload_vmsynth.dir/overlay.cpp.o.d"
  "/root/repo/src/vmsynth/vmimage.cpp" "src/vmsynth/CMakeFiles/offload_vmsynth.dir/vmimage.cpp.o" "gcc" "src/vmsynth/CMakeFiles/offload_vmsynth.dir/vmimage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/offload_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
