file(REMOVE_RECURSE
  "liboffload_vmsynth.a"
)
