file(REMOVE_RECURSE
  "CMakeFiles/offload_vmsynth.dir/compress.cpp.o"
  "CMakeFiles/offload_vmsynth.dir/compress.cpp.o.d"
  "CMakeFiles/offload_vmsynth.dir/overlay.cpp.o"
  "CMakeFiles/offload_vmsynth.dir/overlay.cpp.o.d"
  "CMakeFiles/offload_vmsynth.dir/vmimage.cpp.o"
  "CMakeFiles/offload_vmsynth.dir/vmimage.cpp.o.d"
  "liboffload_vmsynth.a"
  "liboffload_vmsynth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_vmsynth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
