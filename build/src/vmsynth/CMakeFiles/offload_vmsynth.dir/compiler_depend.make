# Empty compiler generated dependencies file for offload_vmsynth.
# This may be replaced when dependencies are built.
