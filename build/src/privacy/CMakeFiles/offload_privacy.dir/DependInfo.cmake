
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/inversion.cpp" "src/privacy/CMakeFiles/offload_privacy.dir/inversion.cpp.o" "gcc" "src/privacy/CMakeFiles/offload_privacy.dir/inversion.cpp.o.d"
  "/root/repo/src/privacy/metrics.cpp" "src/privacy/CMakeFiles/offload_privacy.dir/metrics.cpp.o" "gcc" "src/privacy/CMakeFiles/offload_privacy.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/offload_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/offload_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/offload_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
