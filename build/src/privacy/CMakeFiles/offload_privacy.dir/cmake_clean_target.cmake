file(REMOVE_RECURSE
  "liboffload_privacy.a"
)
