# Empty dependencies file for offload_privacy.
# This may be replaced when dependencies are built.
