file(REMOVE_RECURSE
  "CMakeFiles/offload_privacy.dir/inversion.cpp.o"
  "CMakeFiles/offload_privacy.dir/inversion.cpp.o.d"
  "CMakeFiles/offload_privacy.dir/metrics.cpp.o"
  "CMakeFiles/offload_privacy.dir/metrics.cpp.o.d"
  "liboffload_privacy.a"
  "liboffload_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
