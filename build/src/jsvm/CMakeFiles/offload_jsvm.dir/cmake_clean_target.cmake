file(REMOVE_RECURSE
  "liboffload_jsvm.a"
)
