# Empty dependencies file for offload_jsvm.
# This may be replaced when dependencies are built.
