file(REMOVE_RECURSE
  "CMakeFiles/offload_jsvm.dir/builtins.cpp.o"
  "CMakeFiles/offload_jsvm.dir/builtins.cpp.o.d"
  "CMakeFiles/offload_jsvm.dir/dom.cpp.o"
  "CMakeFiles/offload_jsvm.dir/dom.cpp.o.d"
  "CMakeFiles/offload_jsvm.dir/env.cpp.o"
  "CMakeFiles/offload_jsvm.dir/env.cpp.o.d"
  "CMakeFiles/offload_jsvm.dir/fingerprint.cpp.o"
  "CMakeFiles/offload_jsvm.dir/fingerprint.cpp.o.d"
  "CMakeFiles/offload_jsvm.dir/interpreter.cpp.o"
  "CMakeFiles/offload_jsvm.dir/interpreter.cpp.o.d"
  "CMakeFiles/offload_jsvm.dir/lexer.cpp.o"
  "CMakeFiles/offload_jsvm.dir/lexer.cpp.o.d"
  "CMakeFiles/offload_jsvm.dir/members.cpp.o"
  "CMakeFiles/offload_jsvm.dir/members.cpp.o.d"
  "CMakeFiles/offload_jsvm.dir/parser.cpp.o"
  "CMakeFiles/offload_jsvm.dir/parser.cpp.o.d"
  "CMakeFiles/offload_jsvm.dir/snapshot.cpp.o"
  "CMakeFiles/offload_jsvm.dir/snapshot.cpp.o.d"
  "CMakeFiles/offload_jsvm.dir/snapshot_diff.cpp.o"
  "CMakeFiles/offload_jsvm.dir/snapshot_diff.cpp.o.d"
  "CMakeFiles/offload_jsvm.dir/value.cpp.o"
  "CMakeFiles/offload_jsvm.dir/value.cpp.o.d"
  "liboffload_jsvm.a"
  "liboffload_jsvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_jsvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
