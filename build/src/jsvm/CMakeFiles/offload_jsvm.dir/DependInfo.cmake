
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jsvm/builtins.cpp" "src/jsvm/CMakeFiles/offload_jsvm.dir/builtins.cpp.o" "gcc" "src/jsvm/CMakeFiles/offload_jsvm.dir/builtins.cpp.o.d"
  "/root/repo/src/jsvm/dom.cpp" "src/jsvm/CMakeFiles/offload_jsvm.dir/dom.cpp.o" "gcc" "src/jsvm/CMakeFiles/offload_jsvm.dir/dom.cpp.o.d"
  "/root/repo/src/jsvm/env.cpp" "src/jsvm/CMakeFiles/offload_jsvm.dir/env.cpp.o" "gcc" "src/jsvm/CMakeFiles/offload_jsvm.dir/env.cpp.o.d"
  "/root/repo/src/jsvm/fingerprint.cpp" "src/jsvm/CMakeFiles/offload_jsvm.dir/fingerprint.cpp.o" "gcc" "src/jsvm/CMakeFiles/offload_jsvm.dir/fingerprint.cpp.o.d"
  "/root/repo/src/jsvm/interpreter.cpp" "src/jsvm/CMakeFiles/offload_jsvm.dir/interpreter.cpp.o" "gcc" "src/jsvm/CMakeFiles/offload_jsvm.dir/interpreter.cpp.o.d"
  "/root/repo/src/jsvm/lexer.cpp" "src/jsvm/CMakeFiles/offload_jsvm.dir/lexer.cpp.o" "gcc" "src/jsvm/CMakeFiles/offload_jsvm.dir/lexer.cpp.o.d"
  "/root/repo/src/jsvm/members.cpp" "src/jsvm/CMakeFiles/offload_jsvm.dir/members.cpp.o" "gcc" "src/jsvm/CMakeFiles/offload_jsvm.dir/members.cpp.o.d"
  "/root/repo/src/jsvm/parser.cpp" "src/jsvm/CMakeFiles/offload_jsvm.dir/parser.cpp.o" "gcc" "src/jsvm/CMakeFiles/offload_jsvm.dir/parser.cpp.o.d"
  "/root/repo/src/jsvm/snapshot.cpp" "src/jsvm/CMakeFiles/offload_jsvm.dir/snapshot.cpp.o" "gcc" "src/jsvm/CMakeFiles/offload_jsvm.dir/snapshot.cpp.o.d"
  "/root/repo/src/jsvm/snapshot_diff.cpp" "src/jsvm/CMakeFiles/offload_jsvm.dir/snapshot_diff.cpp.o" "gcc" "src/jsvm/CMakeFiles/offload_jsvm.dir/snapshot_diff.cpp.o.d"
  "/root/repo/src/jsvm/value.cpp" "src/jsvm/CMakeFiles/offload_jsvm.dir/value.cpp.o" "gcc" "src/jsvm/CMakeFiles/offload_jsvm.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/offload_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
