file(REMOVE_RECURSE
  "CMakeFiles/offload_core.dir/app.cpp.o"
  "CMakeFiles/offload_core.dir/app.cpp.o.d"
  "CMakeFiles/offload_core.dir/breakdown.cpp.o"
  "CMakeFiles/offload_core.dir/breakdown.cpp.o.d"
  "CMakeFiles/offload_core.dir/experiment.cpp.o"
  "CMakeFiles/offload_core.dir/experiment.cpp.o.d"
  "CMakeFiles/offload_core.dir/runtime.cpp.o"
  "CMakeFiles/offload_core.dir/runtime.cpp.o.d"
  "liboffload_core.a"
  "liboffload_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
