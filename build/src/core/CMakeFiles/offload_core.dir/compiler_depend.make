# Empty compiler generated dependencies file for offload_core.
# This may be replaced when dependencies are built.
