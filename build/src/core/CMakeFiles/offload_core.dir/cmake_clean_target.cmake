file(REMOVE_RECURSE
  "liboffload_core.a"
)
