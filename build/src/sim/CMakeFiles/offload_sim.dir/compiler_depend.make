# Empty compiler generated dependencies file for offload_sim.
# This may be replaced when dependencies are built.
