file(REMOVE_RECURSE
  "liboffload_sim.a"
)
