file(REMOVE_RECURSE
  "CMakeFiles/offload_sim.dir/simulation.cpp.o"
  "CMakeFiles/offload_sim.dir/simulation.cpp.o.d"
  "liboffload_sim.a"
  "liboffload_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
