file(REMOVE_RECURSE
  "CMakeFiles/offload_edge.dir/browser_host.cpp.o"
  "CMakeFiles/offload_edge.dir/browser_host.cpp.o.d"
  "CMakeFiles/offload_edge.dir/client_device.cpp.o"
  "CMakeFiles/offload_edge.dir/client_device.cpp.o.d"
  "CMakeFiles/offload_edge.dir/edge_server.cpp.o"
  "CMakeFiles/offload_edge.dir/edge_server.cpp.o.d"
  "CMakeFiles/offload_edge.dir/model_store.cpp.o"
  "CMakeFiles/offload_edge.dir/model_store.cpp.o.d"
  "CMakeFiles/offload_edge.dir/protocol.cpp.o"
  "CMakeFiles/offload_edge.dir/protocol.cpp.o.d"
  "liboffload_edge.a"
  "liboffload_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
