# Empty dependencies file for offload_edge.
# This may be replaced when dependencies are built.
