file(REMOVE_RECURSE
  "liboffload_edge.a"
)
