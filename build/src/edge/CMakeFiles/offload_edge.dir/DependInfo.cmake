
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/edge/browser_host.cpp" "src/edge/CMakeFiles/offload_edge.dir/browser_host.cpp.o" "gcc" "src/edge/CMakeFiles/offload_edge.dir/browser_host.cpp.o.d"
  "/root/repo/src/edge/client_device.cpp" "src/edge/CMakeFiles/offload_edge.dir/client_device.cpp.o" "gcc" "src/edge/CMakeFiles/offload_edge.dir/client_device.cpp.o.d"
  "/root/repo/src/edge/edge_server.cpp" "src/edge/CMakeFiles/offload_edge.dir/edge_server.cpp.o" "gcc" "src/edge/CMakeFiles/offload_edge.dir/edge_server.cpp.o.d"
  "/root/repo/src/edge/model_store.cpp" "src/edge/CMakeFiles/offload_edge.dir/model_store.cpp.o" "gcc" "src/edge/CMakeFiles/offload_edge.dir/model_store.cpp.o.d"
  "/root/repo/src/edge/protocol.cpp" "src/edge/CMakeFiles/offload_edge.dir/protocol.cpp.o" "gcc" "src/edge/CMakeFiles/offload_edge.dir/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jsvm/CMakeFiles/offload_jsvm.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/offload_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/offload_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/offload_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vmsynth/CMakeFiles/offload_vmsynth.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/offload_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
