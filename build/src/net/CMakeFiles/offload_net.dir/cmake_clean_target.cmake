file(REMOVE_RECURSE
  "liboffload_net.a"
)
