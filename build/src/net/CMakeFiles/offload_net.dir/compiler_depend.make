# Empty compiler generated dependencies file for offload_net.
# This may be replaced when dependencies are built.
