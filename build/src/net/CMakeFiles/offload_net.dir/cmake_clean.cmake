file(REMOVE_RECURSE
  "CMakeFiles/offload_net.dir/bandwidth.cpp.o"
  "CMakeFiles/offload_net.dir/bandwidth.cpp.o.d"
  "CMakeFiles/offload_net.dir/channel.cpp.o"
  "CMakeFiles/offload_net.dir/channel.cpp.o.d"
  "CMakeFiles/offload_net.dir/link.cpp.o"
  "CMakeFiles/offload_net.dir/link.cpp.o.d"
  "CMakeFiles/offload_net.dir/message.cpp.o"
  "CMakeFiles/offload_net.dir/message.cpp.o.d"
  "liboffload_net.a"
  "liboffload_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
