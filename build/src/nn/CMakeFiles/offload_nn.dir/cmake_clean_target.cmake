file(REMOVE_RECURSE
  "liboffload_nn.a"
)
