file(REMOVE_RECURSE
  "CMakeFiles/offload_nn.dir/cost_model.cpp.o"
  "CMakeFiles/offload_nn.dir/cost_model.cpp.o.d"
  "CMakeFiles/offload_nn.dir/device.cpp.o"
  "CMakeFiles/offload_nn.dir/device.cpp.o.d"
  "CMakeFiles/offload_nn.dir/layers.cpp.o"
  "CMakeFiles/offload_nn.dir/layers.cpp.o.d"
  "CMakeFiles/offload_nn.dir/model_io.cpp.o"
  "CMakeFiles/offload_nn.dir/model_io.cpp.o.d"
  "CMakeFiles/offload_nn.dir/models.cpp.o"
  "CMakeFiles/offload_nn.dir/models.cpp.o.d"
  "CMakeFiles/offload_nn.dir/network.cpp.o"
  "CMakeFiles/offload_nn.dir/network.cpp.o.d"
  "CMakeFiles/offload_nn.dir/partition.cpp.o"
  "CMakeFiles/offload_nn.dir/partition.cpp.o.d"
  "CMakeFiles/offload_nn.dir/tensor.cpp.o"
  "CMakeFiles/offload_nn.dir/tensor.cpp.o.d"
  "liboffload_nn.a"
  "liboffload_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
