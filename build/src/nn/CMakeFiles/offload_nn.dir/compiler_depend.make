# Empty compiler generated dependencies file for offload_nn.
# This may be replaced when dependencies are built.
