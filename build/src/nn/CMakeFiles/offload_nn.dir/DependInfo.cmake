
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/cost_model.cpp" "src/nn/CMakeFiles/offload_nn.dir/cost_model.cpp.o" "gcc" "src/nn/CMakeFiles/offload_nn.dir/cost_model.cpp.o.d"
  "/root/repo/src/nn/device.cpp" "src/nn/CMakeFiles/offload_nn.dir/device.cpp.o" "gcc" "src/nn/CMakeFiles/offload_nn.dir/device.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/offload_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/offload_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/model_io.cpp" "src/nn/CMakeFiles/offload_nn.dir/model_io.cpp.o" "gcc" "src/nn/CMakeFiles/offload_nn.dir/model_io.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "src/nn/CMakeFiles/offload_nn.dir/models.cpp.o" "gcc" "src/nn/CMakeFiles/offload_nn.dir/models.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/offload_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/offload_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/partition.cpp" "src/nn/CMakeFiles/offload_nn.dir/partition.cpp.o" "gcc" "src/nn/CMakeFiles/offload_nn.dir/partition.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/offload_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/offload_nn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/offload_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/offload_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
