// Shared text-emission helpers for the full and differential snapshot
// writers (internal header).
#pragma once

#include <charconv>
#include <cstdio>
#include <string>
#include <string_view>

namespace offload::jsvm::detail {

inline std::string escape_string(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

inline std::string float_to_text(float v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, ptr);
}

}  // namespace offload::jsvm::detail
