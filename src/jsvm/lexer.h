// Hand-written lexer for MicroJS. Supports // and /* */ comments, decimal
// and exponent number literals, and single- or double-quoted strings with
// the common escape sequences.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/jsvm/token.h"

namespace offload::jsvm {

/// Thrown on malformed source; carries a 1-based line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  /// Tokenize the whole input (ends with a kEof token).
  std::vector<Token> tokenize();

  /// 1-based line of a byte offset (for diagnostics).
  static std::size_t line_of(std::string_view source, std::size_t offset);

 private:
  Token next();
  void skip_trivia();
  Token lex_number();
  Token lex_string(char quote);
  Token lex_identifier();
  [[noreturn]] void fail(const std::string& message) const;

  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  bool eof() const { return pos_ >= src_.size(); }

  std::string_view src_;
  std::size_t pos_ = 0;
};

}  // namespace offload::jsvm
