// Lexical environments. A chain of these is what a closure captures; the
// snapshot writer walks reachable environments to reconstruct closures on
// the restoring side (the paper's reference [11], "closure reconstruction").
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/jsvm/value.h"

namespace offload::jsvm {

class Environment : public std::enable_shared_from_this<Environment> {
 public:
  explicit Environment(EnvPtr parent = nullptr) : parent_(std::move(parent)) {}

  const EnvPtr& parent() const { return parent_; }

  /// Slots in declaration order (snapshot determinism).
  const std::vector<std::pair<std::string, Value>>& slots() const {
    return slots_;
  }

  /// `var` semantics: (re)declare in *this* environment.
  void declare(std::string_view name, Value value);

  /// Look up through the chain; nullptr if unbound.
  Value* find(std::string_view name);

  /// Look up only in this environment.
  Value* find_local(std::string_view name);

  /// Assign through the chain. Returns false if the name is unbound
  /// anywhere (caller decides whether that is an error or an implicit
  /// global, JS-style).
  bool assign(std::string_view name, const Value& value);

 private:
  EnvPtr parent_;
  std::vector<std::pair<std::string, Value>> slots_;
};

}  // namespace offload::jsvm
