// Runtime values for MicroJS. Reference types (objects, arrays, functions,
// typed arrays, DOM nodes, host objects) are shared_ptr-backed so the heap
// graph — including cycles — has real identity, which the snapshot writer
// must preserve (two references to one object stay one object after
// restore).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/jsvm/ast.h"

namespace offload::jsvm {

class Interpreter;
class Environment;
using EnvPtr = std::shared_ptr<Environment>;

struct Object;
struct ArrayObj;
struct FunctionObj;
struct TypedArray;
struct NativeFunction;
struct HostObject;
struct DomNode;

using ObjectPtr = std::shared_ptr<Object>;
using ArrayPtr = std::shared_ptr<ArrayObj>;
using FunctionPtr = std::shared_ptr<FunctionObj>;
using TypedArrayPtr = std::shared_ptr<TypedArray>;
using NativeFnPtr = std::shared_ptr<NativeFunction>;
using HostObjectPtr = std::shared_ptr<HostObject>;
using DomNodePtr = std::shared_ptr<DomNode>;

struct Undefined {
  bool operator==(const Undefined&) const = default;
};
struct Null {
  bool operator==(const Null&) const = default;
};

using Value = std::variant<Undefined, Null, bool, double, std::string,
                           ObjectPtr, ArrayPtr, FunctionPtr, TypedArrayPtr,
                           NativeFnPtr, HostObjectPtr, DomNodePtr>;

/// Thrown for runtime errors in MicroJS code (our TypeError/ReferenceError).
class JsError : public std::runtime_error {
 public:
  explicit JsError(const std::string& what) : std::runtime_error(what) {}
};

/// Plain object: ordered property list (insertion order is preserved and
/// determines snapshot output order, keeping snapshots deterministic).
struct Object {
  std::vector<std::pair<std::string, Value>> properties;

  Value* find(std::string_view key);
  const Value* find(std::string_view key) const;
  /// Missing keys read as undefined, like JS.
  Value get(std::string_view key) const;
  void set(std::string_view key, Value value);
  bool erase(std::string_view key);
};

struct ArrayObj {
  std::vector<Value> elements;
};

/// Float32Array: the value type for images, feature tensors, and model
/// outputs inside web apps. Backing store is plain float32, matching the
/// byte accounting of the paper's feature-data sizes.
struct TypedArray {
  std::vector<float> data;
};

/// A MicroJS closure: params + body AST + captured environment. `program`
/// keeps the AST (and its source text) alive for as long as the closure
/// exists. `source()` is the exact source slice, which is what snapshots
/// serialize.
struct FunctionObj {
  std::string name;  ///< may be empty
  const FunctionExpr* decl = nullptr;
  ProgramPtr program;
  EnvPtr closure;

  std::string_view source() const {
    return std::string_view(program->source)
        .substr(decl->src_begin, decl->src_end - decl->src_begin);
  }
};

/// Built-in function provided by the browser host. `registry_name` is the
/// stable identifier snapshots use to re-link (e.g. "console.log").
struct NativeFunction {
  std::string registry_name;
  std::function<Value(Interpreter&, const Value& this_value,
                      std::span<Value> args)>
      fn;
};

/// Opaque host-side object exposed to MicroJS (e.g. a loaded DNN model).
/// Snapshots do not embed its state; they emit `restore_expression()`,
/// a MicroJS expression that re-acquires the object on the restoring side —
/// this is precisely how the pre-sent model stays out of the snapshot.
struct HostObject {
  virtual ~HostObject() = default;
  virtual std::string_view class_name() const = 0;
  virtual Value get_property(Interpreter& interp, std::string_view name) = 0;
  virtual void set_property(Interpreter& /*interp*/, std::string_view name,
                            const Value& /*value*/) {
    throw JsError("cannot set property '" + std::string(name) +
                  "' on host object");
  }
  virtual std::string restore_expression() const = 0;
};

/// A DOM element. The tree (plus listeners) is part of the app execution
/// state and is fully serialized into snapshots.
struct DomNode : std::enable_shared_from_this<DomNode> {
  std::string tag;
  std::string id;
  std::string text;  ///< textContent
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<DomNodePtr> children;
  std::weak_ptr<DomNode> parent;
  /// (event type, handler) in registration order; handler is a FunctionPtr
  /// or NativeFnPtr value.
  std::vector<std::pair<std::string, Value>> listeners;
  /// For <canvas> elements: the pixel buffer returned by getImageData().
  /// Part of the app state, so snapshots serialize it.
  TypedArrayPtr canvas_data;

  void append_child(const DomNodePtr& child);
  bool remove_child(const DomNodePtr& child);
  const std::string* get_attribute(std::string_view name) const;
  void set_attribute(std::string_view name, std::string value);
};

// ------------------------------------------------------------ conversions

bool is_undefined(const Value& v);
bool is_null(const Value& v);
bool is_callable(const Value& v);
bool truthy(const Value& v);
/// JS-like typeof: "undefined", "boolean", "number", "string", "function",
/// "object".
std::string_view type_of(const Value& v);

/// Numeric coercion for arithmetic; throws JsError for non-numbers (MicroJS
/// is stricter than JS — no NaN-producing implicit coercions).
double to_number(const Value& v);

/// Human-readable rendering (console.log, string concatenation).
std::string to_display_string(const Value& v);

/// Strict-ish equality: same type and value; reference identity for heap
/// types; null == undefined (for convenient null checks, as the example
/// apps use them).
bool values_equal(const Value& a, const Value& b);

/// Shortest round-trip decimal text for a double (what the snapshot writer
/// and to_display_string emit).
std::string number_to_string(double v);

}  // namespace offload::jsvm
