#include "src/jsvm/parser.h"

#include <utility>

namespace offload::jsvm {
namespace {

class Parser {
 public:
  Parser(std::string_view source, std::vector<Token> tokens)
      : src_(source), tokens_(std::move(tokens)) {}

  std::vector<StmtPtr> parse_statements_until_eof() {
    std::vector<StmtPtr> stmts;
    while (!at(TokenKind::kEof)) {
      stmts.push_back(parse_statement());
    }
    return stmts;
  }

  std::unique_ptr<FunctionExpr> parse_single_function() {
    if (!at(TokenKind::kFunction)) fail("expected 'function'");
    auto fn = parse_function_literal();
    // Allow a trailing semicolon; nothing else.
    if (at(TokenKind::kSemicolon)) advance();
    if (!at(TokenKind::kEof)) fail("trailing tokens after function");
    return fn;
  }

 private:
  // ----------------------------------------------------------- statements

  StmtPtr parse_statement() {
    switch (peek().kind) {
      case TokenKind::kVar: return parse_var_decl(/*eat_semicolon=*/true);
      case TokenKind::kFunction: return parse_function_decl();
      case TokenKind::kLBrace: return parse_block();
      case TokenKind::kIf: return parse_if();
      case TokenKind::kWhile: return parse_while();
      case TokenKind::kFor: return parse_for();
      case TokenKind::kReturn: return parse_return();
      case TokenKind::kBreak: {
        auto s = make_stmt<BreakStmt>();
        advance();
        expect(TokenKind::kSemicolon);
        return s;
      }
      case TokenKind::kContinue: {
        auto s = make_stmt<ContinueStmt>();
        advance();
        expect(TokenKind::kSemicolon);
        return s;
      }
      default: {
        auto s = make_stmt<ExprStmt>();
        s->expr = parse_expression();
        expect(TokenKind::kSemicolon);
        return s;
      }
    }
  }

  StmtPtr parse_var_decl(bool eat_semicolon) {
    auto s = make_stmt<VarDeclStmt>();
    expect(TokenKind::kVar);
    s->name = expect_identifier();
    if (at(TokenKind::kAssign)) {
      advance();
      s->init = parse_expression();
    }
    if (eat_semicolon) expect(TokenKind::kSemicolon);
    return s;
  }

  StmtPtr parse_function_decl() {
    auto s = make_stmt<FunctionDeclStmt>();
    s->function = parse_function_literal();
    if (s->function->name.empty()) {
      fail("function declaration requires a name");
    }
    return s;
  }

  std::unique_ptr<FunctionExpr> parse_function_literal() {
    auto fn = std::make_unique<FunctionExpr>();
    fn->begin = peek().begin;
    fn->src_begin = peek().begin;
    expect(TokenKind::kFunction);
    if (at(TokenKind::kIdentifier)) {
      fn->name = peek().text;
      advance();
    }
    expect(TokenKind::kLParen);
    if (!at(TokenKind::kRParen)) {
      while (true) {
        fn->params.push_back(expect_identifier());
        if (!at(TokenKind::kComma)) break;
        advance();
      }
    }
    expect(TokenKind::kRParen);
    auto block = parse_block_raw();
    fn->src_end = prev_end_;
    fn->body = std::move(block);
    return fn;
  }

  std::unique_ptr<BlockStmt> parse_block_raw() {
    auto b = std::make_unique<BlockStmt>();
    b->begin = peek().begin;
    expect(TokenKind::kLBrace);
    while (!at(TokenKind::kRBrace)) {
      if (at(TokenKind::kEof)) fail("unterminated block");
      b->statements.push_back(parse_statement());
    }
    expect(TokenKind::kRBrace);
    return b;
  }

  StmtPtr parse_block() { return parse_block_raw(); }

  StmtPtr parse_if() {
    auto s = make_stmt<IfStmt>();
    expect(TokenKind::kIf);
    expect(TokenKind::kLParen);
    s->condition = parse_expression();
    expect(TokenKind::kRParen);
    s->consequent = parse_statement();
    if (at(TokenKind::kElse)) {
      advance();
      s->alternate = parse_statement();
    }
    return s;
  }

  StmtPtr parse_while() {
    auto s = make_stmt<WhileStmt>();
    expect(TokenKind::kWhile);
    expect(TokenKind::kLParen);
    s->condition = parse_expression();
    expect(TokenKind::kRParen);
    s->body = parse_statement();
    return s;
  }

  StmtPtr parse_for() {
    auto s = make_stmt<ForStmt>();
    expect(TokenKind::kFor);
    expect(TokenKind::kLParen);
    if (at(TokenKind::kSemicolon)) {
      advance();
    } else if (at(TokenKind::kVar)) {
      s->init = parse_var_decl(/*eat_semicolon=*/true);
    } else {
      auto e = make_stmt<ExprStmt>();
      e->expr = parse_expression();
      s->init = std::move(e);
      expect(TokenKind::kSemicolon);
    }
    if (!at(TokenKind::kSemicolon)) s->condition = parse_expression();
    expect(TokenKind::kSemicolon);
    if (!at(TokenKind::kRParen)) s->update = parse_expression();
    expect(TokenKind::kRParen);
    s->body = parse_statement();
    return s;
  }

  StmtPtr parse_return() {
    auto s = make_stmt<ReturnStmt>();
    expect(TokenKind::kReturn);
    if (!at(TokenKind::kSemicolon)) s->value = parse_expression();
    expect(TokenKind::kSemicolon);
    return s;
  }

  // ---------------------------------------------------------- expressions

  ExprPtr parse_expression() { return parse_assignment(); }

  ExprPtr parse_assignment() {
    ExprPtr lhs = parse_conditional();
    AssignOp op;
    switch (peek().kind) {
      case TokenKind::kAssign: op = AssignOp::kAssign; break;
      case TokenKind::kPlusAssign: op = AssignOp::kAdd; break;
      case TokenKind::kMinusAssign: op = AssignOp::kSub; break;
      case TokenKind::kStarAssign: op = AssignOp::kMul; break;
      case TokenKind::kSlashAssign: op = AssignOp::kDiv; break;
      default: return lhs;
    }
    if (lhs->kind != ExprKind::kIdentifier && lhs->kind != ExprKind::kMember &&
        lhs->kind != ExprKind::kIndex) {
      fail("invalid assignment target");
    }
    auto e = make_expr<AssignExpr>(lhs->begin);
    e->op = op;
    advance();
    e->target = std::move(lhs);
    e->value = parse_assignment();  // right associative
    return e;
  }

  ExprPtr parse_conditional() {
    ExprPtr cond = parse_logical_or();
    if (!at(TokenKind::kQuestion)) return cond;
    auto e = make_expr<ConditionalExpr>(cond->begin);
    advance();
    e->condition = std::move(cond);
    e->consequent = parse_assignment();
    expect(TokenKind::kColon);
    e->alternate = parse_assignment();
    return e;
  }

  ExprPtr parse_logical_or() {
    ExprPtr lhs = parse_logical_and();
    while (at(TokenKind::kOrOr)) {
      auto e = make_expr<LogicalExpr>(lhs->begin);
      e->op = LogicalOp::kOr;
      advance();
      e->lhs = std::move(lhs);
      e->rhs = parse_logical_and();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_logical_and() {
    ExprPtr lhs = parse_equality();
    while (at(TokenKind::kAndAnd)) {
      auto e = make_expr<LogicalExpr>(lhs->begin);
      e->op = LogicalOp::kAnd;
      advance();
      e->lhs = std::move(lhs);
      e->rhs = parse_equality();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_equality() {
    ExprPtr lhs = parse_relational();
    while (at(TokenKind::kEq) || at(TokenKind::kNeq)) {
      BinaryOp op = at(TokenKind::kEq) ? BinaryOp::kEq : BinaryOp::kNeq;
      auto e = make_expr<BinaryExpr>(lhs->begin);
      e->op = op;
      advance();
      e->lhs = std::move(lhs);
      e->rhs = parse_relational();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_relational() {
    ExprPtr lhs = parse_additive();
    while (true) {
      BinaryOp op;
      switch (peek().kind) {
        case TokenKind::kLt: op = BinaryOp::kLt; break;
        case TokenKind::kGt: op = BinaryOp::kGt; break;
        case TokenKind::kLe: op = BinaryOp::kLe; break;
        case TokenKind::kGe: op = BinaryOp::kGe; break;
        default: return lhs;
      }
      auto e = make_expr<BinaryExpr>(lhs->begin);
      e->op = op;
      advance();
      e->lhs = std::move(lhs);
      e->rhs = parse_additive();
      lhs = std::move(e);
    }
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (at(TokenKind::kPlus) || at(TokenKind::kMinus)) {
      BinaryOp op = at(TokenKind::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
      auto e = make_expr<BinaryExpr>(lhs->begin);
      e->op = op;
      advance();
      e->lhs = std::move(lhs);
      e->rhs = parse_multiplicative();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (true) {
      BinaryOp op;
      switch (peek().kind) {
        case TokenKind::kStar: op = BinaryOp::kMul; break;
        case TokenKind::kSlash: op = BinaryOp::kDiv; break;
        case TokenKind::kPercent: op = BinaryOp::kMod; break;
        default: return lhs;
      }
      auto e = make_expr<BinaryExpr>(lhs->begin);
      e->op = op;
      advance();
      e->lhs = std::move(lhs);
      e->rhs = parse_unary();
      lhs = std::move(e);
    }
  }

  ExprPtr parse_unary() {
    switch (peek().kind) {
      case TokenKind::kMinus: {
        auto e = make_expr<UnaryExpr>(peek().begin);
        e->op = UnaryOp::kNeg;
        advance();
        e->operand = parse_unary();
        return e;
      }
      case TokenKind::kNot: {
        auto e = make_expr<UnaryExpr>(peek().begin);
        e->op = UnaryOp::kNot;
        advance();
        e->operand = parse_unary();
        return e;
      }
      case TokenKind::kTypeof: {
        auto e = make_expr<UnaryExpr>(peek().begin);
        e->op = UnaryOp::kTypeof;
        advance();
        e->operand = parse_unary();
        return e;
      }
      case TokenKind::kPlusPlus:
      case TokenKind::kMinusMinus: {
        auto e = make_expr<UpdateExpr>(peek().begin);
        e->increment = at(TokenKind::kPlusPlus);
        e->prefix = true;
        advance();
        e->target = parse_unary();
        check_lvalue(*e->target);
        return e;
      }
      default:
        return parse_postfix();
    }
  }

  void check_lvalue(const Expr& e) {
    if (e.kind != ExprKind::kIdentifier && e.kind != ExprKind::kMember &&
        e.kind != ExprKind::kIndex) {
      fail("++/-- requires a variable or property");
    }
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_call_member();
    if (at(TokenKind::kPlusPlus) || at(TokenKind::kMinusMinus)) {
      auto u = make_expr<UpdateExpr>(e->begin);
      u->increment = at(TokenKind::kPlusPlus);
      u->prefix = false;
      advance();
      check_lvalue(*e);
      u->target = std::move(e);
      return u;
    }
    return e;
  }

  ExprPtr parse_call_member() {
    ExprPtr e = parse_primary();
    while (true) {
      if (at(TokenKind::kDot)) {
        auto m = make_expr<MemberExpr>(e->begin);
        advance();
        m->property = expect_identifier();
        m->object = std::move(e);
        e = std::move(m);
      } else if (at(TokenKind::kLBracket)) {
        auto ix = make_expr<IndexExpr>(e->begin);
        advance();
        ix->index = parse_expression();
        expect(TokenKind::kRBracket);
        ix->object = std::move(e);
        e = std::move(ix);
      } else if (at(TokenKind::kLParen)) {
        auto c = make_expr<CallExpr>(e->begin);
        advance();
        if (!at(TokenKind::kRParen)) {
          while (true) {
            c->args.push_back(parse_expression());
            if (!at(TokenKind::kComma)) break;
            advance();
          }
        }
        expect(TokenKind::kRParen);
        c->callee = std::move(e);
        e = std::move(c);
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kNumber: {
        auto e = make_expr<NumberExpr>(t.begin);
        e->value = t.number;
        advance();
        return e;
      }
      case TokenKind::kString: {
        auto e = make_expr<StringExpr>(t.begin);
        e->value = t.text;
        advance();
        return e;
      }
      case TokenKind::kTrue:
      case TokenKind::kFalse: {
        auto e = make_expr<BoolExpr>(t.begin);
        e->value = t.kind == TokenKind::kTrue;
        advance();
        return e;
      }
      case TokenKind::kNull: {
        auto e = make_expr<NullExpr>(t.begin);
        advance();
        return e;
      }
      case TokenKind::kUndefined: {
        auto e = make_expr<UndefinedExpr>(t.begin);
        advance();
        return e;
      }
      case TokenKind::kThis: {
        auto e = make_expr<ThisExpr>(t.begin);
        advance();
        return e;
      }
      case TokenKind::kIdentifier: {
        auto e = make_expr<IdentifierExpr>(t.begin);
        e->name = t.text;
        advance();
        return e;
      }
      case TokenKind::kFunction:
        return parse_function_literal();
      case TokenKind::kLParen: {
        advance();
        ExprPtr e = parse_expression();
        expect(TokenKind::kRParen);
        return e;
      }
      case TokenKind::kLBracket: {
        auto e = make_expr<ArrayExpr>(t.begin);
        advance();
        if (!at(TokenKind::kRBracket)) {
          while (true) {
            e->elements.push_back(parse_expression());
            if (!at(TokenKind::kComma)) break;
            advance();
          }
        }
        expect(TokenKind::kRBracket);
        return e;
      }
      case TokenKind::kLBrace: {
        auto e = make_expr<ObjectExpr>(t.begin);
        advance();
        if (!at(TokenKind::kRBrace)) {
          while (true) {
            std::string key;
            if (at(TokenKind::kString)) {
              key = peek().text;
              advance();
            } else if (at(TokenKind::kNumber)) {
              // Numeric keys appear in snapshot env tables; store as text.
              key = src_slice(peek());
              advance();
            } else {
              key = expect_identifier_or_keyword();
            }
            expect(TokenKind::kColon);
            e->properties.emplace_back(std::move(key), parse_expression());
            if (!at(TokenKind::kComma)) break;
            advance();
          }
        }
        expect(TokenKind::kRBrace);
        return e;
      }
      default:
        fail(std::string("unexpected ") + token_kind_name(t.kind));
    }
  }

  // -------------------------------------------------------------- helpers

  template <typename T>
  std::unique_ptr<T> make_stmt() {
    auto s = std::make_unique<T>();
    s->begin = peek().begin;
    return s;
  }

  template <typename T>
  std::unique_ptr<T> make_expr(std::size_t begin) {
    auto e = std::make_unique<T>();
    e->begin = begin;
    return e;
  }

  const Token& peek() const { return tokens_[pos_]; }
  bool at(TokenKind kind) const { return peek().kind == kind; }

  void advance() {
    prev_end_ = peek().end;
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  void expect(TokenKind kind) {
    if (!at(kind)) {
      fail(std::string("expected ") + token_kind_name(kind) + ", got " +
           token_kind_name(peek().kind));
    }
    advance();
  }

  std::string expect_identifier() {
    if (!at(TokenKind::kIdentifier)) {
      fail(std::string("expected identifier, got ") +
           token_kind_name(peek().kind));
    }
    std::string name = peek().text;
    advance();
    return name;
  }

  /// Object keys may be identifiers or (reserved) words like "length".
  std::string expect_identifier_or_keyword() {
    const Token& t = peek();
    if (t.kind == TokenKind::kIdentifier) {
      std::string name = t.text;
      advance();
      return name;
    }
    // Accept keyword tokens as literal property names.
    switch (t.kind) {
      case TokenKind::kVar: case TokenKind::kFunction: case TokenKind::kIf:
      case TokenKind::kElse: case TokenKind::kWhile: case TokenKind::kFor:
      case TokenKind::kReturn: case TokenKind::kBreak:
      case TokenKind::kContinue: case TokenKind::kTrue: case TokenKind::kFalse:
      case TokenKind::kNull: case TokenKind::kUndefined:
      case TokenKind::kTypeof: case TokenKind::kThis: {
        std::string name = src_slice(t);
        advance();
        return name;
      }
      default:
        fail("expected property name");
    }
  }

  std::string src_slice(const Token& t) const {
    return std::string(src_.substr(t.begin, t.end - t.begin));
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, Lexer::line_of(src_, peek().begin));
  }

  std::string_view src_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::size_t prev_end_ = 0;
};

}  // namespace

ProgramPtr parse_program(std::string_view source, std::string origin) {
  auto program = std::make_shared<Program>();
  program->source = std::string(source);
  program->origin = std::move(origin);
  Lexer lexer(program->source);
  Parser parser(program->source, lexer.tokenize());
  program->statements = parser.parse_statements_until_eof();
  return program;
}

ProgramPtr parse_function_source(std::string_view source, std::string origin) {
  auto program = std::make_shared<Program>();
  program->source = std::string(source);
  program->origin = std::move(origin);
  Lexer lexer(program->source);
  Parser parser(program->source, lexer.tokenize());
  auto fn = parser.parse_single_function();
  auto stmt = std::make_unique<ExprStmt>();
  stmt->begin = fn->begin;
  stmt->expr = std::move(fn);
  program->statements.push_back(std::move(stmt));
  return program;
}

}  // namespace offload::jsvm
