// Token definitions for MicroJS, the JavaScript subset our web-app runtime
// executes (see src/jsvm/README note in interpreter.h for the language
// surface). Tokens carry source offsets so functions can be snapshotted by
// slicing their original source text.
#pragma once

#include <cstdint>
#include <string>

namespace offload::jsvm {

enum class TokenKind : std::uint8_t {
  kEof,
  kIdentifier,
  kNumber,
  kString,
  // Keywords.
  kVar,
  kFunction,
  kIf,
  kElse,
  kWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
  kTrue,
  kFalse,
  kNull,
  kUndefined,
  kTypeof,
  kThis,
  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kColon,
  kQuestion,
  kDot,
  kAssign,
  kPlusAssign,
  kMinusAssign,
  kStarAssign,
  kSlashAssign,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kPlusPlus,
  kMinusMinus,
  kEq,
  kNeq,
  kLt,
  kGt,
  kLe,
  kGe,
  kAndAnd,
  kOrOr,
  kNot,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::size_t begin = 0;  ///< byte offset of first char
  std::size_t end = 0;    ///< one past last char
  double number = 0.0;    ///< for kNumber
  std::string text;       ///< identifier name or decoded string literal
};

const char* token_kind_name(TokenKind kind);

}  // namespace offload::jsvm
