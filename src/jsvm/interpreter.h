// The MicroJS interpreter — our stand-in for the paper's WebKit runtime.
//
// Language surface (documented deviations from full JS):
//  - `var` is block-scoped (like `let`); no hoisting of vars or functions.
//  - `dispatchEvent` is asynchronous: it enqueues the event, and handlers
//    run from the event loop. This makes every handler boundary a
//    potential snapshot point, which is exactly where the paper captures
//    snapshots ("just before the time-consuming event handler is
//    executed").
//  - Strict equality only (plus null == undefined); no implicit string↔
//    number coercion except `+` with a string operand.
//  - No prototypes, `new`, exceptions, or getters/setters.
//
// Built-ins installed by the constructor: console.{log,error},
// Math.{floor,ceil,round,sqrt,abs,max,min,pow,exp,log,random}, document
// (getElementById/createElement/body), Float32Array(n|array), plus the
// snapshot-restore intrinsics (__closure, __makeEnv, __envSlot, __f32,
// __f32b64, __native, __dispatchPending).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/jsvm/ast.h"
#include "src/jsvm/dom.h"
#include "src/jsvm/env.h"
#include "src/jsvm/value.h"
#include "src/util/rng.h"

namespace offload::jsvm {

/// An event sitting in the queue, waiting for its handlers to run.
struct PendingEvent {
  DomNodePtr target;
  std::string type;
  Value detail;
};

class Interpreter {
 public:
  Interpreter();

  // ------------------------------------------------------------ programs

  /// Parse and execute a program in the global scope. Returns the value of
  /// the last expression statement (convenient for tests).
  Value eval_program(std::string_view source, std::string origin = "app");
  Value eval_parsed(const ProgramPtr& program);

  /// Call a MicroJS or native function from C++.
  Value call(const Value& callee, const Value& this_value,
             std::vector<Value> args);

  // -------------------------------------------------------------- events

  void enqueue_event(DomNodePtr target, std::string type,
                     Value detail = Undefined{});

  /// Drain the event queue, invoking listeners. If `offload_hook` returns
  /// true for an event, the loop stops *before* running its handlers and
  /// the event becomes the pending-offload event (retrievable below) —
  /// this is the paper's snapshot point. Returns events whose handlers ran.
  std::size_t run_events();

  std::function<bool(const PendingEvent&)> offload_hook;
  bool has_pending_events() const { return !event_queue_.empty(); }
  const std::deque<PendingEvent>& event_queue() const { return event_queue_; }
  /// The event the hook stopped on. It is still at the front of the queue;
  /// this call only clears the "stopped" flag.
  std::optional<PendingEvent> take_pending_offload();
  /// Put an event at the *front* of the queue (used when a declined
  /// offload should still run locally).
  void push_front_event(PendingEvent event);
  /// Pop the front event without running it (local-fallback path runs it
  /// via run_events after clearing the hook).
  void pop_front_event() {
    if (!event_queue_.empty()) event_queue_.pop_front();
  }

  // ---------------------------------------------------------------- host

  Document& document() { return document_; }
  const EnvPtr& globals() const { return globals_; }

  using NativeImpl = std::function<Value(Interpreter&, const Value&,
                                         std::span<Value>)>;
  /// Register (or replace) a native in the registry; snapshots reference
  /// it as __native("<registry_name>").
  NativeFnPtr register_native(std::string registry_name, NativeImpl fn);
  /// Look up a registered native; nullptr if unknown.
  NativeFnPtr native(std::string_view registry_name) const;

  /// Define a global visible to programs. If `ambient`, the binding is
  /// part of the runtime (present in any fresh realm) and the snapshot
  /// writer skips it unless the app rebinds the name.
  void set_global(std::string name, Value value, bool ambient = true);
  /// True if `name` is ambient and still bound to its original value.
  bool is_ambient_binding(std::string_view name, const Value& value) const;

  /// Member access, exposed for host objects and the snapshot writer.
  Value get_member(const Value& object, std::string_view name);
  void set_member(const Value& object, std::string_view name, Value value);

  // --------------------------------------------------------------- stats

  struct Stats {
    std::uint64_t statements = 0;
    std::uint64_t calls = 0;
    std::uint64_t events = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Everything console.log/error printed, one entry per call.
  const std::vector<std::string>& console_output() const {
    return console_output_;
  }
  void append_console_output(std::string line) {
    console_output_.push_back(std::move(line));
  }

  util::Pcg32& rng() { return rng_; }

 private:
  enum class Flow : std::uint8_t { kNormal, kReturn, kBreak, kContinue };
  struct Completion {
    Flow flow = Flow::kNormal;
    Value value;
  };

  Completion exec_stmt(const Stmt& stmt, const EnvPtr& env);
  Completion exec_block(const BlockStmt& block, const EnvPtr& env);
  Value eval_expr(const Expr& expr, const EnvPtr& env);
  Value eval_call(const CallExpr& call, const EnvPtr& env);
  Value call_function(const FunctionPtr& fn, const Value& this_value,
                      std::span<Value> args);
  Value get_index(const Value& object, const Value& index);
  void set_index(const Value& object, const Value& index, Value value);
  Value make_function(const FunctionExpr& decl, const EnvPtr& env);
  void run_handlers(const PendingEvent& event);
  void install_builtins();

  [[noreturn]] void runtime_error(const std::string& message,
                                  const Expr* where = nullptr) const;

  Document document_;
  EnvPtr globals_;
  std::deque<PendingEvent> event_queue_;
  std::optional<PendingEvent> pending_offload_;
  std::unordered_map<std::string, NativeFnPtr> natives_;
  std::vector<std::pair<std::string, Value>> ambient_globals_;
  std::vector<Value> this_stack_;
  ProgramPtr current_program_;  ///< program being evaluated (for closures)
  int call_depth_ = 0;
  Stats stats_;
  std::vector<std::string> console_output_;
  util::Pcg32 rng_{0xbadc0ffee0ddf00dULL};
};

}  // namespace offload::jsvm
