// Differential snapshots — the paper's Section VI future work, realized:
// after the first offload, client and server share a common state (the
// result snapshot). Subsequent offloads ship only the *changes* since that
// common state; the server applies them to the session realm it kept.
//
// The diff degrades to a full snapshot whenever correctness would be at
// risk: when the DOM structure changed (nodes added/removed/re-tagged,
// listeners changed) or when a changed global's heap subgraph shares
// objects with an unchanged one (rebuilding the shared object would split
// identities). Content-only DOM changes (text, attributes, canvas pixels)
// diff per node via the __domByIndex intrinsic.
#pragma once

#include "src/jsvm/fingerprint.h"
#include "src/jsvm/snapshot.h"

namespace offload::jsvm {

struct DiffSnapshotResult {
  std::string program;  ///< apply to the realm holding the baseline state
  SnapshotStats stats;
  /// True when the writer had to fall back to a full snapshot (apply to a
  /// fresh realm instead).
  bool full_fallback = false;
  /// The baseline this diff applies to (fingerprint version handshake).
  std::uint64_t base_version = 0;
};

/// Capture the difference between the realm's current state and
/// `baseline` (recorded with fingerprint_realm at the last common point).
DiffSnapshotResult capture_snapshot_diff(Interpreter& interp,
                                         const RealmFingerprint& baseline,
                                         const SnapshotOptions& options = {});

}  // namespace offload::jsvm
