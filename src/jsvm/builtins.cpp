// Built-in objects and functions installed into every fresh realm: console,
// Math, document, Float32Array, the collection/DOM method natives, and the
// snapshot-restore intrinsics. Everything registered here is *ambient* —
// present on both client and server browsers — so snapshots reference these
// by name instead of serializing them.
#include <cctype>
#include <cmath>
#include <cstring>
#include <functional>

#include "src/jsvm/interpreter.h"
#include "src/jsvm/parser.h"
#include "src/util/base64.h"
#include "src/util/logging.h"

namespace offload::jsvm {
namespace {

Value arg_or_undefined(std::span<Value> args, std::size_t i) {
  return i < args.size() ? args[i] : Value(Undefined{});
}

const ArrayPtr& this_array(const Value& this_value, const char* what) {
  const auto* arr = std::get_if<ArrayPtr>(&this_value);
  if (!arr) throw JsError(std::string(what) + ": receiver is not an array");
  return *arr;
}

const std::string& this_string(const Value& this_value, const char* what) {
  const auto* s = std::get_if<std::string>(&this_value);
  if (!s) throw JsError(std::string(what) + ": receiver is not a string");
  return *s;
}

const DomNodePtr& this_dom(const Value& this_value, const char* what) {
  const auto* d = std::get_if<DomNodePtr>(&this_value);
  if (!d) throw JsError(std::string(what) + ": receiver is not a DOM node");
  return *d;
}

/// The global `document` object.
class DocumentHost final : public HostObject {
 public:
  std::string_view class_name() const override { return "Document"; }

  Value get_property(Interpreter& interp, std::string_view name) override {
    if (name == "body") return Value(interp.document().body());
    if (name == "getElementById") return interp.native("Document.getElementById");
    if (name == "createElement") return interp.native("Document.createElement");
    throw JsError("document has no property '" + std::string(name) + "'");
  }

  std::string restore_expression() const override { return "document"; }
};

/// Host wrapper around an Environment, only ever created by __makeEnv
/// inside a snapshot's restore IIFE (it never leaks into app state because
/// the IIFE's locals die when restoration finishes).
class EnvHost final : public HostObject {
 public:
  explicit EnvHost(EnvPtr env) : env_(std::move(env)) {}
  std::string_view class_name() const override { return "Environment"; }
  Value get_property(Interpreter&, std::string_view name) override {
    throw JsError("environment has no property '" + std::string(name) + "'");
  }
  std::string restore_expression() const override {
    throw JsError("an Environment handle escaped into app state; "
                  "snapshots cannot serialize it");
  }
  const EnvPtr& env() const { return env_; }

 private:
  EnvPtr env_;
};

EnvPtr env_from_value(const Value& v, const Interpreter& interp) {
  if (is_null(v) || is_undefined(v)) return interp.globals();
  const auto* host = std::get_if<HostObjectPtr>(&v);
  if (host) {
    if (auto env = std::dynamic_pointer_cast<EnvHost>(*host)) {
      return env->env();
    }
  }
  throw JsError("expected an environment handle");
}

TypedArrayPtr make_f32(const Value& arg) {
  auto ta = std::make_shared<TypedArray>();
  if (const auto* n = std::get_if<double>(&arg)) {
    if (*n < 0 || *n != std::floor(*n)) {
      throw JsError("Float32Array: bad length");
    }
    ta->data.assign(static_cast<std::size_t>(*n), 0.0f);
    return ta;
  }
  if (const auto* arr = std::get_if<ArrayPtr>(&arg)) {
    ta->data.reserve((*arr)->elements.size());
    for (const auto& v : (*arr)->elements) {
      ta->data.push_back(static_cast<float>(to_number(v)));
    }
    return ta;
  }
  if (const auto* src = std::get_if<TypedArrayPtr>(&arg)) {
    ta->data = (*src)->data;  // copy, like new Float32Array(other)
    return ta;
  }
  throw JsError("Float32Array: expected length or array");
}

}  // namespace

void Interpreter::install_builtins() {
  // ------------------------------------------------------------- console
  auto console = std::make_shared<Object>();
  console->set("log",
               register_native("console.log", [](Interpreter& interp,
                                                 const Value&,
                                                 std::span<Value> args) {
                 std::string line;
                 for (std::size_t i = 0; i < args.size(); ++i) {
                   if (i) line += ' ';
                   line += to_display_string(args[i]);
                 }
                 OFFLOAD_LOG_INFO << "[console] " << line;
                 interp.append_console_output(std::move(line));
                 return Undefined{};
               }));
  console->set("error", native("console.log"));
  set_global("console", console);

  // ---------------------------------------------------------------- Math
  auto math = std::make_shared<Object>();
  auto unary_math = [&](const char* name, double (*fn)(double)) {
    math->set(name, register_native(std::string("Math.") + name,
                                    [fn](Interpreter&, const Value&,
                                         std::span<Value> args) -> Value {
                                      return fn(to_number(
                                          arg_or_undefined(args, 0)));
                                    }));
  };
  unary_math("floor", +[](double x) { return std::floor(x); });
  unary_math("ceil", +[](double x) { return std::ceil(x); });
  unary_math("round", +[](double x) { return std::round(x); });
  unary_math("sqrt", +[](double x) { return std::sqrt(x); });
  unary_math("abs", +[](double x) { return std::fabs(x); });
  unary_math("exp", +[](double x) { return std::exp(x); });
  unary_math("log", +[](double x) { return std::log(x); });
  math->set("pow", register_native("Math.pow", [](Interpreter&, const Value&,
                                                  std::span<Value> args) -> Value {
              return std::pow(to_number(arg_or_undefined(args, 0)),
                              to_number(arg_or_undefined(args, 1)));
            }));
  math->set("max", register_native("Math.max", [](Interpreter&, const Value&,
                                                  std::span<Value> args) -> Value {
              if (args.empty()) throw JsError("Math.max: no arguments");
              double m = to_number(args[0]);
              for (auto& a : args.subspan(1)) m = std::max(m, to_number(a));
              return m;
            }));
  math->set("min", register_native("Math.min", [](Interpreter&, const Value&,
                                                  std::span<Value> args) -> Value {
              if (args.empty()) throw JsError("Math.min: no arguments");
              double m = to_number(args[0]);
              for (auto& a : args.subspan(1)) m = std::min(m, to_number(a));
              return m;
            }));
  // Deterministic: draws from the realm's seeded PCG stream.
  math->set("random",
            register_native("Math.random",
                            [](Interpreter& interp, const Value&,
                               std::span<Value>) -> Value {
                              return interp.rng().canonical();
                            }));
  set_global("Math", math);

  // ------------------------------------------------------- array methods
  register_native("Array.push", [](Interpreter&, const Value& this_value,
                                   std::span<Value> args) -> Value {
    const ArrayPtr& arr = this_array(this_value, "push");
    for (auto& a : args) arr->elements.push_back(a);
    return static_cast<double>(arr->elements.size());
  });
  register_native("Array.pop", [](Interpreter&, const Value& this_value,
                                  std::span<Value>) -> Value {
    const ArrayPtr& arr = this_array(this_value, "pop");
    if (arr->elements.empty()) return Undefined{};
    Value v = std::move(arr->elements.back());
    arr->elements.pop_back();
    return v;
  });
  register_native("Array.indexOf", [](Interpreter&, const Value& this_value,
                                      std::span<Value> args) -> Value {
    const ArrayPtr& arr = this_array(this_value, "indexOf");
    Value needle = arg_or_undefined(args, 0);
    for (std::size_t i = 0; i < arr->elements.size(); ++i) {
      if (values_equal(arr->elements[i], needle)) {
        return static_cast<double>(i);
      }
    }
    return -1.0;
  });
  register_native("Array.join", [](Interpreter&, const Value& this_value,
                                   std::span<Value> args) -> Value {
    const ArrayPtr& arr = this_array(this_value, "join");
    std::string sep = args.empty() ? "," : to_display_string(args[0]);
    std::string out;
    for (std::size_t i = 0; i < arr->elements.size(); ++i) {
      if (i) out += sep;
      out += to_display_string(arr->elements[i]);
    }
    return out;
  });
  register_native("Array.slice", [](Interpreter&, const Value& this_value,
                                    std::span<Value> args) -> Value {
    const ArrayPtr& arr = this_array(this_value, "slice");
    auto size = static_cast<std::int64_t>(arr->elements.size());
    auto clamp = [size](double d) {
      auto i = static_cast<std::int64_t>(d);
      if (i < 0) i += size;
      return std::max<std::int64_t>(0, std::min(i, size));
    };
    std::int64_t from =
        args.empty() ? 0 : clamp(to_number(args[0]));
    std::int64_t to =
        args.size() < 2 ? size : clamp(to_number(args[1]));
    auto out = std::make_shared<ArrayObj>();
    for (std::int64_t i = from; i < to; ++i) {
      out->elements.push_back(arr->elements[static_cast<std::size_t>(i)]);
    }
    return out;
  });

  // ------------------------------------------------------ string methods
  register_native("String.charAt", [](Interpreter&, const Value& this_value,
                                      std::span<Value> args) -> Value {
    const std::string& s = this_string(this_value, "charAt");
    auto i = static_cast<std::int64_t>(to_number(arg_or_undefined(args, 0)));
    if (i < 0 || i >= static_cast<std::int64_t>(s.size())) return std::string();
    return std::string(1, s[static_cast<std::size_t>(i)]);
  });
  register_native("String.indexOf", [](Interpreter&, const Value& this_value,
                                       std::span<Value> args) -> Value {
    const std::string& s = this_string(this_value, "indexOf");
    std::string needle = to_display_string(arg_or_undefined(args, 0));
    auto pos = s.find(needle);
    return pos == std::string::npos ? -1.0 : static_cast<double>(pos);
  });
  register_native("String.slice", [](Interpreter&, const Value& this_value,
                                     std::span<Value> args) -> Value {
    const std::string& s = this_string(this_value, "slice");
    auto size = static_cast<std::int64_t>(s.size());
    auto clamp = [size](double d) {
      auto i = static_cast<std::int64_t>(d);
      if (i < 0) i += size;
      return std::max<std::int64_t>(0, std::min(i, size));
    };
    std::int64_t from = args.empty() ? 0 : clamp(to_number(args[0]));
    std::int64_t to = args.size() < 2 ? size : clamp(to_number(args[1]));
    if (from >= to) return std::string();
    return s.substr(static_cast<std::size_t>(from),
                    static_cast<std::size_t>(to - from));
  });
  register_native("String.split", [](Interpreter&, const Value& this_value,
                                     std::span<Value> args) -> Value {
    const std::string& s = this_string(this_value, "split");
    std::string sep = to_display_string(arg_or_undefined(args, 0));
    auto out = std::make_shared<ArrayObj>();
    if (sep.empty()) {
      for (char c : s) out->elements.emplace_back(std::string(1, c));
      return out;
    }
    std::size_t start = 0;
    while (true) {
      std::size_t pos = s.find(sep, start);
      if (pos == std::string::npos) {
        out->elements.emplace_back(s.substr(start));
        break;
      }
      out->elements.emplace_back(s.substr(start, pos - start));
      start = pos + sep.size();
    }
    return out;
  });
  register_native("String.toUpperCase",
                  [](Interpreter&, const Value& this_value,
                     std::span<Value>) -> Value {
                    std::string s = this_string(this_value, "toUpperCase");
                    for (char& c : s) c = static_cast<char>(std::toupper(
                                         static_cast<unsigned char>(c)));
                    return s;
                  });
  register_native("String.toLowerCase",
                  [](Interpreter&, const Value& this_value,
                     std::span<Value>) -> Value {
                    std::string s = this_string(this_value, "toLowerCase");
                    for (char& c : s) c = static_cast<char>(std::tolower(
                                         static_cast<unsigned char>(c)));
                    return s;
                  });

  // --------------------------------------------------------- DOM methods
  register_native("Dom.appendChild", [](Interpreter&, const Value& this_value,
                                        std::span<Value> args) -> Value {
    const DomNodePtr& node = this_dom(this_value, "appendChild");
    Value arg = arg_or_undefined(args, 0);
    const auto* child = std::get_if<DomNodePtr>(&arg);
    if (!child) throw JsError("appendChild: argument is not a DOM node");
    node->append_child(*child);
    return arg;
  });
  register_native("Dom.removeChild", [](Interpreter&, const Value& this_value,
                                        std::span<Value> args) -> Value {
    const DomNodePtr& node = this_dom(this_value, "removeChild");
    Value arg = arg_or_undefined(args, 0);
    const auto* child = std::get_if<DomNodePtr>(&arg);
    if (!child) throw JsError("removeChild: argument is not a DOM node");
    if (!node->remove_child(*child)) {
      throw JsError("removeChild: node is not a child");
    }
    return arg;
  });
  register_native("Dom.addEventListener",
                  [](Interpreter&, const Value& this_value,
                     std::span<Value> args) -> Value {
                    const DomNodePtr& node =
                        this_dom(this_value, "addEventListener");
                    std::string type =
                        to_display_string(arg_or_undefined(args, 0));
                    Value handler = arg_or_undefined(args, 1);
                    if (!is_callable(handler)) {
                      throw JsError("addEventListener: handler not callable");
                    }
                    node->listeners.emplace_back(std::move(type),
                                                 std::move(handler));
                    return Undefined{};
                  });
  register_native("Dom.removeEventListener",
                  [](Interpreter&, const Value& this_value,
                     std::span<Value> args) -> Value {
                    const DomNodePtr& node =
                        this_dom(this_value, "removeEventListener");
                    std::string type =
                        to_display_string(arg_or_undefined(args, 0));
                    Value handler = arg_or_undefined(args, 1);
                    auto& ls = node->listeners;
                    for (auto it = ls.begin(); it != ls.end(); ++it) {
                      if (it->first == type &&
                          values_equal(it->second, handler)) {
                        ls.erase(it);
                        break;
                      }
                    }
                    return Undefined{};
                  });
  register_native("Dom.dispatchEvent",
                  [](Interpreter& interp, const Value& this_value,
                     std::span<Value> args) -> Value {
                    const DomNodePtr& node =
                        this_dom(this_value, "dispatchEvent");
                    std::string type =
                        to_display_string(arg_or_undefined(args, 0));
                    interp.enqueue_event(node, std::move(type),
                                         arg_or_undefined(args, 1));
                    return Undefined{};
                  });
  register_native("Dom.setAttribute", [](Interpreter&, const Value& this_value,
                                         std::span<Value> args) -> Value {
    const DomNodePtr& node = this_dom(this_value, "setAttribute");
    node->set_attribute(to_display_string(arg_or_undefined(args, 0)),
                        to_display_string(arg_or_undefined(args, 1)));
    return Undefined{};
  });
  register_native("Dom.getAttribute", [](Interpreter&, const Value& this_value,
                                         std::span<Value> args) -> Value {
    const DomNodePtr& node = this_dom(this_value, "getAttribute");
    const std::string* attr =
        node->get_attribute(to_display_string(arg_or_undefined(args, 0)));
    if (!attr) return Null{};
    return *attr;
  });
  register_native("Dom.getImageData",
                  [](Interpreter&, const Value& this_value,
                     std::span<Value>) -> Value {
                    const DomNodePtr& node =
                        this_dom(this_value, "getImageData");
                    if (node->tag != "canvas") {
                      throw JsError("getImageData: not a canvas");
                    }
                    if (!node->canvas_data) {
                      throw JsError("getImageData: canvas is empty");
                    }
                    return node->canvas_data;
                  });
  register_native("Dom.setImageData",
                  [](Interpreter&, const Value& this_value,
                     std::span<Value> args) -> Value {
                    const DomNodePtr& node =
                        this_dom(this_value, "setImageData");
                    if (node->tag != "canvas") {
                      throw JsError("setImageData: not a canvas");
                    }
                    Value arg = arg_or_undefined(args, 0);
                    const auto* ta = std::get_if<TypedArrayPtr>(&arg);
                    if (!ta) {
                      throw JsError("setImageData: expected Float32Array");
                    }
                    node->canvas_data = *ta;
                    return Undefined{};
                  });

  // ------------------------------------------------------------ document
  register_native("Document.getElementById",
                  [](Interpreter& interp, const Value&,
                     std::span<Value> args) -> Value {
                    std::string id =
                        to_display_string(arg_or_undefined(args, 0));
                    DomNodePtr node = interp.document().get_element_by_id(id);
                    if (!node) return Null{};
                    return node;
                  });
  register_native("Document.createElement",
                  [](Interpreter&, const Value&,
                     std::span<Value> args) -> Value {
                    return Document::create_element(
                        to_display_string(arg_or_undefined(args, 0)));
                  });
  set_global("document", std::make_shared<DocumentHost>());

  // ------------------------------------------------------- typed arrays
  auto f32_ctor = register_native(
      "Float32Array", [](Interpreter&, const Value&,
                         std::span<Value> args) -> Value {
        return make_f32(arg_or_undefined(args, 0));
      });
  set_global("Float32Array", f32_ctor);

  // ------------------------------------------- snapshot restore intrinsics
  set_global("__f32", f32_ctor);
  set_global("__f32b64",
             register_native("__f32b64", [](Interpreter&, const Value&,
                                            std::span<Value> args) -> Value {
               Value arg = arg_or_undefined(args, 0);
               const auto* text = std::get_if<std::string>(&arg);
               if (!text) throw JsError("__f32b64: expected string");
               util::Bytes bytes = util::base64_decode(*text);
               if (bytes.size() % 4 != 0) {
                 throw JsError("__f32b64: byte count not a multiple of 4");
               }
               auto ta = std::make_shared<TypedArray>();
               ta->data.resize(bytes.size() / 4);
               std::memcpy(ta->data.data(), bytes.data(), bytes.size());
               return ta;
             }));
  set_global("__native",
             register_native("__native", [](Interpreter& interp, const Value&,
                                            std::span<Value> args) -> Value {
               std::string name = to_display_string(arg_or_undefined(args, 0));
               NativeFnPtr fn = interp.native(name);
               if (!fn) throw JsError("__native: unknown native " + name);
               return fn;
             }));
  set_global("__makeEnv",
             register_native("__makeEnv", [](Interpreter& interp, const Value&,
                                             std::span<Value> args) -> Value {
               EnvPtr parent =
                   env_from_value(arg_or_undefined(args, 0), interp);
               return std::make_shared<EnvHost>(
                   std::make_shared<Environment>(std::move(parent)));
             }));
  set_global("__envSlot",
             register_native("__envSlot", [](Interpreter& interp, const Value&,
                                             std::span<Value> args) -> Value {
               EnvPtr env = env_from_value(arg_or_undefined(args, 0), interp);
               std::string name = to_display_string(arg_or_undefined(args, 1));
               env->declare(name, arg_or_undefined(args, 2));
               return Undefined{};
             }));
  set_global(
      "__closure",
      register_native("__closure", [](Interpreter& interp, const Value&,
                                      std::span<Value> args) -> Value {
        Value src_v = arg_or_undefined(args, 0);
        const auto* src = std::get_if<std::string>(&src_v);
        if (!src) throw JsError("__closure: expected function source");
        EnvPtr env = env_from_value(arg_or_undefined(args, 1), interp);
        ProgramPtr program = parse_function_source(*src);
        const auto& stmt =
            static_cast<const ExprStmt&>(*program->statements.front());
        const auto& fn_expr = static_cast<const FunctionExpr&>(*stmt.expr);
        auto fn = std::make_shared<FunctionObj>();
        fn->name = fn_expr.name;
        fn->decl = &fn_expr;
        fn->program = program;
        fn->closure = std::move(env);
        return fn;
      }));
  set_global(
      "__domByIndex",
      register_native("__domByIndex", [](Interpreter& interp, const Value&,
                                         std::span<Value> args) -> Value {
        // DFS index over the body tree (body itself = 0). Differential
        // snapshots use this to address server-side DOM nodes in place.
        auto want = static_cast<std::int64_t>(
            to_number(arg_or_undefined(args, 0)));
        std::int64_t counter = 0;
        DomNodePtr found;
        std::function<void(const DomNodePtr&)> dfs =
            [&](const DomNodePtr& node) {
              if (found) return;
              if (counter++ == want) {
                found = node;
                return;
              }
              for (const auto& child : node->children) dfs(child);
            };
        dfs(interp.document().body());
        if (!found) {
          throw JsError("__domByIndex: no node at index " +
                        std::to_string(want));
        }
        return found;
      }));
  set_global("__dispatchPending",
             register_native("__dispatchPending",
                             [](Interpreter& interp, const Value&,
                                std::span<Value> args) -> Value {
                               Value target = arg_or_undefined(args, 0);
                               const auto* node =
                                   std::get_if<DomNodePtr>(&target);
                               if (!node) {
                                 throw JsError(
                                     "__dispatchPending: expected DOM node");
                               }
                               interp.enqueue_event(
                                   *node,
                                   to_display_string(arg_or_undefined(args, 1)),
                                   arg_or_undefined(args, 2));
                               return Undefined{};
                             }));
}

}  // namespace offload::jsvm
