// Simplified DOM: a tree of DomNodes under a document with a <body>. This
// is the "screen" of the web app — snapshots serialize the whole body
// subtree (plus listeners), so the edge server can even update the client's
// display by mutating the DOM, as Section III of the paper points out.
#pragma once

#include <string>
#include <string_view>

#include "src/jsvm/value.h"

namespace offload::jsvm {

class Document {
 public:
  Document();

  const DomNodePtr& root() const { return root_; }  ///< <html>
  const DomNodePtr& body() const { return body_; }

  /// Create a detached element.
  static DomNodePtr create_element(std::string tag);

  /// Depth-first search by id; nullptr if absent.
  DomNodePtr get_element_by_id(std::string_view id) const;

  /// Remove all body children and listeners (fresh page).
  void clear();

  /// Render the tree as indented HTML-ish text (for tests and examples).
  std::string to_html() const;

 private:
  DomNodePtr root_;
  DomNodePtr body_;
};

}  // namespace offload::jsvm
