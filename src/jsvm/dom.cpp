#include "src/jsvm/dom.h"

#include <functional>

namespace offload::jsvm {

Document::Document() {
  root_ = std::make_shared<DomNode>();
  root_->tag = "html";
  body_ = std::make_shared<DomNode>();
  body_->tag = "body";
  root_->append_child(body_);
}

DomNodePtr Document::create_element(std::string tag) {
  auto node = std::make_shared<DomNode>();
  node->tag = std::move(tag);
  return node;
}

DomNodePtr Document::get_element_by_id(std::string_view id) const {
  std::function<DomNodePtr(const DomNodePtr&)> dfs =
      [&](const DomNodePtr& node) -> DomNodePtr {
    if (node->id == id) return node;
    for (const auto& child : node->children) {
      if (DomNodePtr found = dfs(child)) return found;
    }
    return nullptr;
  };
  return dfs(root_);
}

void Document::clear() {
  body_->children.clear();
  body_->listeners.clear();
  body_->text.clear();
  body_->attributes.clear();
  body_->id.clear();
}

std::string Document::to_html() const {
  std::string out;
  std::function<void(const DomNodePtr&, int)> walk = [&](const DomNodePtr& n,
                                                         int depth) {
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += "<" + n->tag;
    if (!n->id.empty()) out += " id=\"" + n->id + "\"";
    for (const auto& [k, v] : n->attributes) {
      out += " " + k + "=\"" + v + "\"";
    }
    out += ">";
    if (!n->text.empty()) out += n->text;
    out += "\n";
    for (const auto& child : n->children) walk(child, depth + 1);
  };
  walk(root_, 0);
  return out;
}

}  // namespace offload::jsvm
