#include "src/jsvm/snapshot_diff.h"

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "src/jsvm/snapshot_text.h"
#include "src/util/base64.h"

namespace offload::jsvm {
namespace {

using detail::escape_string;
using detail::float_to_text;

/// Collect the heap pointers (objects, arrays, typed arrays, functions,
/// environments, detached DOM nodes) reachable from a value. Attached DOM
/// nodes stop the walk — the server session already has them.
class ReachSet {
 public:
  explicit ReachSet(const Interpreter& interp,
                    const std::unordered_map<const DomNode*, std::size_t>&
                        attached)
      : interp_(interp), attached_(attached) {}

  void add(const Value& value) {
    if (const auto* o = std::get_if<ObjectPtr>(&value)) {
      if (!insert(o->get())) return;
      for (const auto& [k, v] : (*o)->properties) add(v);
    } else if (const auto* a = std::get_if<ArrayPtr>(&value)) {
      if (!insert(a->get())) return;
      for (const auto& v : (*a)->elements) add(v);
    } else if (const auto* t = std::get_if<TypedArrayPtr>(&value)) {
      insert(t->get());
    } else if (const auto* f = std::get_if<FunctionPtr>(&value)) {
      if (!insert(f->get())) return;
      add_env((*f)->closure);
    } else if (const auto* d = std::get_if<DomNodePtr>(&value)) {
      if (attached_.count(d->get())) return;  // server-side node
      if (!insert(d->get())) return;
      if ((*d)->canvas_data) add(Value((*d)->canvas_data));
      for (const auto& [type, handler] : (*d)->listeners) add(handler);
      for (const auto& child : (*d)->children) add(Value(child));
    }
  }

  void add_env(const EnvPtr& env) {
    for (const Environment* e = env.get();
         e && e != interp_.globals().get();
         e = e->parent().get()) {
      if (!insert(e)) return;
      for (const auto& [name, v] : e->slots()) {
        add(v);
      }
    }
  }

  bool intersects(const ReachSet& other) const {
    const auto& small = set_.size() < other.set_.size() ? set_ : other.set_;
    const auto& big = set_.size() < other.set_.size() ? other.set_ : set_;
    for (const void* p : small) {
      if (big.count(p)) return true;
    }
    return false;
  }

  bool contains(const void* p) const { return set_.count(p) > 0; }

 private:
  bool insert(const void* p) { return set_.insert(p).second; }

  const Interpreter& interp_;
  const std::unordered_map<const DomNode*, std::size_t>& attached_;
  std::unordered_set<const void*> set_;
};

/// Emits the "changed subgraph" of a diff. Mirrors the full writer's
/// shells-then-fills scheme, but references attached DOM nodes through
/// __domByIndex(k) instead of recreating them.
class DiffWriter {
 public:
  DiffWriter(Interpreter& interp, const RealmFingerprint& baseline,
             const SnapshotOptions& options)
      : interp_(interp), baseline_(baseline), options_(options) {
    index_attached(interp_.document().body());
  }

  DiffSnapshotResult write() {
    DiffSnapshotResult result;
    result.base_version = baseline_.version;

    RealmFingerprint now = fingerprint_realm(interp_);
    if (now.dom_structure != baseline_.dom_structure ||
        now.dom_content.size() != baseline_.dom_content.size()) {
      return fallback(result);
    }

    // Classify globals.
    std::vector<std::pair<std::string, Value>> changed;
    ReachSet unchanged_reach(interp_, attached_index_);
    std::unordered_set<std::string> present;
    for (const auto& [name, value] : interp_.globals()->slots()) {
      if (interp_.is_ambient_binding(name, value)) continue;
      present.insert(name);
      const std::uint64_t* base_hash = baseline_.find(name);
      const std::uint64_t* now_hash = nullptr;
      for (const auto& [n, h] : now.globals) {
        if (n == name) now_hash = &h;
      }
      if (base_hash && now_hash && *base_hash == *now_hash) {
        unchanged_reach.add(value);
      } else {
        changed.emplace_back(name, value);
      }
    }
    // Listener handlers already live on the server; treat them (and their
    // environments) as unchanged-reachable so sharing falls back safely.
    std::function<void(const DomNodePtr&)> add_listeners =
        [&](const DomNodePtr& node) {
          for (const auto& [type, handler] : node->listeners) {
            unchanged_reach.add(handler);
          }
          for (const auto& child : node->children) add_listeners(child);
        };
    add_listeners(interp_.document().body());

    ReachSet changed_reach(interp_, attached_index_);
    for (const auto& [name, value] : changed) changed_reach.add(value);
    if (options_.include_events) {
      for (const auto& ev : interp_.event_queue()) {
        changed_reach.add(ev.detail);
        changed_reach.add(Value(ev.target));
      }
    }
    if (changed_reach.intersects(unchanged_reach)) {
      return fallback(result);
    }

    // Discover & emit the changed subgraph.
    for (const auto& [name, value] : changed) discover(value);
    if (options_.include_events) {
      for (const auto& ev : interp_.event_queue()) {
        discover(ev.detail);
        discover(Value(ev.target));
      }
    }

    out_ += "(function() {\n";
    emit_heap();
    // DOM content diffs (same structure, changed text/attrs/canvas).
    for (std::size_t i = 0; i < now.dom_content.size(); ++i) {
      if (now.dom_content[i] != baseline_.dom_content[i]) {
        emit_dom_content(i);
      }
    }
    // Global updates and removals.
    for (const auto& [name, h] : baseline_.globals) {
      if (!present.count(name)) out_ += name + " = undefined;\n";
    }
    for (const auto& [name, value] : changed) {
      ++stats_.globals;
      out_ += name + " = " + value_expr(value) + ";\n";
    }
    if (options_.include_events) {
      for (const auto& ev : interp_.event_queue()) {
        ++stats_.events;
        out_ += "__dispatchPending(" + value_expr(Value(ev.target)) + ", " +
                escape_string(ev.type) + ", " + value_expr(ev.detail) +
                ");\n";
      }
    }
    out_ += "})();\n";

    stats_.total_bytes = out_.size();
    result.program = std::move(out_);
    result.stats = stats_;
    return result;
  }

 private:
  DiffSnapshotResult fallback(DiffSnapshotResult result) {
    SnapshotResult full = capture_snapshot(interp_, options_);
    result.program = std::move(full.program);
    result.stats = full.stats;
    result.full_fallback = true;
    return result;
  }

  void index_attached(const DomNodePtr& node) {
    attached_index_.emplace(node.get(), attached_index_.size());
    dfs_nodes_.push_back(node);
    for (const auto& child : node->children) index_attached(child);
  }

  // ----------------------------------------------------------- discovery

  void discover(const Value& value) {
    if (const auto* obj = std::get_if<ObjectPtr>(&value)) {
      if (obj_ids_.count(obj->get())) return;
      obj_ids_[obj->get()] = obj_list_.size();
      obj_list_.push_back(*obj);
      for (const auto& [k, v] : (*obj)->properties) discover(v);
    } else if (const auto* arr = std::get_if<ArrayPtr>(&value)) {
      if (arr_ids_.count(arr->get())) return;
      arr_ids_[arr->get()] = arr_list_.size();
      arr_list_.push_back(*arr);
      for (const auto& v : (*arr)->elements) discover(v);
    } else if (const auto* ta = std::get_if<TypedArrayPtr>(&value)) {
      if (ta_ids_.count(ta->get())) return;
      ta_ids_[ta->get()] = ta_list_.size();
      ta_list_.push_back(*ta);
    } else if (const auto* fn = std::get_if<FunctionPtr>(&value)) {
      if (fn_ids_.count(fn->get())) return;
      fn_ids_[fn->get()] = fn_list_.size();
      fn_list_.push_back(*fn);
      discover_env((*fn)->closure);
    } else if (const auto* dom = std::get_if<DomNodePtr>(&value)) {
      if (attached_index_.count(dom->get())) return;
      if (detached_ids_.count(dom->get())) return;
      detached_ids_[dom->get()] = detached_list_.size();
      detached_list_.push_back(*dom);
      if ((*dom)->canvas_data) discover(Value((*dom)->canvas_data));
      for (const auto& [type, handler] : (*dom)->listeners) discover(handler);
      for (const auto& child : (*dom)->children) discover(Value(child));
    }
  }

  void discover_env(const EnvPtr& env) {
    if (!env || env == interp_.globals()) return;
    if (env_ids_.count(env.get())) return;
    discover_env(env->parent());
    env_ids_[env.get()] = env_list_.size();
    env_list_.push_back(env);
    for (const auto& [name, value] : env->slots()) discover(value);
  }

  // ------------------------------------------------------------ emission

  void emit_heap() {
    stats_.environments = env_list_.size();
    for (std::size_t i = 0; i < env_list_.size(); ++i) {
      const EnvPtr& env = env_list_[i];
      std::string parent = "null";
      if (env->parent() && env->parent() != interp_.globals()) {
        parent = "__e" + std::to_string(env_ids_.at(env->parent().get()));
      }
      out_ += "var __e" + std::to_string(i) + " = __makeEnv(" + parent +
              ");\n";
    }
    stats_.typed_arrays = ta_list_.size();
    for (std::size_t i = 0; i < ta_list_.size(); ++i) {
      const TypedArrayPtr& ta = ta_list_[i];
      std::string payload;
      if (options_.base64_typed_arrays) {
        payload = "__f32b64(" +
                  escape_string(util::base64_encode(std::span(
                      reinterpret_cast<const std::uint8_t*>(ta->data.data()),
                      ta->data.size() * sizeof(float)))) +
                  ")";
      } else {
        payload = "__f32([";
        for (std::size_t j = 0; j < ta->data.size(); ++j) {
          if (j) payload.push_back(',');
          payload += float_to_text(ta->data[j]);
        }
        payload += "])";
      }
      stats_.typed_array_bytes += payload.size();
      out_ += "var __t" + std::to_string(i) + " = " + payload + ";\n";
    }
    stats_.objects = obj_list_.size();
    for (std::size_t i = 0; i < obj_list_.size(); ++i) {
      out_ += "var __o" + std::to_string(i) + " = {};\n";
    }
    stats_.arrays = arr_list_.size();
    for (std::size_t i = 0; i < arr_list_.size(); ++i) {
      out_ += "var __a" + std::to_string(i) + " = [];\n";
    }
    stats_.dom_nodes = detached_list_.size();
    for (std::size_t i = 0; i < detached_list_.size(); ++i) {
      out_ += "var __n" + std::to_string(i) + " = document.createElement(" +
              escape_string(detached_list_[i]->tag) + ");\n";
    }
    stats_.functions = fn_list_.size();
    for (std::size_t i = 0; i < fn_list_.size(); ++i) {
      const FunctionPtr& fn = fn_list_[i];
      std::string env = "null";
      if (fn->closure && fn->closure != interp_.globals()) {
        env = "__e" + std::to_string(env_ids_.at(fn->closure.get()));
      }
      out_ += "var __f" + std::to_string(i) + " = __closure(" +
              escape_string(fn->source()) + ", " + env + ");\n";
    }
    // Fills.
    for (std::size_t i = 0; i < env_list_.size(); ++i) {
      for (const auto& [name, value] : env_list_[i]->slots()) {
        out_ += "__envSlot(__e" + std::to_string(i) + ", " +
                escape_string(name) + ", " + value_expr(value) + ");\n";
      }
    }
    for (std::size_t i = 0; i < obj_list_.size(); ++i) {
      for (const auto& [key, value] : obj_list_[i]->properties) {
        out_ += "__o" + std::to_string(i) + "[" + escape_string(key) +
                "] = " + value_expr(value) + ";\n";
      }
    }
    for (std::size_t i = 0; i < arr_list_.size(); ++i) {
      const auto& elements = arr_list_[i]->elements;
      for (std::size_t j = 0; j < elements.size(); ++j) {
        out_ += "__a" + std::to_string(i) + "[" + std::to_string(j) +
                "] = " + value_expr(elements[j]) + ";\n";
      }
    }
    for (std::size_t i = 0; i < detached_list_.size(); ++i) {
      const DomNodePtr& node = detached_list_[i];
      const std::string name = "__n" + std::to_string(i);
      if (!node->id.empty()) {
        out_ += name + ".id = " + escape_string(node->id) + ";\n";
      }
      if (!node->text.empty()) {
        out_ += name + ".textContent = " + escape_string(node->text) + ";\n";
      }
      for (const auto& [k, v] : node->attributes) {
        out_ += name + ".setAttribute(" + escape_string(k) + ", " +
                escape_string(v) + ");\n";
      }
      if (node->canvas_data) {
        out_ += name + ".setImageData(" +
                value_expr(Value(node->canvas_data)) + ");\n";
      }
      for (const auto& child : node->children) {
        out_ += name + ".appendChild(" + value_expr(Value(child)) + ");\n";
      }
      for (const auto& [type, handler] : node->listeners) {
        out_ += name + ".addEventListener(" + escape_string(type) + ", " +
                value_expr(handler) + ");\n";
      }
    }
  }

  void emit_dom_content(std::size_t dfs_index) {
    const DomNodePtr& node = dfs_nodes_.at(dfs_index);
    const std::string ref = "__domByIndex(" + std::to_string(dfs_index) + ")";
    out_ += ref + ".textContent = " + escape_string(node->text) + ";\n";
    for (const auto& [k, v] : node->attributes) {
      out_ += ref + ".setAttribute(" + escape_string(k) + ", " +
              escape_string(v) + ");\n";
    }
    if (node->canvas_data) {
      // Canvas pixels count as feature-class payload.
      std::string payload = "__f32([";
      const auto& data = node->canvas_data->data;
      for (std::size_t j = 0; j < data.size(); ++j) {
        if (j) payload.push_back(',');
        payload += float_to_text(data[j]);
      }
      payload += "])";
      stats_.typed_array_bytes += payload.size();
      out_ += ref + ".setImageData(" + payload + ");\n";
    }
  }

  std::string value_expr(const Value& value) const {
    struct Visitor {
      const DiffWriter& w;
      std::string operator()(const Undefined&) { return "undefined"; }
      std::string operator()(const Null&) { return "null"; }
      std::string operator()(bool b) { return b ? "true" : "false"; }
      std::string operator()(double d) { return number_to_string(d); }
      std::string operator()(const std::string& s) {
        return escape_string(s);
      }
      std::string operator()(const ObjectPtr& o) {
        return "__o" + std::to_string(w.obj_ids_.at(o.get()));
      }
      std::string operator()(const ArrayPtr& a) {
        return "__a" + std::to_string(w.arr_ids_.at(a.get()));
      }
      std::string operator()(const FunctionPtr& f) {
        return "__f" + std::to_string(w.fn_ids_.at(f.get()));
      }
      std::string operator()(const TypedArrayPtr& t) {
        return "__t" + std::to_string(w.ta_ids_.at(t.get()));
      }
      std::string operator()(const NativeFnPtr& f) {
        return "__native(" + escape_string(f->registry_name) + ")";
      }
      std::string operator()(const HostObjectPtr& h) {
        return h->restore_expression();
      }
      std::string operator()(const DomNodePtr& d) {
        if (auto it = w.attached_index_.find(d.get());
            it != w.attached_index_.end()) {
          return "__domByIndex(" + std::to_string(it->second) + ")";
        }
        return "__n" + std::to_string(w.detached_ids_.at(d.get()));
      }
    };
    return std::visit(Visitor{*this}, value);
  }

  Interpreter& interp_;
  const RealmFingerprint& baseline_;
  SnapshotOptions options_;
  SnapshotStats stats_;
  std::string out_;

  std::unordered_map<const DomNode*, std::size_t> attached_index_;
  std::vector<DomNodePtr> dfs_nodes_;
  std::unordered_map<const Object*, std::size_t> obj_ids_;
  std::vector<ObjectPtr> obj_list_;
  std::unordered_map<const ArrayObj*, std::size_t> arr_ids_;
  std::vector<ArrayPtr> arr_list_;
  std::unordered_map<const TypedArray*, std::size_t> ta_ids_;
  std::vector<TypedArrayPtr> ta_list_;
  std::unordered_map<const FunctionObj*, std::size_t> fn_ids_;
  std::vector<FunctionPtr> fn_list_;
  std::unordered_map<const Environment*, std::size_t> env_ids_;
  std::vector<EnvPtr> env_list_;
  std::unordered_map<const DomNode*, std::size_t> detached_ids_;
  std::vector<DomNodePtr> detached_list_;
};

}  // namespace

DiffSnapshotResult capture_snapshot_diff(Interpreter& interp,
                                         const RealmFingerprint& baseline,
                                         const SnapshotOptions& options) {
  return DiffWriter(interp, baseline, options).write();
}

}  // namespace offload::jsvm
