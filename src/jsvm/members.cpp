// Property and index access dispatch for every value type, including the
// DOM and host objects. Methods on built-in types (arrays, strings, DOM
// nodes) are unbound registry natives that read their receiver from
// `this`, so storing them in variables keeps them snapshot-safe.
#include <cmath>

#include "src/jsvm/interpreter.h"

namespace offload::jsvm {
namespace {

std::int64_t to_index(const Value& index, std::size_t size, const char* what,
                      bool allow_end = false) {
  double d = to_number(index);
  if (d < 0 || d != std::floor(d)) {
    throw JsError(std::string(what) + ": bad index " + number_to_string(d));
  }
  auto i = static_cast<std::int64_t>(d);
  auto limit = static_cast<std::int64_t>(size) + (allow_end ? 0 : -1);
  if (i > limit) {
    throw JsError(std::string(what) + ": index " + std::to_string(i) +
                  " out of range (size " + std::to_string(size) + ")");
  }
  return i;
}

}  // namespace

Value Interpreter::get_member(const Value& object, std::string_view name) {
  if (const auto* obj = std::get_if<ObjectPtr>(&object)) {
    return (*obj)->get(name);
  }
  if (const auto* arr = std::get_if<ArrayPtr>(&object)) {
    if (name == "length") {
      return static_cast<double>((*arr)->elements.size());
    }
    if (name == "push" || name == "pop" || name == "indexOf" ||
        name == "join" || name == "slice") {
      return native("Array." + std::string(name));
    }
    throw JsError("array has no property '" + std::string(name) + "'");
  }
  if (const auto* str = std::get_if<std::string>(&object)) {
    if (name == "length") return static_cast<double>(str->size());
    if (name == "charAt" || name == "indexOf" || name == "slice" ||
        name == "split" || name == "toUpperCase" || name == "toLowerCase") {
      return native("String." + std::string(name));
    }
    throw JsError("string has no property '" + std::string(name) + "'");
  }
  if (const auto* ta = std::get_if<TypedArrayPtr>(&object)) {
    if (name == "length") return static_cast<double>((*ta)->data.size());
    throw JsError("Float32Array has no property '" + std::string(name) + "'");
  }
  if (const auto* dom = std::get_if<DomNodePtr>(&object)) {
    const DomNodePtr& node = *dom;
    if (name == "id") return node->id;
    if (name == "tagName") return node->tag;
    if (name == "textContent") return node->text;
    if (name == "parentNode") {
      if (auto p = node->parent.lock()) return Value(p);
      return Null{};
    }
    if (name == "firstChild") {
      if (!node->children.empty()) return Value(node->children.front());
      return Null{};
    }
    if (name == "childCount") {
      return static_cast<double>(node->children.size());
    }
    if (name == "appendChild" || name == "removeChild" ||
        name == "addEventListener" || name == "removeEventListener" ||
        name == "dispatchEvent" || name == "setAttribute" ||
        name == "getAttribute" || name == "getImageData" ||
        name == "setImageData") {
      return native("Dom." + std::string(name));
    }
    throw JsError("DOM node has no property '" + std::string(name) + "'");
  }
  if (const auto* host = std::get_if<HostObjectPtr>(&object)) {
    return (*host)->get_property(*this, name);
  }
  if (const auto* fn = std::get_if<FunctionPtr>(&object)) {
    if (name == "name") return (*fn)->name;
    throw JsError("function has no property '" + std::string(name) + "'");
  }
  if (const auto* fn = std::get_if<NativeFnPtr>(&object)) {
    if (name == "name") return (*fn)->registry_name;
    throw JsError("function has no property '" + std::string(name) + "'");
  }
  throw JsError("cannot read property '" + std::string(name) + "' of " +
                std::string(type_of(object)));
}

void Interpreter::set_member(const Value& object, std::string_view name,
                             Value value) {
  if (const auto* obj = std::get_if<ObjectPtr>(&object)) {
    (*obj)->set(name, std::move(value));
    return;
  }
  if (const auto* arr = std::get_if<ArrayPtr>(&object)) {
    if (name == "length") {
      double n = to_number(value);
      if (n < 0 || n != std::floor(n)) throw JsError("bad array length");
      (*arr)->elements.resize(static_cast<std::size_t>(n), Undefined{});
      return;
    }
    throw JsError("cannot set array property '" + std::string(name) + "'");
  }
  if (const auto* dom = std::get_if<DomNodePtr>(&object)) {
    const DomNodePtr& node = *dom;
    if (name == "id") {
      node->id = to_display_string(value);
      return;
    }
    if (name == "textContent") {
      node->text = to_display_string(value);
      return;
    }
    throw JsError("cannot set DOM property '" + std::string(name) + "'");
  }
  if (const auto* host = std::get_if<HostObjectPtr>(&object)) {
    (*host)->set_property(*this, name, value);
    return;
  }
  throw JsError("cannot set property '" + std::string(name) + "' on " +
                std::string(type_of(object)));
}

Value Interpreter::get_index(const Value& object, const Value& index) {
  if (const auto* arr = std::get_if<ArrayPtr>(&object)) {
    auto i = to_index(index, (*arr)->elements.size(), "array");
    return (*arr)->elements[static_cast<std::size_t>(i)];
  }
  if (const auto* ta = std::get_if<TypedArrayPtr>(&object)) {
    auto i = to_index(index, (*ta)->data.size(), "Float32Array");
    return static_cast<double>((*ta)->data[static_cast<std::size_t>(i)]);
  }
  if (const auto* obj = std::get_if<ObjectPtr>(&object)) {
    if (const auto* key = std::get_if<std::string>(&index)) {
      return (*obj)->get(*key);
    }
    return (*obj)->get(number_to_string(to_number(index)));
  }
  if (const auto* str = std::get_if<std::string>(&object)) {
    auto i = to_index(index, str->size(), "string");
    return std::string(1, (*str)[static_cast<std::size_t>(i)]);
  }
  throw JsError("cannot index " + std::string(type_of(object)));
}

void Interpreter::set_index(const Value& object, const Value& index,
                            Value value) {
  if (const auto* arr = std::get_if<ArrayPtr>(&object)) {
    // Writing one past the end grows the array (common append idiom).
    auto i = to_index(index, (*arr)->elements.size(), "array",
                      /*allow_end=*/true);
    auto& elements = (*arr)->elements;
    if (static_cast<std::size_t>(i) == elements.size()) {
      elements.push_back(std::move(value));
    } else {
      elements[static_cast<std::size_t>(i)] = std::move(value);
    }
    return;
  }
  if (const auto* ta = std::get_if<TypedArrayPtr>(&object)) {
    auto i = to_index(index, (*ta)->data.size(), "Float32Array");
    (*ta)->data[static_cast<std::size_t>(i)] =
        static_cast<float>(to_number(value));
    return;
  }
  if (const auto* obj = std::get_if<ObjectPtr>(&object)) {
    if (const auto* key = std::get_if<std::string>(&index)) {
      (*obj)->set(*key, std::move(value));
    } else {
      (*obj)->set(number_to_string(to_number(index)), std::move(value));
    }
    return;
  }
  throw JsError("cannot index-assign " + std::string(type_of(object)));
}

}  // namespace offload::jsvm
