#include "src/jsvm/value.h"

#include <algorithm>
#include <charconv>
#include <cmath>

namespace offload::jsvm {

Value* Object::find(std::string_view key) {
  for (auto& [k, v] : properties) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value* Object::find(std::string_view key) const {
  for (const auto& [k, v] : properties) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value Object::get(std::string_view key) const {
  const Value* v = find(key);
  return v ? *v : Value(Undefined{});
}

void Object::set(std::string_view key, Value value) {
  if (Value* v = find(key)) {
    *v = std::move(value);
  } else {
    properties.emplace_back(std::string(key), std::move(value));
  }
}

bool Object::erase(std::string_view key) {
  auto it = std::find_if(properties.begin(), properties.end(),
                         [&](const auto& p) { return p.first == key; });
  if (it == properties.end()) return false;
  properties.erase(it);
  return true;
}

void DomNode::append_child(const DomNodePtr& child) {
  if (!child) throw JsError("appendChild: null child");
  if (auto old = child->parent.lock()) old->remove_child(child);
  child->parent = weak_from_this();
  children.push_back(child);
}

bool DomNode::remove_child(const DomNodePtr& child) {
  auto it = std::find(children.begin(), children.end(), child);
  if (it == children.end()) return false;
  (*it)->parent.reset();
  children.erase(it);
  return true;
}

const std::string* DomNode::get_attribute(std::string_view name) const {
  for (const auto& [k, v] : attributes) {
    if (k == name) return &v;
  }
  return nullptr;
}

void DomNode::set_attribute(std::string_view name, std::string value) {
  for (auto& [k, v] : attributes) {
    if (k == name) {
      v = std::move(value);
      return;
    }
  }
  attributes.emplace_back(std::string(name), std::move(value));
}

bool is_undefined(const Value& v) {
  return std::holds_alternative<Undefined>(v);
}

bool is_null(const Value& v) { return std::holds_alternative<Null>(v); }

bool is_callable(const Value& v) {
  return std::holds_alternative<FunctionPtr>(v) ||
         std::holds_alternative<NativeFnPtr>(v);
}

bool truthy(const Value& v) {
  if (std::holds_alternative<Undefined>(v) || std::holds_alternative<Null>(v))
    return false;
  if (const bool* b = std::get_if<bool>(&v)) return *b;
  if (const double* d = std::get_if<double>(&v)) {
    return *d != 0.0 && !std::isnan(*d);
  }
  if (const std::string* s = std::get_if<std::string>(&v)) return !s->empty();
  return true;  // all reference types
}

std::string_view type_of(const Value& v) {
  struct Visitor {
    std::string_view operator()(const Undefined&) { return "undefined"; }
    std::string_view operator()(const Null&) { return "object"; }
    std::string_view operator()(bool) { return "boolean"; }
    std::string_view operator()(double) { return "number"; }
    std::string_view operator()(const std::string&) { return "string"; }
    std::string_view operator()(const ObjectPtr&) { return "object"; }
    std::string_view operator()(const ArrayPtr&) { return "object"; }
    std::string_view operator()(const FunctionPtr&) { return "function"; }
    std::string_view operator()(const TypedArrayPtr&) { return "object"; }
    std::string_view operator()(const NativeFnPtr&) { return "function"; }
    std::string_view operator()(const HostObjectPtr&) { return "object"; }
    std::string_view operator()(const DomNodePtr&) { return "object"; }
  };
  return std::visit(Visitor{}, v);
}

double to_number(const Value& v) {
  if (const double* d = std::get_if<double>(&v)) return *d;
  if (const bool* b = std::get_if<bool>(&v)) return *b ? 1.0 : 0.0;
  throw JsError(std::string("cannot convert ") + std::string(type_of(v)) +
                " to number");
}

std::string number_to_string(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "Infinity" : "-Infinity";
  if (v == 0.0) return std::signbit(v) ? "-0.0" : "0";  // keep the sign bit
  // Integers render without a decimal point (like JS).
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), static_cast<long long>(v));
    return std::string(buf, ptr);
  }
  char buf[40];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, ptr);
}

std::string to_display_string(const Value& v) {
  struct Visitor {
    std::string operator()(const Undefined&) { return "undefined"; }
    std::string operator()(const Null&) { return "null"; }
    std::string operator()(bool b) { return b ? "true" : "false"; }
    std::string operator()(double d) { return number_to_string(d); }
    std::string operator()(const std::string& s) { return s; }
    std::string operator()(const ObjectPtr& o) {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, val] : o->properties) {
        if (!first) out += ", ";
        first = false;
        out += k + ": " + to_display_string(val);
      }
      return out + "}";
    }
    std::string operator()(const ArrayPtr& a) {
      std::string out = "[";
      for (std::size_t i = 0; i < a->elements.size(); ++i) {
        if (i) out += ", ";
        out += to_display_string(a->elements[i]);
      }
      return out + "]";
    }
    std::string operator()(const FunctionPtr& f) {
      return "function " + f->name + "() {...}";
    }
    std::string operator()(const TypedArrayPtr& t) {
      return "Float32Array(" + std::to_string(t->data.size()) + ")";
    }
    std::string operator()(const NativeFnPtr& f) {
      return "function " + f->registry_name + "() {[native]}";
    }
    std::string operator()(const HostObjectPtr& h) {
      return "[" + std::string(h->class_name()) + "]";
    }
    std::string operator()(const DomNodePtr& d) {
      return "<" + d->tag + (d->id.empty() ? "" : " id=" + d->id) + ">";
    }
  };
  return std::visit(Visitor{}, v);
}

bool values_equal(const Value& a, const Value& b) {
  const bool a_nullish = is_undefined(a) || is_null(a);
  const bool b_nullish = is_undefined(b) || is_null(b);
  if (a_nullish || b_nullish) return a_nullish && b_nullish;
  if (a.index() != b.index()) {
    // Allow number == bool via numeric coercion, nothing else.
    if ((std::holds_alternative<double>(a) && std::holds_alternative<bool>(b)) ||
        (std::holds_alternative<bool>(a) && std::holds_alternative<double>(b))) {
      return to_number(a) == to_number(b);
    }
    return false;
  }
  struct Visitor {
    const Value& b;
    bool operator()(const Undefined&) { return true; }
    bool operator()(const Null&) { return true; }
    bool operator()(bool x) { return x == std::get<bool>(b); }
    bool operator()(double x) { return x == std::get<double>(b); }
    bool operator()(const std::string& x) {
      return x == std::get<std::string>(b);
    }
    bool operator()(const ObjectPtr& x) { return x == std::get<ObjectPtr>(b); }
    bool operator()(const ArrayPtr& x) { return x == std::get<ArrayPtr>(b); }
    bool operator()(const FunctionPtr& x) {
      return x == std::get<FunctionPtr>(b);
    }
    bool operator()(const TypedArrayPtr& x) {
      return x == std::get<TypedArrayPtr>(b);
    }
    bool operator()(const NativeFnPtr& x) {
      return x == std::get<NativeFnPtr>(b);
    }
    bool operator()(const HostObjectPtr& x) {
      return x == std::get<HostObjectPtr>(b);
    }
    bool operator()(const DomNodePtr& x) { return x == std::get<DomNodePtr>(b); }
  };
  return std::visit(Visitor{b}, a);
}

}  // namespace offload::jsvm
