#include "src/jsvm/lexer.h"

#include <cctype>
#include <charconv>
#include <unordered_map>

namespace offload::jsvm {
namespace {

const std::unordered_map<std::string_view, TokenKind>& keywords() {
  static const std::unordered_map<std::string_view, TokenKind> map = {
      {"var", TokenKind::kVar},         {"function", TokenKind::kFunction},
      {"if", TokenKind::kIf},           {"else", TokenKind::kElse},
      {"while", TokenKind::kWhile},     {"for", TokenKind::kFor},
      {"return", TokenKind::kReturn},   {"break", TokenKind::kBreak},
      {"continue", TokenKind::kContinue}, {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},     {"null", TokenKind::kNull},
      {"undefined", TokenKind::kUndefined}, {"typeof", TokenKind::kTypeof},
      {"this", TokenKind::kThis},
  };
  return map;
}

}  // namespace

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kVar: return "'var'";
    case TokenKind::kFunction: return "'function'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kWhile: return "'while'";
    case TokenKind::kFor: return "'for'";
    case TokenKind::kReturn: return "'return'";
    case TokenKind::kBreak: return "'break'";
    case TokenKind::kContinue: return "'continue'";
    case TokenKind::kTrue: return "'true'";
    case TokenKind::kFalse: return "'false'";
    case TokenKind::kNull: return "'null'";
    case TokenKind::kUndefined: return "'undefined'";
    case TokenKind::kTypeof: return "'typeof'";
    case TokenKind::kThis: return "'this'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kMinusAssign: return "'-='";
    case TokenKind::kStarAssign: return "'*='";
    case TokenKind::kSlashAssign: return "'/='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kPlusPlus: return "'++'";
    case TokenKind::kMinusMinus: return "'--'";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNeq: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kNot: return "'!'";
  }
  return "?";
}

std::size_t Lexer::line_of(std::string_view source, std::size_t offset) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < offset && i < source.size(); ++i) {
    if (source[i] == '\n') ++line;
  }
  return line;
}

void Lexer::fail(const std::string& message) const {
  throw ParseError(message, line_of(src_, pos_));
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> tokens;
  while (true) {
    Token t = next();
    bool done = t.kind == TokenKind::kEof;
    tokens.push_back(std::move(t));
    if (done) break;
  }
  return tokens;
}

void Lexer::skip_trivia() {
  while (!eof()) {
    char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos_;
    } else if (c == '/' && peek(1) == '/') {
      while (!eof() && peek() != '\n') ++pos_;
    } else if (c == '/' && peek(1) == '*') {
      pos_ += 2;
      while (!eof() && !(peek() == '*' && peek(1) == '/')) ++pos_;
      if (eof()) fail("unterminated block comment");
      pos_ += 2;
    } else {
      break;
    }
  }
}

Token Lexer::lex_number() {
  Token t;
  t.kind = TokenKind::kNumber;
  t.begin = pos_;
  while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
  }
  if (peek() == 'e' || peek() == 'E') {
    std::size_t save = pos_;
    ++pos_;
    if (peek() == '+' || peek() == '-') ++pos_;
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    } else {
      pos_ = save;  // 'e' belongs to a following identifier
    }
  }
  t.end = pos_;
  const char* first = src_.data() + t.begin;
  const char* last = src_.data() + t.end;
  auto [ptr, ec] = std::from_chars(first, last, t.number);
  if (ec != std::errc() || ptr != last) fail("malformed number literal");
  return t;
}

Token Lexer::lex_string(char quote) {
  Token t;
  t.kind = TokenKind::kString;
  t.begin = pos_;
  ++pos_;  // opening quote
  std::string out;
  while (true) {
    if (eof()) fail("unterminated string literal");
    char c = src_[pos_];
    if (c == quote) {
      ++pos_;
      break;
    }
    if (c == '\n') fail("newline in string literal");
    if (c == '\\') {
      ++pos_;
      if (eof()) fail("unterminated escape");
      char e = src_[pos_++];
      switch (e) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case '0': out.push_back('\0'); break;
        case '\\': out.push_back('\\'); break;
        case '\'': out.push_back('\''); break;
        case '"': out.push_back('"'); break;
        case 'x': {
          if (pos_ + 2 > src_.size()) fail("bad \\x escape");
          int v = 0;
          for (int i = 0; i < 2; ++i) {
            char h = src_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= h - '0';
            else if (h >= 'a' && h <= 'f') v |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') v |= h - 'A' + 10;
            else fail("bad hex digit in \\x escape");
          }
          out.push_back(static_cast<char>(v));
          break;
        }
        default:
          fail(std::string("unknown escape \\") + e);
      }
    } else {
      out.push_back(c);
      ++pos_;
    }
  }
  t.end = pos_;
  t.text = std::move(out);
  return t;
}

Token Lexer::lex_identifier() {
  Token t;
  t.begin = pos_;
  while (!eof()) {
    char c = peek();
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      ++pos_;
    } else {
      break;
    }
  }
  t.end = pos_;
  std::string_view word = src_.substr(t.begin, t.end - t.begin);
  auto it = keywords().find(word);
  if (it != keywords().end()) {
    t.kind = it->second;
  } else {
    t.kind = TokenKind::kIdentifier;
    t.text = std::string(word);
  }
  return t;
}

Token Lexer::next() {
  skip_trivia();
  Token t;
  t.begin = pos_;
  if (eof()) {
    t.kind = TokenKind::kEof;
    t.end = pos_;
    return t;
  }
  char c = peek();
  if (std::isdigit(static_cast<unsigned char>(c))) return lex_number();
  if (c == '"' || c == '\'') return lex_string(c);
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
    return lex_identifier();
  }

  auto two = [&](TokenKind kind) {
    t.kind = kind;
    pos_ += 2;
    t.end = pos_;
    return t;
  };
  auto one = [&](TokenKind kind) {
    t.kind = kind;
    pos_ += 1;
    t.end = pos_;
    return t;
  };

  char d = peek(1);
  switch (c) {
    case '(': return one(TokenKind::kLParen);
    case ')': return one(TokenKind::kRParen);
    case '{': return one(TokenKind::kLBrace);
    case '}': return one(TokenKind::kRBrace);
    case '[': return one(TokenKind::kLBracket);
    case ']': return one(TokenKind::kRBracket);
    case ',': return one(TokenKind::kComma);
    case ';': return one(TokenKind::kSemicolon);
    case ':': return one(TokenKind::kColon);
    case '?': return one(TokenKind::kQuestion);
    case '.': return one(TokenKind::kDot);
    case '+':
      if (d == '+') return two(TokenKind::kPlusPlus);
      if (d == '=') return two(TokenKind::kPlusAssign);
      return one(TokenKind::kPlus);
    case '-':
      if (d == '-') return two(TokenKind::kMinusMinus);
      if (d == '=') return two(TokenKind::kMinusAssign);
      return one(TokenKind::kMinus);
    case '*':
      if (d == '=') return two(TokenKind::kStarAssign);
      return one(TokenKind::kStar);
    case '/':
      if (d == '=') return two(TokenKind::kSlashAssign);
      return one(TokenKind::kSlash);
    case '%': return one(TokenKind::kPercent);
    case '=':
      if (d == '=') return two(TokenKind::kEq);
      return one(TokenKind::kAssign);
    case '!':
      if (d == '=') return two(TokenKind::kNeq);
      return one(TokenKind::kNot);
    case '<':
      if (d == '=') return two(TokenKind::kLe);
      return one(TokenKind::kLt);
    case '>':
      if (d == '=') return two(TokenKind::kGe);
      return one(TokenKind::kGt);
    case '&':
      if (d == '&') return two(TokenKind::kAndAnd);
      fail("single '&' is not supported");
    case '|':
      if (d == '|') return two(TokenKind::kOrOr);
      fail("single '|' is not supported");
    default:
      fail(std::string("unexpected character '") + c + "'");
  }
}

}  // namespace offload::jsvm
