#include "src/jsvm/interpreter.h"

#include <cmath>
#include <utility>

#include "src/jsvm/lexer.h"
#include "src/jsvm/parser.h"

namespace offload::jsvm {

namespace {
constexpr int kMaxCallDepth = 512;
}

Interpreter::Interpreter() {
  globals_ = std::make_shared<Environment>();
  this_stack_.push_back(Undefined{});
  install_builtins();
}

void Interpreter::runtime_error(const std::string& message,
                                const Expr* where) const {
  std::string full = message;
  if (where && current_program_) {
    full += " (line " +
            std::to_string(Lexer::line_of(current_program_->source,
                                          where->begin)) +
            " of " + current_program_->origin + ")";
  }
  throw JsError(full);
}

Value Interpreter::eval_program(std::string_view source, std::string origin) {
  return eval_parsed(parse_program(source, std::move(origin)));
}

Value Interpreter::eval_parsed(const ProgramPtr& program) {
  ProgramPtr saved = std::exchange(current_program_, program);
  Value last = Undefined{};
  try {
    for (const auto& stmt : program->statements) {
      Completion c = exec_stmt(*stmt, globals_);
      if (c.flow == Flow::kReturn) {
        runtime_error("return outside function");
      }
      if (c.flow == Flow::kBreak || c.flow == Flow::kContinue) {
        runtime_error("break/continue outside loop");
      }
      if (stmt->kind == StmtKind::kExpr) last = c.value;
    }
  } catch (...) {
    current_program_ = std::move(saved);
    throw;
  }
  current_program_ = std::move(saved);
  return last;
}

// ---------------------------------------------------------------- statements

Interpreter::Completion Interpreter::exec_stmt(const Stmt& stmt,
                                               const EnvPtr& env) {
  ++stats_.statements;
  switch (stmt.kind) {
    case StmtKind::kExpr: {
      const auto& s = static_cast<const ExprStmt&>(stmt);
      return {Flow::kNormal, eval_expr(*s.expr, env)};
    }
    case StmtKind::kVarDecl: {
      const auto& s = static_cast<const VarDeclStmt&>(stmt);
      Value init = s.init ? eval_expr(*s.init, env) : Value(Undefined{});
      env->declare(s.name, std::move(init));
      return {};
    }
    case StmtKind::kFunctionDecl: {
      const auto& s = static_cast<const FunctionDeclStmt&>(stmt);
      env->declare(s.function->name, make_function(*s.function, env));
      return {};
    }
    case StmtKind::kBlock: {
      const auto& s = static_cast<const BlockStmt&>(stmt);
      auto scope = std::make_shared<Environment>(env);
      return exec_block(s, scope);
    }
    case StmtKind::kIf: {
      const auto& s = static_cast<const IfStmt&>(stmt);
      if (truthy(eval_expr(*s.condition, env))) {
        return exec_stmt(*s.consequent, env);
      }
      if (s.alternate) return exec_stmt(*s.alternate, env);
      return {};
    }
    case StmtKind::kWhile: {
      const auto& s = static_cast<const WhileStmt&>(stmt);
      while (truthy(eval_expr(*s.condition, env))) {
        Completion c = exec_stmt(*s.body, env);
        if (c.flow == Flow::kReturn) return c;
        if (c.flow == Flow::kBreak) break;
      }
      return {};
    }
    case StmtKind::kFor: {
      const auto& s = static_cast<const ForStmt&>(stmt);
      auto scope = std::make_shared<Environment>(env);
      if (s.init) {
        Completion c = exec_stmt(*s.init, scope);
        if (c.flow != Flow::kNormal) return c;
      }
      while (!s.condition || truthy(eval_expr(*s.condition, scope))) {
        Completion c = exec_stmt(*s.body, scope);
        if (c.flow == Flow::kReturn) return c;
        if (c.flow == Flow::kBreak) break;
        if (s.update) eval_expr(*s.update, scope);
      }
      return {};
    }
    case StmtKind::kReturn: {
      const auto& s = static_cast<const ReturnStmt&>(stmt);
      Value v = s.value ? eval_expr(*s.value, env) : Value(Undefined{});
      return {Flow::kReturn, std::move(v)};
    }
    case StmtKind::kBreak:
      return {Flow::kBreak, Undefined{}};
    case StmtKind::kContinue:
      return {Flow::kContinue, Undefined{}};
  }
  throw JsError("unknown statement kind");
}

Interpreter::Completion Interpreter::exec_block(const BlockStmt& block,
                                                const EnvPtr& env) {
  for (const auto& stmt : block.statements) {
    Completion c = exec_stmt(*stmt, env);
    if (c.flow != Flow::kNormal) return c;
  }
  return {};
}

// --------------------------------------------------------------- expressions

Value Interpreter::make_function(const FunctionExpr& decl, const EnvPtr& env) {
  auto fn = std::make_shared<FunctionObj>();
  fn->name = decl.name;
  fn->decl = &decl;
  fn->program = current_program_;
  // Functions whose defining scope is the global scope snapshot as plain
  // `var f = function...`; others need closure reconstruction.
  fn->closure = env;
  return fn;
}

Value Interpreter::eval_expr(const Expr& expr, const EnvPtr& env) {
  switch (expr.kind) {
    case ExprKind::kNumber:
      return static_cast<const NumberExpr&>(expr).value;
    case ExprKind::kString:
      return static_cast<const StringExpr&>(expr).value;
    case ExprKind::kBool:
      return static_cast<const BoolExpr&>(expr).value;
    case ExprKind::kNull:
      return Null{};
    case ExprKind::kUndefined:
      return Undefined{};
    case ExprKind::kThis:
      return this_stack_.back();
    case ExprKind::kIdentifier: {
      const auto& e = static_cast<const IdentifierExpr&>(expr);
      if (Value* v = env->find(e.name)) return *v;
      runtime_error("'" + e.name + "' is not defined", &expr);
    }
    case ExprKind::kArray: {
      const auto& e = static_cast<const ArrayExpr&>(expr);
      auto arr = std::make_shared<ArrayObj>();
      arr->elements.reserve(e.elements.size());
      for (const auto& el : e.elements) {
        arr->elements.push_back(eval_expr(*el, env));
      }
      return arr;
    }
    case ExprKind::kObject: {
      const auto& e = static_cast<const ObjectExpr&>(expr);
      auto obj = std::make_shared<Object>();
      for (const auto& [key, val] : e.properties) {
        obj->set(key, eval_expr(*val, env));
      }
      return obj;
    }
    case ExprKind::kFunction:
      return make_function(static_cast<const FunctionExpr&>(expr), env);
    case ExprKind::kUnary: {
      const auto& e = static_cast<const UnaryExpr&>(expr);
      if (e.op == UnaryOp::kTypeof) {
        // typeof tolerates unbound identifiers, like JS.
        if (e.operand->kind == ExprKind::kIdentifier) {
          const auto& id = static_cast<const IdentifierExpr&>(*e.operand);
          if (!env->find(id.name)) return std::string("undefined");
        }
        return std::string(type_of(eval_expr(*e.operand, env)));
      }
      Value v = eval_expr(*e.operand, env);
      if (e.op == UnaryOp::kNeg) return -to_number(v);
      return !truthy(v);
    }
    case ExprKind::kUpdate: {
      const auto& e = static_cast<const UpdateExpr&>(expr);
      // Read-modify-write through the same reference.
      const double delta = e.increment ? 1.0 : -1.0;
      if (e.target->kind == ExprKind::kIdentifier) {
        const auto& id = static_cast<const IdentifierExpr&>(*e.target);
        Value* slot = env->find(id.name);
        if (!slot) runtime_error("'" + id.name + "' is not defined", &expr);
        double old = to_number(*slot);
        *slot = old + delta;
        return e.prefix ? old + delta : old;
      }
      if (e.target->kind == ExprKind::kMember) {
        const auto& m = static_cast<const MemberExpr&>(*e.target);
        Value obj = eval_expr(*m.object, env);
        double old = to_number(get_member(obj, m.property));
        set_member(obj, m.property, old + delta);
        return e.prefix ? old + delta : old;
      }
      const auto& ix = static_cast<const IndexExpr&>(*e.target);
      Value obj = eval_expr(*ix.object, env);
      Value idx = eval_expr(*ix.index, env);
      double old = to_number(get_index(obj, idx));
      set_index(obj, idx, old + delta);
      return e.prefix ? old + delta : old;
    }
    case ExprKind::kBinary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      Value a = eval_expr(*e.lhs, env);
      Value b = eval_expr(*e.rhs, env);
      switch (e.op) {
        case BinaryOp::kAdd:
          if (std::holds_alternative<std::string>(a) ||
              std::holds_alternative<std::string>(b)) {
            return to_display_string(a) + to_display_string(b);
          }
          return to_number(a) + to_number(b);
        case BinaryOp::kSub:
          return to_number(a) - to_number(b);
        case BinaryOp::kMul:
          return to_number(a) * to_number(b);
        case BinaryOp::kDiv:
          return to_number(a) / to_number(b);
        case BinaryOp::kMod:
          return std::fmod(to_number(a), to_number(b));
        case BinaryOp::kEq:
          return values_equal(a, b);
        case BinaryOp::kNeq:
          return !values_equal(a, b);
        case BinaryOp::kLt:
        case BinaryOp::kGt:
        case BinaryOp::kLe:
        case BinaryOp::kGe: {
          if (std::holds_alternative<std::string>(a) &&
              std::holds_alternative<std::string>(b)) {
            int cmp = std::get<std::string>(a).compare(std::get<std::string>(b));
            switch (e.op) {
              case BinaryOp::kLt: return cmp < 0;
              case BinaryOp::kGt: return cmp > 0;
              case BinaryOp::kLe: return cmp <= 0;
              default: return cmp >= 0;
            }
          }
          double x = to_number(a);
          double y = to_number(b);
          switch (e.op) {
            case BinaryOp::kLt: return x < y;
            case BinaryOp::kGt: return x > y;
            case BinaryOp::kLe: return x <= y;
            default: return x >= y;
          }
        }
      }
      throw JsError("unknown binary op");
    }
    case ExprKind::kLogical: {
      const auto& e = static_cast<const LogicalExpr&>(expr);
      Value a = eval_expr(*e.lhs, env);
      if (e.op == LogicalOp::kAnd) {
        return truthy(a) ? eval_expr(*e.rhs, env) : a;
      }
      return truthy(a) ? a : eval_expr(*e.rhs, env);
    }
    case ExprKind::kConditional: {
      const auto& e = static_cast<const ConditionalExpr&>(expr);
      return truthy(eval_expr(*e.condition, env))
                 ? eval_expr(*e.consequent, env)
                 : eval_expr(*e.alternate, env);
    }
    case ExprKind::kAssign: {
      const auto& e = static_cast<const AssignExpr&>(expr);
      auto combine = [&](const Value& old, Value rhs) -> Value {
        switch (e.op) {
          case AssignOp::kAssign:
            return rhs;
          case AssignOp::kAdd:
            if (std::holds_alternative<std::string>(old) ||
                std::holds_alternative<std::string>(rhs)) {
              return to_display_string(old) + to_display_string(rhs);
            }
            return to_number(old) + to_number(rhs);
          case AssignOp::kSub:
            return to_number(old) - to_number(rhs);
          case AssignOp::kMul:
            return to_number(old) * to_number(rhs);
          case AssignOp::kDiv:
            return to_number(old) / to_number(rhs);
        }
        throw JsError("unknown assignment op");
      };
      Value rhs = eval_expr(*e.value, env);
      if (e.target->kind == ExprKind::kIdentifier) {
        const auto& id = static_cast<const IdentifierExpr&>(*e.target);
        if (Value* slot = env->find(id.name)) {
          *slot = combine(*slot, std::move(rhs));
          return *slot;
        }
        if (e.op != AssignOp::kAssign) {
          runtime_error("'" + id.name + "' is not defined", &expr);
        }
        // JS-style implicit global (the snapshot restore path relies on
        // this to rebuild globals from inside its IIFE).
        globals_->declare(id.name, rhs);
        return rhs;
      }
      if (e.target->kind == ExprKind::kMember) {
        const auto& m = static_cast<const MemberExpr&>(*e.target);
        Value obj = eval_expr(*m.object, env);
        Value out = e.op == AssignOp::kAssign
                        ? std::move(rhs)
                        : combine(get_member(obj, m.property), std::move(rhs));
        set_member(obj, m.property, out);
        return out;
      }
      const auto& ix = static_cast<const IndexExpr&>(*e.target);
      Value obj = eval_expr(*ix.object, env);
      Value idx = eval_expr(*ix.index, env);
      Value out = e.op == AssignOp::kAssign
                      ? std::move(rhs)
                      : combine(get_index(obj, idx), std::move(rhs));
      set_index(obj, idx, out);
      return out;
    }
    case ExprKind::kCall:
      return eval_call(static_cast<const CallExpr&>(expr), env);
    case ExprKind::kMember: {
      const auto& e = static_cast<const MemberExpr&>(expr);
      return get_member(eval_expr(*e.object, env), e.property);
    }
    case ExprKind::kIndex: {
      const auto& e = static_cast<const IndexExpr&>(expr);
      Value obj = eval_expr(*e.object, env);
      Value idx = eval_expr(*e.index, env);
      return get_index(obj, idx);
    }
  }
  throw JsError("unknown expression kind");
}

Value Interpreter::eval_call(const CallExpr& call, const EnvPtr& env) {
  Value callee;
  Value this_value = Undefined{};
  if (call.callee->kind == ExprKind::kMember) {
    const auto& m = static_cast<const MemberExpr&>(*call.callee);
    this_value = eval_expr(*m.object, env);
    callee = get_member(this_value, m.property);
  } else if (call.callee->kind == ExprKind::kIndex) {
    const auto& ix = static_cast<const IndexExpr&>(*call.callee);
    this_value = eval_expr(*ix.object, env);
    Value idx = eval_expr(*ix.index, env);
    callee = get_index(this_value, idx);
  } else {
    callee = eval_expr(*call.callee, env);
  }
  std::vector<Value> args;
  args.reserve(call.args.size());
  for (const auto& a : call.args) args.push_back(eval_expr(*a, env));
  if (!is_callable(callee)) {
    runtime_error("value of type " + std::string(type_of(callee)) +
                      " is not callable",
                  &call);
  }
  return this->call(callee, this_value, std::move(args));
}

Value Interpreter::call(const Value& callee, const Value& this_value,
                        std::vector<Value> args) {
  ++stats_.calls;
  if (const auto* native = std::get_if<NativeFnPtr>(&callee)) {
    return (*native)->fn(*this, this_value, args);
  }
  if (const auto* fn = std::get_if<FunctionPtr>(&callee)) {
    return call_function(*fn, this_value, args);
  }
  throw JsError("value is not callable");
}

Value Interpreter::call_function(const FunctionPtr& fn, const Value& this_value,
                                 std::span<Value> args) {
  if (call_depth_ >= kMaxCallDepth) {
    throw JsError("maximum call depth exceeded");
  }
  ++call_depth_;
  auto scope = std::make_shared<Environment>(fn->closure);
  for (std::size_t i = 0; i < fn->decl->params.size(); ++i) {
    scope->declare(fn->decl->params[i],
                   i < args.size() ? args[i] : Value(Undefined{}));
  }
  this_stack_.push_back(this_value);
  ProgramPtr saved = std::exchange(current_program_, fn->program);
  Completion c;
  try {
    c = exec_block(*fn->decl->body, scope);
  } catch (...) {
    current_program_ = std::move(saved);
    this_stack_.pop_back();
    --call_depth_;
    throw;
  }
  current_program_ = std::move(saved);
  this_stack_.pop_back();
  --call_depth_;
  if (c.flow == Flow::kBreak || c.flow == Flow::kContinue) {
    throw JsError("break/continue escaped function " + fn->name);
  }
  return c.flow == Flow::kReturn ? std::move(c.value) : Value(Undefined{});
}

// -------------------------------------------------------------------- events

void Interpreter::enqueue_event(DomNodePtr target, std::string type,
                                Value detail) {
  if (!target) throw JsError("dispatchEvent: null target");
  event_queue_.push_back(
      PendingEvent{std::move(target), std::move(type), std::move(detail)});
}

void Interpreter::run_handlers(const PendingEvent& event) {
  ++stats_.events;
  auto event_obj = std::make_shared<Object>();
  event_obj->set("type", event.type);
  event_obj->set("target", event.target);
  event_obj->set("detail", event.detail);
  // Copy handler list: handlers may mutate listeners while running.
  std::vector<Value> handlers;
  for (const auto& [type, handler] : event.target->listeners) {
    if (type == event.type) handlers.push_back(handler);
  }
  for (const auto& handler : handlers) {
    call(handler, Value(event.target), {Value(event_obj)});
  }
}

std::size_t Interpreter::run_events() {
  std::size_t ran = 0;
  while (!event_queue_.empty()) {
    PendingEvent event = event_queue_.front();
    if (offload_hook && offload_hook(event)) {
      // Snapshot point: the event stays at the front of the queue so the
      // snapshot writer serializes it (and everything behind it) as the
      // "code to dispatch the event again at the server".
      pending_offload_ = std::move(event);
      return ran;
    }
    event_queue_.pop_front();
    run_handlers(event);
    ++ran;
  }
  return ran;
}

std::optional<PendingEvent> Interpreter::take_pending_offload() {
  auto out = std::move(pending_offload_);
  pending_offload_.reset();
  return out;
}

void Interpreter::push_front_event(PendingEvent event) {
  event_queue_.push_front(std::move(event));
}

// ---------------------------------------------------------------------- host

NativeFnPtr Interpreter::register_native(std::string registry_name,
                                         NativeImpl fn) {
  auto native = std::make_shared<NativeFunction>();
  native->registry_name = registry_name;
  native->fn = std::move(fn);
  natives_[std::move(registry_name)] = native;
  return native;
}

NativeFnPtr Interpreter::native(std::string_view registry_name) const {
  auto it = natives_.find(std::string(registry_name));
  return it == natives_.end() ? nullptr : it->second;
}

void Interpreter::set_global(std::string name, Value value, bool ambient) {
  globals_->declare(name, value);
  if (ambient) {
    for (auto& [n, v] : ambient_globals_) {
      if (n == name) {
        v = std::move(value);
        return;
      }
    }
    ambient_globals_.emplace_back(std::move(name), std::move(value));
  }
}

bool Interpreter::is_ambient_binding(std::string_view name,
                                     const Value& value) const {
  for (const auto& [n, v] : ambient_globals_) {
    if (n == name) return values_equal(v, value);
  }
  return false;
}

}  // namespace offload::jsvm
