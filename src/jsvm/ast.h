// AST for MicroJS. Plain structs with a kind tag; the interpreter walks by
// switching on the kind (no virtual dispatch on the hot path). Function
// literals remember their [begin, end) byte span in the original source —
// the snapshot writer serializes functions by slicing that text, exactly
// like the paper's snapshot carries "the functions of the app".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace offload::jsvm {

enum class ExprKind : std::uint8_t {
  kNumber,
  kString,
  kBool,
  kNull,
  kUndefined,
  kThis,
  kIdentifier,
  kArray,
  kObject,
  kFunction,
  kUnary,
  kUpdate,
  kBinary,
  kLogical,
  kConditional,
  kAssign,
  kCall,
  kMember,
  kIndex,
};

enum class StmtKind : std::uint8_t {
  kExpr,
  kVarDecl,
  kFunctionDecl,
  kBlock,
  kIf,
  kWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
};

enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod, kEq, kNeq, kLt, kGt, kLe, kGe,
};
enum class LogicalOp : std::uint8_t { kAnd, kOr };
enum class UnaryOp : std::uint8_t { kNeg, kNot, kTypeof };
enum class AssignOp : std::uint8_t { kAssign, kAdd, kSub, kMul, kDiv };

struct Expr {
  ExprKind kind;
  std::size_t begin = 0;  ///< source offset for diagnostics
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
};
using ExprPtr = std::unique_ptr<Expr>;

struct Stmt {
  StmtKind kind;
  std::size_t begin = 0;
  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
};
using StmtPtr = std::unique_ptr<Stmt>;

// ------------------------------------------------------------- expressions

struct NumberExpr final : Expr {
  NumberExpr() : Expr(ExprKind::kNumber) {}
  double value = 0;
};

struct StringExpr final : Expr {
  StringExpr() : Expr(ExprKind::kString) {}
  std::string value;
};

struct BoolExpr final : Expr {
  BoolExpr() : Expr(ExprKind::kBool) {}
  bool value = false;
};

struct NullExpr final : Expr {
  NullExpr() : Expr(ExprKind::kNull) {}
};

struct UndefinedExpr final : Expr {
  UndefinedExpr() : Expr(ExprKind::kUndefined) {}
};

struct ThisExpr final : Expr {
  ThisExpr() : Expr(ExprKind::kThis) {}
};

struct IdentifierExpr final : Expr {
  IdentifierExpr() : Expr(ExprKind::kIdentifier) {}
  std::string name;
};

struct ArrayExpr final : Expr {
  ArrayExpr() : Expr(ExprKind::kArray) {}
  std::vector<ExprPtr> elements;
};

struct ObjectExpr final : Expr {
  ObjectExpr() : Expr(ExprKind::kObject) {}
  std::vector<std::pair<std::string, ExprPtr>> properties;
};

struct BlockStmt;

struct FunctionExpr final : Expr {
  FunctionExpr() : Expr(ExprKind::kFunction) {}
  std::string name;  ///< empty for anonymous expressions
  std::vector<std::string> params;
  std::unique_ptr<BlockStmt> body;
  std::size_t src_begin = 0;  ///< span of "function (...) {...}" in source
  std::size_t src_end = 0;
};

struct UnaryExpr final : Expr {
  UnaryExpr() : Expr(ExprKind::kUnary) {}
  UnaryOp op = UnaryOp::kNeg;
  ExprPtr operand;
};

struct UpdateExpr final : Expr {
  UpdateExpr() : Expr(ExprKind::kUpdate) {}
  bool increment = true;  ///< ++ vs --
  bool prefix = false;
  ExprPtr target;  ///< identifier, member, or index
};

struct BinaryExpr final : Expr {
  BinaryExpr() : Expr(ExprKind::kBinary) {}
  BinaryOp op = BinaryOp::kAdd;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct LogicalExpr final : Expr {
  LogicalExpr() : Expr(ExprKind::kLogical) {}
  LogicalOp op = LogicalOp::kAnd;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct ConditionalExpr final : Expr {
  ConditionalExpr() : Expr(ExprKind::kConditional) {}
  ExprPtr condition;
  ExprPtr consequent;
  ExprPtr alternate;
};

struct AssignExpr final : Expr {
  AssignExpr() : Expr(ExprKind::kAssign) {}
  AssignOp op = AssignOp::kAssign;
  ExprPtr target;  ///< identifier, member, or index
  ExprPtr value;
};

struct CallExpr final : Expr {
  CallExpr() : Expr(ExprKind::kCall) {}
  ExprPtr callee;
  std::vector<ExprPtr> args;
};

struct MemberExpr final : Expr {
  MemberExpr() : Expr(ExprKind::kMember) {}
  ExprPtr object;
  std::string property;
};

struct IndexExpr final : Expr {
  IndexExpr() : Expr(ExprKind::kIndex) {}
  ExprPtr object;
  ExprPtr index;
};

// -------------------------------------------------------------- statements

struct ExprStmt final : Stmt {
  ExprStmt() : Stmt(StmtKind::kExpr) {}
  ExprPtr expr;
};

struct VarDeclStmt final : Stmt {
  VarDeclStmt() : Stmt(StmtKind::kVarDecl) {}
  std::string name;
  ExprPtr init;  ///< may be null
};

struct FunctionDeclStmt final : Stmt {
  FunctionDeclStmt() : Stmt(StmtKind::kFunctionDecl) {}
  std::unique_ptr<FunctionExpr> function;  ///< has non-empty name
};

struct BlockStmt final : Stmt {
  BlockStmt() : Stmt(StmtKind::kBlock) {}
  std::vector<StmtPtr> statements;
};

struct IfStmt final : Stmt {
  IfStmt() : Stmt(StmtKind::kIf) {}
  ExprPtr condition;
  StmtPtr consequent;
  StmtPtr alternate;  ///< may be null
};

struct WhileStmt final : Stmt {
  WhileStmt() : Stmt(StmtKind::kWhile) {}
  ExprPtr condition;
  StmtPtr body;
};

struct ForStmt final : Stmt {
  ForStmt() : Stmt(StmtKind::kFor) {}
  StmtPtr init;     ///< var decl or expression stmt; may be null
  ExprPtr condition;  ///< may be null (infinite)
  ExprPtr update;     ///< may be null
  StmtPtr body;
};

struct ReturnStmt final : Stmt {
  ReturnStmt() : Stmt(StmtKind::kReturn) {}
  ExprPtr value;  ///< may be null
};

struct BreakStmt final : Stmt {
  BreakStmt() : Stmt(StmtKind::kBreak) {}
};

struct ContinueStmt final : Stmt {
  ContinueStmt() : Stmt(StmtKind::kContinue) {}
};

/// A parsed compilation unit. Owns the source so FunctionExpr spans remain
/// valid for the lifetime of any closure created from it.
struct Program {
  std::string source;
  std::string origin;  ///< e.g. "app", "snapshot"
  std::vector<StmtPtr> statements;
};
using ProgramPtr = std::shared_ptr<const Program>;

}  // namespace offload::jsvm
