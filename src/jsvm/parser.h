// Recursive-descent parser for MicroJS. Produces a Program that owns the
// source text; statements require terminating semicolons (the snapshot
// writer always emits them, and app code in this repo follows suit).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "src/jsvm/ast.h"
#include "src/jsvm/lexer.h"

namespace offload::jsvm {

/// Parse a full program. Throws ParseError on malformed input.
ProgramPtr parse_program(std::string_view source, std::string origin = "app");

/// Parse a single function expression, e.g. "function (a) { return a; }".
/// Used by the snapshot restore path (__closure). The returned Program has
/// exactly one ExprStmt holding a FunctionExpr.
ProgramPtr parse_function_source(std::string_view source,
                                 std::string origin = "closure");

}  // namespace offload::jsvm
