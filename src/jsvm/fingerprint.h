// Realm fingerprinting for differential snapshots — the paper's future
// work (Section VI: "simplify the snapshot creation/transmission/
// restoration for future offloading using the data and code left at the
// server from the first offloading").
//
// After an offload round trip, client and server hold identical realms
// (the result snapshot). Both sides record a fingerprint of that common
// state; the next offload can then ship only what changed since.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/jsvm/interpreter.h"

namespace offload::jsvm {

/// A content hash of each global binding plus the DOM, taken at a moment
/// when client and server states coincide.
struct RealmFingerprint {
  /// (name, deep content hash) per non-ambient global, in slot order.
  std::vector<std::pair<std::string, std::uint64_t>> globals;
  /// Hash of the DOM's *structure*: topology, tags, ids, and listener
  /// shapes. If this changes, a differential snapshot is not possible.
  std::uint64_t dom_structure = 0;
  /// Per-node content hash (text, attributes, canvas data) in DFS order,
  /// body first. Content-only changes diff fine.
  std::vector<std::uint64_t> dom_content;
  /// Overall version tag for the handshake between client and server.
  std::uint64_t version = 0;

  const std::uint64_t* find(std::string_view name) const;
};

/// Fingerprint the current realm state. Deterministic; identical realms
/// (e.g. both ends after a restore) produce identical fingerprints.
RealmFingerprint fingerprint_realm(Interpreter& interp);

/// Deep content hash of one value (cycle-safe, identity-insensitive
/// across realms: references hash by traversal position, not address).
std::uint64_t hash_value(const Value& value);

}  // namespace offload::jsvm
