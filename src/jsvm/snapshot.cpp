#include "src/jsvm/snapshot.h"

#include <unordered_map>

#include "src/jsvm/snapshot_text.h"
#include "src/util/base64.h"

namespace offload::jsvm {
namespace {

using detail::escape_string;
using detail::float_to_text;

/// Serializer state: one pass of discovery, then ordered emission.
class Writer {
 public:
  Writer(Interpreter& interp, const SnapshotOptions& options)
      : interp_(interp), options_(options) {}

  SnapshotResult write() {
    discover_roots();
    emit();
    SnapshotResult result;
    result.stats = stats_;
    result.stats.total_bytes = out_.size();
    result.program = std::move(out_);
    return result;
  }

 private:
  // ------------------------------------------------------------ discovery

  void discover_roots() {
    // The DOM is always app state: discover the whole body tree first so
    // tree order determines DOM ids deterministically.
    discover_dom_tree(interp_.document().body());
    for (const auto& [name, value] : interp_.globals()->slots()) {
      if (interp_.is_ambient_binding(name, value)) continue;
      globals_.emplace_back(name, value);
      discover_value(value);
    }
    if (options_.include_events) {
      for (const auto& ev : interp_.event_queue()) {
        discover_value(Value(ev.target));
        discover_value(ev.detail);
      }
    }
  }

  void discover_dom_tree(const DomNodePtr& node) {
    discover_dom_node(node);
    for (const auto& child : node->children) discover_dom_tree(child);
  }

  void discover_dom_node(const DomNodePtr& node) {
    if (dom_ids_.count(node.get())) return;
    dom_ids_[node.get()] = dom_list_.size();
    dom_list_.push_back(node);
    if (node->canvas_data) discover_value(Value(node->canvas_data));
    for (const auto& [type, handler] : node->listeners) {
      discover_value(handler);
    }
    // Children are discovered by the caller (tree walk) or lazily when a
    // detached node is reached through the heap.
    for (const auto& child : node->children) discover_dom_node(child);
  }

  void discover_env(const EnvPtr& env) {
    if (!env || env == interp_.globals()) return;
    if (env_ids_.count(env.get())) return;
    discover_env(env->parent());  // parents first → smaller ids
    env_ids_[env.get()] = env_list_.size();
    env_list_.push_back(env);
    for (const auto& [name, value] : env->slots()) discover_value(value);
  }

  void discover_value(const Value& value) {
    if (const auto* obj = std::get_if<ObjectPtr>(&value)) {
      if (obj_ids_.count(obj->get())) return;
      obj_ids_[obj->get()] = obj_list_.size();
      obj_list_.push_back(*obj);
      for (const auto& [k, v] : (*obj)->properties) discover_value(v);
      return;
    }
    if (const auto* arr = std::get_if<ArrayPtr>(&value)) {
      if (arr_ids_.count(arr->get())) return;
      arr_ids_[arr->get()] = arr_list_.size();
      arr_list_.push_back(*arr);
      for (const auto& v : (*arr)->elements) discover_value(v);
      return;
    }
    if (const auto* ta = std::get_if<TypedArrayPtr>(&value)) {
      if (ta_ids_.count(ta->get())) return;
      ta_ids_[ta->get()] = ta_list_.size();
      ta_list_.push_back(*ta);
      return;
    }
    if (const auto* fn = std::get_if<FunctionPtr>(&value)) {
      if (fn_ids_.count(fn->get())) return;
      fn_ids_[fn->get()] = fn_list_.size();
      fn_list_.push_back(*fn);
      discover_env((*fn)->closure);
      return;
    }
    if (const auto* dom = std::get_if<DomNodePtr>(&value)) {
      discover_dom_node(*dom);
      return;
    }
    // Primitives, natives (by-name), host objects (by restore expression)
    // need no discovery.
  }

  // ------------------------------------------------------------- emission

  void emit() {
    out_ += "(function() {\n";
    out_ += "var __d0 = document.body;\n";
    emit_envs();
    emit_typed_arrays();
    emit_shells();
    emit_functions();
    emit_fills();
    emit_dom();
    emit_globals();
    if (options_.include_events) emit_events();
    out_ += "})();\n";
  }

  void emit_envs() {
    stats_.environments = env_list_.size();
    for (std::size_t i = 0; i < env_list_.size(); ++i) {
      const EnvPtr& env = env_list_[i];
      std::string parent = "null";
      if (env->parent() && env->parent() != interp_.globals()) {
        parent = env_name(env->parent().get());
      }
      out_ += "var __e" + std::to_string(i) + " = __makeEnv(" + parent +
              ");\n";
    }
  }

  void emit_typed_arrays() {
    stats_.typed_arrays = ta_list_.size();
    for (std::size_t i = 0; i < ta_list_.size(); ++i) {
      const TypedArrayPtr& ta = ta_list_[i];
      std::string payload;
      if (options_.base64_typed_arrays) {
        payload = "__f32b64(" +
                  escape_string(util::base64_encode(std::span(
                      reinterpret_cast<const std::uint8_t*>(ta->data.data()),
                      ta->data.size() * sizeof(float)))) +
                  ")";
      } else {
        payload = "__f32([";
        for (std::size_t j = 0; j < ta->data.size(); ++j) {
          if (j) payload.push_back(',');
          payload += float_to_text(ta->data[j]);
        }
        payload += "])";
      }
      stats_.typed_array_bytes += payload.size();
      out_ += "var __t" + std::to_string(i) + " = " + payload + ";\n";
    }
  }

  void emit_shells() {
    stats_.objects = obj_list_.size();
    for (std::size_t i = 0; i < obj_list_.size(); ++i) {
      out_ += "var __o" + std::to_string(i) + " = {};\n";
    }
    stats_.arrays = arr_list_.size();
    for (std::size_t i = 0; i < arr_list_.size(); ++i) {
      out_ += "var __a" + std::to_string(i) + " = [];\n";
    }
    stats_.dom_nodes = dom_list_.size();
    for (std::size_t i = 1; i < dom_list_.size(); ++i) {  // 0 is body
      out_ += "var __d" + std::to_string(i) + " = document.createElement(" +
              escape_string(dom_list_[i]->tag) + ");\n";
    }
  }

  void emit_functions() {
    stats_.functions = fn_list_.size();
    for (std::size_t i = 0; i < fn_list_.size(); ++i) {
      const FunctionPtr& fn = fn_list_[i];
      std::string env = "null";
      if (fn->closure && fn->closure != interp_.globals()) {
        env = env_name(fn->closure.get());
      }
      out_ += "var __f" + std::to_string(i) + " = __closure(" +
              escape_string(fn->source()) + ", " + env + ");\n";
    }
  }

  void emit_fills() {
    for (std::size_t i = 0; i < env_list_.size(); ++i) {
      for (const auto& [name, value] : env_list_[i]->slots()) {
        out_ += "__envSlot(__e" + std::to_string(i) + ", " +
                escape_string(name) + ", " + value_expr(value) + ");\n";
      }
    }
    for (std::size_t i = 0; i < obj_list_.size(); ++i) {
      for (const auto& [key, value] : obj_list_[i]->properties) {
        out_ += "__o" + std::to_string(i) + "[" + escape_string(key) +
                "] = " + value_expr(value) + ";\n";
      }
    }
    for (std::size_t i = 0; i < arr_list_.size(); ++i) {
      const auto& elements = arr_list_[i]->elements;
      for (std::size_t j = 0; j < elements.size(); ++j) {
        out_ += "__a" + std::to_string(i) + "[" + std::to_string(j) +
                "] = " + value_expr(elements[j]) + ";\n";
      }
    }
  }

  void emit_dom() {
    // Attributes/text/canvas for every node (including body), then tree
    // structure, then listeners.
    for (std::size_t i = 0; i < dom_list_.size(); ++i) {
      const DomNodePtr& node = dom_list_[i];
      const std::string name = "__d" + std::to_string(i);
      if (!node->id.empty()) {
        out_ += name + ".id = " + escape_string(node->id) + ";\n";
      }
      if (!node->text.empty()) {
        out_ += name + ".textContent = " + escape_string(node->text) + ";\n";
      }
      for (const auto& [k, v] : node->attributes) {
        out_ += name + ".setAttribute(" + escape_string(k) + ", " +
                escape_string(v) + ");\n";
      }
      if (node->canvas_data) {
        out_ += name + ".setImageData(" +
                value_expr(Value(node->canvas_data)) + ");\n";
      }
    }
    for (std::size_t i = 0; i < dom_list_.size(); ++i) {
      const DomNodePtr& node = dom_list_[i];
      for (const auto& child : node->children) {
        out_ += "__d" + std::to_string(i) + ".appendChild(" +
                dom_name(child.get()) + ");\n";
      }
    }
    for (std::size_t i = 0; i < dom_list_.size(); ++i) {
      const DomNodePtr& node = dom_list_[i];
      for (const auto& [type, handler] : node->listeners) {
        out_ += "__d" + std::to_string(i) + ".addEventListener(" +
                escape_string(type) + ", " + value_expr(handler) + ");\n";
      }
    }
  }

  void emit_globals() {
    stats_.globals = globals_.size();
    for (const auto& [name, value] : globals_) {
      out_ += name + " = " + value_expr(value) + ";\n";
    }
  }

  void emit_events() {
    for (const auto& ev : interp_.event_queue()) {
      ++stats_.events;
      out_ += "__dispatchPending(" + dom_name(ev.target.get()) + ", " +
              escape_string(ev.type) + ", " + value_expr(ev.detail) + ");\n";
    }
  }

  // -------------------------------------------------------------- helpers

  std::string env_name(const Environment* env) const {
    return "__e" + std::to_string(env_ids_.at(env));
  }
  std::string dom_name(const DomNode* node) const {
    return "__d" + std::to_string(dom_ids_.at(node));
  }

  std::string value_expr(const Value& value) const {
    struct Visitor {
      const Writer& w;
      std::string operator()(const Undefined&) { return "undefined"; }
      std::string operator()(const Null&) { return "null"; }
      std::string operator()(bool b) { return b ? "true" : "false"; }
      std::string operator()(double d) {
        std::string s = number_to_string(d);
        // Negative literals are fine as unary expressions.
        return s;
      }
      std::string operator()(const std::string& s) {
        return escape_string(s);
      }
      std::string operator()(const ObjectPtr& o) {
        return "__o" + std::to_string(w.obj_ids_.at(o.get()));
      }
      std::string operator()(const ArrayPtr& a) {
        return "__a" + std::to_string(w.arr_ids_.at(a.get()));
      }
      std::string operator()(const FunctionPtr& f) {
        return "__f" + std::to_string(w.fn_ids_.at(f.get()));
      }
      std::string operator()(const TypedArrayPtr& t) {
        return "__t" + std::to_string(w.ta_ids_.at(t.get()));
      }
      std::string operator()(const NativeFnPtr& f) {
        return "__native(" + escape_string(f->registry_name) + ")";
      }
      std::string operator()(const HostObjectPtr& h) {
        return h->restore_expression();
      }
      std::string operator()(const DomNodePtr& d) {
        return w.dom_name(d.get());
      }
    };
    return std::visit(Visitor{*this}, value);
  }

  Interpreter& interp_;
  SnapshotOptions options_;
  SnapshotStats stats_;
  std::string out_;

  std::vector<std::pair<std::string, Value>> globals_;
  std::unordered_map<const Object*, std::size_t> obj_ids_;
  std::vector<ObjectPtr> obj_list_;
  std::unordered_map<const ArrayObj*, std::size_t> arr_ids_;
  std::vector<ArrayPtr> arr_list_;
  std::unordered_map<const TypedArray*, std::size_t> ta_ids_;
  std::vector<TypedArrayPtr> ta_list_;
  std::unordered_map<const FunctionObj*, std::size_t> fn_ids_;
  std::vector<FunctionPtr> fn_list_;
  std::unordered_map<const Environment*, std::size_t> env_ids_;
  std::vector<EnvPtr> env_list_;
  std::unordered_map<const DomNode*, std::size_t> dom_ids_;
  std::vector<DomNodePtr> dom_list_;
};

}  // namespace

SnapshotResult capture_snapshot(Interpreter& interp,
                                const SnapshotOptions& options) {
  return Writer(interp, options).write();
}

void restore_snapshot(Interpreter& interp, const std::string& program) {
  interp.eval_program(program, "snapshot");
}

}  // namespace offload::jsvm
