#include "src/jsvm/fingerprint.h"

#include <unordered_map>

#include "src/util/hash.h"

namespace offload::jsvm {
namespace {

/// Cycle-safe structural hasher. References hash by first-visit ordinal,
/// so two realms with isomorphic heaps produce equal hashes regardless of
/// addresses.
using DomIndexMap = std::unordered_map<const DomNode*, std::uint64_t>;

class Hasher {
 public:
  explicit Hasher(const DomIndexMap* dom_index = nullptr,
                  const Environment* global_env = nullptr)
      : dom_index_(dom_index), global_env_(global_env) {}

  std::uint64_t hash(const Value& value) {
    h_ = util::kFnvOffset;
    mix_value(value);
    return h_;
  }

  std::uint64_t value() const { return h_; }

  void mix_value(const Value& value) {
    struct Visitor {
      Hasher& h;
      void operator()(const Undefined&) { h.mix_tag(1); }
      void operator()(const Null&) { h.mix_tag(2); }
      void operator()(bool b) {
        h.mix_tag(3);
        h.mix_u64(b ? 1 : 0);
      }
      void operator()(double d) {
        h.mix_tag(4);
        h.mix_u64(std::bit_cast<std::uint64_t>(d));
      }
      void operator()(const std::string& s) {
        h.mix_tag(5);
        h.mix_str(s);
      }
      void operator()(const ObjectPtr& o) {
        if (h.mix_ref(6, o.get())) return;
        for (const auto& [k, v] : o->properties) {
          h.mix_str(k);
          h.mix_value(v);
        }
      }
      void operator()(const ArrayPtr& a) {
        if (h.mix_ref(7, a.get())) return;
        h.mix_u64(a->elements.size());
        for (const auto& v : a->elements) h.mix_value(v);
      }
      void operator()(const FunctionPtr& f) {
        if (h.mix_ref(8, f.get())) return;
        h.mix_str(std::string(f->source()));
        // Captured environment chain contributes content — but stop at the
        // global environment: globals are fingerprinted per-binding, and
        // folding them into every function hash would make all functions
        // "change" whenever any global does.
        for (const Environment* env = f->closure.get();
             env && env != h.global_env_; env = env->parent().get()) {
          for (const auto& [name, v] : env->slots()) {
            h.mix_str(name);
            h.mix_value(v);
          }
          h.mix_tag(20);
        }
      }
      void operator()(const TypedArrayPtr& t) {
        if (h.mix_ref(9, t.get())) return;
        h.mix_u64(t->data.size());
        for (float f : t->data) {
          h.mix_u64(std::bit_cast<std::uint32_t>(f));
        }
      }
      void operator()(const NativeFnPtr& f) {
        h.mix_tag(10);
        h.mix_str(f->registry_name);
      }
      void operator()(const HostObjectPtr& ho) {
        h.mix_tag(11);
        h.mix_str(ho->restore_expression());
      }
      void operator()(const DomNodePtr& d) {
        // Attached DOM nodes hash by their position in the body tree
        // (their content is covered by the DOM fingerprint, keeping heap
        // hashes stable when only DOM text changes). Detached nodes hash
        // by shallow content.
        if (h.dom_index_) {
          if (auto it = h.dom_index_->find(d.get());
              it != h.dom_index_->end()) {
            h.mix_tag(12);
            h.mix_u64(it->second);
            return;
          }
        }
        if (h.mix_ref(13, d.get())) return;
        h.mix_str(d->tag);
        h.mix_str(d->id);
        h.mix_str(d->text);
      }
    };
    std::visit(Visitor{*this}, value);
  }

  void mix_tag(std::uint64_t tag) { mix_u64(tag); }

  void mix_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (i * 8)) & 0xff;
      h_ *= util::kFnvPrime;
    }
  }

  void mix_str(std::string_view s) {
    h_ = util::fnv1a(s, h_);
    mix_u64(s.size());
  }

  /// Mix a reference; returns true if already visited (don't recurse).
  bool mix_ref(std::uint64_t tag, const void* ptr) {
    mix_tag(tag);
    auto [it, fresh] = visited_.try_emplace(ptr, next_ordinal_);
    if (fresh) ++next_ordinal_;
    mix_u64(it->second);
    return !fresh;
  }

 private:
  const DomIndexMap* dom_index_;
  const Environment* global_env_;
  std::uint64_t h_ = util::kFnvOffset;
  std::unordered_map<const void*, std::uint64_t> visited_;
  std::uint64_t next_ordinal_ = 0;
};

void index_dom(const DomNodePtr& node, DomIndexMap& map) {
  map.emplace(node.get(), map.size());
  for (const auto& child : node->children) index_dom(child, map);
}

void walk_dom(const DomNodePtr& node, Hasher& structure,
              std::vector<std::uint64_t>& content) {
  structure.mix_str(node->tag);
  structure.mix_str(node->id);
  structure.mix_u64(node->children.size());
  structure.mix_u64(node->listeners.size());
  for (const auto& [type, handler] : node->listeners) {
    structure.mix_str(type);
    structure.mix_value(handler);
  }
  std::uint64_t ch = util::kFnvOffset;
  ch = util::fnv1a(node->text, ch);
  for (const auto& [k, v] : node->attributes) {
    ch = util::fnv1a(k, ch);
    ch = util::fnv1a(v, ch);
  }
  if (node->canvas_data) {
    ch = util::fnv1a(
        std::span(reinterpret_cast<const std::uint8_t*>(
                      node->canvas_data->data.data()),
                  node->canvas_data->data.size() * sizeof(float)),
        ch);
  }
  content.push_back(ch);
  for (const auto& child : node->children) {
    walk_dom(child, structure, content);
  }
}

}  // namespace

const std::uint64_t* RealmFingerprint::find(std::string_view name) const {
  for (const auto& [n, h] : globals) {
    if (n == name) return &h;
  }
  return nullptr;
}

std::uint64_t hash_value(const Value& value) {
  Hasher h;
  return h.hash(value);
}

RealmFingerprint fingerprint_realm(Interpreter& interp) {
  RealmFingerprint fp;
  DomIndexMap dom_index;
  index_dom(interp.document().body(), dom_index);
  const Environment* global_env = interp.globals().get();
  for (const auto& [name, value] : interp.globals()->slots()) {
    if (interp.is_ambient_binding(name, value)) continue;
    Hasher h(&dom_index, global_env);
    fp.globals.emplace_back(name, h.hash(value));
  }
  Hasher structure(&dom_index, global_env);
  structure.mix_tag(99);
  walk_dom(interp.document().body(), structure, fp.dom_content);
  fp.dom_structure = structure.value();

  std::uint64_t v = util::kFnvOffset;
  for (const auto& [name, h] : fp.globals) {
    v = util::fnv1a(name, v);
    v ^= h;
    v *= util::kFnvPrime;
  }
  v ^= fp.dom_structure;
  v *= util::kFnvPrime;
  for (auto ch : fp.dom_content) {
    v ^= ch;
    v *= util::kFnvPrime;
  }
  fp.version = v;
  return fp;
}

}  // namespace offload::jsvm
