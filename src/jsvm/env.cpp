#include "src/jsvm/env.h"

namespace offload::jsvm {

void Environment::declare(std::string_view name, Value value) {
  if (Value* v = find_local(name)) {
    *v = std::move(value);
    return;
  }
  slots_.emplace_back(std::string(name), std::move(value));
}

Value* Environment::find_local(std::string_view name) {
  for (auto& [k, v] : slots_) {
    if (k == name) return &v;
  }
  return nullptr;
}

Value* Environment::find(std::string_view name) {
  for (Environment* env = this; env; env = env->parent_.get()) {
    if (Value* v = env->find_local(name)) return v;
  }
  return nullptr;
}

bool Environment::assign(std::string_view name, const Value& value) {
  if (Value* v = find(name)) {
    *v = value;
    return true;
  }
  return false;
}

}  // namespace offload::jsvm
