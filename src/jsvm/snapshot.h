// The snapshot writer: serializes the live execution state of a realm —
// globals, the reachable heap graph (with cycles and shared references),
// closures and their captured environments, the DOM tree with listeners,
// and the pending event queue — into *another MicroJS program*. Running
// that program on a fresh realm (any browser equipped with the same
// ambient host functions) restores the state and re-dispatches the pending
// events, which is the paper's core mechanism (Section III.A).
//
// Snapshot optimizations reproduced from the paper:
//  - Host objects (the loaded DNN model) are not embedded; they re-acquire
//    themselves via their restore expression (e.g. __loadModel("agenet")),
//    which is what makes pre-sending the model pay off (Section III.B.1).
//  - Ambient globals (console, Math, document, ...) are skipped.
//  - Optional base64 typed-array encoding shrinks feature tensors ~3.4x
//    versus decimal text (an extension; the paper serializes as text).
#pragma once

#include <cstdint>
#include <string>

#include "src/jsvm/interpreter.h"

namespace offload::jsvm {

struct SnapshotOptions {
  /// Encode Float32Array contents as base64 (__f32b64) instead of decimal
  /// number lists (__f32). Off by default: the paper's snapshot sizes
  /// (14.7 MB for a raw 3.2 MB conv output) come from decimal text.
  bool base64_typed_arrays = false;
  /// Serialize queued events (re-dispatched on restore). Always on in the
  /// offloading protocol; tests switch it off to snapshot quiescent state.
  bool include_events = true;
};

struct SnapshotStats {
  std::uint64_t total_bytes = 0;
  /// Bytes spent encoding typed arrays — the "feature data" portion that
  /// Table 1 reports separately ("snapshot except feature data").
  std::uint64_t typed_array_bytes = 0;
  std::size_t objects = 0;
  std::size_t arrays = 0;
  std::size_t typed_arrays = 0;
  std::size_t functions = 0;
  std::size_t environments = 0;
  std::size_t dom_nodes = 0;
  std::size_t globals = 0;
  std::size_t events = 0;

  std::uint64_t non_feature_bytes() const {
    return total_bytes - typed_array_bytes;
  }
};

struct SnapshotResult {
  std::string program;  ///< self-contained MicroJS restore program
  SnapshotStats stats;
};

/// Capture the full execution state of `interp`.
SnapshotResult capture_snapshot(Interpreter& interp,
                                const SnapshotOptions& options = {});

/// Restore = execute the snapshot program on a (fresh) realm. Provided for
/// symmetry and for counting restore work.
void restore_snapshot(Interpreter& interp, const std::string& program);

}  // namespace offload::jsvm
