#include "src/edge/model_store.h"

#include <stdexcept>

#include "src/util/crc32.h"

namespace offload::edge {

void ModelStore::store_file(nn::ModelFile file) {
  cache_.clear();
  for (auto& f : files_) {
    if (f.name == file.name) {
      f = std::move(file);
      return;
    }
  }
  files_.push_back(std::move(file));
}

void ModelStore::store_files(std::vector<nn::ModelFile> files) {
  for (auto& f : files) store_file(std::move(f));
}

void ModelStore::clear() {
  files_.clear();
  cache_.clear();
}

bool ModelStore::has_file(const std::string& name) const {
  return find(name) != nullptr;
}

const nn::ModelFile* ModelStore::find(const std::string& name) const {
  for (const auto& f : files_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::uint64_t ModelStore::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& f : files_) n += f.size();
  return n;
}

bool ModelStore::can_instantiate(const std::string& app) const {
  return has_file(app + ".desc") &&
         (has_file(app + ".weights") || has_file(app + ".rear.weights"));
}

std::shared_ptr<nn::Network> ModelStore::instantiate(
    const std::string& app) const {
  if (auto it = cache_.find(app); it != cache_.end()) return it->second;
  const nn::ModelFile* desc = find(app + ".desc");
  if (!desc) {
    throw std::runtime_error("ModelStore: no description for app '" + app +
                             "' (model not pre-sent?)");
  }
  auto net = std::shared_ptr<nn::Network>(
      nn::parse_description(util::to_string(std::span(desc->content))));
  bool any_weights = false;
  if (const nn::ModelFile* w = find(app + ".weights")) {
    nn::load_weights(*net, std::span(w->content));
    any_weights = true;
  }
  if (const nn::ModelFile* w = find(app + ".rear.weights")) {
    nn::load_weights(*net, std::span(w->content));
    any_weights = true;
  }
  if (!any_weights) {
    throw std::runtime_error("ModelStore: no weights for app '" + app + "'");
  }
  cache_.emplace(app, net);
  return net;
}

void BlobStore::put(std::uint64_t digest, const util::Bytes& content) {
  Blob blob;
  blob.content = content;
  blob.crc = util::crc32(std::span(content));
  blobs_[digest] = std::move(blob);
}

const util::Bytes* BlobStore::find(std::uint64_t digest, bool* corrupt) {
  if (corrupt) *corrupt = false;
  auto it = blobs_.find(digest);
  if (it == blobs_.end()) return nullptr;
  if (util::crc32(std::span(it->second.content)) != it->second.crc) {
    blobs_.erase(it);
    if (corrupt) *corrupt = true;
    return nullptr;
  }
  return &it->second.content;
}

void BlobStore::clear() { blobs_.clear(); }

std::uint64_t BlobStore::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& [digest, blob] : blobs_) n += blob.content.size();
  return n;
}

bool BlobStore::corrupt_blob(std::uint64_t digest) {
  auto it = blobs_.find(digest);
  if (it == blobs_.end() || it->second.content.empty()) return false;
  it->second.content[0] ^= 0x5a;
  return true;
}

}  // namespace offload::edge
