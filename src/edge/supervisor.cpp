#include "src/edge/supervisor.h"

#include <algorithm>

namespace offload::edge {

RetryBackoff::RetryBackoff(const SupervisorConfig& config, std::uint64_t stream)
    : base_(config.backoff_base),
      factor_(config.backoff_factor),
      cap_(config.backoff_cap),
      jitter_(config.jitter),
      rng_(config.jitter_seed, stream) {}

sim::SimTime RetryBackoff::delay(int attempt) {
  double scale = 1.0;
  for (int i = 1; i < attempt; ++i) {
    scale *= factor_;
    // Once past the cap further multiplication only risks overflow.
    if (base_.to_seconds() * scale >= cap_.to_seconds()) break;
  }
  double wait_s = std::min(base_.to_seconds() * scale, cap_.to_seconds());
  // One draw per retry, always: keeps the jitter stream aligned between
  // runs even when jitter_ is zero.
  double factor = rng_.uniform(1.0 - jitter_, 1.0 + jitter_);
  return sim::SimTime::seconds(wait_s * factor);
}

CircuitBreaker::CircuitBreaker(int threshold, sim::SimTime cooldown,
                               int probe_successes)
    : threshold_(std::max(1, threshold)),
      cooldown_(cooldown),
      probe_successes_(std::max(1, probe_successes)) {}

CircuitBreaker::CircuitBreaker(const SupervisorConfig& config)
    : CircuitBreaker(config.breaker_threshold, config.breaker_cooldown,
                     config.breaker_probe_successes) {}

CircuitBreaker::State CircuitBreaker::state(sim::SimTime now) const {
  if (state_ == State::kOpen && now - opened_at_ >= cooldown_) {
    return State::kHalfOpen;
  }
  return state_;
}

bool CircuitBreaker::allow(sim::SimTime now) {
  switch (state(now)) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      if (state_ == State::kOpen) {
        // Cooled down: materialize the half-open transition.
        state_ = State::kHalfOpen;
        half_open_successes_ = 0;
        probes_in_flight_ = 0;
      }
      if (probes_in_flight_ >= probe_successes_) return false;
      ++probes_in_flight_;
      return true;
  }
  return false;
}

void CircuitBreaker::open(sim::SimTime now) {
  state_ = State::kOpen;
  opened_at_ = now;
  half_open_successes_ = 0;
  probes_in_flight_ = 0;
  ++times_opened_;
}

void CircuitBreaker::record_success(sim::SimTime now) {
  consecutive_failures_ = 0;
  if (state(now) == State::kHalfOpen) {
    state_ = State::kHalfOpen;
    if (probes_in_flight_ > 0) --probes_in_flight_;
    if (++half_open_successes_ >= probe_successes_) {
      state_ = State::kClosed;
      half_open_successes_ = 0;
      probes_in_flight_ = 0;
    }
  }
}

void CircuitBreaker::record_failure(sim::SimTime now) {
  ++consecutive_failures_;
  State s = state(now);
  if (s == State::kHalfOpen) {
    // A failed probe slams the breaker shut for another full cooldown.
    open(now);
    return;
  }
  if (s == State::kClosed && consecutive_failures_ >= threshold_) {
    open(now);
  }
}

}  // namespace offload::edge
