// Storage for pre-sent NN model files (Section III.B.1). The client pushes
// model files at app start; the edge server stores them and ACKs. When a
// snapshot later calls __loadModel("<app>"), the store instantiates the
// network from the stored description + weights.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/nn/model_io.h"
#include "src/nn/network.h"

namespace offload::edge {

class ModelStore {
 public:
  /// Add or replace a file. Invalidates any cached network built from it.
  void store_file(nn::ModelFile file);
  void store_files(std::vector<nn::ModelFile> files);

  /// Drop every stored file and cached network (a server crash loses the
  /// store; clients must pre-send again).
  void clear();

  bool has_file(const std::string& name) const;
  const nn::ModelFile* find(const std::string& name) const;
  std::uint64_t total_bytes() const;
  std::size_t file_count() const { return files_.size(); }

  /// True if enough files exist to instantiate `app` (description plus
  /// full or rear weights).
  bool can_instantiate(const std::string& app) const;

  /// Build the network for `app` from "<app>.desc" plus "<app>.weights"
  /// and/or "<app>.rear.weights". Layers with no stored weights keep their
  /// default (zero) parameters — which is exactly the information the
  /// privacy scheme denies the server. Cached; throws std::runtime_error
  /// if required files are missing.
  std::shared_ptr<nn::Network> instantiate(const std::string& app) const;

 private:
  std::vector<nn::ModelFile> files_;
  mutable std::unordered_map<std::string, std::shared_ptr<nn::Network>> cache_;
};

}  // namespace offload::edge
