// Storage for pre-sent NN model files (Section III.B.1). The client pushes
// model files at app start; the edge server stores them and ACKs. When a
// snapshot later calls __loadModel("<app>"), the store instantiates the
// network from the stored description + weights.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/nn/model_io.h"
#include "src/nn/network.h"

namespace offload::edge {

class ModelStore {
 public:
  /// Add or replace a file. Invalidates any cached network built from it.
  void store_file(nn::ModelFile file);
  void store_files(std::vector<nn::ModelFile> files);

  /// Drop every stored file and cached network (a server crash loses the
  /// store; clients must pre-send again).
  void clear();

  bool has_file(const std::string& name) const;
  const nn::ModelFile* find(const std::string& name) const;
  std::uint64_t total_bytes() const;
  std::size_t file_count() const { return files_.size(); }
  /// Every stored file, in insertion order (tier relays push an app's
  /// files up-tier by filtering on the "<app>." name prefix).
  const std::vector<nn::ModelFile>& files() const { return files_; }

  /// True if enough files exist to instantiate `app` (description plus
  /// full or rear weights).
  bool can_instantiate(const std::string& app) const;

  /// Build the network for `app` from "<app>.desc" plus "<app>.weights"
  /// and/or "<app>.rear.weights". Layers with no stored weights keep their
  /// default (zero) parameters — which is exactly the information the
  /// privacy scheme denies the server. Cached; throws std::runtime_error
  /// if required files are missing.
  std::shared_ptr<nn::Network> instantiate(const std::string& app) const;

 private:
  std::vector<nn::ModelFile> files_;
  mutable std::unordered_map<std::string, std::shared_ptr<nn::Network>> cache_;
};

/// Content-addressed blob cache for pre-sent model files, keyed by the
/// fnv1a digest the client offers. Shared by every client of one server;
/// survives until a crash wipes it. Each blob's CRC is recorded at insert
/// time and re-verified on lookup, so silent disk corruption downgrades to
/// a cache miss (the client re-uploads) instead of serving a bad network.
class BlobStore {
 public:
  /// Cache `content` under `digest` (overwrites an existing entry).
  void put(std::uint64_t digest, const util::Bytes& content);

  /// The cached bytes, or nullptr when absent. A blob whose bytes no
  /// longer match their recorded CRC is evicted and reported through
  /// `corrupt` (when non-null) — callers must treat it as a miss.
  const util::Bytes* find(std::uint64_t digest, bool* corrupt = nullptr);

  bool contains(std::uint64_t digest) const {
    return blobs_.find(digest) != blobs_.end();
  }

  /// Drop everything (a crash loses the cache with the process).
  void clear();

  std::size_t blob_count() const { return blobs_.size(); }
  std::uint64_t total_bytes() const;

  /// Fault/test hook: flip one byte of a cached blob so the next find()
  /// detects the CRC mismatch. Returns false if the digest is not cached.
  bool corrupt_blob(std::uint64_t digest);

 private:
  struct Blob {
    util::Bytes content;
    std::uint32_t crc = 0;
  };
  std::unordered_map<std::uint64_t, Blob> blobs_;
};

}  // namespace offload::edge
