// Client-side offload supervision primitives: per-phase deadlines,
// exponential backoff with deterministic jitter, and a per-server circuit
// breaker. The paper's protocol assumes the edge server answers; these
// pieces make the client robust when it does not — messages lost beyond
// ARQ, a crashed or stalled server, corrupted payloads — while changing
// nothing when every reply arrives in time.
//
// The state machine itself lives in ClientDevice (it needs the realm, the
// in-flight snapshot and the timeline); this header holds the reusable,
// sim-free pieces so they can be unit-tested in isolation. Everything is
// driven by explicit `now` arguments and a seeded PCG32 stream: two runs
// with the same seed make identical decisions, bit for bit.
#pragma once

#include <cstdint>

#include "src/sim/time.h"
#include "src/util/rng.h"

namespace offload::edge {

/// Knobs for the offload supervisor. Disabled by default: the degenerate
/// configuration reproduces the paper's runs unchanged.
struct SupervisorConfig {
  bool enabled = false;

  // --- Per-phase deadlines (zero disables that watchdog) ---
  /// Model pre-send → ACK.
  sim::SimTime presend_deadline = sim::SimTime::seconds(30.0);
  /// Snapshot sent → "accepted:" receipt.
  sim::SimTime upload_deadline = sim::SimTime::seconds(5.0);
  /// "accepted:" → "done:" (queue wait + execution on the server).
  sim::SimTime execute_deadline = sim::SimTime::seconds(15.0);
  /// "done:" → result snapshot fully received.
  sim::SimTime download_deadline = sim::SimTime::seconds(5.0);
  /// The server sends "accepted:"/"done:" phase receipts
  /// (EdgeServerConfig::ack_snapshots — the runtime enables it whenever the
  /// supervisor is on). When false, the three snapshot phases collapse into
  /// one watchdog of their summed budget, so a server that never acks does
  /// not trip spurious per-phase timeouts.
  bool expect_phase_acks = true;

  // --- Retries ---
  /// Snapshot delivery attempts per inference, including the first.
  int max_attempts = 4;
  sim::SimTime backoff_base = sim::SimTime::millis(100);
  double backoff_factor = 2.0;
  sim::SimTime backoff_cap = sim::SimTime::seconds(2.0);
  /// Jitter: each wait is scaled by a deterministic factor drawn uniformly
  /// from [1 - jitter, 1 + jitter].
  double jitter = 0.2;
  std::uint64_t jitter_seed = 1;

  // --- Hedged local execution ---
  /// When an offload has been in flight this long with no result, start
  /// the inference locally as well and take whichever finishes first.
  /// Zero disables hedging.
  sim::SimTime hedge_after = sim::SimTime::seconds(8.0);

  // --- Circuit breaker (per server) ---
  /// Consecutive failures that open the breaker.
  int breaker_threshold = 3;
  /// Open → half-open cooldown: while open, offloads short-circuit to the
  /// secondary server or local execution.
  sim::SimTime breaker_cooldown = sim::SimTime::seconds(10.0);
  /// Successes needed in half-open before the breaker closes again.
  int breaker_probe_successes = 1;
};

/// Exponential backoff with deterministic jitter. `delay(attempt)` for
/// attempt = 1, 2, ... is base * factor^(attempt-1), capped, then scaled
/// by a jitter factor from the seeded stream. Two instances with the same
/// config produce the same sequence.
class RetryBackoff {
 public:
  explicit RetryBackoff(const SupervisorConfig& config,
                        std::uint64_t stream = 0xba0cull);

  /// The wait before retry number `attempt` (1-based). Consumes one draw
  /// from the jitter stream, so call it exactly once per retry.
  sim::SimTime delay(int attempt);

 private:
  sim::SimTime base_;
  double factor_;
  sim::SimTime cap_;
  double jitter_;
  util::Pcg32 rng_;
};

/// Classic three-state circuit breaker, driven by explicit simulated time.
///
///   closed    — requests flow; `threshold` consecutive failures open it.
///   open      — requests are refused until `cooldown` has elapsed.
///   half-open — after the cooldown, `allow()` admits probe requests;
///               `probe_successes` successes close the breaker, any
///               failure re-opens it (and restarts the cooldown).
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() = default;
  CircuitBreaker(int threshold, sim::SimTime cooldown, int probe_successes);
  explicit CircuitBreaker(const SupervisorConfig& config);

  /// The state as of `now` (open becomes half-open once cooled down).
  State state(sim::SimTime now) const;

  /// May a request be sent now? True when closed or half-open. Half-open
  /// admits at most `probe_successes` in-flight probes at a time, so a
  /// burst cannot stampede a barely-recovered server.
  bool allow(sim::SimTime now);

  void record_success(sim::SimTime now);
  void record_failure(sim::SimTime now);

  int consecutive_failures() const { return consecutive_failures_; }
  /// Times the breaker transitioned closed/half-open → open.
  int times_opened() const { return times_opened_; }

 private:
  void open(sim::SimTime now);

  int threshold_ = 3;
  sim::SimTime cooldown_ = sim::SimTime::seconds(10.0);
  int probe_successes_ = 1;

  State state_ = State::kClosed;
  sim::SimTime opened_at_;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  int probes_in_flight_ = 0;
  int times_opened_ = 0;
};

/// Counters the supervisor accumulates across an app's lifetime (all
/// inferences). Per-inference observations live in ClientTimeline.
struct SupervisorStats {
  int retries = 0;             ///< snapshot re-sends after a failure signal
  int deadline_expiries = 0;   ///< phase watchdogs that fired
  int hedges_started = 0;
  int hedge_local_wins = 0;
  int hedge_remote_wins = 0;
  int breaker_opens = 0;
  int breaker_short_circuits = 0;  ///< offloads skipped: breaker open
  int failovers = 0;           ///< switched primary ↔ secondary server
  int redirects = 0;           ///< server-directed migrations followed
                               ///< ("redirect:<target>:<app>" controls)
  int model_represends = 0;    ///< crash recovery: model pushed again
  int local_fallbacks = 0;     ///< inferences finished locally by the
                               ///< supervisor after remote attempts failed
  double backoff_wait_s = 0;   ///< total time spent waiting between retries
  double recovery_s = 0;       ///< total time spent re-presending models
};

}  // namespace offload::edge
