// Payload codecs for the offloading protocol messages. Wire framing (type,
// name, checksum) lives in net::Message; these encode the bodies.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/net/message.h"
#include "src/nn/model_io.h"

namespace offload::edge {

/// A received message failed its payload CRC check: the bytes were damaged
/// in flight. Typed so the offload supervisor can treat it as a retryable
/// delivery fault rather than a protocol bug.
class PayloadCorruptError : public std::runtime_error {
 public:
  explicit PayloadCorruptError(const net::Message& message);
};

/// True if `message.payload` still matches the CRC stamped at send time.
bool payload_intact(const net::Message& message);

/// Throws PayloadCorruptError unless payload_intact(message). Every edge
/// endpoint calls this before decoding a payload-bearing message, so
/// corruption is rejected instead of silently accepted.
void verify_payload(const net::Message& message);

/// Body of a kModelFiles message: the pre-sent model file bundle.
struct ModelFilesPayload {
  std::vector<nn::ModelFile> files;

  util::Bytes encode() const;
  static ModelFilesPayload decode(std::span<const std::uint8_t> data);
};

/// Body of a kModelOffer message: per-file content digests of a pre-send.
/// A server that already caches a blob under the same digest (uploaded by
/// any client since its last crash) skips that file's body entirely — the
/// Nth client's warmup shrinks from the model size to digest size.
struct ModelOfferPayload {
  struct Entry {
    std::string name;           ///< model file name, e.g. "tinycnn.weights"
    std::uint64_t digest = 0;   ///< fnv1a of the file content
    std::uint64_t bytes = 0;    ///< content size (for bytes-saved stats)
  };
  std::vector<Entry> files;

  util::Bytes encode() const;
  static ModelOfferPayload decode(std::span<const std::uint8_t> data);
};

/// Body of a "send_files:" control reply: the subset of offered files the
/// server does not hold and needs uploaded in full.
struct FileListPayload {
  std::vector<std::string> names;

  util::Bytes encode() const;
  static FileListPayload decode(std::span<const std::uint8_t> data);
};

/// Body of a kSnapshot / kResultSnapshot message: the snapshot program
/// plus the partition point (SIZE_MAX when full inference), which the
/// serving browser needs to run inference_rear on the right layer range.
/// For repeat offloads the program may be a *differential* snapshot that
/// applies to the session state the server kept — `base_version` names the
/// common baseline (fingerprint version) it patches.
struct SnapshotPayload {
  std::uint64_t cut = UINT64_MAX;
  bool differential = false;
  std::uint64_t base_version = 0;
  std::string program;

  util::Bytes encode() const;
  static SnapshotPayload decode(std::span<const std::uint8_t> data);
};

}  // namespace offload::edge
