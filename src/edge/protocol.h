// Payload codecs for the offloading protocol messages. Wire framing (type,
// name, checksum) lives in net::Message; these encode the bodies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/message.h"
#include "src/nn/model_io.h"

namespace offload::edge {

/// Body of a kModelFiles message: the pre-sent model file bundle.
struct ModelFilesPayload {
  std::vector<nn::ModelFile> files;

  util::Bytes encode() const;
  static ModelFilesPayload decode(std::span<const std::uint8_t> data);
};

/// Body of a kSnapshot / kResultSnapshot message: the snapshot program
/// plus the partition point (SIZE_MAX when full inference), which the
/// serving browser needs to run inference_rear on the right layer range.
/// For repeat offloads the program may be a *differential* snapshot that
/// applies to the session state the server kept — `base_version` names the
/// common baseline (fingerprint version) it patches.
struct SnapshotPayload {
  std::uint64_t cut = UINT64_MAX;
  bool differential = false;
  std::uint64_t base_version = 0;
  std::string program;

  util::Bytes encode() const;
  static SnapshotPayload decode(std::span<const std::uint8_t> data);
};

}  // namespace offload::edge
