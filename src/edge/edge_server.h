// The generic edge server. It runs the offloading server program: accepts
// pre-sent model files (ACKing them), executes incoming snapshots on its
// browser, and returns result snapshots. If the offloading system is not
// installed, it can be installed on demand by a VM overlay (VM synthesis,
// Section III.B.3).
//
// All processing costs are charged in simulated time: the reply to a
// message is scheduled at arrival + (restore + execute + capture) computed
// from the server's device profile and the real byte/FLOP counts.
//
// Faults (driven by src/fault, or scheduled directly): the server can
// *crash* — go down for a while, losing the model store, the
// differential-snapshot session cache, and every in-flight execution — and
// *stall*, deferring message processing for a stretch of simulated time.
// A restarted server is detected by clients through the existing
// handshakes: differential snapshots miss their base version ("need_full")
// and snapshots whose model was wiped get a "model_missing" reply, which
// the offload supervisor answers by re-pre-sending the model.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/edge/browser_host.h"
#include "src/edge/model_store.h"
#include "src/edge/protocol.h"
#include "src/net/channel.h"
#include "src/serve/scheduler.h"
#include "src/sim/simulation.h"
#include "src/vmsynth/overlay.h"

namespace offload::edge {

struct EdgeServerConfig {
  nn::DeviceProfile profile = nn::DeviceProfile::edge_server();
  /// Whether the offloading system (browser + server program + libs) is
  /// already installed. When false, model/snapshot messages are refused
  /// with a "not_installed" control reply until a VM overlay arrives.
  bool offloading_system_installed = true;
  /// Disk rate for persisting pre-sent model files (affects ACK time).
  double store_Bps = 400e6;
  /// Keep per-app session realms so repeat offloads can send differential
  /// snapshots (the paper's Section VI future work).
  bool keep_sessions = true;
  /// Send "accepted:" when a snapshot is admitted and "done:" when its
  /// execution completes (just before the result), so a supervising
  /// client can watch per-phase deadlines. Off by default: the degenerate
  /// protocol stays byte-identical to the paper runs.
  bool ack_snapshots = false;
  /// Queued snapshot executions are cancelled if still waiting for a lane
  /// this long after arrival; the client gets an "expired:" control reply
  /// (deadline-aware cancellation in the serving scheduler). Zero = never.
  sim::SimTime queue_deadline = sim::SimTime::zero();
  jsvm::SnapshotOptions snapshot_options;
  /// Compute-scheduler knobs: replica lanes, queue policy, batching window
  /// and the admission bound (0 = never shed). The `profile` field inside
  /// is ignored — the server's own profile above is used. The default
  /// (1 replica, FIFO, batch 1, unbounded) reproduces the original FIFO
  /// compute reservation bit-for-bit.
  serve::SchedulerConfig scheduler;
  /// Observability sink (optional, shared with the client and channel so
  /// spans from all actors land in one trace). The scheduler inherits it.
  obs::Obs* obs = nullptr;
  /// Metric-key and span-resource prefix, so a primary and a secondary
  /// server can share one registry without colliding.
  std::string obs_name = "server";
};

/// A job an overloaded (or deadline-missing) edge hands to the tier
/// topology instead of shedding: everything an up-tier executor needs to
/// run it and reply transparently to the original client. The snapshot is
/// self-contained, so `payload` plus the origin's pre-sent model files is
/// the whole session.
struct EscalationRequest {
  std::string app;
  util::Bytes payload;        ///< encoded SnapshotPayload, verbatim
  net::Endpoint* reply_to = nullptr;  ///< the client-facing b-side endpoint
  obs::TraceContext ctx;
  const char* reason = "";    ///< "overloaded" or "expired"
};

/// Per-offload server-side timing, for the Fig. 7 breakdown.
struct ServerExecutionRecord {
  sim::SimTime received_at;
  double queue_wait_s = 0;  ///< waited for earlier requests (contention)
  double batch_wait_s = 0;  ///< replica idle while a batch formed (zero
                            ///< for snapshot jobs unless batching is on)
  double restore_s = 0;   ///< parse+run the incoming snapshot
  double execute_s = 0;   ///< DNN execution on the server browser
  double capture_s = 0;   ///< producing the result snapshot
  std::uint64_t snapshot_in_bytes = 0;
  std::uint64_t snapshot_out_bytes = 0;
  jsvm::SnapshotStats result_stats;

  double busy_s() const { return restore_s + execute_s + capture_s; }
};

class EdgeServer {
 public:
  EdgeServer(sim::Simulation& sim, net::Endpoint& endpoint,
             EdgeServerConfig config = {});

  /// Serve an additional client (its own channel). Replies go back on the
  /// endpoint the request arrived on. Snapshot executions from all clients
  /// share — and queue on — the server's compute. Every attached endpoint
  /// (including the constructor's) must outlive the server and any pending
  /// simulation events it scheduled.
  void attach(net::Endpoint& endpoint);

  /// Crash at simulated time `at`: the server goes down, drops the model
  /// store, session cache, and every in-flight execution (their replies
  /// are never sent), and restarts cold `downtime` later. Messages that
  /// arrive while down are dropped on the floor — the sender never hears
  /// back, exactly like a dead host; only a supervisor deadline notices.
  void schedule_crash(sim::SimTime at, sim::SimTime downtime);

  /// Freeze message processing during [at, at+duration): arrivals in that
  /// window are handled when the stall ends (models GC pauses, contention
  /// from co-located tenants, thermal throttling).
  void schedule_stall(sim::SimTime at, sim::SimTime duration);

  /// Tier hook: offered every job this server would otherwise shed at
  /// admission or cancel at its queue deadline (non-differential snapshots
  /// only — differential ones are meaningless without this server's
  /// session realm). Return true to take ownership: the server then never
  /// sheds/expires the job, and the handler owes the client exactly one
  /// result or typed failure on `reply_to`.
  void set_escalation_handler(std::function<bool(EscalationRequest)> handler) {
    escalate_ = std::move(handler);
  }

  /// A queued snapshot job withdrawn for work stealing or migration. An
  /// empty `payload` marks a differential job: it cannot run elsewhere, so
  /// the drain path redirects its client instead of relaying it.
  struct MigratableJob {
    std::uint64_t id = 0;
    std::string app;
    util::Bytes payload;
    net::Endpoint* reply_to = nullptr;
    obs::TraceContext ctx;
    bool differential = false;
  };

  /// Withdraw the oldest still-queued snapshot job (smallest scheduler id
  /// whose cancel() succeeds). With `relayable_only`, differential jobs
  /// are skipped — a thief can only run self-contained snapshots. The
  /// caller owns the job's fate: this server will never reply for it.
  std::optional<MigratableJob> steal_job(bool relayable_only);

  /// Queued snapshot jobs currently eligible for steal_job().
  std::size_t migratable_jobs() const { return migratable_.size(); }

  /// Tier hook: fires after every snapshot admission (the job just joined
  /// the queue). The work-stealing scheduler arms its tick off this, so
  /// ticks exist only while there is load and the simulation can quiesce.
  void set_admission_hook(std::function<void()> hook) {
    on_admit_ = std::move(hook);
  }

  bool installed() const { return config_.offloading_system_installed; }
  /// True while crashed (between a crash and its restart).
  bool down() const { return down_; }
  /// Whether this server sends "accepted:"/"done:" receipts (tier relays
  /// mirror the origin's receipt behavior toward the client).
  bool acks() const { return config_.ack_snapshots; }
  /// Crash counter; work captured under an older epoch must stay silent.
  std::uint64_t boot_epoch() const { return boot_epoch_; }
  const ModelStore& model_store() const { return *store_; }
  /// Content-addressed cache of every model file any client uploaded since
  /// the last crash. Non-const so tests can corrupt_blob().
  BlobStore& blob_store() { return blob_store_; }
  const BlobStore& blob_store() const { return blob_store_; }

  struct Stats {
    int models_stored = 0;
    int snapshots_executed = 0;
    int diff_snapshots_applied = 0;
    int diff_version_misses = 0;
    int overlays_installed = 0;
    int refused = 0;
    int snapshots_shed = 0;  ///< load-shed by scheduler admission control
    int crashes = 0;
    int restarts = 0;
    int dropped_while_down = 0;   ///< messages that hit a dead server
    int stalled_messages = 0;     ///< arrivals deferred by a stall
    int corrupt_rejected = 0;     ///< payload CRC mismatches rejected
    int model_missing_replies = 0;
    int jobs_expired = 0;         ///< queue-deadline cancellations
    int snapshots_escalated = 0;  ///< jobs handed up-tier instead of shed
    int jobs_migrated = 0;        ///< queued jobs withdrawn via steal_job()
    int model_offers = 0;         ///< kModelOffer pre-sends received
    int dedup_hit_files = 0;      ///< offered files served from the cache
    int dedup_miss_files = 0;     ///< offered files requested in full
    int dedup_corrupt_blobs = 0;  ///< cached blobs failing their CRC check
    std::uint64_t dedup_bytes_saved = 0;  ///< upload bytes skipped via cache
    double vm_synthesis_compute_s = 0;
  };
  const Stats& stats() const { return stats_; }
  const std::vector<ServerExecutionRecord>& executions() const {
    return executions_;
  }

  /// The realm that ran the last snapshot (inspection/tests). With
  /// keep_sessions on, this is the live session realm.
  BrowserHost* last_browser() { return last_browser_; }

  /// The compute scheduler all snapshot executions queue on. Exposed so
  /// callers can register models for direct inference jobs and so tests
  /// can inspect batching/shedding stats.
  serve::Scheduler& scheduler() { return *scheduler_; }
  const serve::Scheduler& scheduler() const { return *scheduler_; }

 private:
  void on_message(net::Endpoint& from, const net::Message& message);
  void handle_model_files(net::Endpoint& from, const net::Message& message);
  void handle_model_offer(net::Endpoint& from, const net::Message& message);
  void handle_snapshot(net::Endpoint& from, const net::Message& message);
  void handle_overlay(net::Endpoint& from, const net::Message& message);
  void refuse(net::Endpoint& from, const net::Message& message);
  /// Offer a would-be-shed/expired job to the escalation handler. True =
  /// the handler took it (stats and marker recorded); the caller must not
  /// shed or reply.
  bool try_escalate(net::Endpoint& from, const std::string& app,
                    util::Bytes payload, obs::TraceContext ctx,
                    const char* reason);
  void send_control(net::Endpoint& to, const std::string& name,
                    util::Bytes payload = {});
  std::unique_ptr<serve::Scheduler> make_scheduler() const;
  /// Bump the counter "<obs_name>.<key>" if an obs sink is attached.
  void count(const char* key) {
    if (config_.obs) config_.obs->metrics.add(config_.obs_name + "." + key);
  }

  sim::Simulation& sim_;
  EdgeServerConfig config_;
  std::unique_ptr<serve::Scheduler> scheduler_;
  /// Schedulers retired by a crash: their in-flight completions still fire
  /// (and are suppressed by the epoch check), so they must stay alive.
  std::vector<std::unique_ptr<serve::Scheduler>> retired_schedulers_;
  std::shared_ptr<ModelStore> store_;
  BlobStore blob_store_;
  std::unique_ptr<BrowserHost> browser_;
  BrowserHost* last_browser_ = nullptr;
  /// Session kept from the last offload of each app: the realm plus the
  /// fingerprint version the client and server share.
  struct Session {
    std::unique_ptr<BrowserHost> browser;
    std::uint64_t version = 0;
  };
  std::unordered_map<std::string, Session> sessions_;
  /// Still-queued snapshot jobs by scheduler id (ascending = admission
  /// order), each holding enough to re-run elsewhere. Entries leave when
  /// the job dispatches, expires, is stolen, or the server crashes.
  std::map<std::uint64_t, MigratableJob> migratable_;
  std::function<bool(EscalationRequest)> escalate_;
  std::function<void()> on_admit_;
  vmsynth::VmImage base_image_;
  std::optional<vmsynth::VmImage> synthesized_;
  bool down_ = false;
  sim::SimTime stall_until_;
  /// Incremented on every crash; delayed replies check it so work started
  /// before a crash never speaks for the restarted server.
  std::uint64_t boot_epoch_ = 0;
  Stats stats_;
  std::vector<ServerExecutionRecord> executions_;
};

}  // namespace offload::edge
