#include "src/edge/client_device.h"

#include <stdexcept>

#include "src/jsvm/snapshot.h"
#include "src/jsvm/snapshot_diff.h"
#include "src/util/logging.h"
#include "src/util/strings.h"
#include "src/vmsynth/overlay.h"
#include "src/vmsynth/vmimage.h"

namespace offload::edge {

ClientDevice::ClientDevice(sim::Simulation& sim, net::Endpoint& endpoint,
                           ClientConfig config, AppBundle bundle)
    : sim_(sim),
      endpoint_(endpoint),
      config_(std::move(config)),
      bundle_(std::move(bundle)),
      local_store_(std::make_shared<ModelStore>()) {
  if (!bundle_.network) {
    throw std::invalid_argument("ClientDevice: app bundle has no network");
  }
  // The client owns the full, trained model locally.
  local_store_->store_files(nn::model_files(*bundle_.network));
  browser_ = std::make_unique<BrowserHost>(config_.profile, local_store_);
  browser_->add_image("input", bundle_.input_image);
  endpoint_.set_handler([this](const net::Message& m) { on_message(m); });
}

std::vector<nn::ModelFile> ClientDevice::files_to_send() const {
  if (config_.presend_rear_only && config_.partition_cut != SIZE_MAX) {
    return nn::model_files_rear_only(*bundle_.network, config_.partition_cut);
  }
  return nn::model_files(*bundle_.network);
}

void ClientDevice::send_model_files(bool count_as_presend) {
  if (model_sent_) return;
  model_sent_ = true;
  ModelFilesPayload payload;
  payload.files = files_to_send();
  net::Message msg;
  msg.type = net::MessageType::kModelFiles;
  msg.name = bundle_.name;
  msg.payload = payload.encode();
  timeline_.model_upload_bytes = msg.payload.size();
  if (count_as_presend) timeline_.model_upload_started = sim_.now();
  endpoint_.send(std::move(msg));
}

void ClientDevice::send_overlay() {
  // Build a VM overlay carrying the offloading system plus the model
  // files, so installation doubles as pre-sending.
  vmsynth::VmImage base = vmsynth::make_base_image();
  std::vector<std::pair<std::string, util::Bytes>> model_files;
  for (auto& f : files_to_send()) {
    model_files.emplace_back(f.name, std::move(f.content));
  }
  vmsynth::VmImage customized = vmsynth::make_customized_image(
      base, config_.overlay_sizes, model_files);
  vmsynth::VmOverlay overlay = vmsynth::create_overlay(base, customized);

  net::Message msg;
  msg.type = net::MessageType::kVmOverlay;
  msg.name = bundle_.name;
  msg.payload = std::move(overlay.payload);
  endpoint_.send(std::move(msg));
  model_sent_ = true;  // the overlay carried the model files
  timeline_.model_upload_started = sim_.now();
}

void ClientDevice::start() {
  if (started_) throw std::logic_error("ClientDevice::start called twice");
  started_ = true;
  timeline_.app_started = sim_.now();

  if (config_.offload && config_.partition_cut != SIZE_MAX) {
    browser_->set_partition_cut(bundle_.name, config_.partition_cut);
  }
  browser_->interp().eval_program(bundle_.source, bundle_.name);
  browser_->interp().run_events();
  browser_->consume_compute_seconds();  // app-start compute is not measured

  if (config_.offload && config_.presend_model) {
    send_model_files(/*count_as_presend=*/true);
  }
}

void ClientDevice::click_at(sim::SimTime at) {
  sim_.schedule_at(at, [this] { begin_inference(); });
}

std::size_t ClientDevice::pick_partition_cut() {
  if (!config_.auto_partition) return config_.partition_cut;
  if (!client_cost_) {
    const nn::Network* nets[] = {bundle_.network.get()};
    client_cost_ = nn::LayerCostModel::profile_device(config_.profile, nets);
    server_cost_ = nn::LayerCostModel::profile_device(
        nn::DeviceProfile::edge_server(), nets);
  }
  nn::Partitioner partitioner(*bundle_.network, *client_cost_, *server_cost_);
  nn::PartitionCandidate best =
      partitioner.best(bandwidth_.estimate_bps(), 0.001);
  return best.cut;
}

void ClientDevice::begin_inference() {
  if (timeline_.finished) {
    // Archive the previous inference and start a fresh per-inference
    // record, keeping app-level fields (start, upload, ACK).
    history_.push_back(timeline_);
    ClientTimeline next;
    next.app_started = timeline_.app_started;
    next.model_upload_started = timeline_.model_upload_started;
    next.ack_received = timeline_.ack_received;
    next.model_upload_bytes = timeline_.model_upload_bytes;
    timeline_ = std::move(next);
  }
  timeline_.clicked = sim_.now();
  timeline_.used_partition_cut = config_.partition_cut;

  if (config_.offload && config_.auto_partition) {
    std::size_t cut = pick_partition_cut();
    if (cut + 1 >= bundle_.network->size()) {
      // The partitioner says local execution wins under current network
      // conditions; honor it for this inference. The app still needs a
      // valid cut for its inference_front/rear calls.
      timeline_.local_fallback = true;
      std::size_t local_cut = config_.partition_cut != SIZE_MAX
                                  ? config_.partition_cut
                                  : bundle_.network->cut_points().front();
      browser_->set_partition_cut(bundle_.name, local_cut);
      timeline_.used_partition_cut = local_cut;
    } else {
      timeline_.used_partition_cut = cut;
      browser_->set_partition_cut(bundle_.name, cut);
    }
  }

  jsvm::DomNodePtr target =
      browser_->interp().document().get_element_by_id(bundle_.click_target);
  if (!target) {
    throw std::runtime_error("ClientDevice: no element '" +
                             bundle_.click_target + "' to click");
  }
  browser_->interp().enqueue_event(std::move(target), "click",
                                   jsvm::Undefined{});
  run_app_events();
}

void ClientDevice::run_locally() {
  jsvm::Interpreter& interp = browser_->interp();
  interp.offload_hook = nullptr;
  interp.run_events();
  double exec_s = browser_->consume_compute_seconds();
  timeline_.client_exec_s += exec_s;
  timeline_.finished = sim_.now() + sim::SimTime::seconds(exec_s);
}

void ClientDevice::run_app_events() {
  jsvm::Interpreter& interp = browser_->interp();
  bool want_offload = config_.offload && !timeline_.local_fallback;
  if (want_offload && config_.local_fallback_before_ack &&
      !timeline_.ack_received && config_.presend_model) {
    // The model is still uploading; execute locally this time
    // (Section IV.A's recommendation).
    timeline_.local_fallback = true;
    want_offload = false;
  }
  if (!want_offload) {
    run_locally();
    return;
  }

  interp.offload_hook = [this](const jsvm::PendingEvent& ev) {
    return ev.type == config_.offload_event;
  };
  interp.run_events();
  double exec_s = browser_->consume_compute_seconds();
  timeline_.client_exec_s += exec_s;

  auto pending = interp.take_pending_offload();
  if (!pending) {
    // Ran to completion locally (app never raised the offload event).
    timeline_.finished = sim_.now() + sim::SimTime::seconds(exec_s);
    return;
  }

  // Offload point reached: capture the snapshot (the pending event is
  // still at the queue front and rides along). Repeat offloads diff
  // against the state the server kept.
  SnapshotPayload payload;
  payload.cut = timeline_.used_partition_cut == SIZE_MAX
                    ? UINT64_MAX
                    : timeline_.used_partition_cut;
  if (config_.differential_snapshots && baseline_) {
    jsvm::DiffSnapshotResult diff =
        jsvm::capture_snapshot_diff(interp, *baseline_,
                                    config_.snapshot_options);
    payload.differential = !diff.full_fallback;
    payload.base_version = diff.base_version;
    payload.program = std::move(diff.program);
    timeline_.snapshot_stats = diff.stats;
    timeline_.used_differential = payload.differential;
  } else {
    jsvm::SnapshotResult snap =
        jsvm::capture_snapshot(interp, config_.snapshot_options);
    payload.program = std::move(snap.program);
    timeline_.snapshot_stats = snap.stats;
  }
  timeline_.capture_s = config_.profile.snapshot_capture_s(
      timeline_.snapshot_stats.total_bytes);
  timeline_.offloaded = true;

  net::Message msg;
  msg.type = net::MessageType::kSnapshot;
  msg.name = bundle_.name;
  msg.payload = payload.encode();
  timeline_.snapshot_bytes = msg.wire_size();

  send_snapshot_message(std::move(msg), exec_s + timeline_.capture_s);
}

void ClientDevice::send_snapshot_message(net::Message msg, double busy_s) {
  awaiting_result_ = true;
  sim_.schedule(sim::SimTime::seconds(busy_s), [this,
                                                msg = std::move(msg)]() mutable {
    // No pre-send (or ACK still pending with nothing in flight): the model
    // must accompany the snapshot (Section III.B.1's slow path).
    send_model_files(/*count_as_presend=*/false);
    timeline_.snapshot_sent = sim_.now();
    inflight_snapshot_ = msg;
    endpoint_.send(std::move(msg));
  });
}

void ClientDevice::on_message(const net::Message& message) {
  switch (message.type) {
    case net::MessageType::kAck: {
      if (!timeline_.ack_received) {
        timeline_.ack_received = sim_.now();
        // The completed upload doubles as a bandwidth observation
        // (Section III.B.2's "runtime network status").
        if (timeline_.model_upload_bytes > 0) {
          bandwidth_.observe(timeline_.model_upload_bytes,
                             *timeline_.ack_received -
                                 timeline_.model_upload_started);
        }
      }
      if (util::starts_with(message.name, "installed:") && awaiting_result_ &&
          inflight_snapshot_) {
        // Our earlier snapshot was refused pre-install; send it again.
        timeline_.snapshot_sent = sim_.now();
        endpoint_.send(*inflight_snapshot_);
      }
      return;
    }
    case net::MessageType::kResultSnapshot: {
      if (!awaiting_result_) {
        OFFLOAD_LOG_WARN << "client: unexpected result snapshot";
        return;
      }
      awaiting_result_ = false;
      inflight_snapshot_.reset();
      timeline_.result_received = sim_.now();
      SnapshotPayload payload =
          SnapshotPayload::decode(std::span(message.payload));
      // Adopt the new execution state on a fresh page (the snapshot is a
      // self-contained app).
      browser_->reset_realm();
      if (timeline_.used_partition_cut != SIZE_MAX) {
        browser_->set_partition_cut(bundle_.name,
                                    timeline_.used_partition_cut);
      }
      jsvm::restore_snapshot(browser_->interp(), payload.program);
      browser_->interp().run_events();
      browser_->consume_compute_seconds();
      if (config_.differential_snapshots) {
        // This restored state is now the baseline both sides share.
        baseline_ = jsvm::fingerprint_realm(browser_->interp());
      }
      timeline_.restore_s =
          config_.profile.snapshot_restore_s(payload.program.size());
      timeline_.finished =
          sim_.now() + sim::SimTime::seconds(timeline_.restore_s);
      return;
    }
    case net::MessageType::kControl: {
      if (util::starts_with(message.name, "need_full") && awaiting_result_) {
        // The server lost (or never had) our differential baseline: the
        // realm is untouched since capture, so take a full snapshot and
        // retry.
        OFFLOAD_LOG_INFO << "client: server needs a full snapshot, resending";
        jsvm::SnapshotResult snap =
            jsvm::capture_snapshot(browser_->interp(),
                                   config_.snapshot_options);
        SnapshotPayload payload;
        payload.cut = timeline_.used_partition_cut == SIZE_MAX
                          ? UINT64_MAX
                          : timeline_.used_partition_cut;
        payload.program = std::move(snap.program);
        timeline_.snapshot_stats = snap.stats;
        timeline_.used_differential = false;
        net::Message msg;
        msg.type = net::MessageType::kSnapshot;
        msg.name = bundle_.name;
        msg.payload = payload.encode();
        timeline_.snapshot_bytes = msg.wire_size();
        double recapture_s = config_.profile.snapshot_capture_s(
            snap.stats.total_bytes);
        timeline_.capture_s += recapture_s;
        awaiting_result_ = false;  // send_snapshot_message re-arms it
        send_snapshot_message(std::move(msg), recapture_s);
        return;
      }
      if (util::starts_with(message.name, "overloaded") && awaiting_result_) {
        // The server shed our request (admission queue full). The realm is
        // untouched since capture — the offloaded event is still at the
        // queue front — so finish this inference locally.
        OFFLOAD_LOG_INFO << "client: server overloaded, falling back to "
                            "local execution";
        awaiting_result_ = false;
        inflight_snapshot_.reset();
        timeline_.local_fallback = true;
        timeline_.offloaded = false;  // the result never came from the server
        run_locally();
        return;
      }
      if (util::starts_with(message.name, "not_installed")) {
        if (config_.install_on_demand && !overlay_sent_) {
          OFFLOAD_LOG_INFO << "client: server lacks offloading system, "
                              "sending VM overlay";
          overlay_sent_ = true;
          model_sent_ = false;  // the refused upload never landed
          send_overlay();
        } else if (!config_.install_on_demand) {
          OFFLOAD_LOG_WARN << "client: server not installed and on-demand "
                              "installation disabled";
        }
      }
      return;
    }
    default:
      OFFLOAD_LOG_WARN << "client: unexpected message type "
                       << net::message_type_name(message.type);
  }
}

std::string ClientDevice::result_text() const {
  jsvm::DomNodePtr node =
      browser_->interp().document().get_element_by_id(bundle_.result_element);
  return node ? node->text : "";
}

}  // namespace offload::edge
