#include "src/edge/client_device.h"

#include <cstdlib>
#include <stdexcept>

#include "src/jsvm/snapshot.h"
#include "src/jsvm/snapshot_diff.h"
#include "src/nn/kernels.h"
#include "src/util/hash.h"
#include "src/util/logging.h"
#include "src/util/strings.h"
#include "src/vmsynth/overlay.h"
#include "src/vmsynth/vmimage.h"

namespace offload::edge {

ClientDevice::ClientDevice(sim::Simulation& sim, net::Endpoint& endpoint,
                           ClientConfig config, AppBundle bundle)
    : sim_(sim),
      endpoint_(endpoint),
      config_(std::move(config)),
      bundle_(std::move(bundle)),
      local_store_(std::make_shared<ModelStore>()) {
  if (!bundle_.network) {
    throw std::invalid_argument("ClientDevice: app bundle has no network");
  }
  // The client owns the full, trained model locally.
  obs_ = config_.obs;
  config_.controller.apply_env();
  local_store_->store_files(nn::model_files(*bundle_.network));
  browser_ = std::make_unique<BrowserHost>(config_.profile, local_store_);
  browser_->add_image("input", bundle_.input_image);
  if (supervising()) backoff_.emplace(config_.supervisor);
  servers_.push_back(&endpoint_);
  model_sent_.push_back(0);
  breakers_.emplace_back(config_.supervisor);
  endpoint_.set_handler([this](const net::Message& m) { on_message(m); });
  if (supervising()) {
    endpoint_.set_failure_handler(
        [this](const net::Message& m, int attempts) {
          on_delivery_failure(m, attempts);
        });
  }
}

std::size_t ClientDevice::attach_server(net::Endpoint& endpoint) {
  servers_.push_back(&endpoint);
  model_sent_.push_back(0);
  breakers_.emplace_back(config_.supervisor);
  endpoint.set_handler([this](const net::Message& m) { on_message(m); });
  if (supervising()) {
    endpoint.set_failure_handler(
        [this](const net::Message& m, int attempts) {
          on_delivery_failure(m, attempts);
        });
  }
  return servers_.size() - 1;
}

std::vector<nn::ModelFile> ClientDevice::files_to_send() const {
  // An adaptive controller may re-cut shallower than the click-time cut,
  // so the server needs the full weights (auto_partition's convention).
  if (controller_active()) return nn::model_files(*bundle_.network);
  if (config_.presend_rear_only && config_.partition_cut != SIZE_MAX) {
    return nn::model_files_rear_only(*bundle_.network, config_.partition_cut);
  }
  return nn::model_files(*bundle_.network);
}

void ClientDevice::send_model_files(bool count_as_presend) {
  if (model_sent()) return;
  if (config_.dedup_presend) {
    send_model_offer(count_as_presend);
    return;
  }
  model_sent() = true;
  awaiting_ack_ = true;
  ModelFilesPayload payload;
  payload.files = files_to_send();
  net::Message msg;
  msg.type = net::MessageType::kModelFiles;
  msg.name = bundle_.name;
  msg.payload = payload.encode();
  timeline_.model_upload_bytes = msg.payload.size();
  if (count_as_presend) timeline_.model_upload_started = sim_.now();
  if (obs_) {
    // One kPresend span per model send toward an ACK, on the session
    // trace. A re-send supersedes (closes) the previous open span.
    if (presend_span_) obs_->trace.close(presend_span_, sim_.now());
    presend_span_ =
        obs_->trace.open(0, 0, obs::SpanKind::kPresend,
                         "presend:" + bundle_.name, "client/protocol",
                         sim_.now());
    msg.ctx = {0, presend_span_, 0};
    obs_->metrics.add("client.model_sends");
  }
  active_endpoint().send(std::move(msg));
}

void ClientDevice::send_model_offer(bool count_as_presend) {
  // Content-addressed pre-send: ship digests, not bodies. The server
  // answers "have:<app>" (an ACK) when its blob cache covers the bundle,
  // or "send_files:<app>" naming the files it needs uploaded in full.
  model_sent() = true;
  awaiting_ack_ = true;
  ModelOfferPayload payload;
  for (const auto& f : files_to_send()) {
    payload.files.push_back(
        {f.name, util::fnv1a(std::span(f.content)), f.size()});
  }
  net::Message msg;
  msg.type = net::MessageType::kModelOffer;
  msg.name = bundle_.name;
  msg.payload = payload.encode();
  timeline_.model_upload_bytes = msg.payload.size();
  if (count_as_presend) timeline_.model_upload_started = sim_.now();
  if (obs_) {
    if (presend_span_) obs_->trace.close(presend_span_, sim_.now());
    presend_span_ =
        obs_->trace.open(0, 0, obs::SpanKind::kPresend,
                         "offer:" + bundle_.name, "client/protocol",
                         sim_.now());
    msg.ctx = {0, presend_span_, 0};
    obs_->metrics.add("client.model_offers");
  }
  active_endpoint().send(std::move(msg));
}

void ClientDevice::send_requested_files(const FileListPayload& request) {
  // The server's cache missed (some of) the offer: upload exactly the
  // files it asked for. The ACK still arrives through the normal
  // post-store path, so the pre-send span stays open until then.
  ModelFilesPayload payload;
  for (auto& f : files_to_send()) {
    for (const auto& name : request.names) {
      if (f.name == name) {
        payload.files.push_back(std::move(f));
        break;
      }
    }
  }
  net::Message msg;
  msg.type = net::MessageType::kModelFiles;
  msg.name = bundle_.name;
  msg.payload = payload.encode();
  timeline_.model_upload_bytes += msg.payload.size();
  if (obs_) {
    msg.ctx = {0, presend_span_, 0};
    obs_->metrics.add("client.model_sends");
  }
  active_endpoint().send(std::move(msg));
}

void ClientDevice::send_overlay() {
  // Build a VM overlay carrying the offloading system plus the model
  // files, so installation doubles as pre-sending.
  vmsynth::VmImage base = vmsynth::make_base_image();
  std::vector<std::pair<std::string, util::Bytes>> model_files;
  for (auto& f : files_to_send()) {
    model_files.emplace_back(f.name, std::move(f.content));
  }
  vmsynth::VmImage customized = vmsynth::make_customized_image(
      base, config_.overlay_sizes, model_files);
  vmsynth::VmOverlay overlay = vmsynth::create_overlay(base, customized);

  net::Message msg;
  msg.type = net::MessageType::kVmOverlay;
  msg.name = bundle_.name;
  msg.payload = std::move(overlay.payload);
  if (obs_) {
    if (presend_span_) obs_->trace.close(presend_span_, sim_.now());
    presend_span_ =
        obs_->trace.open(0, 0, obs::SpanKind::kPresend,
                         "overlay:" + bundle_.name, "client/protocol",
                         sim_.now());
    msg.ctx = {0, presend_span_, 0};
    obs_->metrics.add("client.overlay_sends");
  }
  active_endpoint().send(std::move(msg));
  model_sent() = true;  // the overlay carried the model files
  timeline_.model_upload_started = sim_.now();
}

void ClientDevice::start() {
  if (started_) throw std::logic_error("ClientDevice::start called twice");
  started_ = true;
  timeline_.app_started = sim_.now();

  if (config_.offload && config_.partition_cut != SIZE_MAX) {
    browser_->set_partition_cut(bundle_.name, config_.partition_cut);
  }
  browser_->interp().eval_program(bundle_.source, bundle_.name);
  browser_->interp().run_events();
  browser_->consume_compute_seconds();  // app-start compute is not measured

  if (config_.offload && config_.presend_model) {
    send_model_files(/*count_as_presend=*/true);
    presend_attempts_ = 1;
    arm_phase(Phase::kPresend, config_.supervisor.presend_deadline);
  }
}

void ClientDevice::click_at(sim::SimTime at) {
  sim_.schedule_at(at, [this] { begin_inference(); });
}

std::size_t ClientDevice::pick_partition_cut() {
  if (!config_.auto_partition) return config_.partition_cut;
  if (!client_cost_) {
    const nn::Network* nets[] = {bundle_.network.get()};
    client_cost_ = nn::LayerCostModel::profile_device(config_.profile, nets);
    server_cost_ = nn::LayerCostModel::profile_device(
        nn::DeviceProfile::edge_server(), nets);
  }
  nn::Partitioner partitioner(*bundle_.network, *client_cost_, *server_cost_);
  nn::PartitionCandidate best =
      partitioner.best(bandwidth_.estimate_bps(), 0.001);
  return best.cut;
}

// ---------------------------------------------------------------------------
// Partition controller
// ---------------------------------------------------------------------------

void ClientDevice::ensure_controller() {
  if (controller_) return;
  if (!client_cost_) {
    const nn::Network* nets[] = {bundle_.network.get()};
    client_cost_ = nn::LayerCostModel::profile_device(config_.profile, nets);
    server_cost_ = nn::LayerCostModel::profile_device(
        nn::DeviceProfile::edge_server(), nets);
  }
  controller_.emplace(config_.controller, bundle_.network, *client_cost_,
                      *server_cost_);
}

ctrl::LinkSignals ClientDevice::gather_signals(std::size_t server) {
  ctrl::LinkSignals s;
  if (config_.signals) s = config_.signals(server);
  if (s.bandwidth_bps <= 0) s.bandwidth_bps = bandwidth_.estimate_bps();
  return s;
}

void ClientDevice::apply_decision(ctrl::Decision decision,
                                  const char* origin) {
  decision_ = decision;
  decision_recorded_ = false;
  if (decision.local) {
    // The controller says local execution wins under current conditions.
    // The app still needs a valid cut for its inference_front/rear calls
    // (same idiom as the auto_partition local branch).
    timeline_.local_fallback = true;
    std::size_t local_cut = config_.partition_cut != SIZE_MAX
                                ? config_.partition_cut
                                : bundle_.network->cut_points().front();
    browser_->set_partition_cut(bundle_.name, local_cut);
    timeline_.used_partition_cut = local_cut;
  } else {
    browser_->set_partition_cut(bundle_.name, decision.cut);
    timeline_.used_partition_cut = decision.cut;
  }
  count("ctrl.decisions");
  if (decision.local) count("ctrl.local_decisions");
  if (obs_) {
    obs::SpanId s = obs_->trace.emit(
        trace_, root_span_, obs::SpanKind::kCtrlDecision,
        std::string("ctrl:") + origin, "client", sim_.now(), sim_.now(), 0.0);
    obs_->trace.attr(s, "policy", policy_name(config_.controller.policy));
    obs_->trace.attr(s, "cut", static_cast<std::int64_t>(decision.cut));
    obs_->trace.attr(s, "local",
                     static_cast<std::int64_t>(decision.local ? 1 : 0));
    obs_->trace.attr(s, "server",
                     static_cast<std::int64_t>(decision.server));
  }
}

void ClientDevice::record_decision(bool ok, double observed_s) {
  if (!controller_ || !decision_ || decision_recorded_) return;
  decision_recorded_ = true;
  ctrl::Outcome o;
  o.server = decision_->server;
  o.arm = decision_->arm;
  o.local = decision_->local;
  o.ok = ok;
  o.observed_s = observed_s;
  o.predicted_s = decision_->predicted_s;
  controller_->record(o);
}

std::optional<ctrl::Decision> ClientDevice::plan_recut() {
  if (!controller_active() || !controller_ || !decision_) return std::nullopt;
  // After a hedge the realm has consumed the deferred event — the front
  // cannot be re-run; and full-inference offloads have nothing to re-cut.
  if (hedge_running_) return std::nullopt;
  if (!awaiting_result_ || !inflight_snapshot_) return std::nullopt;
  if (timeline_.used_partition_cut == SIZE_MAX) return std::nullopt;
  ctrl::Decision d = controller_->redecide(
      active_server_, gather_signals(active_server_), attempts_);
  if (!d.local && d.cut == timeline_.used_partition_cut) {
    return std::nullopt;  // same cut: a plain retry is cheaper
  }
  return d;
}

void ClientDevice::perform_recut(const ctrl::Decision& decision) {
  if (!awaiting_result_ || !inflight_snapshot_ || hedge_running_) return;
  // The superseded decision pays for the time burned on it so far.
  record_decision(false, (sim_.now() - timeline_.clicked).to_seconds());
  decision_ = decision;
  decision_recorded_ = false;
  count("ctrl.recuts");
  OFFLOAD_LOG_INFO << "client: re-cutting in flight to node " << decision.cut;
  if (obs_) {
    obs::SpanId s = obs_->trace.emit(
        trace_, root_span_, obs::SpanKind::kCtrlDecision, "ctrl:recut",
        "client", sim_.now(), sim_.now(), 0.0);
    obs_->trace.attr(s, "policy", policy_name(config_.controller.policy));
    obs_->trace.attr(s, "cut", static_cast<std::int64_t>(decision.cut));
    obs_->trace.attr(s, "server",
                     static_cast<std::int64_t>(decision.server));
  }

  // The deferred offload event is stale (it carries the old cut's feature
  // state): drop it, re-run the front at the new cut, and recapture. The
  // recompute is charged honestly — a re-cut is only worth it when the
  // saved transfer outweighs it.
  jsvm::Interpreter& interp = browser_->interp();
  interp.pop_front_event();
  browser_->set_partition_cut(bundle_.name, decision.cut);
  timeline_.used_partition_cut = decision.cut;
  jsvm::DomNodePtr target =
      interp.document().get_element_by_id(bundle_.click_target);
  if (!target) {
    abandon_remote("recut: no click target");
    return;
  }
  interp.enqueue_event(std::move(target), "click", jsvm::Undefined{});
  interp.offload_hook = [this](const jsvm::PendingEvent& ev) {
    return ev.type == config_.offload_event;
  };
  {
    obs::ScopedMetrics nn_metrics(obs_ ? &obs_->metrics : nullptr);
    interp.run_events();
  }
  double exec_s = browser_->consume_compute_seconds();
  timeline_.client_exec_s += exec_s;
  const sim::SimTime exec_end = sim_.now() + sim::SimTime::seconds(exec_s);
  if (obs_) {
    const obs::SpanId exec_span =
        obs_->trace.emit(trace_, root_span_, obs::SpanKind::kClientExec,
                         "exec_recut", "client", sim_.now(), exec_end, exec_s);
    nn::tag_kernel_backend_span(obs_->trace, exec_span);
  }
  auto pending = interp.take_pending_offload();
  if (!pending) {
    // The app ran to completion locally (no offload event at the new cut).
    timeline_.local_fallback = true;
    timeline_.offloaded = false;
    awaiting_result_ = false;
    inflight_snapshot_.reset();
    cancel_supervision_timers();
    timeline_.finished = exec_end;
    finish_trace();
    return;
  }
  jsvm::SnapshotResult snap =
      jsvm::capture_snapshot(interp, config_.snapshot_options);
  SnapshotPayload payload;
  payload.cut = decision.cut;
  payload.program = std::move(snap.program);
  timeline_.snapshot_stats = snap.stats;
  timeline_.used_differential = false;
  double capture_s =
      config_.profile.snapshot_capture_s(snap.stats.total_bytes);
  timeline_.capture_s += capture_s;
  if (obs_) {
    obs_->trace.emit(trace_, root_span_, obs::SpanKind::kClientCapture,
                     "recapture", "client", exec_end,
                     exec_end + sim::SimTime::seconds(capture_s), capture_s);
    obs_->metrics.add("client.recaptures");
  }
  net::Message msg;
  msg.type = net::MessageType::kSnapshot;
  msg.name = bundle_.name;
  msg.payload = payload.encode();
  timeline_.snapshot_bytes = msg.wire_size();
  inflight_snapshot_ = std::move(msg);
  baseline_.reset();  // the re-run front invalidated the shared baseline
  sim_.schedule(sim::SimTime::seconds(exec_s + capture_s), [this] {
    if (!awaiting_result_ || !inflight_snapshot_) return;
    if (model_sent()) {
      resend_inflight();
    } else {
      // Failover landed on a cold server: presend first; the ACK replays
      // the refreshed snapshot.
      begin_recovery("recut on cold server");
    }
  });
}

void ClientDevice::apply_route() {
  candidates_.clear();
  for (std::size_t i = 0; i < servers_.size(); ++i) candidates_.push_back(i);
  if (!config_.route) return;
  std::vector<std::size_t> order = config_.route(history_.size());
  std::vector<std::size_t> valid;
  for (std::size_t id : order) {
    if (id >= servers_.size()) continue;
    bool dup = false;
    for (std::size_t seen : valid) {
      if (seen == id) {
        dup = true;
        break;
      }
    }
    if (!dup) valid.push_back(id);
  }
  if (valid.empty()) return;
  candidates_ = std::move(valid);
  if (candidates_.front() != active_server_) {
    active_server_ = candidates_.front();
    baseline_.reset();  // sessions do not migrate between servers
  }
}

void ClientDevice::notify_done() {
  if (done_notified_ || !timeline_.finished) return;
  done_notified_ = true;
  if (config_.on_inference_done) {
    config_.on_inference_done(active_server_, timeline_.offloaded);
  }
}

void ClientDevice::begin_inference() {
  if (timeline_.finished) {
    // Archive the previous inference and start a fresh per-inference
    // record, keeping app-level fields (start, upload, ACK).
    history_.push_back(timeline_);
    ClientTimeline next;
    next.app_started = timeline_.app_started;
    next.model_upload_started = timeline_.model_upload_started;
    next.ack_received = timeline_.ack_received;
    next.model_upload_bytes = timeline_.model_upload_bytes;
    timeline_ = std::move(next);
  }
  timeline_.clicked = sim_.now();
  timeline_.used_partition_cut = config_.partition_cut;
  apply_route();
  timeline_.server_index = static_cast<int>(active_server_);
  if (obs_) {
    // A still-open root (an inference that never finished) is closed at
    // the new click rather than leaking.
    if (root_span_) obs_->trace.close(root_span_, sim_.now());
    trace_ = obs_->trace.new_trace();
    root_span_ = obs_->trace.open(
        trace_, 0, obs::SpanKind::kInference,
        "inference#" + std::to_string(history_.size() + 1), "client",
        sim_.now());
    up_span_ = 0;
    recovery_span_ = 0;
  }

  // Per-inference supervisor state.
  attempts_ = 0;
  hedge_running_ = false;
  hedge_exec_s_ = 0;
  ignore_late_result_ = false;
  resend_snapshot_on_ack_ = false;
  hold_snapshot_for_ack_ = false;
  done_notified_ = false;
  recovery_started_.reset();
  cancel_supervision_timers();
  decision_.reset();
  decision_recorded_ = false;
  pending_recut_.reset();

  if (controller_active()) {
    ensure_controller();
    apply_decision(
        controller_->decide(active_server_, gather_signals(active_server_)),
        "click");
  } else if (config_.offload && config_.auto_partition) {
    std::size_t cut = pick_partition_cut();
    if (cut + 1 >= bundle_.network->size()) {
      // The partitioner says local execution wins under current network
      // conditions; honor it for this inference. The app still needs a
      // valid cut for its inference_front/rear calls.
      timeline_.local_fallback = true;
      std::size_t local_cut = config_.partition_cut != SIZE_MAX
                                  ? config_.partition_cut
                                  : bundle_.network->cut_points().front();
      browser_->set_partition_cut(bundle_.name, local_cut);
      timeline_.used_partition_cut = local_cut;
    } else {
      timeline_.used_partition_cut = cut;
      browser_->set_partition_cut(bundle_.name, cut);
    }
  }

  jsvm::DomNodePtr target =
      browser_->interp().document().get_element_by_id(bundle_.click_target);
  if (!target) {
    throw std::runtime_error("ClientDevice: no element '" +
                             bundle_.click_target + "' to click");
  }
  browser_->interp().enqueue_event(std::move(target), "click",
                                   jsvm::Undefined{});
  run_app_events();
}

void ClientDevice::run_locally() {
  jsvm::Interpreter& interp = browser_->interp();
  interp.offload_hook = nullptr;
  {
    obs::ScopedMetrics nn_metrics(obs_ ? &obs_->metrics : nullptr);
    interp.run_events();
  }
  double exec_s = browser_->consume_compute_seconds();
  timeline_.client_exec_s += exec_s;
  timeline_.finished = sim_.now() + sim::SimTime::seconds(exec_s);
  if (obs_) {
    const obs::SpanId exec_span =
        obs_->trace.emit(trace_, root_span_, obs::SpanKind::kClientExec,
                         "exec_local", "client", sim_.now(),
                         *timeline_.finished, exec_s);
    nn::tag_kernel_backend_span(obs_->trace, exec_span);
  }
  finish_trace();
}

void ClientDevice::run_app_events() {
  jsvm::Interpreter& interp = browser_->interp();
  bool want_offload = config_.offload && !timeline_.local_fallback;
  if (want_offload && config_.local_fallback_before_ack &&
      !timeline_.ack_received && config_.presend_model) {
    // The model is still uploading; execute locally this time
    // (Section IV.A's recommendation).
    timeline_.local_fallback = true;
    want_offload = false;
  }
  if (want_offload && supervising() &&
      !active_breaker().allow(sim_.now())) {
    // The active server's breaker is open. Route around it: the next
    // candidate whose breaker admits, else local execution for this click.
    std::size_t next = next_usable_server();
    if (next != servers_.size()) {
      ++sup_stats_.failovers;
      count("supervisor.failovers");
      OFFLOAD_LOG_WARN << "client: breaker open, routing to server " << next;
      active_server_ = next;
      timeline_.server_index = static_cast<int>(next);
      baseline_.reset();  // sessions do not migrate between servers
    } else {
      ++sup_stats_.breaker_short_circuits;
      count("supervisor.breaker_short_circuits");
      OFFLOAD_LOG_WARN << "client: breaker open, executing locally";
      timeline_.local_fallback = true;
      want_offload = false;
    }
  }
  if (!want_offload) {
    run_locally();
    return;
  }

  interp.offload_hook = [this](const jsvm::PendingEvent& ev) {
    return ev.type == config_.offload_event;
  };
  {
    obs::ScopedMetrics nn_metrics(obs_ ? &obs_->metrics : nullptr);
    interp.run_events();
  }
  double exec_s = browser_->consume_compute_seconds();
  timeline_.client_exec_s += exec_s;
  const sim::SimTime exec_end = sim_.now() + sim::SimTime::seconds(exec_s);
  if (obs_) {
    const obs::SpanId exec_span =
        obs_->trace.emit(trace_, root_span_, obs::SpanKind::kClientExec,
                         "exec_front", "client", sim_.now(), exec_end, exec_s);
    nn::tag_kernel_backend_span(obs_->trace, exec_span);
  }

  auto pending = interp.take_pending_offload();
  if (!pending) {
    // Ran to completion locally (app never raised the offload event).
    timeline_.finished = exec_end;
    finish_trace();
    return;
  }

  // Offload point reached: capture the snapshot (the pending event is
  // still at the queue front and rides along). Repeat offloads diff
  // against the state the server kept.
  SnapshotPayload payload;
  payload.cut = timeline_.used_partition_cut == SIZE_MAX
                    ? UINT64_MAX
                    : timeline_.used_partition_cut;
  if (config_.differential_snapshots && baseline_) {
    jsvm::DiffSnapshotResult diff =
        jsvm::capture_snapshot_diff(interp, *baseline_,
                                    config_.snapshot_options);
    payload.differential = !diff.full_fallback;
    payload.base_version = diff.base_version;
    payload.program = std::move(diff.program);
    timeline_.snapshot_stats = diff.stats;
    timeline_.used_differential = payload.differential;
  } else {
    jsvm::SnapshotResult snap =
        jsvm::capture_snapshot(interp, config_.snapshot_options);
    payload.program = std::move(snap.program);
    timeline_.snapshot_stats = snap.stats;
  }
  timeline_.capture_s = config_.profile.snapshot_capture_s(
      timeline_.snapshot_stats.total_bytes);
  timeline_.offloaded = true;
  if (obs_) {
    // The capture is charged immediately after the front execution; its
    // span abuts the exec span so the two tile [now, snapshot send).
    obs_->trace.emit(trace_, root_span_, obs::SpanKind::kClientCapture,
                     "capture", "client", exec_end,
                     exec_end + sim::SimTime::seconds(timeline_.capture_s),
                     timeline_.capture_s);
  }

  net::Message msg;
  msg.type = net::MessageType::kSnapshot;
  msg.name = bundle_.name;
  msg.payload = payload.encode();
  timeline_.snapshot_bytes = msg.wire_size();

  send_snapshot_message(std::move(msg), exec_s + timeline_.capture_s);
}

void ClientDevice::send_snapshot_message(net::Message msg, double busy_s) {
  awaiting_result_ = true;
  sim_.schedule(sim::SimTime::seconds(busy_s), [this,
                                                msg = std::move(msg)]() mutable {
    // No pre-send (or ACK still pending with nothing in flight): the model
    // must accompany the snapshot (Section III.B.1's slow path).
    const bool model_pending = !model_sent();
    send_model_files(/*count_as_presend=*/false);
    if (config_.dedup_presend && model_pending) {
      // Dedup slow path: the offer has to resolve into an ACK (cache hit
      // or an upload of the missing files) before the snapshot can run
      // remotely — sent now it would only bounce with "model_missing".
      // Park it; the ACK dispatches it without counting a retry.
      inflight_snapshot_ = std::move(msg);
      hold_snapshot_for_ack_ = true;
      if (supervising()) {
        arm_phase(Phase::kPresend, config_.supervisor.presend_deadline);
        if (config_.supervisor.hedge_after != sim::SimTime::zero() &&
            !hedge_running_ && !hedge_timer_.valid()) {
          hedge_timer_ = sim_.schedule(config_.supervisor.hedge_after,
                                       [this] { start_hedge(); });
        }
      }
      return;
    }
    timeline_.snapshot_sent = sim_.now();
    inflight_snapshot_ = msg;
    ++attempts_;
    mark_snapshot_send(msg, "snapshot_send");
    active_endpoint().send(std::move(msg));
    if (supervising()) {
      arm_upload_watchdog();
      if (config_.supervisor.hedge_after != sim::SimTime::zero() &&
          !hedge_running_ && !hedge_timer_.valid()) {
        hedge_timer_ = sim_.schedule(config_.supervisor.hedge_after,
                                     [this] { start_hedge(); });
      }
    }
  });
}

void ClientDevice::dispatch_inflight_snapshot() {
  if (!inflight_snapshot_) return;
  timeline_.snapshot_sent = sim_.now();
  ++attempts_;
  net::Message msg = *inflight_snapshot_;
  mark_snapshot_send(msg, "snapshot_send");
  active_endpoint().send(std::move(msg));
  if (supervising()) arm_upload_watchdog();
}

// ---------------------------------------------------------------------------
// Supervisor machinery
// ---------------------------------------------------------------------------

void ClientDevice::arm_phase(Phase phase, sim::SimTime deadline) {
  cancel_phase_timer();
  if (!supervising() || deadline == sim::SimTime::zero()) return;
  phase_ = phase;
  phase_timer_ =
      sim_.schedule(deadline, [this, phase] { on_phase_timeout(phase); });
}

void ClientDevice::arm_upload_watchdog() {
  const SupervisorConfig& s = config_.supervisor;
  if (s.expect_phase_acks) {
    arm_phase(Phase::kUpload, s.upload_deadline);
  } else {
    // No per-phase receipts from this server: watch the whole round trip
    // with the summed budget instead.
    arm_phase(Phase::kUpload,
              s.upload_deadline + s.execute_deadline + s.download_deadline);
  }
}

void ClientDevice::cancel_phase_timer() {
  if (phase_timer_.valid()) sim_.cancel(phase_timer_);
  phase_timer_ = sim::EventHandle{};
  phase_ = Phase::kIdle;
}

void ClientDevice::cancel_supervision_timers() {
  cancel_phase_timer();
  if (hedge_timer_.valid()) sim_.cancel(hedge_timer_);
  hedge_timer_ = sim::EventHandle{};
}

void ClientDevice::on_phase_timeout(Phase phase) {
  phase_timer_ = sim::EventHandle{};
  phase_ = Phase::kIdle;
  ++sup_stats_.deadline_expiries;
  count("supervisor.deadline_expiries");
  record_breaker_outcome(/*success=*/false);
  if (phase == Phase::kPresend) {
    if (!awaiting_ack_) return;  // raced with the ACK
    if (awaiting_result_ && inflight_snapshot_) {
      // A snapshot is riding on this ACK (recovery or the slow path):
      // funnel the whole exchange through the retry policy.
      retry_snapshot("model pre-send deadline");
      return;
    }
    if (presend_attempts_ >= config_.supervisor.max_attempts) {
      OFFLOAD_LOG_WARN << "client: model pre-send abandoned after "
                       << presend_attempts_ << " attempts";
      return;  // inferences proceed locally until the server recovers
    }
    sim::SimTime wait = backoff_->delay(presend_attempts_);
    sup_stats_.backoff_wait_s += wait.to_seconds();
    ++sup_stats_.retries;
    count("supervisor.retries");
    if (obs_) {
      // Pre-send backoffs belong to the app session, not any inference:
      // a trace-0 marker, never a kRetryBackoff phase span.
      obs_->trace.marker(0, 0, "presend_backoff", "client/protocol",
                         sim_.now());
    }
    OFFLOAD_LOG_WARN << "client: model ACK overdue, re-sending after "
                     << wait.str();
    sim_.schedule(wait, [this] {
      if (!awaiting_ack_) return;
      ++presend_attempts_;
      model_sent() = false;
      send_model_files(/*count_as_presend=*/false);
      arm_phase(Phase::kPresend, config_.supervisor.presend_deadline);
    });
    return;
  }
  retry_snapshot(phase == Phase::kUpload     ? "upload deadline"
                 : phase == Phase::kExecute  ? "execution deadline"
                                             : "download deadline");
}

void ClientDevice::retry_snapshot(const char* reason) {
  if (!supervising() || !awaiting_result_) return;
  cancel_phase_timer();
  if (!inflight_snapshot_) {
    abandon_remote(reason);
    return;
  }
  if (attempts_ >= config_.supervisor.max_attempts ||
      !active_breaker().allow(sim_.now())) {
    if (try_failover()) return;
    abandon_remote(reason);
    return;
  }
  if (auto recut = plan_recut()) {
    if (recut->local) {
      // The controller prices the remote side out entirely: charge the
      // superseded decision and let the local decision govern the finish.
      record_decision(false, (sim_.now() - timeline_.clicked).to_seconds());
      decision_ = *recut;
      decision_recorded_ = false;
      count("ctrl.recuts_local");
      abandon_remote("controller chose local");
      return;
    }
    // Re-cut after the backoff wait instead of resending the same bytes.
    pending_recut_ = *recut;
  }
  sim::SimTime wait = backoff_->delay(attempts_);
  sup_stats_.backoff_wait_s += wait.to_seconds();
  timeline_.backoff_wait_s += wait.to_seconds();
  if (obs_) {
    obs_->trace.emit(trace_, root_span_, obs::SpanKind::kRetryBackoff,
                     std::string("backoff:") + reason, "client", sim_.now(),
                     sim_.now() + wait, wait.to_seconds());
  }
  OFFLOAD_LOG_INFO << "client: offload attempt " << attempts_ << " failed ("
                   << reason << "), retrying after " << wait.str();
  sim_.schedule(wait, [this] {
    if (!awaiting_result_ || !inflight_snapshot_) return;
    if (pending_recut_) {
      ctrl::Decision d = *pending_recut_;
      pending_recut_.reset();
      perform_recut(d);
      return;
    }
    resend_inflight();
  });
}

void ClientDevice::resend_inflight() {
  if (!inflight_snapshot_) return;
  hold_snapshot_for_ack_ = false;
  ++attempts_;
  ++sup_stats_.retries;
  ++timeline_.retries;
  count("supervisor.retries");
  count("client.retries");
  timeline_.snapshot_sent = sim_.now();
  mark_snapshot_send(*inflight_snapshot_, "snapshot_resend");
  active_endpoint().send(*inflight_snapshot_);
  arm_upload_watchdog();
}

void ClientDevice::record_breaker_outcome(bool success) {
  CircuitBreaker& breaker = active_breaker();
  const bool was_tripped =
      breaker.state(sim_.now()) != CircuitBreaker::State::kClosed;
  const int opened_before = breaker.times_opened();
  if (success) {
    breaker.record_success(sim_.now());
  } else {
    breaker.record_failure(sim_.now());
  }
  if (breaker.times_opened() > opened_before) {
    ++sup_stats_.breaker_opens;
    count("supervisor.breaker_opens");
  }
  const bool tripped =
      breaker.state(sim_.now()) != CircuitBreaker::State::kClosed;
  if (obs_ && tripped != was_tripped) {
    obs_->metrics.set_gauge(
        "supervisor.breaker_open.server" + std::to_string(active_server_),
        tripped ? 1 : 0);
  }
}

std::size_t ClientDevice::next_usable_server() {
  if (candidates_.empty()) {
    for (std::size_t i = 0; i < servers_.size(); ++i) candidates_.push_back(i);
  }
  std::size_t pos = 0;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i] == active_server_) {
      pos = i;
      break;
    }
  }
  for (std::size_t step = 1; step <= candidates_.size(); ++step) {
    std::size_t idx = candidates_[(pos + step) % candidates_.size()];
    if (idx == active_server_) continue;
    if (breakers_[idx].allow(sim_.now())) return idx;
  }
  return servers_.size();
}

bool ClientDevice::try_failover() {
  std::size_t next = next_usable_server();
  if (next == servers_.size()) return false;
  ++sup_stats_.failovers;
  count("supervisor.failovers");
  OFFLOAD_LOG_WARN << "client: failing over to server " << next;
  active_server_ = next;
  timeline_.server_index = static_cast<int>(next);
  baseline_.reset();  // sessions do not migrate between servers
  attempts_ = 0;      // fresh retry budget against the new server
  if (auto recut = plan_recut()) {
    // The failover carries a per-server cut override: the new server's
    // load (and our learned corrections for it) may favor another split.
    if (recut->local) {
      record_decision(false, (sim_.now() - timeline_.clicked).to_seconds());
      decision_ = *recut;
      decision_recorded_ = false;
      count("ctrl.recuts_local");
      abandon_remote("controller chose local");
      return true;
    }
    pending_recut_.reset();
    perform_recut(*recut);  // resends (or recovers) with the new cut
    return true;
  }
  if (model_sent()) {
    // This server already holds the model from an earlier stint.
    resend_inflight();
  } else {
    begin_recovery("failover");
  }
  return true;
}

void ClientDevice::begin_recovery(const char* reason) {
  OFFLOAD_LOG_WARN << "client: recovery (" << reason
                   << "): re-presending model";
  ++sup_stats_.model_represends;
  count("supervisor.model_represends");
  timeline_.recovered = true;
  recovery_started_ = sim_.now();
  if (obs_) {
    // Closed with the exact `spent` charge when the replacement model is
    // ACKed, or with zero charge if the recovery is abandoned.
    if (recovery_span_) obs_->trace.close(recovery_span_, sim_.now(), 0.0);
    recovery_span_ = obs_->trace.open(
        trace_, root_span_, obs::SpanKind::kCrashRecovery,
        std::string("recovery:") + reason, "client", sim_.now());
  }
  baseline_.reset();  // any kept session died with the server
  model_sent() = false;
  resend_snapshot_on_ack_ = true;
  presend_attempts_ = 1;
  send_model_files(/*count_as_presend=*/false);
  arm_phase(Phase::kPresend, config_.supervisor.presend_deadline);
}

void ClientDevice::abandon_remote(const char* reason) {
  OFFLOAD_LOG_WARN << "client: abandoning offload (" << reason
                   << "), finishing locally";
  ++sup_stats_.local_fallbacks;
  count("supervisor.local_fallbacks");
  if (obs_) {
    obs_->trace.marker(trace_, root_span_, std::string("abandon:") + reason,
                       "client", sim_.now());
  }
  cancel_supervision_timers();
  awaiting_result_ = false;
  inflight_snapshot_.reset();
  resend_snapshot_on_ack_ = false;
  hold_snapshot_for_ack_ = false;
  ignore_late_result_ = true;
  timeline_.local_fallback = true;
  timeline_.offloaded = false;  // the result will not come from a server
  if (hedge_running_) return;  // the running hedge is already the fallback
  run_locally();
}

void ClientDevice::start_hedge() {
  hedge_timer_ = sim::EventHandle{};
  if (!awaiting_result_ || hedge_running_ || timeline_.finished) return;
  ++sup_stats_.hedges_started;
  count("supervisor.hedges_started");
  timeline_.hedged = true;
  hedge_running_ = true;
  hedge_started_at_ = sim_.now();
  OFFLOAD_LOG_INFO << "client: offload past its latency budget, starting "
                      "hedged local execution";
  // The offloaded event is still at the realm's queue front (capture left
  // it in place), so the hedge is simply: stop deferring, run it here.
  jsvm::Interpreter& interp = browser_->interp();
  interp.offload_hook = nullptr;
  {
    obs::ScopedMetrics nn_metrics(obs_ ? &obs_->metrics : nullptr);
    interp.run_events();
  }
  hedge_exec_s_ = browser_->consume_compute_seconds();
  hedge_finish_at_ = sim_.now() + sim::SimTime::seconds(hedge_exec_s_);
  hedge_finish_timer_ = sim_.schedule(sim::SimTime::seconds(hedge_exec_s_),
                                      [this] { finish_hedge(); });
}

void ClientDevice::finish_hedge() {
  hedge_finish_timer_ = sim::EventHandle{};
  if (!hedge_running_) return;
  hedge_running_ = false;
  timeline_.client_exec_s += hedge_exec_s_;
  timeline_.finished = sim_.now();
  if (obs_) {
    const obs::SpanId exec_span =
        obs_->trace.emit(trace_, root_span_, obs::SpanKind::kClientExec,
                         "exec_hedge", "client", hedge_started_at_,
                         sim_.now(), hedge_exec_s_);
    nn::tag_kernel_backend_span(obs_->trace, exec_span);
  }
  if (!awaiting_result_) {
    // Remote was abandoned earlier; this hedge run is the fallback result.
    finish_trace();
    return;
  }
  // The local run beat the server: cancel the remote side of the race.
  ++sup_stats_.hedge_local_wins;
  count("supervisor.hedge_local_wins");
  timeline_.hedge_local_win = true;
  timeline_.local_fallback = true;
  timeline_.offloaded = false;
  record_breaker_outcome(/*success=*/false);
  awaiting_result_ = false;
  inflight_snapshot_.reset();
  resend_snapshot_on_ack_ = false;
  hold_snapshot_for_ack_ = false;
  ignore_late_result_ = true;
  cancel_supervision_timers();
  finish_trace();
}

void ClientDevice::on_delivery_failure(const net::Message& message,
                                       int attempts) {
  if (!supervising()) return;
  OFFLOAD_LOG_WARN << "client: delivery failed for "
                   << net::message_type_name(message.type) << " after "
                   << attempts << " attempt(s)";
  record_breaker_outcome(/*success=*/false);
  if (message.type == net::MessageType::kSnapshot) {
    retry_snapshot("delivery failure");
    return;
  }
  if (message.type == net::MessageType::kModelFiles && awaiting_ack_) {
    if (presend_attempts_ >= config_.supervisor.max_attempts) return;
    sim::SimTime wait = backoff_->delay(presend_attempts_);
    sup_stats_.backoff_wait_s += wait.to_seconds();
    ++sup_stats_.retries;
    count("supervisor.retries");
    if (obs_) {
      obs_->trace.marker(0, 0, "presend_backoff", "client/protocol",
                         sim_.now());
    }
    sim_.schedule(wait, [this] {
      if (!awaiting_ack_) return;
      ++presend_attempts_;
      model_sent() = false;
      send_model_files(/*count_as_presend=*/false);
      arm_phase(Phase::kPresend, config_.supervisor.presend_deadline);
    });
  }
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

void ClientDevice::on_message(const net::Message& message) {
  switch (message.type) {
    case net::MessageType::kAck: {
      if (obs_ && presend_span_) {
        // The pre-send span covers send -> ACK (store time included).
        obs_->trace.close(presend_span_, sim_.now());
        presend_span_ = 0;
      }
      if (supervising()) {
        awaiting_ack_ = false;
        record_breaker_outcome(/*success=*/true);
        if (phase_ == Phase::kPresend) cancel_phase_timer();
      }
      if (!timeline_.ack_received) {
        timeline_.ack_received = sim_.now();
        // The completed upload doubles as a bandwidth observation
        // (Section III.B.2's "runtime network status").
        if (timeline_.model_upload_bytes > 0) {
          bandwidth_.observe(timeline_.model_upload_bytes,
                             *timeline_.ack_received -
                                 timeline_.model_upload_started);
        }
      }
      if (resend_snapshot_on_ack_ && awaiting_result_ && inflight_snapshot_) {
        // Crash recovery / failover: the model landed on the (re)started
        // server — now replay the snapshot that was in flight.
        resend_snapshot_on_ack_ = false;
        if (recovery_started_) {
          double spent = (sim_.now() - *recovery_started_).to_seconds();
          sup_stats_.recovery_s += spent;
          timeline_.recovery_s += spent;
          recovery_started_.reset();
          if (obs_ && recovery_span_) {
            obs_->trace.close(recovery_span_, sim_.now(), spent);
            recovery_span_ = 0;
          }
        }
        resend_inflight();
        return;
      }
      if (hold_snapshot_for_ack_ && awaiting_result_ && inflight_snapshot_) {
        // The dedup pre-send resolved (cache hit or completed upload):
        // the parked snapshot goes out now, as a first send, not a retry.
        hold_snapshot_for_ack_ = false;
        dispatch_inflight_snapshot();
        return;
      }
      if (util::starts_with(message.name, "installed:") && awaiting_result_ &&
          inflight_snapshot_) {
        // Our earlier snapshot was refused pre-install; send it again.
        timeline_.snapshot_sent = sim_.now();
        mark_snapshot_send(*inflight_snapshot_, "snapshot_send");
        active_endpoint().send(*inflight_snapshot_);
        if (supervising()) arm_upload_watchdog();
      }
      return;
    }
    case net::MessageType::kResultSnapshot: {
      // Close the server's transmit-down span at arrival, even for results
      // about to be discarded — the bytes did land here.
      if (obs_) obs_->trace.close(message.ctx.span, sim_.now());
      if (ignore_late_result_) {
        // This inference already finished locally (hedge win or
        // abandonment); the straggler loses the race.
        OFFLOAD_LOG_INFO << "client: dropping late result snapshot";
        ignore_late_result_ = false;
        return;
      }
      if (!awaiting_result_) {
        OFFLOAD_LOG_WARN << "client: unexpected result snapshot";
        return;
      }
      if (!payload_intact(message)) {
        // Damaged on the downlink. Supervised: treat as one more
        // retryable failure. Unsupervised: surface the typed error.
        if (!supervising()) throw PayloadCorruptError(message);
        record_breaker_outcome(/*success=*/false);
        retry_snapshot("corrupt result payload");
        return;
      }
      SnapshotPayload payload =
          SnapshotPayload::decode(std::span(message.payload));
      double restore_s =
          config_.profile.snapshot_restore_s(payload.program.size());
      if (hedge_running_) {
        // Both runners are live: the remote result completes at
        // now + restore; the local hedge at hedge_finish_at_. First
        // finisher takes it.
        if (sim_.now() + sim::SimTime::seconds(restore_s) >
            hedge_finish_at_) {
          OFFLOAD_LOG_INFO << "client: local hedge will finish first, "
                              "discarding remote result";
          return;  // finish_hedge() completes the inference
        }
        hedge_running_ = false;
        if (hedge_finish_timer_.valid()) sim_.cancel(hedge_finish_timer_);
        hedge_finish_timer_ = sim::EventHandle{};
        timeline_.hedge_wasted_s += hedge_exec_s_;
        ++sup_stats_.hedge_remote_wins;
        count("supervisor.hedge_remote_wins");
      }
      if (supervising()) {
        cancel_supervision_timers();
        record_breaker_outcome(/*success=*/true);
      }
      awaiting_result_ = false;
      inflight_snapshot_.reset();
      resend_snapshot_on_ack_ = false;
      hold_snapshot_for_ack_ = false;
      timeline_.result_received = sim_.now();
      // Adopt the new execution state on a fresh page (the snapshot is a
      // self-contained app).
      browser_->reset_realm();
      if (timeline_.used_partition_cut != SIZE_MAX) {
        browser_->set_partition_cut(bundle_.name,
                                    timeline_.used_partition_cut);
      }
      jsvm::restore_snapshot(browser_->interp(), payload.program);
      {
        obs::ScopedMetrics nn_metrics(obs_ ? &obs_->metrics : nullptr);
        browser_->interp().run_events();
      }
      browser_->consume_compute_seconds();
      if (config_.differential_snapshots) {
        // This restored state is now the baseline both sides share.
        baseline_ = jsvm::fingerprint_realm(browser_->interp());
      }
      timeline_.restore_s = restore_s;
      timeline_.finished =
          sim_.now() + sim::SimTime::seconds(timeline_.restore_s);
      if (obs_) {
        obs_->trace.emit(trace_, root_span_, obs::SpanKind::kClientRestore,
                         "restore_result", "client", sim_.now(),
                         *timeline_.finished, timeline_.restore_s);
      }
      finish_trace();
      return;
    }
    case net::MessageType::kControl: {
      if (util::starts_with(message.name, "accepted:") && awaiting_result_) {
        // Upload phase done; the execution clock starts. With the
        // controller on, the receipt doubles as a per-attempt upload
        // bandwidth observation (gated so the static path's estimator
        // state stays bit-identical to the paper reproduction).
        if (controller_active() && timeline_.snapshot_sent &&
            timeline_.snapshot_bytes > 0) {
          bandwidth_.observe(timeline_.snapshot_bytes,
                             sim_.now() - *timeline_.snapshot_sent);
        }
        if (supervising()) {
          arm_phase(Phase::kExecute, config_.supervisor.execute_deadline);
        }
        return;
      }
      if (util::starts_with(message.name, "done:") && awaiting_result_) {
        // Execution phase done; only the download remains.
        if (supervising()) {
          arm_phase(Phase::kDownload, config_.supervisor.download_deadline);
        }
        return;
      }
      if (util::starts_with(message.name, "need_full") && awaiting_result_) {
        if (hedge_running_) {
          // The realm already ran the handler locally — we cannot
          // recapture it. Let the hedge finish the inference.
          abandon_remote("session lost during hedge");
          return;
        }
        // The server lost (or never had) our differential baseline: the
        // realm is untouched since capture, so take a full snapshot and
        // retry.
        OFFLOAD_LOG_INFO << "client: server needs a full snapshot, resending";
        jsvm::SnapshotResult snap =
            jsvm::capture_snapshot(browser_->interp(),
                                   config_.snapshot_options);
        SnapshotPayload payload;
        payload.cut = timeline_.used_partition_cut == SIZE_MAX
                          ? UINT64_MAX
                          : timeline_.used_partition_cut;
        payload.program = std::move(snap.program);
        timeline_.snapshot_stats = snap.stats;
        timeline_.used_differential = false;
        net::Message msg;
        msg.type = net::MessageType::kSnapshot;
        msg.name = bundle_.name;
        msg.payload = payload.encode();
        timeline_.snapshot_bytes = msg.wire_size();
        double recapture_s = config_.profile.snapshot_capture_s(
            snap.stats.total_bytes);
        timeline_.capture_s += recapture_s;
        if (obs_) {
          obs_->trace.emit(trace_, root_span_, obs::SpanKind::kClientCapture,
                           "recapture", "client", sim_.now(),
                           sim_.now() + sim::SimTime::seconds(recapture_s),
                           recapture_s);
          obs_->metrics.add("client.recaptures");
        }
        awaiting_result_ = false;  // send_snapshot_message re-arms it
        send_snapshot_message(std::move(msg), recapture_s);
        return;
      }
      if (util::starts_with(message.name, "redirect:") && awaiting_result_) {
        // The server is draining its queue (tier migration): it names a
        // peer that should finish this inference. Our session realm did
        // not travel — the peer gets a fresh model push and a replayed
        // self-contained snapshot; the redirect is just a failover whose
        // target the server chose for us.
        std::size_t target = servers_.size();
        const std::string name = message.name.substr(9);
        std::size_t colon = name.find(':');
        if (colon != std::string::npos) {
          target = static_cast<std::size_t>(
              std::strtoul(name.substr(0, colon).c_str(), nullptr, 10));
        }
        if (supervising() && inflight_snapshot_) {
          cancel_phase_timer();
          if (target < servers_.size() && target != active_server_ &&
              breakers_[target].allow(sim_.now())) {
            OFFLOAD_LOG_INFO << "client: server redirected us to server "
                             << target;
            ++sup_stats_.redirects;
            count("supervisor.redirects");
            active_server_ = target;
            timeline_.server_index = static_cast<int>(target);
            baseline_.reset();  // sessions do not migrate between servers
            attempts_ = 0;      // fresh retry budget against the target
            if (model_sent()) {
              resend_inflight();
            } else {
              begin_recovery("redirect");
            }
            return;
          }
          // The named target is unusable (bad index, open breaker): fall
          // into the ordinary retry/failover policy instead.
          retry_snapshot("redirect to unusable server");
          return;
        }
        OFFLOAD_LOG_WARN << "client: redirected without a usable inflight "
                            "snapshot, falling back locally";
        if (supervising()) {
          abandon_remote("redirect without snapshot");
          return;
        }
        awaiting_result_ = false;
        inflight_snapshot_.reset();
        timeline_.local_fallback = true;
        timeline_.offloaded = false;
        run_locally();
        return;
      }
      if ((util::starts_with(message.name, "overloaded") ||
           util::starts_with(message.name, "expired:")) &&
          awaiting_result_) {
        // The server shed our request (admission queue full) or expired
        // it past its queue deadline. The realm is untouched since
        // capture — the offloaded event is still at the queue front — so
        // finish this inference locally.
        OFFLOAD_LOG_INFO << "client: server "
                         << (message.name[0] == 'o' ? "overloaded"
                                                    : "expired the request")
                         << ", falling back to local execution";
        if (supervising()) {
          abandon_remote(message.name[0] == 'o' ? "server overloaded"
                                                : "server queue deadline");
          return;
        }
        awaiting_result_ = false;
        inflight_snapshot_.reset();
        timeline_.local_fallback = true;
        timeline_.offloaded = false;  // the result never came from the server
        run_locally();
        return;
      }
      if (util::starts_with(message.name, "model_missing:") &&
          awaiting_result_) {
        // The server cannot run our app: its model store has no entry —
        // the signature of a crashed-and-restarted server (or a never
        // pre-sent model). Supervised clients re-presend and replay;
        // others fall back locally rather than hang.
        if (supervising() && inflight_snapshot_) {
          cancel_phase_timer();
          begin_recovery("server lost the model");
          return;
        }
        OFFLOAD_LOG_WARN << "client: server has no model for '"
                         << bundle_.name << "', falling back locally";
        if (supervising()) {
          abandon_remote("server lost the model");
          return;
        }
        awaiting_result_ = false;
        inflight_snapshot_.reset();
        timeline_.local_fallback = true;
        timeline_.offloaded = false;
        run_locally();
        return;
      }
      if (util::starts_with(message.name, "send_files:")) {
        // The server's blob cache missed part (or all) of our offer; it
        // wants those files uploaded in full.
        if (!payload_intact(message)) {
          // The request list itself was damaged in flight: restart the
          // exchange with a fresh offer.
          if (!supervising()) throw PayloadCorruptError(message);
          record_breaker_outcome(/*success=*/false);
          model_sent() = false;
          send_model_files(/*count_as_presend=*/false);
          arm_phase(Phase::kPresend, config_.supervisor.presend_deadline);
          return;
        }
        send_requested_files(
            FileListPayload::decode(std::span(message.payload)));
        return;
      }
      if (util::starts_with(message.name, "corrupt_payload:")) {
        // The server rejected our bytes (CRC mismatch). Re-send whatever
        // was in flight toward it — unless the snapshot is still parked
        // on the dedup pre-send, in which case the damaged bytes were the
        // offer/upload and the model branch below restarts it.
        if (awaiting_result_ && inflight_snapshot_ &&
            !hold_snapshot_for_ack_) {
          if (supervising()) {
            record_breaker_outcome(/*success=*/false);
            retry_snapshot("server rejected corrupt payload");
          } else {
            OFFLOAD_LOG_WARN << "client: snapshot corrupted in flight, "
                                "re-sending";
            ++timeline_.retries;
            count("client.retries");
            timeline_.snapshot_sent = sim_.now();
            mark_snapshot_send(*inflight_snapshot_, "snapshot_resend");
            active_endpoint().send(*inflight_snapshot_);
          }
          return;
        }
        if (awaiting_ack_ || !timeline_.ack_received) {
          OFFLOAD_LOG_WARN << "client: model upload corrupted in flight, "
                              "re-sending";
          model_sent() = false;
          send_model_files(/*count_as_presend=*/false);
          if (supervising()) {
            ++sup_stats_.retries;
            arm_phase(Phase::kPresend, config_.supervisor.presend_deadline);
          }
        }
        return;
      }
      if (util::starts_with(message.name, "not_installed")) {
        if (config_.install_on_demand && !overlay_sent_) {
          OFFLOAD_LOG_INFO << "client: server lacks offloading system, "
                              "sending VM overlay";
          overlay_sent_ = true;
          model_sent() = false;  // the refused upload never landed
          send_overlay();
        } else if (!config_.install_on_demand) {
          OFFLOAD_LOG_WARN << "client: server not installed and on-demand "
                              "installation disabled";
        }
      }
      return;
    }
    default:
      OFFLOAD_LOG_WARN << "client: unexpected message type "
                       << net::message_type_name(message.type);
  }
}

void ClientDevice::mark_snapshot_send(net::Message& msg, const char* label) {
  if (!obs_) return;
  // Each (re)send opens its own transmit-up span; a superseded attempt —
  // one whose bytes never reached the server — closes here with zero
  // charge so only the send the server actually received contributes to
  // the transmission_up accounting. Spans the server already closed at
  // arrival are untouched (close is a no-op on closed spans).
  if (up_span_) obs_->trace.close(up_span_, sim_.now(), 0.0);
  up_span_ = obs_->trace.open(trace_, root_span_, obs::SpanKind::kTransmitUp,
                              label, "client/net", sim_.now());
  obs_->trace.attr(up_span_, "attempt", static_cast<std::int64_t>(attempts_));
  obs_->trace.attr(up_span_, "server",
                   static_cast<std::int64_t>(active_server_));
  msg.ctx = {trace_, up_span_, root_span_};
}

void ClientDevice::finish_trace() {
  notify_done();
  if (timeline_.finished) {
    // Close the controller loop exactly once per decision: a local
    // decision always "worked"; a remote one only if the result actually
    // came from the server.
    record_decision(decision_ && decision_->local ? true
                                                  : timeline_.offloaded,
                    timeline_.inference_seconds());
  }
  if (!obs_ || !root_span_ || !timeline_.finished) return;
  // Abandoned phases (an unanswered send, a recovery the hedge outran)
  // close with zero charge: their interval stays visible in the trace but
  // contributes nothing to the accounting sums.
  if (up_span_) {
    obs_->trace.close(up_span_, sim_.now(), 0.0);
    up_span_ = 0;
  }
  if (recovery_span_) {
    obs_->trace.close(recovery_span_, sim_.now(), 0.0);
    recovery_span_ = 0;
  }
  obs_->trace.attr(root_span_, "offloaded",
                   static_cast<std::int64_t>(timeline_.offloaded ? 1 : 0));
  obs_->trace.attr(root_span_, "local_fallback",
                   static_cast<std::int64_t>(timeline_.local_fallback ? 1
                                                                      : 0));
  obs_->trace.attr(root_span_, "server",
                   static_cast<std::int64_t>(timeline_.server_index));
  obs_->trace.attr(root_span_, "retries",
                   static_cast<std::int64_t>(timeline_.retries));
  obs_->trace.close(root_span_, *timeline_.finished);
  root_span_ = 0;
  obs_->metrics.add("client.inferences");
  if (timeline_.offloaded) obs_->metrics.add("client.offloaded");
  if (timeline_.local_fallback) obs_->metrics.add("client.local_fallbacks");
  obs_->metrics.observe("client.inference_ms",
                        timeline_.inference_seconds() * 1e3);
}

std::string ClientDevice::result_text() const {
  jsvm::DomNodePtr node =
      browser_->interp().document().get_element_by_id(bundle_.result_element);
  return node ? node->text : "";
}

}  // namespace offload::edge
