// The embedded client (the paper's Odroid-XU4 board). Runs the web app on
// its browser, pre-sends the NN model at app start, and — when the
// configured offload event fires — captures a snapshot and migrates
// execution to the edge server, adopting the result snapshot when it comes
// back. Implements the offloading configurations evaluated in Fig. 6:
// local-only, offload before/after ACK, and partial inference.
//
// When ClientConfig::supervisor.enabled is set, an offload supervisor
// state machine wraps the protocol: per-phase deadlines (pre-send, upload,
// server execution, download), retries with exponential backoff and
// deterministic jitter, hedged local execution, a per-server circuit
// breaker that fails over along an ordered server candidate list
// (attach_server — snapshots are self-contained, so migration is just
// re-targeting), and crash recovery (a restarted server answers
// "model_missing"/"need_full"; the supervisor re-presends and retries).
// Disabled, the client behaves exactly as before.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/ctrl/controller.h"
#include "src/edge/browser_host.h"
#include "src/edge/protocol.h"
#include "src/edge/supervisor.h"
#include "src/jsvm/fingerprint.h"
#include "src/net/bandwidth.h"
#include "src/net/channel.h"
#include "src/nn/cost_model.h"
#include "src/obs/obs.h"
#include "src/nn/partition.h"
#include "src/sim/simulation.h"
#include "src/vmsynth/vmimage.h"

namespace offload::edge {

struct ClientConfig {
  nn::DeviceProfile profile = nn::DeviceProfile::embedded_client();
  /// false = run the app entirely on the client (the Fig. 6 "Client" bar).
  bool offload = true;
  /// Send the model at app start (Section III.B.1). When false, model
  /// files accompany the first snapshot, which is the slow path.
  bool presend_model = true;
  /// Privacy mode: upload only the rear part of the weights so the server
  /// cannot invert features (Section III.B.2).
  bool presend_rear_only = false;
  /// Partition point (node index). SIZE_MAX = full-inference offloading.
  std::size_t partition_cut = SIZE_MAX;
  /// Event type whose handler is offloaded: "click" for full inference,
  /// "front_complete" for partial (Fig. 5).
  std::string offload_event = "click";
  /// If the server replies not_installed, ship a VM overlay containing the
  /// offloading system + model, then retry (Section III.B.3).
  bool install_on_demand = true;
  /// Component sizes for the on-demand overlay (defaults = the paper's).
  vmsynth::SystemBundleSizes overlay_sizes;
  /// Repeat offloads send differential snapshots against the state left on
  /// the server by the previous offload (the paper's Section VI future
  /// work). Falls back to full snapshots when the server lost the session.
  bool differential_snapshots = false;
  /// While the model upload has not been ACKed, run the inference locally
  /// instead of offloading (the paper's Section IV.A suggestion: "it would
  /// be better for the client to execute the DNN locally while the model
  /// is being uploaded").
  bool local_fallback_before_ack = false;
  /// Choose the partition point at click time with the Neurosurgeon-style
  /// partitioner and the observed bandwidth, instead of a fixed cut. Only
  /// meaningful for partial-inference apps; implies full-weight pre-send.
  bool auto_partition = false;
  /// Offload supervision (deadlines/retries/hedging/breaker/recovery).
  /// Disabled by default.
  SupervisorConfig supervisor;
  /// Online partition-point controller (src/ctrl). The default `static`
  /// policy disables it entirely — the click-time cut above is used and
  /// behavior is bit-identical to the paper reproduction. `drift`/`bandit`
  /// re-select the cut per inference from live telemetry, and re-cut on
  /// supervised failures. Only meaningful for partial-inference apps
  /// (offload_event == "front_complete"); implies full-weight pre-send,
  /// like auto_partition (which it overrides when active). The constructor
  /// applies the OFFLOAD_CTRL / OFFLOAD_CTRL_SEED env knobs unless
  /// controller.ignore_env is set.
  ctrl::ControllerConfig controller;
  /// Telemetry hook for the controller: given an attached-server index,
  /// return that server's live load signals (queue depth, lanes, batch
  /// wait, fleet outstanding). The runtime wires this to the scheduler's
  /// pull accessors; unset, the controller sees only measured bandwidth.
  std::function<ctrl::LinkSignals(std::size_t server)> signals;
  /// Content-addressed pre-send: offer per-file digests (kModelOffer)
  /// before shipping bodies, so a server already caching the blobs can
  /// skip them. Off by default — the wire protocol stays exactly the
  /// paper's.
  bool dedup_presend = false;
  /// Fleet routing hook: called at the start of inference number `n`
  /// (0-based) with the ordered server-candidate list to use — index 0 is
  /// the primary, the rest are failover targets in preference order.
  /// Indices refer to attached servers (0 = the constructor endpoint).
  /// Unset (the default) keeps the sticky active-server behavior.
  std::function<std::vector<std::size_t>(std::uint64_t n)> route;
  /// Completion hook: fires exactly once per inference when it finishes
  /// (remote result, local fallback, or hedge win), with the serving
  /// server index and whether the result actually came from it.
  std::function<void(std::size_t server, bool offloaded)> on_inference_done;
  jsvm::SnapshotOptions snapshot_options;
  /// Observability sink (optional). When set, every inference records a
  /// span tree rooted at a kInference span (trace id = inference number)
  /// plus client counters/histograms. Null disables tracing at the cost
  /// of one branch per site; simulated timings are identical either way.
  obs::Obs* obs = nullptr;
};

/// The app as the developer shipped it.
struct AppBundle {
  std::string name;    ///< app/model name, e.g. "googlenet"
  std::string source;  ///< MicroJS program (HTML script part)
  std::shared_ptr<nn::Network> network;
  nn::Tensor input_image;
  std::string click_target = "btn";   ///< element the user clicks
  std::string result_element = "result";  ///< where the app writes output
};

/// Client-side observations of one inference (Fig. 7 ingredients).
struct ClientTimeline {
  sim::SimTime app_started;
  sim::SimTime model_upload_started;
  std::optional<sim::SimTime> ack_received;
  sim::SimTime clicked;
  double client_exec_s = 0;  ///< local DNN time (full local or front part)
  double capture_s = 0;      ///< snapshot capture on the client
  std::optional<sim::SimTime> snapshot_sent;
  std::optional<sim::SimTime> result_received;
  double restore_s = 0;      ///< result-snapshot restore on the client
  std::optional<sim::SimTime> finished;
  bool offloaded = false;
  /// This inference ran locally — either the model ACK was still pending,
  /// or the server shed the request ("overloaded:" control reply), or the
  /// supervisor gave up on the remote side.
  bool local_fallback = false;
  /// This inference shipped a differential snapshot.
  bool used_differential = false;
  /// Partition point used (SIZE_MAX for full inference).
  std::size_t used_partition_cut = SIZE_MAX;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t model_upload_bytes = 0;
  jsvm::SnapshotStats snapshot_stats;

  // --- Supervisor observations (all zero/false when it is disabled) ---
  int retries = 0;            ///< snapshot re-sends for this inference
  double backoff_wait_s = 0;  ///< time spent waiting between retries
  double recovery_s = 0;      ///< time spent re-presending the model
  bool hedged = false;        ///< a local hedge was started
  bool hedge_local_win = false;  ///< ...and the local run finished first
  double hedge_wasted_s = 0;  ///< local compute burned by a losing hedge
  bool recovered = false;     ///< hit crash recovery (model re-presend)
  int server_index = 0;       ///< attached-server index (0 = primary)

  /// End-to-end inference latency (click → finished).
  double inference_seconds() const {
    return finished ? (*finished - clicked).to_seconds() : -1.0;
  }
};

class ClientDevice {
 public:
  ClientDevice(sim::Simulation& sim, net::Endpoint& endpoint,
               ClientConfig config, AppBundle bundle);

  /// Launch the app at the current simulated time: evaluate the program,
  /// start the model pre-send.
  void start();

  /// Schedule the user's click on the app's button at absolute time `at`.
  /// May be called repeatedly (later times) for multiple inferences; each
  /// completed inference's timeline is archived in history().
  void click_at(sim::SimTime at);

  /// Register an additional edge server (its own channel endpoint). The
  /// supervisor fails over along the ordered candidate list — the
  /// constructor endpoint is server 0, each attach_server appends the
  /// next index — and snapshots are self-contained, so nothing migrates
  /// but the bytes. Returns the new server's index.
  std::size_t attach_server(net::Endpoint& endpoint);

  /// Number of attached servers (constructor endpoint included).
  std::size_t server_count() const { return servers_.size(); }

  bool finished() const { return timeline_.finished.has_value(); }
  const ClientTimeline& timeline() const { return timeline_; }
  /// Timelines of earlier inferences (most recent last).
  const std::vector<ClientTimeline>& history() const { return history_; }

  /// Text the app wrote into its result element ("" until finished).
  std::string result_text() const;

  BrowserHost& browser() { return *browser_; }
  const AppBundle& bundle() const { return bundle_; }
  const ClientConfig& config() const { return config_; }
  /// Lifetime supervisor counters (zeros when supervision is off).
  const SupervisorStats& supervisor_stats() const { return sup_stats_; }
  /// Breaker for server `index` (constructor endpoint = 0), for tests.
  const CircuitBreaker& breaker(std::size_t index) const {
    return breakers_[index];
  }
  /// Trace id of the current (or last) inference; 0 before the first click
  /// or when tracing is off. The runtime derives InferenceBreakdown from
  /// this trace's span tree.
  obs::TraceId last_trace_id() const { return trace_; }
  /// The partition controller, once an adaptive policy has built it
  /// (null under `static` or before the first decision). For tests.
  const ctrl::CutController* cut_controller() const {
    return controller_ ? &*controller_ : nullptr;
  }

 private:
  /// Supervisor phase currently under a deadline watchdog.
  enum class Phase { kIdle, kPresend, kUpload, kExecute, kDownload };

  void on_message(const net::Message& message);
  void begin_inference();
  void run_app_events();
  void run_locally();
  void send_snapshot_message(net::Message msg, double busy_s);
  void send_model_files(bool count_as_presend);
  void send_model_offer(bool count_as_presend);
  void send_requested_files(const FileListPayload& request);
  void send_overlay();
  /// First (non-retry) send of the held in-flight snapshot: used when a
  /// dedup pre-send resolves and the snapshot that waited on it goes out.
  void dispatch_inflight_snapshot();
  std::vector<nn::ModelFile> files_to_send() const;
  std::size_t pick_partition_cut();

  // --- Partition controller (all no-ops under the static policy) ---
  /// The controller governs this client: adaptive policy, offloading
  /// partial-inference app.
  bool controller_active() const {
    return config_.controller.active() && config_.offload &&
           config_.offload_event == "front_complete";
  }
  /// Build the controller (and the shared cost models) on first use.
  void ensure_controller();
  /// Assemble the telemetry for a decision about `server`: measured upload
  /// bandwidth plus whatever the signals hook reports.
  ctrl::LinkSignals gather_signals(std::size_t server);
  /// Make the per-inference decision for the upcoming click and apply it
  /// (cut, or local fallback). Emits a kCtrlDecision span.
  void apply_decision(ctrl::Decision decision, const char* origin);
  /// Close the loop: report the active decision's outcome once.
  void record_decision(bool ok, double observed_s);
  /// Re-decide after `attempts_` failed sends; nullopt = keep retrying the
  /// current cut (controller inactive, hedge running, or nothing useful).
  std::optional<ctrl::Decision> plan_recut();
  /// Re-run the app front at the decision's cut and resend the snapshot
  /// (drops the stale deferred event, honest recompute + recapture).
  void perform_recut(const ctrl::Decision& decision);
  /// Apply the routing hook (if any) for the upcoming inference: refresh
  /// the candidate order and re-pin the active server to its head.
  void apply_route();
  /// Fire the on_inference_done hook (once per inference).
  void notify_done();

  // --- Supervisor machinery (all no-ops when supervision is off) ---
  bool supervising() const { return config_.supervisor.enabled; }
  net::Endpoint& active_endpoint() { return *servers_[active_server_]; }
  CircuitBreaker& active_breaker() { return breakers_[active_server_]; }
  /// Route every breaker verdict through here: records the outcome on the
  /// active server's breaker and, when that flips the breaker between
  /// closed and open/half-open, publishes the per-server obs gauge
  /// `supervisor.breaker_open.server<k>` (1 = tripped, 0 = closed) and
  /// the breaker_opens counter. Emitted only on transitions, so steady
  /// workloads carry no gauge churn.
  void record_breaker_outcome(bool success);
  char& model_sent() { return model_sent_[active_server_]; }
  /// The next candidate after the active server, in candidate order with
  /// wraparound, whose breaker admits a request right now. Returns
  /// server_count() when there is none. Consults (and thereby mutates, in
  /// half-open) each candidate's breaker at most once.
  std::size_t next_usable_server();
  void arm_phase(Phase phase, sim::SimTime deadline);
  void arm_upload_watchdog();
  void cancel_phase_timer();
  void cancel_supervision_timers();
  void on_phase_timeout(Phase phase);
  /// Funnel for every retryable remote failure: backoff + resend, fail
  /// over, or abandon to local execution.
  void retry_snapshot(const char* reason);
  void resend_inflight();
  bool try_failover();
  /// Re-presend the model to the active server and resend the snapshot
  /// once the ACK lands (crash recovery / failover bootstrap).
  void begin_recovery(const char* reason);
  /// Give up on the remote side and finish this inference locally.
  void abandon_remote(const char* reason);
  void start_hedge();
  void finish_hedge();
  void on_delivery_failure(const net::Message& message, int attempts);

  // --- Obs plumbing (all single-branch no-ops when config_.obs is null) ---
  /// Open a transmit-up span for a snapshot (re)send and stamp the trace
  /// context onto the outgoing message.
  void mark_snapshot_send(net::Message& msg, const char* label);
  /// Close the root inference span at *timeline_.finished, record final
  /// attrs and client metrics. Called everywhere `timeline_.finished` is
  /// assigned; idempotent per inference.
  void finish_trace();
  /// Bump a counter if an obs sink is attached.
  void count(const char* key) {
    if (obs_) obs_->metrics.add(key);
  }

  sim::Simulation& sim_;
  net::Endpoint& endpoint_;
  ClientConfig config_;
  AppBundle bundle_;
  std::shared_ptr<ModelStore> local_store_;
  std::unique_ptr<BrowserHost> browser_;
  ClientTimeline timeline_;
  std::vector<ClientTimeline> history_;
  bool started_ = false;
  bool awaiting_result_ = false;
  bool overlay_sent_ = false;
  /// Copy of the in-flight snapshot, for re-send after on-demand install,
  /// a differential version miss, or any supervised retry.
  std::optional<net::Message> inflight_snapshot_;
  /// Common state shared with the server (differential snapshots).
  std::optional<jsvm::RealmFingerprint> baseline_;
  net::BandwidthEstimator bandwidth_{30e6};
  /// Lazily built cost models for auto-partitioning.
  std::optional<nn::LayerCostModel> client_cost_;
  std::optional<nn::LayerCostModel> server_cost_;

  // --- Partition-controller state ---
  std::optional<ctrl::CutController> controller_;
  /// The decision governing the current inference (unset under static).
  std::optional<ctrl::Decision> decision_;
  bool decision_recorded_ = false;
  /// A re-cut chosen during backoff, performed when the wait elapses.
  std::optional<ctrl::Decision> pending_recut_;

  // --- Server candidate state ---
  /// Attached servers; [0] is the constructor endpoint. Parallel to
  /// model_sent_ and breakers_.
  std::vector<net::Endpoint*> servers_;
  std::size_t active_server_ = 0;
  std::vector<char> model_sent_;  ///< char: vector<bool> has no refs
  std::vector<CircuitBreaker> breakers_;
  /// Candidate order for the current inference (route hook output, or the
  /// natural 0..N-1). Failover walks it in wrap order after the active.
  std::vector<std::size_t> candidates_;

  // --- Supervisor state ---
  std::optional<RetryBackoff> backoff_;
  SupervisorStats sup_stats_;
  Phase phase_ = Phase::kIdle;
  sim::EventHandle phase_timer_;
  sim::EventHandle hedge_timer_;         ///< fires start_hedge
  sim::EventHandle hedge_finish_timer_;  ///< fires finish_hedge
  bool hedge_running_ = false;
  double hedge_exec_s_ = 0;
  sim::SimTime hedge_finish_at_;  ///< when the running hedge will finish
  /// A model upload is awaiting its ACK from the *active* server (unlike
  /// timeline_.ack_received, this re-arms on recovery re-presends).
  bool awaiting_ack_ = false;
  int attempts_ = 0;          ///< snapshot sends this inference
  int presend_attempts_ = 0;  ///< model sends toward the current ACK
  bool resend_snapshot_on_ack_ = false;
  /// A captured snapshot is parked until the dedup pre-send resolves into
  /// an ACK; its first send is not a retry.
  bool hold_snapshot_for_ack_ = false;
  bool done_notified_ = false;  ///< on_inference_done fired this inference
  bool ignore_late_result_ = false;
  std::optional<sim::SimTime> recovery_started_;

  // --- Obs state ---
  obs::Obs* obs_ = nullptr;             ///< = config_.obs
  obs::TraceId trace_ = 0;              ///< current inference's trace
  obs::SpanId root_span_ = 0;           ///< open kInference span (0 = closed)
  obs::SpanId up_span_ = 0;             ///< open kTransmitUp span
  obs::SpanId presend_span_ = 0;        ///< open kPresend span (trace 0)
  obs::SpanId recovery_span_ = 0;       ///< open kCrashRecovery span
  sim::SimTime hedge_started_at_;       ///< start of the running hedge
};

}  // namespace offload::edge
