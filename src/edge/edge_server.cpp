#include "src/edge/edge_server.h"

#include "src/jsvm/fingerprint.h"
#include "src/jsvm/interpreter.h"
#include "src/nn/kernels.h"
#include "src/util/hash.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace offload::edge {

EdgeServer::EdgeServer(sim::Simulation& sim, net::Endpoint& endpoint,
                       EdgeServerConfig config)
    : sim_(sim),
      config_(std::move(config)),
      store_(std::make_shared<ModelStore>()),
      base_image_(vmsynth::make_base_image()) {
  scheduler_ = make_scheduler();
  attach(endpoint);
}

std::unique_ptr<serve::Scheduler> EdgeServer::make_scheduler() const {
  serve::SchedulerConfig sched = config_.scheduler;
  sched.profile = config_.profile;  // the server's compute, not a default
  sched.drop_expired = config_.queue_deadline != sim::SimTime::zero();
  sched.obs = config_.obs;
  sched.obs_name = config_.obs_name;
  return std::make_unique<serve::Scheduler>(sim_, std::move(sched));
}

void EdgeServer::attach(net::Endpoint& endpoint) {
  endpoint.set_handler([this, &endpoint](const net::Message& m) {
    on_message(endpoint, m);
  });
}

void EdgeServer::schedule_crash(sim::SimTime at, sim::SimTime downtime) {
  sim_.schedule_at(at, [this, downtime] {
    ++stats_.crashes;
    count("crashes");
    if (config_.obs) {
      config_.obs->trace.marker(0, 0, "crash", config_.obs_name, sim_.now());
    }
    ++boot_epoch_;
    down_ = true;
    // Volatile state dies with the process: pre-sent models, the
    // differential-snapshot session cache, and every queued or running
    // execution. Completions already scheduled by the old scheduler still
    // fire, so it retires instead of being destroyed; the epoch bump makes
    // them no-ops.
    store_->clear();
    blob_store_.clear();
    sessions_.clear();
    migratable_.clear();
    browser_.reset();
    last_browser_ = nullptr;
    retired_schedulers_.push_back(std::move(scheduler_));
    scheduler_ = make_scheduler();
    OFFLOAD_LOG_INFO << "edge server: crashed at " << sim_.now().to_seconds()
                     << "s, down for " << downtime.to_seconds() << "s";
    sim_.schedule(downtime, [this] {
      down_ = false;
      ++stats_.restarts;
      count("restarts");
      if (config_.obs) {
        config_.obs->trace.marker(0, 0, "restart", config_.obs_name,
                                  sim_.now());
      }
      OFFLOAD_LOG_INFO << "edge server: restarted at "
                       << sim_.now().to_seconds() << "s (cold: empty store)";
    });
  });
}

void EdgeServer::schedule_stall(sim::SimTime at, sim::SimTime duration) {
  sim_.schedule_at(at, [this, duration] {
    sim::SimTime until = sim_.now() + duration;
    if (until > stall_until_) stall_until_ = until;
  });
}

void EdgeServer::send_control(net::Endpoint& to, const std::string& name,
                              util::Bytes payload) {
  net::Message reply;
  reply.type = net::MessageType::kControl;
  reply.name = name;
  reply.payload = std::move(payload);
  to.send(std::move(reply));
}

void EdgeServer::on_message(net::Endpoint& from, const net::Message& message) {
  if (down_) {
    // A dead host: the bytes arrive at a closed port and vanish.
    ++stats_.dropped_while_down;
    count("dropped_while_down");
    return;
  }
  if (sim_.now() < stall_until_) {
    // Frozen (GC pause / noisy neighbour): handle when the stall lifts.
    // Re-entering on_message re-checks `down_` — a crash that lands
    // during the stall still eats the message.
    ++stats_.stalled_messages;
    count("stalled_messages");
    sim_.schedule_at(stall_until_, [this, &from, message = message] {
      on_message(from, message);
    });
    return;
  }
  if (!message.payload.empty() && !payload_intact(message)) {
    // Damaged in flight. Reject with a typed control reply so the sender
    // can retransmit instead of us decoding garbage.
    ++stats_.corrupt_rejected;
    count("corrupt_rejected");
    if (config_.obs && message.type == net::MessageType::kSnapshot) {
      // The bytes reached us, even if rejected: close the transmit-up span.
      config_.obs->trace.close(message.ctx.span, sim_.now());
    }
    OFFLOAD_LOG_WARN << "edge server: CRC mismatch on "
                     << net::message_type_name(message.type) << " '"
                     << message.name << "', rejecting";
    send_control(from, "corrupt_payload:" + message.name);
    return;
  }
  switch (message.type) {
    case net::MessageType::kModelFiles:
      if (!installed()) return refuse(from, message);
      return handle_model_files(from, message);
    case net::MessageType::kModelOffer:
      if (!installed()) return refuse(from, message);
      return handle_model_offer(from, message);
    case net::MessageType::kSnapshot:
      // The client's transmit-up span ends at (deferred) arrival — the
      // same instant `received_at` is stamped below, so the span interval
      // reproduces the breakdown's transmission_up computation exactly.
      if (config_.obs) config_.obs->trace.close(message.ctx.span, sim_.now());
      if (!installed()) return refuse(from, message);
      return handle_snapshot(from, message);
    case net::MessageType::kVmOverlay:
      return handle_overlay(from, message);
    default:
      OFFLOAD_LOG_WARN << "edge server: unexpected message type "
                       << net::message_type_name(message.type);
  }
}

void EdgeServer::refuse(net::Endpoint& from, const net::Message& message) {
  ++stats_.refused;
  count("refused");
  send_control(from, "not_installed:" + message.name);
}

void EdgeServer::handle_model_files(net::Endpoint& from,
                                    const net::Message& message) {
  ModelFilesPayload payload = ModelFilesPayload::decode(
      std::span(message.payload));
  std::uint64_t bytes = 0;
  for (auto& f : payload.files) {
    bytes += f.size();
    // Every uploaded file also lands in the content-addressed cache, so a
    // later client offering the same digests skips the body entirely.
    blob_store_.put(util::fnv1a(std::span(f.content)), f.content);
  }
  store_->store_files(std::move(payload.files));
  ++stats_.models_stored;
  count("models_stored");

  // Persisting the files costs disk time before the ACK goes out
  // (Section III.B.1: "the server saves the files and sends an ACK").
  double store_s = static_cast<double>(bytes) / config_.store_Bps;
  std::string app = message.name;
  const std::uint64_t epoch = boot_epoch_;
  sim_.schedule(sim::SimTime::seconds(store_s), [this, &from, app, epoch] {
    if (epoch != boot_epoch_) return;  // crashed mid-store; ACK dies with us
    net::Message ack;
    ack.type = net::MessageType::kAck;
    ack.name = app;
    from.send(std::move(ack));
  });
}

void EdgeServer::handle_model_offer(net::Endpoint& from,
                                    const net::Message& message) {
  ModelOfferPayload offer =
      ModelOfferPayload::decode(std::span(message.payload));
  ++stats_.model_offers;
  count("model_offers");

  std::vector<nn::ModelFile> cached;
  FileListPayload missing;
  for (const auto& entry : offer.files) {
    bool corrupt = false;
    const util::Bytes* blob = blob_store_.find(entry.digest, &corrupt);
    if (corrupt) {
      // The cached copy rotted since it was stored; it was just evicted.
      // Falling through to "missing" forces a clean re-upload rather than
      // instantiating a damaged network.
      ++stats_.dedup_corrupt_blobs;
      count("dedup_corrupt_blobs");
    }
    if (blob) {
      ++stats_.dedup_hit_files;
      count("dedup_hits");
      stats_.dedup_bytes_saved += entry.bytes;
      if (config_.obs) {
        config_.obs->metrics.add(config_.obs_name + ".dedup_bytes_saved",
                                 entry.bytes);
      }
      cached.push_back({entry.name, *blob});
    } else {
      ++stats_.dedup_miss_files;
      count("dedup_misses");
      missing.names.push_back(entry.name);
    }
  }
  if (!cached.empty()) store_->store_files(std::move(cached));

  if (missing.names.empty()) {
    // The whole bundle was served from the cache: nothing new to persist,
    // ACK right away. The client's generic ACK handling completes the
    // pre-send without ever shipping a body.
    if (config_.obs) {
      config_.obs->trace.marker(0, 0, "dedup_hit:" + message.name,
                                config_.obs_name, sim_.now());
    }
    net::Message ack;
    ack.type = net::MessageType::kAck;
    ack.name = "have:" + message.name;
    from.send(std::move(ack));
    return;
  }
  // Ask for just the files we lack; handle_model_files stores them (and
  // their blobs) and sends the normal post-store ACK.
  send_control(from, "send_files:" + message.name, missing.encode());
}

bool EdgeServer::try_escalate(net::Endpoint& from, const std::string& app,
                              util::Bytes payload, obs::TraceContext ctx,
                              const char* reason) {
  if (!escalate_) return false;
  // Differential snapshots patch this server's session realm; they are
  // meaningless anywhere else, so they never escalate.
  if (SnapshotPayload::decode(std::span(payload)).differential) return false;
  EscalationRequest req;
  req.app = app;
  req.payload = std::move(payload);
  req.reply_to = &from;
  req.ctx = ctx;
  req.reason = reason;
  if (!escalate_(std::move(req))) return false;
  ++stats_.snapshots_escalated;
  count("snapshots_escalated");
  if (config_.obs) {
    config_.obs->trace.marker(ctx.trace, ctx.root,
                              std::string("escalate:") + reason,
                              config_.obs_name + "/queue", sim_.now());
  }
  return true;
}

void EdgeServer::handle_snapshot(net::Endpoint& from,
                                 const net::Message& message) {
  if (!scheduler_->would_admit()) {
    // Overloaded. First offer the job up-tier: the topology (when
    // attached) executes it on the cloud and replies through this
    // endpoint, so the client just sees a slower "accepted:" → result.
    if (try_escalate(from, message.name, message.payload, message.ctx,
                     "overloaded")) {
      if (config_.ack_snapshots) {
        // The admission receipt still comes from here — the supervising
        // client's upload deadline must not fire while the job climbs.
        send_control(from, "accepted:" + message.name);
      }
      return;
    }
    // Load shed before restoring anything: the client's realm still holds
    // the offloaded event, so it finishes this inference locally. This
    // shed happens before scheduler admission, so it shows up here — not
    // in the scheduler's rejected.* counters.
    ++stats_.snapshots_shed;
    count("snapshots_shed");
    if (config_.obs) {
      config_.obs->trace.marker(message.ctx.trace, message.ctx.root,
                                "shed:overloaded",
                                config_.obs_name + "/queue", sim_.now());
    }
    send_control(from, "overloaded:" + message.name);
    return;
  }

  SnapshotPayload payload = SnapshotPayload::decode(std::span(message.payload));

  ServerExecutionRecord record;
  record.received_at = sim_.now();
  record.snapshot_in_bytes = message.wire_size();

  if (config_.ack_snapshots) {
    // Admission receipt: lets a supervising client split its upload
    // deadline from the (queue + execution) deadline.
    send_control(from, "accepted:" + message.name);
  }

  try {
    if (payload.differential) {
      // Apply the diff to the session realm from the previous offload —
      // possible only if we still hold the exact baseline it patches.
      // After a crash the session cache is empty, so this is also how a
      // restarted server tells diff-mode clients to start over.
      auto it = sessions_.find(message.name);
      if (it == sessions_.end() ||
          it->second.version != payload.base_version) {
        ++stats_.diff_version_misses;
        count("diff_version_misses");
        if (config_.obs) {
          config_.obs->trace.marker(message.ctx.trace, message.ctx.root,
                                    "need_full", config_.obs_name,
                                    sim_.now());
        }
        send_control(from, "need_full:" + message.name);
        return;
      }
      browser_ = std::move(it->second.browser);
      sessions_.erase(it);
      if (payload.cut != UINT64_MAX) {
        browser_->set_partition_cut(message.name,
                                    static_cast<std::size_t>(payload.cut));
      }
      browser_->interp().eval_program(payload.program, "diff-snapshot");
      ++stats_.diff_snapshots_applied;
      count("diff_snapshots_applied");
    } else {
      // Fresh page per offload: the snapshot is a self-contained app.
      browser_ = std::make_unique<BrowserHost>(config_.profile, store_);
      if (payload.cut != UINT64_MAX) {
        browser_->set_partition_cut(message.name,
                                    static_cast<std::size_t>(payload.cut));
      }
      jsvm::restore_snapshot(browser_->interp(), payload.program);
    }
    record.restore_s = config_.profile.snapshot_restore_s(
        payload.program.size());

    // Continue execution: re-dispatched events run the offloaded handler.
    {
      obs::ScopedMetrics nn_metrics(config_.obs ? &config_.obs->metrics
                                                : nullptr);
      browser_->interp().run_events();
    }
  } catch (const jsvm::JsError&) {
    if (!store_->can_instantiate(message.name)) {
      // The script needed a model we do not hold — either it was never
      // pre-sent, or a crash wiped the store (__loadModel throws during
      // the restore run). Tell the client so it can re-presend and retry
      // instead of wedging.
      ++stats_.model_missing_replies;
      count("model_missing_replies");
      if (config_.obs) {
        config_.obs->trace.marker(message.ctx.trace, message.ctx.root,
                                  "model_missing", config_.obs_name,
                                  sim_.now());
      }
      OFFLOAD_LOG_WARN << "edge server: no model for '" << message.name
                       << "', requesting re-presend";
      browser_.reset();
      send_control(from, "model_missing:" + message.name);
      return;
    }
    throw;  // genuine script failure: surface it
  }
  record.execute_s = browser_->consume_compute_seconds();

  // Capture the result snapshot.
  jsvm::SnapshotResult result =
      jsvm::capture_snapshot(browser_->interp(), config_.snapshot_options);
  record.capture_s =
      config_.profile.snapshot_capture_s(result.stats.total_bytes);
  record.result_stats = result.stats;

  SnapshotPayload reply_payload;
  reply_payload.cut = payload.cut;
  reply_payload.program = std::move(result.program);
  if (config_.keep_sessions) {
    // Remember this exact state: if the client diffs against it next
    // time, we can apply the patch in place. The version is the realm
    // fingerprint, which the client's restored realm reproduces.
    reply_payload.base_version =
        jsvm::fingerprint_realm(browser_->interp()).version;
  }

  net::Message reply;
  reply.type = net::MessageType::kResultSnapshot;
  reply.name = message.name;
  reply.payload = reply_payload.encode();
  record.snapshot_out_bytes = reply.wire_size();

  // The server's compute is a shared resource: executions from all
  // clients queue on the serving scheduler (the default 1-replica FIFO
  // configuration is exactly the old compute reservation). Snapshot jobs
  // are opaque to the batcher — each one is a full JS VM execution in its
  // own realm, so there is nothing to fuse.
  ++stats_.snapshots_executed;
  count("snapshots_executed");
  const std::size_t record_index = executions_.size();
  executions_.push_back(record);
  last_browser_ = browser_.get();
  if (config_.keep_sessions) {
    Session session;
    session.version = reply_payload.base_version;
    session.browser = std::move(browser_);
    sessions_[message.name] = std::move(session);
  }
  sim::SimTime deadline = sim::SimTime::max();
  if (config_.queue_deadline != sim::SimTime::zero()) {
    deadline = sim_.now() + config_.queue_deadline;
  }
  const std::uint64_t epoch = boot_epoch_;
  std::string app = message.name;
  const obs::TraceContext ctx = message.ctx;
  // The scheduler id is unknown until submit returns, but both callbacks
  // are built first; they read it through this box (safe: completions and
  // expiries fire from simulation events, never inside submit_opaque).
  auto id_box = std::make_shared<std::uint64_t>(0);
  serve::SubmitResult submitted = scheduler_->submit_opaque(
      record.busy_s(),
      [this, &from, record_index, epoch, ctx, id_box,
       reply = std::move(reply)](const serve::RequestTiming& t) mutable {
        if (epoch != boot_epoch_) return;  // crashed mid-execution
        // (After the epoch check: a post-crash scheduler reuses job ids,
        // so a stale completion must not erase a new job's entry.)
        migratable_.erase(*id_box);
        ServerExecutionRecord& rec = executions_[record_index];
        rec.queue_wait_s = t.queue_wait_s;
        rec.batch_wait_s = t.batch_wait_s;
        if (obs::Obs* obs = config_.obs) {
          // Tile the lane-busy interval with the three server phases,
          // charging each the exact double from the execution record.
          const std::string res =
              config_.obs_name + "/lane" + std::to_string(t.replica);
          const sim::SimTime restore_end =
              t.dispatched + sim::SimTime::seconds(rec.restore_s);
          const sim::SimTime exec_end =
              t.dispatched +
              sim::SimTime::seconds(rec.restore_s + rec.execute_s);
          obs->trace.emit(ctx.trace, t.busy_span,
                          obs::SpanKind::kServerRestore, "restore", res,
                          t.dispatched, restore_end, rec.restore_s);
          const obs::SpanId exec_span = obs->trace.emit(
              ctx.trace, t.busy_span, obs::SpanKind::kServerExec, "execute",
              res, restore_end, exec_end, rec.execute_s);
          // Label which kernel backend ran the layers (silent under the
          // default scalar backend so golden traces keep their bytes).
          nn::tag_kernel_backend_span(obs->trace, exec_span);
          obs->trace.emit(ctx.trace, t.busy_span,
                          obs::SpanKind::kServerCapture, "capture", res,
                          exec_end, t.completed, rec.capture_s);
          // The reply's transmit-down span: opened as it leaves, closed by
          // the client at arrival.
          obs::SpanId down = obs->trace.open(
              ctx.trace, ctx.root, obs::SpanKind::kTransmitDown,
              "reply:" + reply.name, config_.obs_name + "/net", sim_.now());
          reply.ctx = {ctx.trace, down, ctx.root};
        }
        if (config_.ack_snapshots) send_control(from, "done:" + reply.name);
        from.send(std::move(reply));
      },
      deadline,
      [this, &from, app, epoch, ctx, id_box](const serve::RequestTiming&) {
        if (epoch != boot_epoch_) return;
        // Queued too long. A job that can run elsewhere gets one more
        // chance up-tier before the client hears "expired:".
        util::Bytes payload;
        if (auto it = migratable_.find(*id_box); it != migratable_.end()) {
          payload = std::move(it->second.payload);
          migratable_.erase(it);
        }
        if (!payload.empty() &&
            try_escalate(from, app, std::move(payload), ctx, "expired")) {
          return;
        }
        // Deadline-aware cancellation: the client hears why, so it can
        // fall back locally instead of waiting forever.
        ++stats_.jobs_expired;
        send_control(from, "expired:" + app);
      },
      ctx);
  if (submitted.admitted) {
    MigratableJob job;
    job.id = submitted.id;
    job.app = app;
    // Differential jobs keep an empty payload: they can only redirect
    // (the session realm lives here), never re-run elsewhere.
    if (!payload.differential) job.payload = message.payload;
    job.reply_to = &from;
    job.ctx = ctx;
    job.differential = payload.differential;
    *id_box = submitted.id;
    migratable_.emplace(submitted.id, std::move(job));
    if (on_admit_) on_admit_();
  }
}

std::optional<EdgeServer::MigratableJob> EdgeServer::steal_job(
    bool relayable_only) {
  for (auto it = migratable_.begin(); it != migratable_.end(); ++it) {
    if (relayable_only && it->second.differential) continue;
    // Only a job still sitting in the queue can leave; one already on a
    // lane (or completed) fails the cancel and keeps its local fate.
    if (!scheduler_->cancel(it->first)) continue;
    MigratableJob job = std::move(it->second);
    migratable_.erase(it);
    ++stats_.jobs_migrated;
    count("jobs_migrated");
    return job;
  }
  return std::nullopt;
}

void EdgeServer::handle_overlay(net::Endpoint& from,
                                const net::Message& message) {
  vmsynth::VmImage image =
      vmsynth::synthesize(base_image_, std::span(message.payload));

  // Pull any model files shipped inside the overlay into the store — this
  // doubles as pre-sending (Section III.B.3).
  constexpr std::string_view kModelDir = "/opt/offload/models/";
  for (const auto& f : image.files()) {
    if (util::starts_with(f.path, kModelDir)) {
      store_->store_file({f.path.substr(kModelDir.size()), f.content});
    }
  }
  synthesized_ = std::move(image);
  config_.offloading_system_installed = true;
  ++stats_.overlays_installed;
  count("overlays_installed");

  vmsynth::OverlayStats overlay_stats;
  overlay_stats.compressed_bytes = message.payload.size();
  // The uncompressed size is implied by the payload; approximate the apply
  // cost from the synthesized image size.
  overlay_stats.uncompressed_bytes = synthesized_->total_bytes();
  double synth_s = vmsynth::synthesis_compute_seconds(overlay_stats);
  stats_.vm_synthesis_compute_s += synth_s;

  std::string app = message.name;
  const std::uint64_t epoch = boot_epoch_;
  sim_.schedule(sim::SimTime::seconds(synth_s), [this, &from, app, epoch] {
    if (epoch != boot_epoch_) return;
    net::Message ack;
    ack.type = net::MessageType::kAck;
    ack.name = "installed:" + app;
    from.send(std::move(ack));
  });
}

}  // namespace offload::edge
