#include "src/edge/edge_server.h"

#include "src/jsvm/fingerprint.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace offload::edge {

EdgeServer::EdgeServer(sim::Simulation& sim, net::Endpoint& endpoint,
                       EdgeServerConfig config)
    : sim_(sim),
      config_(std::move(config)),
      store_(std::make_shared<ModelStore>()),
      base_image_(vmsynth::make_base_image()) {
  serve::SchedulerConfig sched = config_.scheduler;
  sched.profile = config_.profile;  // the server's compute, not a default
  scheduler_ = std::make_unique<serve::Scheduler>(sim_, std::move(sched));
  attach(endpoint);
}

void EdgeServer::attach(net::Endpoint& endpoint) {
  endpoint.set_handler([this, &endpoint](const net::Message& m) {
    on_message(endpoint, m);
  });
}

void EdgeServer::on_message(net::Endpoint& from, const net::Message& message) {
  switch (message.type) {
    case net::MessageType::kModelFiles:
      if (!installed()) return refuse(from, message);
      return handle_model_files(from, message);
    case net::MessageType::kSnapshot:
      if (!installed()) return refuse(from, message);
      return handle_snapshot(from, message);
    case net::MessageType::kVmOverlay:
      return handle_overlay(from, message);
    default:
      OFFLOAD_LOG_WARN << "edge server: unexpected message type "
                       << net::message_type_name(message.type);
  }
}

void EdgeServer::refuse(net::Endpoint& from, const net::Message& message) {
  ++stats_.refused;
  net::Message reply;
  reply.type = net::MessageType::kControl;
  reply.name = "not_installed:" + message.name;
  from.send(std::move(reply));
}

void EdgeServer::handle_model_files(net::Endpoint& from,
                                    const net::Message& message) {
  ModelFilesPayload payload = ModelFilesPayload::decode(
      std::span(message.payload));
  std::uint64_t bytes = 0;
  for (auto& f : payload.files) bytes += f.size();
  store_->store_files(std::move(payload.files));
  ++stats_.models_stored;

  // Persisting the files costs disk time before the ACK goes out
  // (Section III.B.1: "the server saves the files and sends an ACK").
  double store_s = static_cast<double>(bytes) / config_.store_Bps;
  std::string app = message.name;
  sim_.schedule(sim::SimTime::seconds(store_s), [&from, app] {
    net::Message ack;
    ack.type = net::MessageType::kAck;
    ack.name = app;
    from.send(std::move(ack));
  });
}

void EdgeServer::handle_snapshot(net::Endpoint& from,
                                 const net::Message& message) {
  if (!scheduler_->would_admit()) {
    // Load shed before restoring anything: the client's realm still holds
    // the offloaded event, so it finishes this inference locally.
    ++stats_.snapshots_shed;
    net::Message reply;
    reply.type = net::MessageType::kControl;
    reply.name = "overloaded:" + message.name;
    from.send(std::move(reply));
    return;
  }

  SnapshotPayload payload = SnapshotPayload::decode(std::span(message.payload));

  ServerExecutionRecord record;
  record.received_at = sim_.now();
  record.snapshot_in_bytes = message.wire_size();

  if (payload.differential) {
    // Apply the diff to the session realm from the previous offload —
    // possible only if we still hold the exact baseline it patches.
    auto it = sessions_.find(message.name);
    if (it == sessions_.end() || it->second.version != payload.base_version) {
      ++stats_.diff_version_misses;
      net::Message reply;
      reply.type = net::MessageType::kControl;
      reply.name = "need_full:" + message.name;
      from.send(std::move(reply));
      return;
    }
    browser_ = std::move(it->second.browser);
    sessions_.erase(it);
    if (payload.cut != UINT64_MAX) {
      browser_->set_partition_cut(message.name,
                                  static_cast<std::size_t>(payload.cut));
    }
    browser_->interp().eval_program(payload.program, "diff-snapshot");
    ++stats_.diff_snapshots_applied;
  } else {
    // Fresh page per offload: the snapshot is a self-contained app.
    browser_ = std::make_unique<BrowserHost>(config_.profile, store_);
    if (payload.cut != UINT64_MAX) {
      browser_->set_partition_cut(message.name,
                                  static_cast<std::size_t>(payload.cut));
    }
    jsvm::restore_snapshot(browser_->interp(), payload.program);
  }
  record.restore_s = config_.profile.snapshot_restore_s(
      payload.program.size());

  // Continue execution: re-dispatched events run the offloaded handler.
  browser_->interp().run_events();
  record.execute_s = browser_->consume_compute_seconds();

  // Capture the result snapshot.
  jsvm::SnapshotResult result =
      jsvm::capture_snapshot(browser_->interp(), config_.snapshot_options);
  record.capture_s =
      config_.profile.snapshot_capture_s(result.stats.total_bytes);
  record.result_stats = result.stats;

  SnapshotPayload reply_payload;
  reply_payload.cut = payload.cut;
  reply_payload.program = std::move(result.program);
  if (config_.keep_sessions) {
    // Remember this exact state: if the client diffs against it next
    // time, we can apply the patch in place. The version is the realm
    // fingerprint, which the client's restored realm reproduces.
    reply_payload.base_version =
        jsvm::fingerprint_realm(browser_->interp()).version;
  }

  net::Message reply;
  reply.type = net::MessageType::kResultSnapshot;
  reply.name = message.name;
  reply.payload = reply_payload.encode();
  record.snapshot_out_bytes = reply.wire_size();

  // The server's compute is a shared resource: executions from all
  // clients queue on the serving scheduler (the default 1-replica FIFO
  // configuration is exactly the old compute reservation). Snapshot jobs
  // are opaque to the batcher — each one is a full JS VM execution in its
  // own realm, so there is nothing to fuse.
  ++stats_.snapshots_executed;
  const std::size_t record_index = executions_.size();
  executions_.push_back(record);
  last_browser_ = browser_.get();
  if (config_.keep_sessions) {
    Session session;
    session.version = reply_payload.base_version;
    session.browser = std::move(browser_);
    sessions_[message.name] = std::move(session);
  }
  scheduler_->submit_opaque(
      record.busy_s(),
      [this, &from, record_index,
       reply = std::move(reply)](const serve::RequestTiming& t) mutable {
        ServerExecutionRecord& rec = executions_[record_index];
        rec.queue_wait_s = t.queue_wait_s;
        rec.batch_wait_s = t.batch_wait_s;
        from.send(std::move(reply));
      });
}

void EdgeServer::handle_overlay(net::Endpoint& from,
                                const net::Message& message) {
  vmsynth::VmImage image =
      vmsynth::synthesize(base_image_, std::span(message.payload));

  // Pull any model files shipped inside the overlay into the store — this
  // doubles as pre-sending (Section III.B.3).
  constexpr std::string_view kModelDir = "/opt/offload/models/";
  for (const auto& f : image.files()) {
    if (util::starts_with(f.path, kModelDir)) {
      store_->store_file({f.path.substr(kModelDir.size()), f.content});
    }
  }
  synthesized_ = std::move(image);
  config_.offloading_system_installed = true;
  ++stats_.overlays_installed;

  vmsynth::OverlayStats overlay_stats;
  overlay_stats.compressed_bytes = message.payload.size();
  // The uncompressed size is implied by the payload; approximate the apply
  // cost from the synthesized image size.
  overlay_stats.uncompressed_bytes = synthesized_->total_bytes();
  double synth_s = vmsynth::synthesis_compute_seconds(overlay_stats);
  stats_.vm_synthesis_compute_s += synth_s;

  std::string app = message.name;
  sim_.schedule(sim::SimTime::seconds(synth_s), [&from, app] {
    net::Message ack;
    ack.type = net::MessageType::kAck;
    ack.name = "installed:" + app;
    from.send(std::move(ack));
  });
}

}  // namespace offload::edge
