#include "src/edge/browser_host.h"

#include <cstring>
#include <stdexcept>

namespace offload::edge {
namespace {

using jsvm::HostObject;
using jsvm::Interpreter;
using jsvm::JsError;
using jsvm::TypedArray;
using jsvm::TypedArrayPtr;
using jsvm::Value;

/// The object returned by loadModel(): wraps the instantiated network.
/// Snapshots serialize it as __loadModel("<app>") — the model itself never
/// rides inside the snapshot (the pre-sending optimization).
class ModelHost final : public HostObject {
 public:
  ModelHost(std::string app, std::shared_ptr<nn::Network> net,
            BrowserHost* host)
      : app_(std::move(app)), net_(std::move(net)), host_(host) {}

  std::string_view class_name() const override { return "Model"; }

  Value get_property(Interpreter& interp, std::string_view name) override {
    if (name == "name") return app_;
    if (name == "numLayers") return static_cast<double>(net_->size());
    if (name == "inputSize") {
      return static_cast<double>(net_->analyze().shapes.at(0).elements());
    }
    if (name == "inference" || name == "inference_front" ||
        name == "inference_rear") {
      return interp.native("Model." + std::string(name));
    }
    throw JsError("model has no property '" + std::string(name) + "'");
  }

  std::string restore_expression() const override {
    return "__loadModel(\"" + app_ + "\")";
  }

  const std::string& app() const { return app_; }
  const std::shared_ptr<nn::Network>& net() const { return net_; }
  BrowserHost* host() const { return host_; }

 private:
  std::string app_;
  std::shared_ptr<nn::Network> net_;
  BrowserHost* host_;
};

std::shared_ptr<ModelHost> model_from_this(const Value& this_value,
                                           const char* what) {
  if (const auto* host = std::get_if<jsvm::HostObjectPtr>(&this_value)) {
    if (auto model = std::dynamic_pointer_cast<ModelHost>(*host)) {
      return model;
    }
  }
  throw JsError(std::string(what) + ": receiver is not a model");
}

nn::Tensor tensor_from_typed_array(const Value& v, const nn::Shape& shape,
                                   const char* what) {
  const auto* ta = std::get_if<TypedArrayPtr>(&v);
  if (!ta) throw JsError(std::string(what) + ": expected Float32Array");
  if (static_cast<std::int64_t>((*ta)->data.size()) != shape.elements()) {
    throw JsError(std::string(what) + ": expected " +
                  std::to_string(shape.elements()) + " values, got " +
                  std::to_string((*ta)->data.size()));
  }
  return nn::Tensor(shape, (*ta)->data);
}

Value typed_array_from_tensor(const nn::Tensor& t) {
  auto ta = std::make_shared<TypedArray>();
  ta->data.assign(t.data().begin(), t.data().end());
  return ta;
}

}  // namespace

BrowserHost::BrowserHost(nn::DeviceProfile profile,
                         std::shared_ptr<ModelStore> store)
    : profile_(std::move(profile)), store_(std::move(store)) {
  if (!store_) throw std::invalid_argument("BrowserHost: null model store");
  reset_realm();
}

void BrowserHost::reset_realm() {
  interp_ = std::make_unique<jsvm::Interpreter>();
  install_bindings();
}

void BrowserHost::set_partition_cut(const std::string& app, std::size_t cut) {
  // Validate when the model is known here (servers may record a cut before
  // the model pre-send arrives; those are checked at instantiation).
  if (store_->can_instantiate(app)) {
    const std::size_t nodes = store_->instantiate(app)->size();
    if (cut >= nodes) throw InvalidCutError(app, cut, nodes);
  }
  cuts_[app] = cut;
}

std::size_t BrowserHost::partition_cut(const std::string& app) const {
  auto it = cuts_.find(app);
  return it == cuts_.end() ? SIZE_MAX : it->second;
}

void BrowserHost::add_image(const std::string& name, nn::Tensor image) {
  images_.insert_or_assign(name, std::move(image));
}

void BrowserHost::set_canvas_image(const std::string& element_id,
                                   const nn::Tensor& image) {
  jsvm::DomNodePtr node = interp_->document().get_element_by_id(element_id);
  if (!node || node->tag != "canvas") {
    throw std::runtime_error("set_canvas_image: no canvas with id " +
                             element_id);
  }
  auto ta = std::make_shared<TypedArray>();
  ta->data.assign(image.data().begin(), image.data().end());
  node->canvas_data = std::move(ta);
}

double BrowserHost::consume_compute_seconds() {
  double s = compute_seconds_;
  compute_seconds_ = 0.0;
  return s;
}

void BrowserHost::install_bindings() {
  Interpreter& interp = *interp_;

  auto load_model = interp.register_native(
      "__loadModel",
      [this](Interpreter&, const Value&, std::span<Value> args) -> Value {
        if (args.empty()) throw JsError("loadModel: missing app name");
        std::string app = jsvm::to_display_string(args[0]);
        std::shared_ptr<nn::Network> net;
        try {
          net = store_->instantiate(app);
        } catch (const std::runtime_error& e) {
          throw JsError(e.what());
        }
        return std::make_shared<ModelHost>(std::move(app), std::move(net),
                                           this);
      });
  interp.set_global("loadModel", load_model);
  interp.set_global("__loadModel", load_model);

  interp.set_global(
      "loadImage",
      interp.register_native(
          "loadImage",
          [this](Interpreter&, const Value&, std::span<Value> args) -> Value {
            if (args.empty()) throw JsError("loadImage: missing name");
            std::string name = jsvm::to_display_string(args[0]);
            auto it = images_.find(name);
            if (it == images_.end()) {
              throw JsError("loadImage: unknown image '" + name + "'");
            }
            return typed_array_from_tensor(it->second);
          }));

  interp.register_native(
      "Model.inference",
      [this](Interpreter&, const Value& this_value,
             std::span<Value> args) -> Value {
        auto model = model_from_this(this_value, "inference");
        const nn::Network& net = *model->net();
        nn::Tensor input = tensor_from_typed_array(
            args.empty() ? Value(jsvm::Undefined{}) : args[0],
            net.analyze().shapes.at(0), "inference");
        auto result = net.forward(input);
        charge_compute(profile_.network_time_s(net));
        return typed_array_from_tensor(result.output);
      });

  interp.register_native(
      "Model.inference_front",
      [this](Interpreter&, const Value& this_value,
             std::span<Value> args) -> Value {
        auto model = model_from_this(this_value, "inference_front");
        const nn::Network& net = *model->net();
        std::size_t cut = partition_cut(model->app());
        if (cut == SIZE_MAX) {
          throw JsError("inference_front: no partition point configured for " +
                        model->app());
        }
        nn::Tensor input = tensor_from_typed_array(
            args.empty() ? Value(jsvm::Undefined{}) : args[0],
            net.analyze().shapes.at(0), "inference_front");
        nn::Tensor feature = net.forward_front(input, cut);
        charge_compute(profile_.network_time_s(net, 0, cut + 1));
        return typed_array_from_tensor(feature);
      });

  interp.register_native(
      "Model.inference_rear",
      [this](Interpreter&, const Value& this_value,
             std::span<Value> args) -> Value {
        auto model = model_from_this(this_value, "inference_rear");
        const nn::Network& net = *model->net();
        std::size_t cut = partition_cut(model->app());
        if (cut == SIZE_MAX) {
          throw JsError("inference_rear: no partition point configured for " +
                        model->app());
        }
        nn::Tensor feature = tensor_from_typed_array(
            args.empty() ? Value(jsvm::Undefined{}) : args[0],
            net.analyze().shapes.at(cut), "inference_rear");
        nn::Tensor scores = net.forward_rear(feature, cut);
        charge_compute(profile_.network_time_s(net, cut + 1, net.size()));
        return typed_array_from_tensor(scores);
      });
}

}  // namespace offload::edge
