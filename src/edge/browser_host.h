// BrowserHost: a MicroJS realm ("browser page") extended with the ML
// framework bindings the paper's apps use — the Caffe.js analogue. It
// exposes to apps:
//   loadModel("<app>")            → model host object (from the ModelStore)
//   model.inference(image)        → Float32Array of class scores
//   model.inference_front(image)  → feature data (partial inference, front)
//   model.inference_rear(feature) → scores (partial inference, rear)
//   loadImage("<name>")           → Float32Array seeded by the host
// and accounts simulated compute time for each DNN execution using the
// host's device profile (measured FLOPs ÷ profile throughput), so client
// and server charge realistic, deterministic times while computing real
// tensors.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "src/edge/model_store.h"
#include "src/jsvm/interpreter.h"
#include "src/jsvm/snapshot.h"
#include "src/nn/device.h"

namespace offload::edge {

/// Thrown by BrowserHost::set_partition_cut for a cut index outside the
/// model's node range. Typed so callers (controller, tests) can
/// distinguish a bad cut from other out_of_range conditions.
class InvalidCutError : public std::out_of_range {
 public:
  InvalidCutError(const std::string& app, std::size_t cut,
                  std::size_t node_count)
      : std::out_of_range("invalid partition cut " + std::to_string(cut) +
                          " for model '" + app + "' with " +
                          std::to_string(node_count) + " nodes") {}
};

class BrowserHost {
 public:
  BrowserHost(nn::DeviceProfile profile, std::shared_ptr<ModelStore> store);

  jsvm::Interpreter& interp() { return *interp_; }
  const nn::DeviceProfile& profile() const { return profile_; }
  const std::shared_ptr<ModelStore>& model_store() const { return store_; }

  /// Replace the realm with a fresh one (same bindings). Used when the
  /// client adopts a result snapshot: restore always runs on a fresh page.
  void reset_realm();

  /// Set the partition point used by inference_front/inference_rear for
  /// one model. `cut` is a node index of the model's network; when the
  /// model is already instantiable, an out-of-range cut throws
  /// InvalidCutError (unknown models are validated lazily at load time).
  void set_partition_cut(const std::string& app, std::size_t cut);
  /// Returns SIZE_MAX when unset.
  std::size_t partition_cut(const std::string& app) const;

  /// Register an image the app can fetch with loadImage(name).
  void add_image(const std::string& name, nn::Tensor image);

  /// Seed a canvas element's pixel data from C++ (host-side "drawing").
  void set_canvas_image(const std::string& element_id,
                        const nn::Tensor& image);

  /// Simulated seconds of DNN compute accumulated since the last call.
  double consume_compute_seconds();
  /// Peek without resetting.
  double pending_compute_seconds() const { return compute_seconds_; }

  /// Charge compute directly (used by host-side accounting like snapshot
  /// capture when expressed in device time).
  void charge_compute(double seconds) { compute_seconds_ += seconds; }

 private:
  void install_bindings();

  nn::DeviceProfile profile_;
  std::shared_ptr<ModelStore> store_;
  std::unique_ptr<jsvm::Interpreter> interp_;
  std::unordered_map<std::string, std::size_t> cuts_;
  std::unordered_map<std::string, nn::Tensor> images_;
  double compute_seconds_ = 0.0;
};

}  // namespace offload::edge
