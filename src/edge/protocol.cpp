#include "src/edge/protocol.h"

#include "src/util/crc32.h"

namespace offload::edge {

PayloadCorruptError::PayloadCorruptError(const net::Message& message)
    : std::runtime_error(std::string("corrupt payload in ") +
                         net::message_type_name(message.type) +
                         " message '" + message.name + "'") {}

bool payload_intact(const net::Message& message) {
  return message.crc == util::crc32(message.payload);
}

void verify_payload(const net::Message& message) {
  if (!payload_intact(message)) throw PayloadCorruptError(message);
}

util::Bytes ModelFilesPayload::encode() const {
  util::BinaryWriter w;
  w.varint(files.size());
  for (const auto& f : files) {
    w.str(f.name);
    w.blob(std::span(f.content));
  }
  return std::move(w).take();
}

ModelFilesPayload ModelFilesPayload::decode(
    std::span<const std::uint8_t> data) {
  util::BinaryReader r(data);
  ModelFilesPayload out;
  std::uint64_t count = r.varint();
  out.files.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    nn::ModelFile f;
    f.name = r.str();
    f.content = r.blob();
    out.files.push_back(std::move(f));
  }
  return out;
}

util::Bytes ModelOfferPayload::encode() const {
  util::BinaryWriter w;
  w.varint(files.size());
  for (const auto& f : files) {
    w.str(f.name);
    w.u64(f.digest);
    w.u64(f.bytes);
  }
  return std::move(w).take();
}

ModelOfferPayload ModelOfferPayload::decode(
    std::span<const std::uint8_t> data) {
  util::BinaryReader r(data);
  ModelOfferPayload out;
  std::uint64_t count = r.varint();
  out.files.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Entry e;
    e.name = r.str();
    e.digest = r.u64();
    e.bytes = r.u64();
    out.files.push_back(std::move(e));
  }
  return out;
}

util::Bytes FileListPayload::encode() const {
  util::BinaryWriter w;
  w.varint(names.size());
  for (const auto& n : names) w.str(n);
  return std::move(w).take();
}

FileListPayload FileListPayload::decode(std::span<const std::uint8_t> data) {
  util::BinaryReader r(data);
  FileListPayload out;
  std::uint64_t count = r.varint();
  out.names.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) out.names.push_back(r.str());
  return out;
}

util::Bytes SnapshotPayload::encode() const {
  util::BinaryWriter w;
  w.u64(cut);
  w.u8(differential ? 1 : 0);
  w.u64(base_version);
  w.str(program);
  return std::move(w).take();
}

SnapshotPayload SnapshotPayload::decode(std::span<const std::uint8_t> data) {
  util::BinaryReader r(data);
  SnapshotPayload out;
  out.cut = r.u64();
  out.differential = r.u8() != 0;
  out.base_version = r.u64();
  out.program = r.str();
  return out;
}

}  // namespace offload::edge
