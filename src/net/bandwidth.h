// Runtime network-status estimation (Section III.B.2): the partitioner
// needs an up-to-date bandwidth figure to pick the partition point. The
// client records observed (bytes, duration) pairs for completed transfers
// and exposes an EWMA estimate.
#pragma once

#include <cstdint>

#include "src/sim/time.h"
#include "src/util/stats.h"

namespace offload::net {

class BandwidthEstimator {
 public:
  /// `alpha` is the EWMA smoothing factor; `fallback_bps` is returned until
  /// the first observation lands.
  explicit BandwidthEstimator(double fallback_bps = 30e6, double alpha = 0.3)
      : fallback_bps_(fallback_bps), ewma_(alpha) {}

  /// Record a completed transfer of `bytes` that took `duration`.
  void observe(std::uint64_t bytes, sim::SimTime duration);

  /// Current estimate in bits per second.
  double estimate_bps() const;

  /// Predicted time to move `bytes` at the current estimate.
  sim::SimTime predict(std::uint64_t bytes) const;

  std::size_t observations() const { return count_; }

 private:
  double fallback_bps_;
  util::Ewma ewma_;
  std::size_t count_ = 0;
};

}  // namespace offload::net
