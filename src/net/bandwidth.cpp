#include "src/net/bandwidth.h"

namespace offload::net {

void BandwidthEstimator::observe(std::uint64_t bytes, sim::SimTime duration) {
  if (duration <= sim::SimTime::zero() || bytes == 0) return;
  double bps = static_cast<double>(bytes) * 8.0 / duration.to_seconds();
  ewma_.add(bps);
  ++count_;
}

double BandwidthEstimator::estimate_bps() const {
  return ewma_.empty() ? fallback_bps_ : ewma_.value();
}

sim::SimTime BandwidthEstimator::predict(std::uint64_t bytes) const {
  double bps = estimate_bps();
  if (bps <= 0) return sim::SimTime::max();
  return sim::SimTime::seconds(static_cast<double>(bytes) * 8.0 / bps);
}

}  // namespace offload::net
