#include "src/net/message.h"

#include "src/util/crc32.h"

namespace offload::net {

const char* message_type_name(MessageType t) {
  switch (t) {
    case MessageType::kModelFiles:
      return "ModelFiles";
    case MessageType::kAck:
      return "Ack";
    case MessageType::kSnapshot:
      return "Snapshot";
    case MessageType::kResultSnapshot:
      return "ResultSnapshot";
    case MessageType::kVmOverlay:
      return "VmOverlay";
    case MessageType::kControl:
      return "Control";
    case MessageType::kModelOffer:
      return "ModelOffer";
  }
  return "?";
}

util::Bytes Message::encode() const {
  util::BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(id);
  w.str(name);
  w.blob(payload);
  w.u32(util::crc32(payload));
  return std::move(w).take();
}

Message Message::decode(std::span<const std::uint8_t> wire) {
  util::BinaryReader r(wire);
  Message m;
  auto t = r.u8();
  if (t < 1 || t > 7) throw util::DecodeError("Message: bad type");
  m.type = static_cast<MessageType>(t);
  m.id = r.u64();
  m.name = r.str();
  m.payload = r.blob();
  m.crc = r.u32();
  if (m.crc != util::crc32(m.payload)) {
    throw util::DecodeError("Message: payload checksum mismatch");
  }
  return m;
}

}  // namespace offload::net
