// Unidirectional link model reproducing netem-style shaping (the paper
// limits the client/server Ethernet to 30 Mbps with netem). Transfers are
// serialized FIFO: a message's transmission starts when the link is free,
// takes size*8/bandwidth, and arrives one propagation latency later.
// Optional jitter and loss support the failure-injection tests.
#pragma once

#include <cstdint>

#include "src/sim/time.h"
#include "src/util/rng.h"

namespace offload::net {

struct LinkConfig {
  /// Payload bandwidth in bits per second. The paper's experiments use
  /// 30 Mbps (decimal: 30e6 bps), which reproduces its "44 MB model takes
  /// about 12 seconds" arithmetic exactly.
  double bandwidth_bps = 30e6;
  /// One-way propagation delay.
  sim::SimTime latency = sim::SimTime::millis(1);
  /// Uniform jitter added to latency in [0, jitter].
  sim::SimTime jitter = sim::SimTime::zero();
  /// Probability that a message is dropped (per transmission attempt).
  double loss_rate = 0.0;
};

/// Computed schedule for one message on a link.
struct TransferPlan {
  sim::SimTime start;    ///< When transmission begins (link free).
  sim::SimTime sent;     ///< When the last byte leaves the sender.
  sim::SimTime arrival;  ///< When the last byte reaches the receiver.
  bool lost = false;     ///< Dropped by the loss process.
};

/// FIFO serializing link. Not tied to a Simulation; callers pass `now` and
/// get back a TransferPlan, which keeps the model independently testable.
class Link {
 public:
  explicit Link(const LinkConfig& config, std::uint64_t seed = 1);

  /// Reserve the link for `bytes` starting no earlier than `now`.
  TransferPlan transmit(sim::SimTime now, std::uint64_t bytes);

  /// Pure query: how long would `bytes` take on an idle link (transmission
  /// plus latency, no queueing, no jitter)?
  sim::SimTime nominal_duration(std::uint64_t bytes) const;

  const LinkConfig& config() const { return config_; }
  sim::SimTime busy_until() const { return busy_until_; }

  /// Change bandwidth mid-simulation (models network condition shifts for
  /// the dynamic-partitioning experiments). Applies to future transfers.
  void set_bandwidth_bps(double bps);

 private:
  LinkConfig config_;
  sim::SimTime busy_until_;
  util::Pcg32 rng_;
};

}  // namespace offload::net
