#include "src/net/channel.h"

#include <stdexcept>

#include "src/util/logging.h"

namespace offload::net {

std::uint64_t Endpoint::send(Message message) {
  message.id = next_id_++;
  bytes_sent_ += message.wire_size();
  std::uint64_t id = message.id;
  channel_->transmit(is_a_, std::move(message), 0);
  return id;
}

std::unique_ptr<Channel> Channel::make(sim::Simulation& sim,
                                       const ChannelConfig& config,
                                       std::string name_a, std::string name_b,
                                       std::uint64_t seed) {
  return std::unique_ptr<Channel>(
      new Channel(sim, config, std::move(name_a), std::move(name_b), seed));
}

Channel::Channel(sim::Simulation& sim, const ChannelConfig& config,
                 std::string name_a, std::string name_b, std::uint64_t seed)
    : sim_(sim),
      config_(config),
      ab_(config.a_to_b, seed),
      ba_(config.b_to_a, seed + 1),
      a_(new Endpoint(this, std::move(name_a), true)),
      b_(new Endpoint(this, std::move(name_b), false)) {}

void Channel::transmit(bool from_a, Message message, int attempt) {
  Link& link = from_a ? ab_ : ba_;
  Endpoint& dest = from_a ? *b_ : *a_;
  TransferPlan plan = link.transmit(sim_.now(), message.wire_size());
  if (plan.lost) {
    ++drops_;
    if (config_.reliable && attempt < config_.max_retransmits) {
      OFFLOAD_LOG_DEBUG << "channel: drop " << message_type_name(message.type)
                        << " id=" << message.id << ", retransmitting";
      // Sender notices the loss one timeout after the send completed.
      sim::SimTime retry_at = plan.sent + config_.retransmit_timeout;
      sim_.schedule_at(retry_at, [this, from_a, message = std::move(message),
                                  attempt]() mutable {
        transmit(from_a, std::move(message), attempt + 1);
      });
    } else if (config_.reliable) {
      OFFLOAD_LOG_ERROR << "channel: message " << message.id
                        << " exceeded max retransmits; dropping";
    }
    return;
  }
  std::uint64_t wire = message.wire_size();
  sim_.schedule_at(plan.arrival, [&dest, wire,
                                  message = std::move(message)]() mutable {
    dest.bytes_received_ += wire;
    if (dest.handler_) dest.handler_(message);
  });
}

}  // namespace offload::net
