#include "src/net/channel.h"

#include <stdexcept>
#include <utility>

#include "src/util/crc32.h"
#include "src/util/logging.h"

namespace offload::net {

std::uint64_t Endpoint::send(Message message) {
  message.id = next_id_++;
  message.crc = util::crc32(message.payload);
  bytes_sent_ += message.wire_size();
  std::uint64_t id = message.id;
  channel_->transmit(is_a_, std::move(message), 0);
  return id;
}

std::unique_ptr<Channel> Channel::make(sim::Simulation& sim,
                                       const ChannelConfig& config,
                                       std::string name_a, std::string name_b,
                                       std::uint64_t seed) {
  return std::unique_ptr<Channel>(
      new Channel(sim, config, std::move(name_a), std::move(name_b), seed));
}

Channel::Channel(sim::Simulation& sim, const ChannelConfig& config,
                 std::string name_a, std::string name_b, std::uint64_t seed)
    : sim_(sim),
      config_(config),
      ab_(config.a_to_b, seed),
      ba_(config.b_to_a, seed + 1),
      a_(new Endpoint(this, std::move(name_a), true)),
      b_(new Endpoint(this, std::move(name_b), false)) {}

void Channel::set_fault_hook(bool a_to_b, FaultHook hook) {
  (a_to_b ? fault_ab_ : fault_ba_) = std::move(hook);
}

void Channel::fail_delivery(bool from_a, Message message, int attempts) {
  ++delivery_failures_;
  if (obs_) {
    obs_->metrics.add("net.delivery_failures");
    obs_->trace.marker(message.ctx.trace, message.ctx.root,
                       std::string("undeliverable:") +
                           message_type_name(message.type),
                       (from_a ? a_ : b_)->name(), sim_.now());
  }
  OFFLOAD_LOG_ERROR << "channel: message " << message.id << " ("
                    << message_type_name(message.type)
                    << ") undeliverable after " << attempts << " attempt(s)";
  Endpoint& src = from_a ? *a_ : *b_;
  if (src.failure_handler_) src.failure_handler_(message, attempts);
}

void Channel::deliver(Link& link, Endpoint& dest, Message message,
                      sim::SimTime extra_delay) {
  TransferPlan plan = link.transmit(sim_.now(), message.wire_size());
  if (plan.lost) return;  // injected duplicates get no ARQ of their own
  std::uint64_t wire = message.wire_size();
  sim_.schedule_at(plan.arrival + extra_delay,
                   [&dest, wire, message = std::move(message)]() mutable {
                     dest.bytes_received_ += wire;
                     if (dest.handler_) dest.handler_(message);
                   });
}

void Channel::transmit(bool from_a, Message message, int attempt) {
  Link& link = from_a ? ab_ : ba_;
  Endpoint& dest = from_a ? *b_ : *a_;
  FaultHook& hook = from_a ? fault_ab_ : fault_ba_;
  FaultDecision fault;
  if (hook) fault = hook(message);

  TransferPlan plan = link.transmit(sim_.now(), message.wire_size());

  // One span per physical attempt (retransmissions included), parented on
  // the logical in-flight span carried by the message's trace context.
  // Everything is known at this point — no open span state to track.
  if (obs_) {
    Endpoint& src = from_a ? *a_ : *b_;
    bool lost = plan.lost || fault.drop;
    obs::SpanId span = obs_->trace.emit(
        message.ctx.trace,
        message.ctx.span ? message.ctx.span : message.ctx.root,
        obs::SpanKind::kTransmitAttempt, message_type_name(message.type),
        "net/" + src.name() + "->" + dest.name(), sim_.now(),
        lost ? plan.sent : plan.arrival + fault.extra_delay,
        ((lost ? plan.sent : plan.arrival + fault.extra_delay) - sim_.now())
            .to_seconds());
    obs_->trace.attr(span, "id", static_cast<std::int64_t>(message.id));
    obs_->trace.attr(span, "attempt", static_cast<std::int64_t>(attempt));
    obs_->trace.attr(span, "bytes",
                     static_cast<std::int64_t>(message.wire_size()));
    obs_->trace.attr(span, "outcome", lost ? "lost" : "delivered");
    obs_->metrics.add("net.attempts");
    obs_->metrics.add("net.bytes_attempted", message.wire_size());
    if (!lost) obs_->metrics.add("net.bytes_delivered", message.wire_size());
    if (lost) obs_->metrics.add("net.drops");
    if (fault.duplicate) obs_->metrics.add("net.duplicates");
    if (fault.corrupt_mask != 0 && !message.payload.empty()) {
      obs_->metrics.add("net.corruptions");
    }
  }

  if (plan.lost || fault.drop) {
    ++drops_;
    if (config_.reliable && attempt < config_.max_retransmits) {
      OFFLOAD_LOG_DEBUG << "channel: drop " << message_type_name(message.type)
                        << " id=" << message.id << ", retransmitting";
      // Sender notices the loss one timeout after the send completed.
      sim::SimTime retry_at = plan.sent + config_.retransmit_timeout;
      sim_.schedule_at(retry_at, [this, from_a, message = std::move(message),
                                  attempt]() mutable {
        transmit(from_a, std::move(message), attempt + 1);
      });
    } else {
      // ARQ exhausted (or reliability is off): the message is gone for
      // good. Surface that to the sender instead of leaving it hanging.
      fail_delivery(from_a, std::move(message), attempt + 1);
    }
    return;
  }

  if (fault.corrupt_mask != 0 && !message.payload.empty()) {
    ++corruptions_;
    message.payload[static_cast<std::size_t>(
        fault.corrupt_index % message.payload.size())] ^= fault.corrupt_mask;
  }
  if (fault.duplicate) {
    ++duplicates_;
    deliver(link, dest, message, fault.extra_delay);  // the extra copy
  }
  std::uint64_t wire = message.wire_size();
  sim_.schedule_at(plan.arrival + fault.extra_delay,
                   [&dest, wire, message = std::move(message)]() mutable {
                     dest.bytes_received_ += wire;
                     if (dest.handler_) dest.handler_(message);
                   });
}

}  // namespace offload::net
