#include "src/net/link.h"

#include <algorithm>
#include <stdexcept>

namespace offload::net {

Link::Link(const LinkConfig& config, std::uint64_t seed)
    : config_(config), rng_(seed, 0x6e65746c696e6bULL) {
  if (config_.bandwidth_bps <= 0) {
    throw std::invalid_argument("Link: bandwidth must be positive");
  }
  if (config_.loss_rate < 0 || config_.loss_rate >= 1.0) {
    throw std::invalid_argument("Link: loss_rate must be in [0, 1)");
  }
}

sim::SimTime Link::nominal_duration(std::uint64_t bytes) const {
  double tx_seconds =
      static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  return sim::SimTime::seconds(tx_seconds) + config_.latency;
}

TransferPlan Link::transmit(sim::SimTime now, std::uint64_t bytes) {
  TransferPlan plan;
  plan.start = std::max(now, busy_until_);
  double tx_seconds =
      static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  plan.sent = plan.start + sim::SimTime::seconds(tx_seconds);
  busy_until_ = plan.sent;

  sim::SimTime latency = config_.latency;
  if (config_.jitter > sim::SimTime::zero()) {
    auto extra_ns = static_cast<std::int64_t>(
        rng_.canonical() * static_cast<double>(config_.jitter.ns()));
    latency += sim::SimTime::nanos(extra_ns);
  }
  plan.arrival = plan.sent + latency;
  plan.lost = config_.loss_rate > 0 && rng_.chance(config_.loss_rate);
  return plan;
}

void Link::set_bandwidth_bps(double bps) {
  if (bps <= 0) throw std::invalid_argument("Link: bandwidth must be positive");
  config_.bandwidth_bps = bps;
}

}  // namespace offload::net
