// Wire messages exchanged by the offloading protocol (Section III.B):
// model file uploads, the pre-send ACK, snapshots in both directions, and
// VM overlays for on-demand installation.
#pragma once

#include <cstdint>
#include <string>

#include "src/obs/span.h"
#include "src/util/bytes.h"

namespace offload::net {

enum class MessageType : std::uint8_t {
  kModelFiles = 1,     ///< Client → server: pre-send of NN model files.
  kAck = 2,            ///< Server → client: model stored, ready.
  kSnapshot = 3,       ///< Client → server: execution-state snapshot.
  kResultSnapshot = 4, ///< Server → client: snapshot with the result state.
  kVmOverlay = 5,      ///< Client → server: on-demand system install.
  kControl = 6,        ///< Small control/handshake messages.
  kModelOffer = 7,     ///< Client → server: per-file digests of a pre-send,
                       ///< so a server holding the blobs can skip the body.
};

const char* message_type_name(MessageType t);

/// A protocol message. `payload` carries the serialized body; `wire_size()`
/// is what the link model charges for, including a small framing header.
struct Message {
  MessageType type = MessageType::kControl;
  std::string name;      ///< e.g. model file name, app id.
  util::Bytes payload;
  std::uint64_t id = 0;  ///< Sender-assigned sequence id.
  /// CRC32 of `payload`, stamped by Endpoint::send. Receivers verify it
  /// (edge::verify_payload) so in-flight corruption is caught rather than
  /// silently decoded.
  std::uint32_t crc = 0;
  /// Trace coordinates for the obs layer. Out-of-band: not serialized by
  /// encode()/decode() and excluded from wire_size(), so tracing never
  /// perturbs simulated timings.
  obs::TraceContext ctx;

  /// Framing overhead per message (type, id, name length, payload length,
  /// checksum) — matches encode()'s actual header cost closely enough for
  /// the link model.
  static constexpr std::uint64_t kHeaderBytes = 32;

  std::uint64_t wire_size() const {
    return kHeaderBytes + name.size() + payload.size();
  }

  /// Serialize to bytes (with CRC). decode() throws util::DecodeError on a
  /// corrupt buffer.
  util::Bytes encode() const;
  static Message decode(std::span<const std::uint8_t> wire);
};

}  // namespace offload::net
