// Bidirectional channel between two endpoints on top of the simulation.
// Each direction has its own Link; delivery invokes the receiving
// endpoint's handler at the message's simulated arrival time. Lost messages
// are retransmitted after a timeout when `reliable` is on (simple ARQ),
// which the failure-injection tests exercise. Exhausting the retransmit
// budget — or losing a message on an unreliable channel — surfaces a typed
// delivery failure on the *sending* endpoint instead of hanging silently.
//
// Per-direction fault hooks let the deterministic fault-injection layer
// (src/fault) impose message-level faults: drop (rides the normal ARQ
// path), duplication, extra delay, and payload corruption (caught by the
// receiver's CRC verification).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/net/link.h"
#include "src/net/message.h"
#include "src/obs/obs.h"
#include "src/sim/simulation.h"
#include "src/util/stats.h"

namespace offload::net {

class Channel;

/// Verdict of a fault hook for one transmission attempt. Defaults are a
/// clean pass-through.
struct FaultDecision {
  bool drop = false;       ///< lose this attempt (ARQ sees an ordinary loss)
  bool duplicate = false;  ///< deliver, plus inject one extra copy
  /// Added to the arrival time (models bufferbloat / rerouting; may
  /// reorder against later messages).
  sim::SimTime extra_delay = sim::SimTime::zero();
  /// Corrupt the delivered payload: XOR `corrupt_mask` into the byte at
  /// `corrupt_index % payload.size()`. No-op when the mask is zero or the
  /// payload is empty. The stamped CRC is left alone, so receivers detect
  /// the damage.
  std::uint8_t corrupt_mask = 0;
  std::uint64_t corrupt_index = 0;
};

/// Consulted once per transmission attempt (retransmissions included;
/// injected duplicates are exempt, or duplication would compound).
using FaultHook = std::function<FaultDecision(const Message&)>;

/// One side of a channel. Owns a receive handler; sends go to the peer.
class Endpoint {
 public:
  using Handler = std::function<void(const Message&)>;
  /// Delivery failure: the ARQ gave up on `message` after `attempts`
  /// transmissions (or the channel is unreliable and the one attempt was
  /// lost). Invoked at the simulated time the sender can know.
  using FailureHandler = std::function<void(const Message&, int attempts)>;

  const std::string& name() const { return name_; }
  void set_handler(Handler handler) { handler_ = std::move(handler); }
  void set_failure_handler(FailureHandler handler) {
    failure_handler_ = std::move(handler);
  }

  /// Queue a message toward the peer. Returns the sender-side send id.
  /// Stamps the payload CRC so receivers can verify integrity.
  std::uint64_t send(Message message);

  /// Bytes delivered to this endpoint so far (for accounting/tests).
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  friend class Channel;
  Endpoint(Channel* channel, std::string name, bool is_a)
      : channel_(channel), name_(std::move(name)), is_a_(is_a) {}

  Channel* channel_;
  std::string name_;
  bool is_a_;
  Handler handler_;
  FailureHandler failure_handler_;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t next_id_ = 1;
};

struct ChannelConfig {
  LinkConfig a_to_b;
  LinkConfig b_to_a;
  /// Retransmit lost messages after `retransmit_timeout`.
  bool reliable = true;
  sim::SimTime retransmit_timeout = sim::SimTime::millis(200);
  int max_retransmits = 16;
};

/// The channel's delivery-latency floor: the minimum one-way propagation
/// delay across both directions. Serialization, queueing, jitter, and
/// retransmits only ever add to it, so this is the conservative
/// lookahead bound a sim::PartitionedSimulation may use when the actors
/// it partitions apart talk exclusively over this channel.
inline sim::SimTime latency_floor(const ChannelConfig& config) {
  return config.a_to_b.latency < config.b_to_a.latency
             ? config.a_to_b.latency
             : config.b_to_a.latency;
}

/// Owns both endpoints and both links. Construct via make().
class Channel {
 public:
  static std::unique_ptr<Channel> make(sim::Simulation& sim,
                                       const ChannelConfig& config,
                                       std::string name_a = "client",
                                       std::string name_b = "server",
                                       std::uint64_t seed = 1);

  Endpoint& a() { return *a_; }
  Endpoint& b() { return *b_; }

  Link& link_a_to_b() { return ab_; }
  Link& link_b_to_a() { return ba_; }

  /// Minimum one-way propagation delay across both live links (tracks
  /// config changes; see the free latency_floor(ChannelConfig&)).
  sim::SimTime latency_floor() const {
    return ab_.config().latency < ba_.config().latency
               ? ab_.config().latency
               : ba_.config().latency;
  }

  /// Install a fault hook on one direction (true = a→b). Passing an empty
  /// function removes it.
  void set_fault_hook(bool a_to_b, FaultHook hook);

  /// Attach an observability sink. When set, every transmission attempt
  /// emits one kTransmitAttempt span (parented on the message's trace
  /// context) and byte/drop/duplicate counters accrue in the registry.
  /// Null (the default) disables all of it at the cost of one branch.
  void set_obs(obs::Obs* obs) { obs_ = obs; }

  /// Transmission attempts that were dropped (retransmissions included).
  std::uint64_t drops() const { return drops_; }
  /// Messages the channel gave up on (ARQ exhausted, or unreliable loss).
  std::uint64_t delivery_failures() const { return delivery_failures_; }
  /// Extra copies delivered by duplication faults.
  std::uint64_t duplicates() const { return duplicates_; }
  /// Payloads damaged by corruption faults.
  std::uint64_t corruptions() const { return corruptions_; }

 private:
  Channel(sim::Simulation& sim, const ChannelConfig& config,
          std::string name_a, std::string name_b, std::uint64_t seed);

  friend class Endpoint;
  void transmit(bool from_a, Message message, int attempt);
  void deliver(Link& link, Endpoint& dest, Message message,
               sim::SimTime extra_delay);
  void fail_delivery(bool from_a, Message message, int attempts);

  sim::Simulation& sim_;
  ChannelConfig config_;
  Link ab_;
  Link ba_;
  std::unique_ptr<Endpoint> a_;
  std::unique_ptr<Endpoint> b_;
  FaultHook fault_ab_;
  FaultHook fault_ba_;
  obs::Obs* obs_ = nullptr;
  std::uint64_t drops_ = 0;
  std::uint64_t delivery_failures_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t corruptions_ = 0;
};

}  // namespace offload::net
