// Bidirectional channel between two endpoints on top of the simulation.
// Each direction has its own Link; delivery invokes the receiving
// endpoint's handler at the message's simulated arrival time. Lost messages
// are retransmitted after a timeout when `reliable` is on (simple ARQ),
// which the failure-injection tests exercise.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/net/link.h"
#include "src/net/message.h"
#include "src/sim/simulation.h"
#include "src/util/stats.h"

namespace offload::net {

class Channel;

/// One side of a channel. Owns a receive handler; sends go to the peer.
class Endpoint {
 public:
  using Handler = std::function<void(const Message&)>;

  const std::string& name() const { return name_; }
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Queue a message toward the peer. Returns the sender-side send id.
  std::uint64_t send(Message message);

  /// Bytes delivered to this endpoint so far (for accounting/tests).
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  friend class Channel;
  Endpoint(Channel* channel, std::string name, bool is_a)
      : channel_(channel), name_(std::move(name)), is_a_(is_a) {}

  Channel* channel_;
  std::string name_;
  bool is_a_;
  Handler handler_;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t next_id_ = 1;
};

struct ChannelConfig {
  LinkConfig a_to_b;
  LinkConfig b_to_a;
  /// Retransmit lost messages after `retransmit_timeout`.
  bool reliable = true;
  sim::SimTime retransmit_timeout = sim::SimTime::millis(200);
  int max_retransmits = 16;
};

/// Owns both endpoints and both links. Construct via make().
class Channel {
 public:
  static std::unique_ptr<Channel> make(sim::Simulation& sim,
                                       const ChannelConfig& config,
                                       std::string name_a = "client",
                                       std::string name_b = "server",
                                       std::uint64_t seed = 1);

  Endpoint& a() { return *a_; }
  Endpoint& b() { return *b_; }

  Link& link_a_to_b() { return ab_; }
  Link& link_b_to_a() { return ba_; }

  /// Total messages that were dropped at least once.
  std::uint64_t drops() const { return drops_; }

 private:
  Channel(sim::Simulation& sim, const ChannelConfig& config,
          std::string name_a, std::string name_b, std::uint64_t seed);

  friend class Endpoint;
  void transmit(bool from_a, Message message, int attempt);

  sim::Simulation& sim_;
  ChannelConfig config_;
  Link ab_;
  Link ba_;
  std::unique_ptr<Endpoint> a_;
  std::unique_ptr<Endpoint> b_;
  std::uint64_t drops_ = 0;
};

}  // namespace offload::net
