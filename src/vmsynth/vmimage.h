// Synthetic VM images as file trees. The on-demand installation path
// (Section III.B.3) ships a *VM overlay* — the delta between a base VM
// image (plain OS) and a customized image that adds the browser, support
// libraries, the offloading server program, and optionally the DNN model —
// and synthesizes the runnable VM on the edge server, following the
// elijah/cloudlet VM-synthesis design the paper builds on.
//
// File contents are generated synthetically with a controllable redundancy
// so system files compress ~2.5-3x (like real binaries under LZMA) while
// model weights stay incompressible; that calibration reproduces Table 1's
// 65 / 82 MB overlay sizes. See DESIGN.md (substitutions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/bytes.h"

namespace offload::vmsynth {

struct FileEntry {
  std::string path;
  util::Bytes content;
};

class VmImage {
 public:
  VmImage() = default;

  /// Add or replace a file.
  void put(std::string path, util::Bytes content);
  const FileEntry* find(std::string_view path) const;
  const std::vector<FileEntry>& files() const { return files_; }
  std::uint64_t total_bytes() const;

  /// Content hash of the whole image (order-insensitive on paths).
  std::uint64_t digest() const;

 private:
  std::vector<FileEntry> files_;
};

/// Deterministic pseudo-binary content: a token-dictionary stream whose
/// `redundancy` in [0,1) controls how compressible it is (0.75 ≈ system
/// binaries under a dictionary coder, 0 ≈ incompressible).
util::Bytes synthetic_file_content(std::uint64_t size, double redundancy,
                                   std::uint64_t seed);

/// The base VM image: a minimal OS tree (the paper uses Ubuntu 12.04).
VmImage make_base_image(std::uint64_t seed = 1);

struct SystemBundleSizes {
  /// Uncompressed component sizes, straight from the paper's accounting:
  /// "the browser (~45MB), the libraries (~54MB), the offloading server
  /// program (~1MB), and the model (rest) before compression".
  std::uint64_t browser_bytes = 45'000'000;
  std::uint64_t libraries_bytes = 54'000'000;
  std::uint64_t server_program_bytes = 1'000'000;
  /// How compressible the system files are. 0.57 gives ~2.6x under mlzma,
  /// matching the paper's LZMA result (100 MB of system files contribute
  /// ~38 MB to the 65 MB GoogLeNet overlay).
  double redundancy = 0.57;
};

/// Base image + offloading system (browser, libs, server program) and
/// optionally the model files appended under /opt/offload/models/.
VmImage make_customized_image(const VmImage& base,
                              const SystemBundleSizes& sizes,
                              const std::vector<std::pair<std::string,
                                                          util::Bytes>>&
                                  model_files,
                              std::uint64_t seed = 2);

}  // namespace offload::vmsynth
