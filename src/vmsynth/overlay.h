// VM overlay creation and synthesis. The overlay is the serialized,
// compressed delta between the base image and the customized image —
// chunk-level so files that share content with the base contribute almost
// nothing (the VM-synthesis design of Ha et al., MobiSys'13 [14]).
#pragma once

#include <cstdint>

#include "src/vmsynth/vmimage.h"

namespace offload::vmsynth {

struct OverlayStats {
  std::uint64_t uncompressed_bytes = 0;  ///< raw delta payload
  std::uint64_t compressed_bytes = 0;    ///< what travels the network
  std::size_t new_files = 0;
  std::size_t changed_files = 0;
  std::size_t reused_chunks = 0;  ///< chunks resolved from the base image
  std::size_t fresh_chunks = 0;
};

struct VmOverlay {
  util::Bytes payload;  ///< compressed wire format
  OverlayStats stats;
};

/// Chunk size for base-image deduplication.
inline constexpr std::size_t kChunkBytes = 4096;

/// Compute the overlay transforming `base` into `target`.
VmOverlay create_overlay(const VmImage& base, const VmImage& target);

/// Apply an overlay to the base image. Throws util::DecodeError if the
/// overlay is corrupt or references chunks the base does not have.
VmImage synthesize(const VmImage& base, const VmOverlay& overlay);
VmImage synthesize(const VmImage& base,
                   std::span<const std::uint8_t> overlay_payload);

/// Modeled server-side synthesis compute time (decompress + chunk apply)
/// for an overlay of the given sizes, excluding network transfer. Matches
/// Table 1's ~2-2.5 s gap between synthesis time and upload time at
/// 30 Mbps.
double synthesis_compute_seconds(const OverlayStats& stats,
                                 double decompress_Bps = 80e6,
                                 double apply_Bps = 250e6);

}  // namespace offload::vmsynth
