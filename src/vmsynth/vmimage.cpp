#include "src/vmsynth/vmimage.h"

#include <algorithm>

#include "src/util/hash.h"
#include "src/util/rng.h"

namespace offload::vmsynth {

void VmImage::put(std::string path, util::Bytes content) {
  for (auto& f : files_) {
    if (f.path == path) {
      f.content = std::move(content);
      return;
    }
  }
  files_.push_back({std::move(path), std::move(content)});
}

const FileEntry* VmImage::find(std::string_view path) const {
  for (const auto& f : files_) {
    if (f.path == path) return &f;
  }
  return nullptr;
}

std::uint64_t VmImage::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& f : files_) n += f.content.size();
  return n;
}

std::uint64_t VmImage::digest() const {
  std::uint64_t h = util::kFnvOffset;
  std::vector<std::uint64_t> per_file;
  per_file.reserve(files_.size());
  for (const auto& f : files_) {
    std::uint64_t fh = util::fnv1a(f.path);
    fh = util::fnv1a(std::span(f.content), fh);
    per_file.push_back(fh);
  }
  std::sort(per_file.begin(), per_file.end());
  for (auto fh : per_file) {
    h ^= fh;
    h *= util::kFnvPrime;
  }
  return h;
}

util::Bytes synthetic_file_content(std::uint64_t size, double redundancy,
                                   std::uint64_t seed) {
  util::Pcg32 rng(seed, 0x766d696d67ULL);
  // Token dictionary: redundancy shrinks the dictionary, creating repeats
  // that an LZ77 coder exploits.
  const std::size_t dict_tokens =
      std::max<std::size_t>(4, static_cast<std::size_t>(
                                   4096.0 * (1.0 - redundancy)));
  constexpr std::size_t kTokenLen = 24;
  std::vector<std::uint8_t> dictionary(dict_tokens * kTokenLen);
  for (auto& b : dictionary) {
    b = static_cast<std::uint8_t>(rng.next_u32());
  }
  util::Bytes out;
  out.reserve(size);
  while (out.size() < size) {
    if (redundancy > 0 && rng.chance(redundancy)) {
      std::size_t t = rng.next_below(static_cast<std::uint32_t>(dict_tokens));
      const std::uint8_t* token = dictionary.data() + t * kTokenLen;
      std::size_t n = std::min<std::size_t>(kTokenLen, size - out.size());
      out.insert(out.end(), token, token + n);
    } else {
      out.push_back(static_cast<std::uint8_t>(rng.next_u32()));
    }
  }
  return out;
}

VmImage make_base_image(std::uint64_t seed) {
  VmImage image;
  // A minimal OS tree; sizes are nominal (the base image never moves over
  // the network — only the overlay does).
  image.put("/boot/vmlinuz", synthetic_file_content(8'000'000, 0.6, seed + 1));
  image.put("/bin/sh", synthetic_file_content(1'000'000, 0.7, seed + 2));
  image.put("/lib/libc.so", synthetic_file_content(12'000'000, 0.7, seed + 3));
  image.put("/etc/passwd", synthetic_file_content(4'096, 0.8, seed + 4));
  image.put("/usr/share/doc/os-release",
            synthetic_file_content(16'384, 0.9, seed + 5));
  return image;
}

VmImage make_customized_image(
    const VmImage& base, const SystemBundleSizes& sizes,
    const std::vector<std::pair<std::string, util::Bytes>>& model_files,
    std::uint64_t seed) {
  VmImage image = base;
  image.put("/opt/offload/browser/webkit",
            synthetic_file_content(sizes.browser_bytes, sizes.redundancy,
                                   seed + 10));
  image.put("/opt/offload/lib/support.so",
            synthetic_file_content(sizes.libraries_bytes, sizes.redundancy,
                                   seed + 11));
  image.put("/opt/offload/bin/offload-server",
            synthetic_file_content(sizes.server_program_bytes,
                                   sizes.redundancy, seed + 12));
  for (const auto& [name, content] : model_files) {
    image.put("/opt/offload/models/" + name, content);
  }
  return image;
}

}  // namespace offload::vmsynth
