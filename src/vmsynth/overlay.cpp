#include "src/vmsynth/overlay.h"

#include <unordered_map>

#include "src/util/hash.h"
#include "src/vmsynth/compress.h"

namespace offload::vmsynth {
namespace {

// Wire format (before compression):
//   magic "OVL1" | varint file_count |
//   per file: path | varint size | varint piece_count |
//     per piece: u8 kind (0 = literal, 1 = base chunk ref) |
//       literal: blob | ref: path-index varint, chunk-index varint,
//       varint length
constexpr std::string_view kMagic = "OVL1";

struct ChunkKey {
  std::uint64_t hash;
  bool operator==(const ChunkKey&) const = default;
};
struct ChunkKeyHash {
  std::size_t operator()(const ChunkKey& k) const {
    return static_cast<std::size_t>(k.hash);
  }
};

struct ChunkRef {
  std::size_t file_index;
  std::size_t chunk_index;
  std::size_t length;
};

}  // namespace

VmOverlay create_overlay(const VmImage& base, const VmImage& target) {
  // Index every chunk of the base image by content hash.
  std::unordered_map<ChunkKey, ChunkRef, ChunkKeyHash> base_chunks;
  const auto& base_files = base.files();
  for (std::size_t fi = 0; fi < base_files.size(); ++fi) {
    const auto& content = base_files[fi].content;
    for (std::size_t ci = 0; ci * kChunkBytes < content.size(); ++ci) {
      std::size_t off = ci * kChunkBytes;
      std::size_t len = std::min(kChunkBytes, content.size() - off);
      std::uint64_t h = util::fnv1a(std::span(content).subspan(off, len));
      base_chunks.emplace(ChunkKey{h}, ChunkRef{fi, ci, len});
    }
  }

  OverlayStats stats;
  util::BinaryWriter w;
  w.raw(kMagic);

  // Collect files that differ from (or are absent in) the base.
  std::vector<const FileEntry*> delta_files;
  for (const auto& f : target.files()) {
    const FileEntry* b = base.find(f.path);
    if (b && b->content == f.content) continue;  // unchanged
    delta_files.push_back(&f);
    if (b) {
      ++stats.changed_files;
    } else {
      ++stats.new_files;
    }
  }
  w.varint(delta_files.size());

  for (const FileEntry* f : delta_files) {
    w.str(f->path);
    w.varint(f->content.size());
    // Chunk the target file; reuse identical base chunks by reference.
    struct Piece {
      bool is_ref;
      std::size_t lit_off, lit_len;
      ChunkRef ref;
    };
    std::vector<Piece> pieces;
    const auto& content = f->content;
    std::size_t lit_start = 0;
    for (std::size_t off = 0; off < content.size(); off += kChunkBytes) {
      std::size_t len = std::min(kChunkBytes, content.size() - off);
      std::uint64_t h = util::fnv1a(std::span(content).subspan(off, len));
      auto it = base_chunks.find(ChunkKey{h});
      bool match = false;
      if (it != base_chunks.end() && it->second.length == len) {
        // Hash match: verify bytes to rule out collisions.
        const auto& bc = base_files[it->second.file_index].content;
        std::size_t boff = it->second.chunk_index * kChunkBytes;
        match = std::equal(content.begin() + static_cast<std::ptrdiff_t>(off),
                           content.begin() +
                               static_cast<std::ptrdiff_t>(off + len),
                           bc.begin() + static_cast<std::ptrdiff_t>(boff));
      }
      if (match) {
        if (lit_start < off) {
          pieces.push_back({false, lit_start, off - lit_start, {}});
        }
        pieces.push_back({true, 0, 0, it->second});
        lit_start = off + len;
        ++stats.reused_chunks;
      } else {
        ++stats.fresh_chunks;
      }
    }
    if (lit_start < content.size()) {
      pieces.push_back({false, lit_start, content.size() - lit_start, {}});
    }
    w.varint(pieces.size());
    for (const auto& p : pieces) {
      if (p.is_ref) {
        w.u8(1);
        w.varint(p.ref.file_index);
        w.varint(p.ref.chunk_index);
        w.varint(p.ref.length);
      } else {
        w.u8(0);
        w.blob(std::span(content).subspan(p.lit_off, p.lit_len));
      }
    }
  }

  util::Bytes raw = std::move(w).take();
  stats.uncompressed_bytes = raw.size();
  VmOverlay overlay;
  overlay.payload = compress(raw);
  stats.compressed_bytes = overlay.payload.size();
  overlay.stats = stats;
  return overlay;
}

VmImage synthesize(const VmImage& base, const VmOverlay& overlay) {
  return synthesize(base, std::span(overlay.payload));
}

VmImage synthesize(const VmImage& base,
                   std::span<const std::uint8_t> overlay_payload) {
  util::Bytes raw = decompress(overlay_payload);
  util::BinaryReader r{std::span<const std::uint8_t>(raw)};
  auto magic = r.raw(4);
  if (util::to_string(magic) != kMagic) {
    throw util::DecodeError("overlay: bad magic");
  }
  VmImage out = base;
  const auto& base_files = base.files();
  std::uint64_t file_count = r.varint();
  for (std::uint64_t i = 0; i < file_count; ++i) {
    std::string path = r.str();
    std::size_t size = static_cast<std::size_t>(r.varint());
    std::size_t piece_count = static_cast<std::size_t>(r.varint());
    util::Bytes content;
    content.reserve(size);
    for (std::size_t p = 0; p < piece_count; ++p) {
      std::uint8_t kind = r.u8();
      if (kind == 0) {
        util::Bytes lit = r.blob();
        content.insert(content.end(), lit.begin(), lit.end());
      } else if (kind == 1) {
        std::size_t fi = static_cast<std::size_t>(r.varint());
        std::size_t ci = static_cast<std::size_t>(r.varint());
        std::size_t len = static_cast<std::size_t>(r.varint());
        if (fi >= base_files.size()) {
          throw util::DecodeError("overlay: chunk ref to unknown base file");
        }
        const auto& bc = base_files[fi].content;
        std::size_t off = ci * kChunkBytes;
        if (off + len > bc.size()) {
          throw util::DecodeError("overlay: chunk ref out of range");
        }
        content.insert(content.end(),
                       bc.begin() + static_cast<std::ptrdiff_t>(off),
                       bc.begin() + static_cast<std::ptrdiff_t>(off + len));
      } else {
        throw util::DecodeError("overlay: bad piece kind");
      }
    }
    if (content.size() != size) {
      throw util::DecodeError("overlay: file size mismatch for " + path);
    }
    out.put(std::move(path), std::move(content));
  }
  return out;
}

double synthesis_compute_seconds(const OverlayStats& stats,
                                 double decompress_Bps, double apply_Bps) {
  return static_cast<double>(stats.compressed_bytes) / decompress_Bps +
         static_cast<double>(stats.uncompressed_bytes) / apply_Bps;
}

}  // namespace offload::vmsynth
