// "mlzma": an LZ77 byte-oriented compressor (LZ4-style sequence format,
// hash-chain match finder) built from scratch for the VM-overlay path. The
// paper compresses its overlays with LZMA; we reproduce the role — overlay
// bytes shrink roughly 2-3x on system-file-like content while DNN weights
// (high-entropy floats) stay incompressible, which is what produces
// Table 1's 65 vs 82 MB overlay sizes.
#pragma once

#include <cstdint>

#include "src/util/bytes.h"

namespace offload::vmsynth {

/// Compress `input`. Output embeds a header with the original size.
util::Bytes compress(std::span<const std::uint8_t> input);

/// Decompress a buffer produced by compress(). Throws util::DecodeError on
/// corrupt input.
util::Bytes decompress(std::span<const std::uint8_t> input);

/// Compression ratio achieved on `input` (original/compressed; >= 1 means
/// it shrank).
double compression_ratio(std::span<const std::uint8_t> input);

}  // namespace offload::vmsynth
