// "mlzma": an LZ77 byte-oriented compressor (LZ4-style sequence format,
// hash-chain match finder) built from scratch for the VM-overlay path. The
// paper compresses its overlays with LZMA; we reproduce the role — overlay
// bytes shrink roughly 2-3x on system-file-like content while DNN weights
// (high-entropy floats) stay incompressible, which is what produces
// Table 1's 65 vs 82 MB overlay sizes.
#pragma once

#include <cstdint>

#include "src/util/bytes.h"

namespace offload::vmsynth {

/// Compress `input`. Output embeds a header with the original size.
/// Inputs larger than one block (1 MiB) use a framed container whose
/// blocks compress and decompress in parallel on the OFFLOAD_THREADS pool;
/// the bytes produced are identical at any thread count.
util::Bytes compress(std::span<const std::uint8_t> input);

/// Force the legacy single-stream encoding regardless of input size.
/// Exposed so tests and benches can bound the framed format's ratio
/// penalty; decompress() reads both formats.
util::Bytes compress_single_stream(std::span<const std::uint8_t> input);

/// Decompress a buffer produced by compress(). Throws util::DecodeError on
/// corrupt input.
util::Bytes decompress(std::span<const std::uint8_t> input);

/// Compression ratio achieved on `input` (original/compressed; >= 1 means
/// it shrank).
double compression_ratio(std::span<const std::uint8_t> input);

}  // namespace offload::vmsynth
