#include "src/vmsynth/compress.h"

#include <array>
#include <cstring>

#include "src/util/crc32.h"

namespace offload::vmsynth {
namespace {

// Format: magic "MLZ1" | varint original_size | u32 crc32(original) |
// sequences.
// Sequence (LZ4 field order): token byte (high nibble literal length, low
// nibble match length - kMinMatch; 15 = "read extension bytes"), literal
// length extension (255-runs), the literals, then — unless this is the
// final literals-only sequence — a 2-byte little-endian match offset and
// the match length extension.
constexpr std::string_view kMagic = "MLZ1";
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashBits = 16;
constexpr int kMaxChainDepth = 32;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void write_length(util::BinaryWriter& w, std::size_t extra) {
  while (extra >= 255) {
    w.u8(255);
    extra -= 255;
  }
  w.u8(static_cast<std::uint8_t>(extra));
}

std::size_t read_length(util::BinaryReader& r, std::size_t base) {
  if (base != 15) return base;
  std::size_t len = 15;
  while (true) {
    std::uint8_t b = r.u8();
    len += b;
    if (b != 255) break;
  }
  return len;
}

}  // namespace

util::Bytes compress(std::span<const std::uint8_t> input) {
  util::BinaryWriter w;
  w.raw(kMagic);
  w.varint(input.size());
  w.u32(util::crc32(input));

  const std::uint8_t* data = input.data();
  const std::size_t n = input.size();

  // Hash table of chain heads plus per-position previous links.
  std::vector<std::int64_t> head(1u << kHashBits, -1);
  std::vector<std::int64_t> prev(n, -1);

  std::size_t pos = 0;
  std::size_t literal_start = 0;

  auto emit_sequence = [&](std::size_t match_pos, std::size_t match_len,
                           std::size_t offset) {
    const std::size_t lit_len = match_pos - literal_start;
    const std::size_t match_code =
        match_len == 0 ? 0 : match_len - kMinMatch;
    std::uint8_t token =
        static_cast<std::uint8_t>((std::min<std::size_t>(lit_len, 15) << 4) |
                                  std::min<std::size_t>(match_code, 15));
    w.u8(token);
    if (lit_len >= 15) write_length(w, lit_len - 15);
    w.raw(std::span(data + literal_start, lit_len));
    if (match_len > 0) {
      w.u16(static_cast<std::uint16_t>(offset));
      if (match_code >= 15) write_length(w, match_code - 15);
    }
  };

  while (pos + kMinMatch <= n) {
    // Find the longest match via the hash chain.
    std::uint32_t h = hash4(data + pos);
    std::int64_t candidate = head[h];
    std::size_t best_len = 0;
    std::size_t best_offset = 0;
    int depth = 0;
    while (candidate >= 0 && depth < kMaxChainDepth) {
      std::size_t offset = pos - static_cast<std::size_t>(candidate);
      if (offset > kMaxOffset) break;  // chain is ordered; older = farther
      std::size_t len = 0;
      const std::size_t max_len = n - pos;
      const std::uint8_t* a = data + candidate;
      const std::uint8_t* b = data + pos;
      while (len < max_len && a[len] == b[len]) ++len;
      if (len >= kMinMatch && len > best_len) {
        best_len = len;
        best_offset = offset;
      }
      candidate = prev[static_cast<std::size_t>(candidate)];
      ++depth;
    }

    if (best_len >= kMinMatch) {
      emit_sequence(pos, best_len, best_offset);
      // Insert positions covered by the match into the chains (sparsely —
      // every position keeps the format exact but costs time; every
      // position is fine at our sizes).
      std::size_t end = pos + best_len;
      while (pos < end && pos + kMinMatch <= n) {
        std::uint32_t hh = hash4(data + pos);
        prev[pos] = head[hh];
        head[hh] = static_cast<std::int64_t>(pos);
        ++pos;
      }
      pos = end;
      literal_start = pos;
    } else {
      prev[pos] = head[h];
      head[h] = static_cast<std::int64_t>(pos);
      ++pos;
    }
  }

  // Final literals-only sequence (always emitted, possibly empty, so the
  // decoder has a terminator).
  emit_sequence(n, 0, 0);
  return std::move(w).take();
}

util::Bytes decompress(std::span<const std::uint8_t> input) {
  util::BinaryReader r(input);
  auto magic = r.raw(4);
  if (util::to_string(magic) != kMagic) {
    throw util::DecodeError("mlzma: bad magic");
  }
  const std::size_t original = static_cast<std::size_t>(r.varint());
  const std::uint32_t expected_crc = r.u32();
  util::Bytes out;
  out.reserve(original);
  while (out.size() < original) {
    std::uint8_t token = r.u8();
    std::size_t lit_len = read_length(r, token >> 4);
    std::size_t match_code = token & 0x0f;
    auto lits = r.raw(lit_len);
    out.insert(out.end(), lits.begin(), lits.end());
    if (out.size() >= original) break;  // final literals-only sequence
    std::size_t offset = r.u16();
    std::size_t match_len = read_length(r, match_code) + kMinMatch;
    if (offset == 0 || offset > out.size()) {
      throw util::DecodeError("mlzma: bad match offset");
    }
    // Byte-by-byte copy: overlapping matches (offset < length) replicate,
    // which is the LZ77 run-length trick.
    std::size_t from = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) {
      out.push_back(out[from + i]);
    }
  }
  if (out.size() != original) {
    throw util::DecodeError("mlzma: size mismatch after decompress");
  }
  if (util::crc32(std::span<const std::uint8_t>(out)) != expected_crc) {
    throw util::DecodeError("mlzma: checksum mismatch (corrupt stream)");
  }
  return out;
}

double compression_ratio(std::span<const std::uint8_t> input) {
  if (input.empty()) return 1.0;
  util::Bytes c = compress(input);
  return static_cast<double>(input.size()) / static_cast<double>(c.size());
}

}  // namespace offload::vmsynth
