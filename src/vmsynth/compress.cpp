#include "src/vmsynth/compress.h"

#include <array>
#include <cstring>

#include "src/util/crc32.h"
#include "src/util/thread_pool.h"

namespace offload::vmsynth {
namespace {

// Single-stream format ("MLZ1"): magic | varint original_size |
// u32 crc32(original) | sequences.
// Sequence (LZ4 field order): token byte (high nibble literal length, low
// nibble match length - kMinMatch; 15 = "read extension bytes"), literal
// length extension (255-runs), the literals, then — unless this is the
// final literals-only sequence — a 2-byte little-endian match offset and
// the match length extension.
//
// Framed parallel format ("MLZB"): magic | varint original_size |
// u32 crc32(original) | varint block_count | block_count frames of
// { varint raw_len, varint seq_len, sequences }. Each block is an
// independent LZ77 stream (its own window), so blocks compress and
// decompress in parallel and the bytes are identical at any thread count.
// Inputs that fit in a single block use MLZ1, byte-identical to the old
// single-stream compressor.
constexpr std::string_view kMagic = "MLZ1";
constexpr std::string_view kMagicBlocked = "MLZB";
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashBits = 16;
constexpr int kMaxChainDepth = 32;

/// Block size of the framed format. Big enough that the per-block window
/// reset costs only a few % of ratio, small enough that 4 MB overlays
/// split into several parallel units.
constexpr std::size_t kBlockSize = 1u << 20;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void write_length(util::BinaryWriter& w, std::size_t extra) {
  while (extra >= 255) {
    w.u8(255);
    extra -= 255;
  }
  w.u8(static_cast<std::uint8_t>(extra));
}

std::size_t read_length(util::BinaryReader& r, std::size_t base) {
  if (base != 15) return base;
  std::size_t len = 15;
  while (true) {
    std::uint8_t b = r.u8();
    len += b;
    if (b != 255) break;
  }
  return len;
}

/// LZ77-encode `input` as a self-terminated sequence stream into `w`
/// (no container header). Matches only reference positions inside `input`,
/// so a block compressed by this is independently decodable.
void compress_sequences(util::BinaryWriter& w,
                        std::span<const std::uint8_t> input) {
  const std::uint8_t* data = input.data();
  const std::size_t n = input.size();

  // Hash table of chain heads plus per-position previous links.
  std::vector<std::int64_t> head(1u << kHashBits, -1);
  std::vector<std::int64_t> prev(n, -1);

  std::size_t pos = 0;
  std::size_t literal_start = 0;

  auto emit_sequence = [&](std::size_t match_pos, std::size_t match_len,
                           std::size_t offset) {
    const std::size_t lit_len = match_pos - literal_start;
    const std::size_t match_code =
        match_len == 0 ? 0 : match_len - kMinMatch;
    std::uint8_t token =
        static_cast<std::uint8_t>((std::min<std::size_t>(lit_len, 15) << 4) |
                                  std::min<std::size_t>(match_code, 15));
    w.u8(token);
    if (lit_len >= 15) write_length(w, lit_len - 15);
    w.raw(std::span(data + literal_start, lit_len));
    if (match_len > 0) {
      w.u16(static_cast<std::uint16_t>(offset));
      if (match_code >= 15) write_length(w, match_code - 15);
    }
  };

  while (pos + kMinMatch <= n) {
    // Find the longest match via the hash chain.
    std::uint32_t h = hash4(data + pos);
    std::int64_t candidate = head[h];
    std::size_t best_len = 0;
    std::size_t best_offset = 0;
    int depth = 0;
    while (candidate >= 0 && depth < kMaxChainDepth) {
      std::size_t offset = pos - static_cast<std::size_t>(candidate);
      if (offset > kMaxOffset) break;  // chain is ordered; older = farther
      std::size_t len = 0;
      const std::size_t max_len = n - pos;
      const std::uint8_t* a = data + candidate;
      const std::uint8_t* b = data + pos;
      while (len < max_len && a[len] == b[len]) ++len;
      if (len >= kMinMatch && len > best_len) {
        best_len = len;
        best_offset = offset;
      }
      candidate = prev[static_cast<std::size_t>(candidate)];
      ++depth;
    }

    if (best_len >= kMinMatch) {
      emit_sequence(pos, best_len, best_offset);
      // Insert positions covered by the match into the chains (sparsely —
      // every position keeps the format exact but costs time; every
      // position is fine at our sizes).
      std::size_t end = pos + best_len;
      while (pos < end && pos + kMinMatch <= n) {
        std::uint32_t hh = hash4(data + pos);
        prev[pos] = head[hh];
        head[hh] = static_cast<std::int64_t>(pos);
        ++pos;
      }
      pos = end;
      literal_start = pos;
    } else {
      prev[pos] = head[h];
      head[h] = static_cast<std::int64_t>(pos);
      ++pos;
    }
  }

  // Final literals-only sequence (always emitted, possibly empty, so the
  // decoder has a terminator).
  emit_sequence(n, 0, 0);
}

/// Decode one sequence stream into out[0..raw_len). Throws DecodeError on
/// malformed input.
void decompress_sequences(util::BinaryReader& r, std::uint8_t* out,
                          std::size_t raw_len) {
  std::size_t filled = 0;
  // The encoder terminates every stream with a literals-only sequence
  // (possibly an empty one, when a match ends flush with the block), so
  // decoding runs until that terminator — not merely until the output is
  // full — and consumes the stream exactly.
  while (true) {
    std::uint8_t token = r.u8();
    std::size_t lit_len = read_length(r, token >> 4);
    std::size_t match_code = token & 0x0f;
    if (lit_len > raw_len - filled) {
      throw util::DecodeError("mlzma: literal run past end");
    }
    auto lits = r.raw(lit_len);
    std::memcpy(out + filled, lits.data(), lit_len);
    filled += lit_len;
    if (filled >= raw_len) break;  // final literals-only sequence
    std::size_t offset = r.u16();
    std::size_t match_len = read_length(r, match_code) + kMinMatch;
    if (offset == 0 || offset > filled) {
      throw util::DecodeError("mlzma: bad match offset");
    }
    if (match_len > raw_len - filled) {
      throw util::DecodeError("mlzma: match run past end");
    }
    // Byte-by-byte copy: overlapping matches (offset < length) replicate,
    // which is the LZ77 run-length trick.
    const std::size_t from = filled - offset;
    for (std::size_t i = 0; i < match_len; ++i) {
      out[filled + i] = out[from + i];
    }
    filled += match_len;
  }
}

util::Bytes decompress_single(util::BinaryReader& r) {
  const std::size_t original = static_cast<std::size_t>(r.varint());
  const std::uint32_t expected_crc = r.u32();
  util::Bytes out(original);
  decompress_sequences(r, out.data(), original);
  if (util::crc32(std::span<const std::uint8_t>(out)) != expected_crc) {
    throw util::DecodeError("mlzma: checksum mismatch (corrupt stream)");
  }
  return out;
}

util::Bytes decompress_blocked(util::BinaryReader& r,
                               std::span<const std::uint8_t> input) {
  const std::size_t original = static_cast<std::size_t>(r.varint());
  const std::uint32_t expected_crc = r.u32();
  const std::size_t blocks = static_cast<std::size_t>(r.varint());
  if (blocks > original / kMinMatch + 2) {
    throw util::DecodeError("mlzma: implausible block count");
  }

  // Walk the frame table once to locate every block's sequences and output
  // range, then decode the blocks in parallel into disjoint slices.
  struct Frame {
    std::size_t out_offset;
    std::size_t raw_len;
    std::size_t seq_offset;  // into `input`
    std::size_t seq_len;
  };
  std::vector<Frame> frames;
  frames.reserve(blocks);
  std::size_t out_offset = 0;
  for (std::size_t i = 0; i < blocks; ++i) {
    const std::size_t raw_len = static_cast<std::size_t>(r.varint());
    const std::size_t seq_len = static_cast<std::size_t>(r.varint());
    const std::size_t seq_offset = r.position();
    if (seq_len > r.remaining()) {
      throw util::DecodeError("mlzma: truncated block frame");
    }
    r.raw(seq_len);  // skip payload
    frames.push_back({out_offset, raw_len, seq_offset, seq_len});
    out_offset += raw_len;
  }
  if (out_offset != original) {
    throw util::DecodeError("mlzma: size mismatch after decompress");
  }

  util::Bytes out(original);
  std::uint8_t* dst = out.data();
  auto decode = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const Frame& f = frames[static_cast<std::size_t>(i)];
      util::BinaryReader block(input.subspan(f.seq_offset, f.seq_len));
      decompress_sequences(block, dst + f.out_offset, f.raw_len);
      if (!block.done()) {
        throw util::DecodeError("mlzma: trailing bytes in block");
      }
    }
  };
  util::parallel_for(0, static_cast<std::int64_t>(frames.size()), 1, decode);

  if (util::crc32(std::span<const std::uint8_t>(out)) != expected_crc) {
    throw util::DecodeError("mlzma: checksum mismatch (corrupt stream)");
  }
  return out;
}

}  // namespace

util::Bytes compress_single_stream(std::span<const std::uint8_t> input) {
  util::BinaryWriter w;
  w.raw(kMagic);
  w.varint(input.size());
  w.u32(util::crc32(input));
  compress_sequences(w, input);
  return std::move(w).take();
}

util::Bytes compress(std::span<const std::uint8_t> input) {
  // The format choice depends only on the input size — never on thread
  // count — so compressed bytes are reproducible across machines and
  // OFFLOAD_THREADS settings.
  if (input.size() <= kBlockSize) return compress_single_stream(input);

  const std::size_t blocks = (input.size() + kBlockSize - 1) / kBlockSize;
  std::vector<util::Bytes> compressed(blocks);
  auto run = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const std::size_t off = static_cast<std::size_t>(i) * kBlockSize;
      const std::size_t len = std::min(kBlockSize, input.size() - off);
      util::BinaryWriter bw;
      compress_sequences(bw, input.subspan(off, len));
      compressed[static_cast<std::size_t>(i)] = std::move(bw).take();
    }
  };
  util::parallel_for(0, static_cast<std::int64_t>(blocks), 1, run);

  util::BinaryWriter w;
  w.raw(kMagicBlocked);
  w.varint(input.size());
  w.u32(util::crc32(input));
  w.varint(blocks);
  for (std::size_t i = 0; i < blocks; ++i) {
    const std::size_t off = i * kBlockSize;
    w.varint(std::min(kBlockSize, input.size() - off));  // raw_len
    w.varint(compressed[i].size());                      // seq_len
    w.raw(std::span<const std::uint8_t>(compressed[i]));
  }
  return std::move(w).take();
}

util::Bytes decompress(std::span<const std::uint8_t> input) {
  util::BinaryReader r(input);
  auto magic = util::to_string(r.raw(4));
  if (magic == kMagic) return decompress_single(r);
  if (magic == kMagicBlocked) return decompress_blocked(r, input);
  throw util::DecodeError("mlzma: bad magic");
}

double compression_ratio(std::span<const std::uint8_t> input) {
  if (input.empty()) return 1.0;
  util::Bytes c = compress(input);
  return static_cast<double>(input.size()) / static_cast<double>(c.size());
}

}  // namespace offload::vmsynth
