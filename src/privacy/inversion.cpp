#include "src/privacy/inversion.h"

#include <algorithm>
#include <cmath>

#include "src/privacy/metrics.h"
#include "src/util/rng.h"

namespace offload::privacy {
namespace {

double feature_loss(const nn::Network& net, std::size_t cut,
                    const nn::Tensor& candidate, const nn::Tensor& target) {
  nn::Tensor feature = net.forward_front(candidate, cut);
  return mse(feature, target);
}

}  // namespace

InversionResult invert_features(const nn::Network& front_net, std::size_t cut,
                                const nn::Tensor& observed_feature,
                                const InversionConfig& config) {
  const nn::Shape& input_shape = front_net.analyze().shapes.at(0);
  util::Pcg32 rng(config.seed, 0x696e76657274ULL);

  // Start from mid-gray, the standard inversion prior.
  nn::Tensor x = nn::Tensor::full(input_shape, 0.5f);
  double loss = feature_loss(front_net, cut, x, observed_feature);

  InversionResult result;
  result.initial_feature_loss = loss;

  // Cyclic coordinate descent with annealed step: for each pixel, try
  // moving up by `step`; if that does not improve the feature match, try
  // down. Gradient-free, which is the point — the attacker only has
  // black-box forward access to a front network.
  const auto n = static_cast<std::size_t>(x.elements());
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  double step = config.step;

  for (int sweep = 0; sweep < config.sweeps; ++sweep) {
    // Shuffle coordinate order per sweep (Fisher–Yates on the seeded RNG).
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(static_cast<std::uint32_t>(i))]);
    }
    bool improved_any = false;
    for (std::uint32_t idx : order) {
      const float old = x[idx];
      for (float direction : {+1.0f, -1.0f}) {
        float proposed =
            std::clamp(old + direction * static_cast<float>(step), 0.0f, 1.0f);
        if (proposed == old) continue;
        x[idx] = proposed;
        double new_loss = feature_loss(front_net, cut, x, observed_feature);
        if (new_loss < loss) {
          loss = new_loss;
          ++result.accepted_steps;
          improved_any = true;
          break;  // keep the improvement, move to the next pixel
        }
        x[idx] = old;
      }
    }
    step *= config.step_decay;
    if (!improved_any && step < config.min_step) break;
  }

  result.final_feature_loss = loss;
  result.reconstruction = std::move(x);
  return result;
}

}  // namespace offload::privacy
