#include "src/privacy/metrics.h"

#include <cmath>
#include <stdexcept>

namespace offload::privacy {

double mse(const nn::Tensor& a, const nn::Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("mse: shape mismatch");
  }
  auto da = a.data();
  auto db = b.data();
  double sum = 0.0;
  for (std::size_t i = 0; i < da.size(); ++i) {
    double d = static_cast<double>(da[i]) - static_cast<double>(db[i]);
    sum += d * d;
  }
  return da.empty() ? 0.0 : sum / static_cast<double>(da.size());
}

double psnr_db(const nn::Tensor& a, const nn::Tensor& b, double peak) {
  double m = mse(a, b);
  if (m <= 0.0) return 99.0;  // identical; cap like image tooling does
  return 10.0 * std::log10(peak * peak / m);
}

double correlation(const nn::Tensor& a, const nn::Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("correlation: shape mismatch");
  }
  auto da = a.data();
  auto db = b.data();
  const double n = static_cast<double>(da.size());
  if (da.empty()) return 0.0;
  double ma = 0.0;
  double mb = 0.0;
  for (std::size_t i = 0; i < da.size(); ++i) {
    ma += da[i];
    mb += db[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < da.size(); ++i) {
    double xa = da[i] - ma;
    double xb = db[i] - mb;
    cov += xa * xb;
    va += xa * xa;
    vb += xb * xb;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace offload::privacy
