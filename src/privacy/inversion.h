// Feature-inversion attack (Mahendran & Vedaldi [17], as cited by the
// paper): given the feature data a client uploads under partial inference,
// a curious server tries to reconstruct the original input by hill
// climbing — propose a perturbation of a candidate image, keep it if the
// front network maps it closer to the observed feature.
//
// The paper's defense (Section III.B.2) is to withhold the front part of
// the model: the attack then has to run against a surrogate front network
// with unknown (re-initialized) weights, and reconstruction fails. Both
// arms are implemented here and compared by the privacy bench/tests.
#pragma once

#include <cstdint>

#include "src/nn/network.h"
#include "src/nn/tensor.h"

namespace offload::privacy {

struct InversionConfig {
  /// Full passes over the input pixels (cyclic coordinate descent).
  int sweeps = 16;
  /// Initial per-pixel step (annealed multiplicatively per sweep).
  double step = 0.25;
  double step_decay = 0.7;
  /// Terminate early once steps shrink below this with no improvement.
  double min_step = 1e-3;
  std::uint64_t seed = 1;
};

struct InversionResult {
  nn::Tensor reconstruction;
  double initial_feature_loss = 0.0;  ///< MSE(front(x0), feature)
  double final_feature_loss = 0.0;
  int accepted_steps = 0;
};

/// Hill-climb an input so that `front(input)` matches `observed_feature`,
/// where front = nodes [0, cut] of `front_net`. The attack is white-box in
/// `front_net`: pass the *real* network to model a leaked front part, or a
/// surrogate (same architecture, re-initialized weights) to model the
/// paper's defense.
InversionResult invert_features(const nn::Network& front_net, std::size_t cut,
                                const nn::Tensor& observed_feature,
                                const InversionConfig& config = {});

}  // namespace offload::privacy
