// Image similarity metrics for the privacy experiments: how close is an
// attacker's reconstruction to the user's original input?
#pragma once

#include "src/nn/tensor.h"

namespace offload::privacy {

/// Mean squared error over elements; shapes must match.
double mse(const nn::Tensor& a, const nn::Tensor& b);

/// Peak signal-to-noise ratio in dB for signals in [0, peak].
double psnr_db(const nn::Tensor& a, const nn::Tensor& b, double peak = 1.0);

/// Pearson correlation coefficient in [-1, 1]; 0 for flat signals.
double correlation(const nn::Tensor& a, const nn::Tensor& b);

}  // namespace offload::privacy
