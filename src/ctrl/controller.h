// Online partition-point controller (the ROADMAP's "DynO-style" item):
// closes the loop between live telemetry and the per-inference DNN cut.
// The paper picks the cut once, at click time, from a static
// Neurosurgeon-style cost model; this controller re-selects it for every
// inference — and re-cuts mid-flight when the supervisor reports a failed
// attempt — from what the system actually observed: the measured upload
// bandwidth (net::BandwidthEstimator), the target server's queue depth and
// batch-formation wait (serve::Scheduler pull accessors), and the fleet's
// per-server outstanding counts.
//
// Two policies, selected by ControllerConfig::policy (the OFFLOAD_CTRL env
// knob):
//   drift  — the static partitioner estimate per candidate cut, times an
//            EWMA correction factor learned per (server, cut) from observed
//            end-to-end latencies, plus a queue-occupancy wait term.
//   bandit — a seeded UCB-style bandit over the labeled candidate cuts
//            (input/conv/pool cut points, mirroring core::labeled_cut_points)
//            plus the full-local arm, with the static estimate as its prior.
// kStatic disables the controller entirely: behavior is bit-for-bit the
// paper's click-time choice.
//
// Determinism rules (DESIGN §9): every decision is a pure function of the
// constructor arguments, the seeded PCG32 stream, and the sequence of
// decide()/record() calls — no wall clock, no pointer iteration, no
// ambient state. Two controllers with the same seed fed the same call
// sequence produce bit-identical decisions at any OFFLOAD_THREADS.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "src/nn/cost_model.h"
#include "src/nn/network.h"
#include "src/nn/partition.h"
#include "src/util/rng.h"

namespace offload::ctrl {

enum class PolicyKind : std::uint8_t {
  kStatic = 0,  ///< controller off: the click-time static cut is used
  kDrift,       ///< drift-corrected cost model
  kBandit,      ///< seeded UCB bandit over candidate cuts
};

const char* policy_name(PolicyKind kind);
/// Parses "static" / "drift" / "bandit"; throws std::invalid_argument.
PolicyKind parse_policy(std::string_view name);

struct ControllerConfig {
  PolicyKind policy = PolicyKind::kStatic;
  /// Seed for the controller's PCG32 stream (bandit exploration draws and
  /// tie-breaks). The OFFLOAD_CTRL_SEED env knob.
  std::uint64_t seed = 1;
  /// EWMA smoothing for the per-(server, cut) drift-correction factors.
  double ewma_alpha = 0.3;
  /// UCB exploration weight, in units of an arm's learned correction
  /// ratio (bandit only): an arm's score is its live static prediction
  /// times (ratio − ucb_c·sqrt(ln total_pulls / pulls)), so rarely-pulled
  /// arms look optimistically cheap in proportion to how uncertain their
  /// ratio still is. Kept small by default: under a *persistent*
  /// degradation every unexplored remote arm looks optimistically cheap,
  /// and each probe pays the full degraded round trip to learn its ratio.
  double ucb_c = 0.05;
  /// Seeded epsilon-greedy exploration on top of UCB (bandit only).
  double explore_eps = 0.05;
  /// One-way link latency assumed by the static partitioner term.
  double latency_s = 0.001;
  /// Per failed attempt, the network-dependent terms (upload, return,
  /// queue wait) of every remote candidate are scaled by this factor when
  /// re-deciding — deadline pressure pushes toward deeper cuts, then
  /// full-local.
  double failure_escalation = 2.0;
  /// Floor for the bandwidth signal (guards the partitioner's bps > 0
  /// requirement against a degenerate estimator).
  double min_bandwidth_bps = 1e3;
  nn::PartitionerOptions partitioner;
  /// When false (the default), apply_env() lets OFFLOAD_CTRL /
  /// OFFLOAD_CTRL_SEED override policy and seed at client construction.
  /// Benches that sweep policies explicitly set true.
  bool ignore_env = false;

  /// Override policy/seed from the environment (no-op when ignore_env).
  /// Unknown OFFLOAD_CTRL values throw std::invalid_argument.
  void apply_env();
  bool active() const { return policy != PolicyKind::kStatic; }
};

/// A snapshot of the telemetry feeding one decision. The client fills
/// bandwidth from its estimator; the runtime's signals hook fills the
/// server-side fields from the scheduler/fleet pull accessors.
struct LinkSignals {
  double bandwidth_bps = 0;     ///< <= 0: the caller's estimator default
  std::size_t queue_depth = 0;  ///< serve::Scheduler::queue_depth()
  int lanes = 1;                ///< serve::Scheduler::lanes()
  double batch_wait_s = 0;      ///< serve::Scheduler::recent_batch_wait_s()
  int outstanding = 0;          ///< fleet::EdgeFleet::outstanding_for(k)
  /// Jobs this server currently has escalated up-tier and still awaits
  /// results for (tier::Topology::outstanding_relays(k)). Each one is load
  /// the queue gauges no longer show; 0 (tier off) leaves predictions
  /// bit-identical.
  int escalations = 0;
};

struct Decision {
  std::size_t cut = SIZE_MAX;  ///< node index to split at (valid when !local)
  bool local = false;          ///< run the whole inference on the client
  std::size_t arm = 0;         ///< candidate index (arms() order)
  std::size_t server = 0;      ///< server the decision was made for
  double predicted_s = 0;      ///< controller's latency prediction
};

/// Feedback for one finished (or superseded) decision. `predicted_s` must
/// echo the Decision's, so the drift policy can learn observed/predicted.
struct Outcome {
  std::size_t server = 0;
  std::size_t arm = 0;
  bool local = false;
  bool ok = true;         ///< the decision's path produced the result
  double observed_s = 0;  ///< end-to-end latency (or time wasted, on !ok)
  double predicted_s = 0;
};

class CutController {
 public:
  /// `net` is the app's network; the cost models are the same per-device
  /// fits the static partitioner uses (LayerCostModel::profile_device).
  CutController(const ControllerConfig& config,
                std::shared_ptr<const nn::Network> net,
                nn::LayerCostModel client, nn::LayerCostModel server);

  const ControllerConfig& config() const { return config_; }
  /// Candidate cuts, in ascending node order: the input/conv/pool cut
  /// points (mirroring core::labeled_cut_points) plus the final node (the
  /// full-local arm, always last).
  const std::vector<std::size_t>& arms() const { return arms_; }

  /// Select the cut for a fresh inference toward `server`.
  Decision decide(std::size_t server, const LinkSignals& signals);
  /// Re-select after `failed_attempts` failed sends of the cut currently
  /// in flight: network-dependent terms are escalated so repeated failures
  /// walk toward deeper cuts and finally full-local.
  Decision redecide(std::size_t server, const LinkSignals& signals,
                    int failed_attempts);
  /// Feed back what one decision actually cost. Exactly one Outcome per
  /// Decision: at inference finish, or when a re-cut supersedes it.
  void record(const Outcome& outcome);

  /// EWMA drift-correction factor for (server, arm); 1.0 until trained.
  double correction(std::size_t server, std::size_t arm) const;
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t outcomes() const { return outcomes_; }

 private:
  struct ArmState {
    std::uint64_t pulls = 0;
    /// EWMA of observed/predicted for this arm (1.0 prior). Learning the
    /// ratio instead of an absolute latency keeps the live telemetry
    /// (measured bandwidth, queue depth) in every bandit score — an
    /// absolute mean would go stale the moment the link shifts.
    double ratio = 1.0;
  };

  /// Static partitioner predictions per arm at these signals, with the
  /// escalation factor applied to the network-dependent terms.
  std::vector<double> predict(const LinkSignals& signals,
                              double escalation) const;
  Decision pick(std::size_t server, const LinkSignals& signals,
                double escalation);
  std::vector<double>& corrections_for(std::size_t server);
  std::vector<ArmState>& bandit_for(std::size_t server);

  ControllerConfig config_;
  std::shared_ptr<const nn::Network> net_;
  nn::LayerCostModel client_cost_;
  nn::LayerCostModel server_cost_;
  nn::Partitioner partitioner_;
  std::vector<std::size_t> arms_;      ///< arm index -> cut
  std::vector<bool> arm_denatures_;    ///< per arm (full-local counts)
  /// Per-server learned state, keyed by server index (ordered map: dumps
  /// and iteration are deterministic).
  std::map<std::size_t, std::vector<double>> correction_;
  std::map<std::size_t, std::vector<ArmState>> bandit_;
  util::Pcg32 rng_;
  std::uint64_t decisions_ = 0;
  std::uint64_t outcomes_ = 0;
};

}  // namespace offload::ctrl
