#include "src/ctrl/controller.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace offload::ctrl {
namespace {

bool is_candidate_kind(nn::LayerKind kind) {
  // Mirrors core::labeled_cut_points: the controller sweeps the same
  // input/conv/pool candidates the Fig. 8 experiments label.
  return kind == nn::LayerKind::kInput || kind == nn::LayerKind::kConv ||
         kind == nn::LayerKind::kMaxPool || kind == nn::LayerKind::kAvgPool;
}

double clamp_ratio(double r) {
  return std::min(8.0, std::max(0.125, r));
}

}  // namespace

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kStatic: return "static";
    case PolicyKind::kDrift: return "drift";
    case PolicyKind::kBandit: return "bandit";
  }
  return "?";
}

PolicyKind parse_policy(std::string_view name) {
  if (name == "static") return PolicyKind::kStatic;
  if (name == "drift") return PolicyKind::kDrift;
  if (name == "bandit") return PolicyKind::kBandit;
  throw std::invalid_argument("unknown OFFLOAD_CTRL policy: " +
                              std::string(name));
}

void ControllerConfig::apply_env() {
  if (ignore_env) return;
  if (const char* env = std::getenv("OFFLOAD_CTRL")) {
    policy = parse_policy(env);
  }
  if (const char* env = std::getenv("OFFLOAD_CTRL_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
}

CutController::CutController(const ControllerConfig& config,
                             std::shared_ptr<const nn::Network> net,
                             nn::LayerCostModel client,
                             nn::LayerCostModel server)
    : config_(config),
      net_(std::move(net)),
      client_cost_(std::move(client)),
      server_cost_(std::move(server)),
      partitioner_(*net_, client_cost_, server_cost_, config_.partitioner),
      // Stream constant keeps the controller's draws disjoint from every
      // other seeded component (workload 0x5e55, backoff 0xba0c, ...).
      rng_(config_.seed, 0xc7b1) {
  const std::size_t last = net_->size() - 1;
  for (std::size_t cut : net_->cut_points()) {
    if (cut == last) continue;  // added below as the full-local arm
    if (is_candidate_kind(net_->layer(cut).kind())) arms_.push_back(cut);
  }
  arms_.push_back(last);
  // Denaturing is structural (which transforming layers sit before the
  // cut), not bandwidth-dependent — resolve it once here.
  arm_denatures_.resize(arms_.size(), false);
  auto cands = partitioner_.evaluate(1e6, config_.latency_s);
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    for (const auto& c : cands) {
      if (c.cut == arms_[i]) { arm_denatures_[i] = c.denatures; break; }
    }
  }
}

std::vector<double>& CutController::corrections_for(std::size_t server) {
  auto it = correction_.find(server);
  if (it == correction_.end()) {
    it = correction_.emplace(server, std::vector<double>(arms_.size(), 1.0))
             .first;
  }
  return it->second;
}

std::vector<CutController::ArmState>& CutController::bandit_for(
    std::size_t server) {
  auto it = bandit_.find(server);
  if (it == bandit_.end()) {
    it = bandit_.emplace(server, std::vector<ArmState>(arms_.size())).first;
  }
  return it->second;
}

double CutController::correction(std::size_t server, std::size_t arm) const {
  auto it = correction_.find(server);
  if (it == correction_.end() || arm >= it->second.size()) return 1.0;
  return it->second[arm];
}

std::vector<double> CutController::predict(const LinkSignals& signals,
                                           double escalation) const {
  const double bw = std::max(signals.bandwidth_bps, config_.min_bandwidth_bps);
  auto cands = partitioner_.evaluate(bw, config_.latency_s);
  // Queue-occupancy wait: every job already queued (or in flight from this
  // client's fleet peers) costs roughly one full-network server pass,
  // spread across the scheduler's lanes, on top of the observed
  // batch-formation wait.
  const double service_s = server_cost_.predict_network(*net_);
  const double lanes = std::max(1, signals.lanes);
  const double queue_wait =
      signals.batch_wait_s +
      static_cast<double>(signals.queue_depth +
                          static_cast<std::size_t>(
                              std::max(0, signals.outstanding)) +
                          static_cast<std::size_t>(
                              std::max(0, signals.escalations))) *
          service_s / lanes;

  const std::size_t last = net_->size() - 1;
  std::vector<double> totals(arms_.size(), 0);
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    const std::size_t cut = arms_[i];
    const nn::PartitionCandidate* cand = nullptr;
    for (const auto& c : cands) {
      if (c.cut == cut) { cand = &c; break; }
    }
    if (!cand) {  // defensive: arms_ is built from cut_points()
      totals[i] = std::numeric_limits<double>::infinity();
      continue;
    }
    if (cut == last) {
      // Full-local: no network or server terms, immune to escalation.
      totals[i] = cand->total_s();
      continue;
    }
    const double net_term = cand->upload_s + cand->return_s + queue_wait;
    const double compute_term = cand->client_front_s + cand->capture_s +
                                cand->restore_s + cand->server_rear_s;
    totals[i] = compute_term + escalation * net_term;
  }
  return totals;
}

Decision CutController::pick(std::size_t server, const LinkSignals& signals,
                             double escalation) {
  const auto totals = predict(signals, escalation);

  // Honor the denature constraint the same way Partitioner::best does:
  // filter, and relax if the filter removes every candidate.
  std::vector<std::size_t> allowed;
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    if (!config_.partitioner.require_denature || arm_denatures_[i]) {
      allowed.push_back(i);
    }
  }
  if (allowed.empty()) {
    for (std::size_t i = 0; i < arms_.size(); ++i) allowed.push_back(i);
  }

  std::size_t chosen = allowed.front();
  if (config_.policy == PolicyKind::kBandit) {
    auto& arms = bandit_for(server);
    // Seed the priors as one virtual pull at the cost model's own ratio
    // (1.0): the bandit starts exactly where the paper's static estimate
    // starts and learns per-arm multiplicative drift from there.
    for (auto& a : arms) {
      if (a.pulls == 0) a.pulls = 1;
    }
    if (config_.explore_eps > 0 && rng_.chance(config_.explore_eps)) {
      chosen = allowed[rng_.next_below(
          static_cast<std::uint32_t>(allowed.size()))];
    } else {
      std::uint64_t total_pulls = 0;
      for (const auto& a : arms) total_pulls += a.pulls;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i : allowed) {
        const auto& a = arms[i];
        const double bonus =
            config_.ucb_c *
            std::sqrt(std::log(static_cast<double>(total_pulls) + 1.0) /
                      static_cast<double>(a.pulls));
        // Optimism in ratio space, floored at the ratio clamp so a huge
        // bonus cannot make an arm look better than physics allows.
        const double score =
            totals[i] * std::max(0.125, a.ratio - bonus);
        if (score < best) { best = score; chosen = i; }
      }
    }
  } else {
    // Drift policy: static estimate times the learned correction factor.
    const auto& corr = corrections_for(server);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i : allowed) {
      const double score = totals[i] * corr[i];
      if (score < best) { best = score; chosen = i; }
    }
  }

  Decision d;
  d.arm = chosen;
  d.cut = arms_[chosen];
  d.local = (chosen == arms_.size() - 1);
  d.server = server;
  d.predicted_s = totals[chosen];
  ++decisions_;
  return d;
}

Decision CutController::decide(std::size_t server, const LinkSignals& signals) {
  return pick(server, signals, 1.0);
}

Decision CutController::redecide(std::size_t server, const LinkSignals& signals,
                                 int failed_attempts) {
  const double esc =
      std::pow(config_.failure_escalation, std::max(0, failed_attempts));
  return pick(server, signals, esc);
}

void CutController::record(const Outcome& outcome) {
  ++outcomes_;
  if (outcome.arm >= arms_.size()) return;

  // Drift correction: EWMA of observed/predicted. Failures register the
  // maximum penalty ratio so the cut that keeps failing prices itself out.
  auto& corr = corrections_for(outcome.server);
  double ratio = 8.0;
  if (outcome.ok && outcome.predicted_s > 0 && outcome.observed_s > 0) {
    ratio = clamp_ratio(outcome.observed_s / outcome.predicted_s);
  }
  corr[outcome.arm] = (1.0 - config_.ewma_alpha) * corr[outcome.arm] +
                      config_.ewma_alpha * ratio;

  // Bandit arm value: EWMA of the same observed/predicted ratio (not a
  // running absolute mean) so the bandit tracks non-stationary bandwidth
  // and load through the live prediction instead of averaging epochs.
  auto& arms = bandit_for(outcome.server);
  auto& arm = arms[outcome.arm];
  if (arm.pulls == 0) {
    arm.ratio = ratio;
    arm.pulls = 1;
  } else {
    arm.ratio = (1.0 - config_.ewma_alpha) * arm.ratio +
                config_.ewma_alpha * ratio;
  }
  ++arm.pulls;
}

}  // namespace offload::ctrl
