// Open-loop workload generator for population-scale simulations. Sessions
// arrive from a seeded stochastic process — homogeneous Poisson, or a
// Markov-modulated (bursty) variant — shaped by an optional diurnal rate
// curve and scheduled flash crowds. Each session belongs to one client out
// of a configurable population of heterogeneous device classes, issues a
// geometric number of requests separated by exponential think times, and
// is "cold" (must re-upload its model) when the client's cache TTL lapsed
// since its last activity — the churn knob that sets the cold/warm mix.
//
// Open-loop means arrivals never wait for service: the generator emits
// demand on the simulation clock regardless of how the serving side keeps
// up, which is what capacity planning needs (bench_scale drives 10^3→10^6
// clients through this against a modeled edge fleet).
//
// Determinism: every draw comes from Pcg32 streams owned by the generator
// and is consumed in event-firing order, so a (seed, config) pair yields a
// byte-identical request stream on every run and either scheduler backend.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulation.h"
#include "src/util/rng.h"

namespace offload::sim::workload {

/// A slice of the client population with its own hardware story: how fast
/// its uplink ships the model, how big that model is, how long the edge
/// spends serving one of its requests, and what a shed request costs when
/// it falls back to local execution.
struct DeviceClass {
  std::string name;
  double weight = 1.0;           ///< population share (normalized)
  double uplink_mbps = 20.0;     ///< model pre-send bandwidth
  double model_mb = 11.6;        ///< model blob uploaded on a cold start
  double server_service_ms = 10; ///< edge service time per request
  double local_fallback_s = 5.0; ///< latency when shed to on-device exec
};

/// The three paper apps across a fast/slow device split.
std::vector<DeviceClass> default_device_classes();

/// Smooth day/night rate modulation: multiplier `peak` at the peak point
/// of the period, `trough` half a period away, cosine in between.
struct DiurnalCurve {
  bool enabled = false;
  double period_s = 86400.0;
  double trough = 0.25;
  double peak = 1.0;
  double peak_at_frac = 0.75;  ///< where in the period the peak sits
  double factor(double t_s) const;
};

/// A scheduled surge: rate multiplies by `multiplier` during the window.
struct FlashCrowd {
  double at_s = 0;
  double duration_s = 0;
  double multiplier = 1.0;
};

struct ArrivalConfig {
  enum class Pattern { kPoisson, kBursty };
  Pattern pattern = Pattern::kPoisson;
  /// Aggregate base session-arrival rate across the whole population.
  double session_rate_per_s = 10.0;
  /// Bursty (Markov-modulated Poisson): the rate multiplies by
  /// `burst_multiplier` during exponential "on" periods of mean
  /// `mean_on_s`, separated by "off" periods of mean `mean_off_s`.
  double burst_multiplier = 4.0;
  double mean_on_s = 2.0;
  double mean_off_s = 8.0;
  DiurnalCurve diurnal;
  std::vector<FlashCrowd> flash_crowds;
};

struct SessionConfig {
  double mean_requests = 3.0;  ///< geometric per-session request count
  double mean_think_s = 1.0;   ///< exponential gap between requests
  /// A client's model cache stays warm this long after its last activity;
  /// a session starting later is cold and re-uploads.
  double cache_ttl_s = 120.0;
  /// Fraction of clients whose cache is already warm at t=0.
  double warm_start_fraction = 0.0;
};

struct Config {
  std::uint64_t clients = 1000;
  std::vector<DeviceClass> device_classes;  ///< default set when empty
  ArrivalConfig arrivals;
  SessionConfig session;
  std::uint64_t seed = 1;
  /// Stable population sharding for partitioned simulations: this
  /// generator emits only the clients of range shard `shard_index` out
  /// of `shard_count`, with the aggregate arrival rate scaled by the
  /// shard's population share and RNG streams salted per shard. Shard
  /// membership depends only on (client, clients, shard_count) — never
  /// on how many partitions the shards are later mapped onto — so the
  /// same client id lands in the same slice at any partition count, and
  /// the union of all shards' request streams is byte-identical no
  /// matter how they are distributed (tests/sim_partition_test.cpp).
  /// The default (1 shard) is stream-identical to the unsharded
  /// generator.
  std::uint32_t shard_count = 1;
  std::uint32_t shard_index = 0;
};

/// First client id of range shard `s` out of `count` over `n` clients.
std::uint64_t shard_begin(std::uint64_t n, std::uint32_t s,
                          std::uint32_t count);

/// Stable shard of a client id: independent of partition count and of
/// everything except (client, n, count).
std::uint32_t shard_of(std::uint64_t client, std::uint64_t n,
                       std::uint32_t count);

/// One unit of demand handed to the serving side.
struct Request {
  std::uint64_t client = 0;
  std::uint64_t session = 0;  ///< unique, increasing with arrival order
  std::uint32_t device_class = 0;
  std::uint32_t index_in_session = 0;
  bool cold_model = false;  ///< first request of a cold session
  SimTime at;
};

class Generator {
 public:
  using RequestFn = std::function<void(const Request&)>;

  Generator(Simulation& sim, Config config, RequestFn on_request);

  /// Begin emitting sessions whose arrivals land in [now, until). Call
  /// once; the generator then sustains itself on the event loop.
  void start(SimTime until);

  const DeviceClass& device_class(std::uint32_t idx) const {
    return classes_[idx];
  }
  /// Stable per-client class assignment (hash of client id and seed).
  std::uint32_t device_class_of(std::uint64_t client) const;

  std::uint64_t sessions_started() const { return sessions_started_; }
  std::uint64_t requests_emitted() const { return requests_emitted_; }
  std::uint64_t cold_sessions() const { return cold_sessions_; }

  /// The client-id range this generator's shard owns: [begin, end).
  std::uint64_t shard_client_begin() const { return shard_lo_; }
  std::uint64_t shard_client_end() const { return shard_hi_; }

 private:
  struct ClientState {
    SimTime warm_until;  ///< cache considered warm through this time
  };

  void schedule_next_arrival();
  void begin_session();
  void emit_request(std::uint64_t client, std::uint64_t session,
                    std::uint32_t klass, std::uint32_t index,
                    std::uint32_t remaining, bool cold);
  double rate_at(double t_s) const;  ///< diurnal + flash (burst separate)
  double exp_draw(util::Pcg32& rng, double mean);

  Simulation& sim_;
  Config config_;
  RequestFn on_request_;
  std::vector<DeviceClass> classes_;
  std::vector<double> class_cdf_;
  std::vector<ClientState> clients_;  ///< indexed by client - shard_lo_
  std::uint64_t shard_lo_ = 0;
  std::uint64_t shard_hi_ = 0;
  double shard_share_ = 1.0;  ///< population fraction this shard owns
  util::Pcg32 arrival_rng_;
  util::Pcg32 session_rng_;
  double until_s_ = 0;
  double rate_max_ = 0;      ///< thinning envelope
  double arrival_cursor_s_ = 0;
  bool burst_on_ = false;
  double burst_until_s_ = 0;
  std::uint64_t sessions_started_ = 0;
  std::uint64_t requests_emitted_ = 0;
  std::uint64_t cold_sessions_ = 0;
};

}  // namespace offload::sim::workload
