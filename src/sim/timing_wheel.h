// Hierarchical timing wheel for the discrete-event scheduler. Four levels
// of 256 slots at 1 ns tick resolution cover a 2^32 ns (~4.29 s) block;
// events beyond the current block overflow into a calendar queue of
// per-block buckets that are pulled back into the wheels when the clock
// reaches their block. Schedule and cancel are O(1); advancing the clock
// skips empty regions via per-level occupancy bitmaps, and each event
// cascades through at most (levels-1) slots on its way down — so a full
// schedule→fire cycle is amortized O(1) regardless of how many million
// events are pending.
//
// The wheel stores compact POD records {when, seq, index}, not the event
// nodes themselves: cascading a slot streams a contiguous vector the
// hardware prefetcher can keep ahead of (at 10^6 pending events this is
// the difference between a cascade being a memcpy-speed redistribution
// and a serialized pointer chase through ~100-byte nodes). The arena node
// — timestamp, closure, generation — is touched exactly twice per event:
// at fire and at release. Cancellation releases the node eagerly and
// leaves the record behind as a tombstone; a record is stale iff the
// arena slot's live sequence number no longer matches (sequence numbers
// are globally unique, so slot reuse can never resurrect a tombstone).
//
// Determinism (DESIGN.md §8): a level-0 slot holds exactly one timestamp,
// and draining it sorts the batch by sequence number — so equal-timestamp
// events fire in exact FIFO schedule order no matter how they cascaded
// through the outer wheels or the overflow calendar. The binary-heap
// backend in simulation.cpp fires the same (when, seq) order; a
// differential test in tests/sim_test.cpp holds the two to byte-identical
// firing sequences over randomized schedule/cancel workloads.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/sim/event_arena.h"

namespace offload::sim {

class TimingWheel {
 public:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;  // 256
  /// Ticks (ns) covered by one block = the whole wheel hierarchy.
  static constexpr int kBlockBits = kLevels * kSlotBits;  // 32
  /// How many due events ahead peek() prefetches the arena node for: one
  /// event's processing is much shorter than a DRAM load, so the fetch
  /// must be issued several events early to complete in time.
  static constexpr std::size_t kPrefetchDepth = 4;

  /// A scheduled event's key: all the wheel needs to order and locate it.
  struct Record {
    std::uint64_t when;  ///< ticks (ns)
    std::uint64_t seq;
    std::uint32_t index;  ///< arena slot
  };

  explicit TimingWheel(EventArena& arena) : arena_(arena) {}
  TimingWheel(const TimingWheel&) = delete;
  TimingWheel& operator=(const TimingWheel&) = delete;

  /// Accept a record for a live node. `when` may be anywhere at or after
  /// the last fired timestamp; times before the wheel cursor (a
  /// `run_until` past the last event can leave the cursor ahead) are
  /// merged into the pending due batch in (when, seq) order. There is no
  /// remove: cancellation releases the arena slot, which turns the
  /// record into a tombstone skipped at peek time.
  void insert(const Record& rec);

  /// Next live event in (when, seq) order, or nullptr when empty.
  /// Repeated calls return the same node until pop(). May advance the
  /// wheel cursor and cascade slots, but never runs user code.
  EventNode* peek();

  /// Remove and return the next live event (nullptr when empty).
  EventNode* pop();

 private:
  static int level_for(std::uint64_t t, std::uint64_t base);

  void insert_at(const Record& rec);
  /// Park the cursor after a direct drain, clamped so it never carries
  /// into the next 2^32-tick block: the overflow calendar may still hold
  /// that block's bucket, and a cursor already inside the block would let
  /// newly inserted events reach the wheel levels and fire ahead of the
  /// stranded bucket (fill_due migrates overflow only once the levels are
  /// empty, and the migration would drag base_ backwards). Parking at the
  /// block's last tick keeps next-block inserts flowing into the calendar
  /// until the migration runs.
  void park_cursor(std::uint64_t parked);
  bool fill_due();
  int find_bit(int level, int from) const;
  void set_bit(int level, int idx);
  void clear_bit(int level, int idx);
  /// Redistribute a drained slot (or overflow bucket) from scratch_.
  void cascade_scratch();
  void migrate_lowest_bucket();

  EventArena& arena_;
  std::uint64_t base_ = 0;  ///< wheel cursor, in ticks (ns)
  std::vector<Record> slots_[kLevels][kSlots];
  std::uint64_t bits_[kLevels][kSlots / 64] = {};
  /// Far-future calendar: block number (when >> kBlockBits) → bucket.
  std::map<std::uint64_t, std::vector<Record>> overflow_;
  /// One-entry memo of the last overflow bucket touched by insert_at().
  std::vector<Record>* ovf_bucket_ = nullptr;
  std::uint64_t ovf_key_ = 0;
  /// Drained records in firing order; consumed from due_head_.
  std::vector<Record> due_;
  std::size_t due_head_ = 0;
  std::vector<Record> scratch_;
};

}  // namespace offload::sim
