// Slab arena for simulation event nodes. A node carries the timestamp,
// FIFO sequence number, and the closure itself (inline via
// util::UniqueFunction) — so scheduling an event performs no heap
// allocation in the steady state (slabs are recycled through a free list)
// and cancelling one destroys the closure eagerly. The scheduler backends
// never link nodes into their own structures: both the timing wheel and
// the binary heap keep compact (when, seq, index) records and treat a
// record whose sequence number no longer matches the arena slot's as a
// cancelled tombstone (sequence numbers are globally unique, so slot
// reuse can never resurrect one).
//
// Lifetime rules (see DESIGN.md §8):
//  * A node is live from allocate() until release(); release() destroys
//    the closure immediately and bumps the slot generation, so any
//    EventHandle minted for the old occupant goes stale atomically.
//  * Slabs are never freed while the arena lives — node pointers stay
//    valid across allocate/release churn, which is what lets the
//    backends resolve records to raw pointers.
//  * Generations start at 1 and skip 0 on wrap; handle value 0 is the
//    universal "invalid" encoding.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/time.h"
#include "src/util/unique_function.h"

namespace offload::sim {

/// One scheduled (or recycled) event. `next` is the arena free-list link.
struct EventNode {
  SimTime when;
  std::uint64_t seq = 0;  ///< FIFO tie-break; 0 ⇔ slot is free
  EventNode* next = nullptr;
  std::uint32_t index = 0;  ///< position in the arena (stable)
  std::uint32_t gen = 1;    ///< bumped on release; never 0
  util::UniqueFunction fn;
};

/// Slab allocator handing out stable EventNode pointers.
class EventArena {
 public:
  static constexpr std::size_t kSlabNodes = 512;

  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  EventNode* allocate(SimTime when, std::uint64_t seq,
                      util::UniqueFunction fn) {
    if (free_ == nullptr) grow();
    EventNode* node = free_;
    free_ = node->next;
    node->when = when;
    node->seq = seq;
    node->next = nullptr;
    node->fn = std::move(fn);
    ++live_;
    return node;
  }

  /// Destroy the closure now (releasing its captures), retire the
  /// generation, and recycle the slot.
  void release(EventNode* node) {
    node->fn.reset();
    node->seq = 0;
    if (++node->gen == 0) node->gen = 1;
    node->next = free_;
    free_ = node;
    --live_;
  }

  /// Direct slot access (no liveness check) for the backends' record →
  /// node resolution; compare the record's seq against node->seq. Slab
  /// addressing, not a pointer table: the slab directory is a few KB and
  /// stays cached, so this is one dependent load instead of two.
  EventNode* at(std::uint32_t index) {
    return &slabs_[index >> kSlabShift][index & (kSlabNodes - 1)];
  }

  /// Resolve a (index, gen) pair; nullptr when the slot was recycled (the
  /// event already fired or was cancelled).
  EventNode* resolve(std::uint32_t index, std::uint32_t gen) {
    if (index >= slabs_.size() * kSlabNodes) return nullptr;
    EventNode* node = at(index);
    if (node->gen != gen || node->seq == 0) return nullptr;
    return node;
  }

  std::size_t live() const { return live_; }
  std::size_t capacity() const { return slabs_.size() * kSlabNodes; }
  std::uint64_t slab_allocations() const { return slabs_.size(); }

 private:
  static constexpr int kSlabShift = 9;
  static_assert(kSlabNodes == (1u << kSlabShift));

  void grow() {
    auto slab = std::make_unique<EventNode[]>(kSlabNodes);
    std::uint32_t base =
        static_cast<std::uint32_t>(slabs_.size() * kSlabNodes);
    // Thread the new slab onto the free list back-to-front so allocation
    // order matches index order (nicer cache behaviour, deterministic).
    for (std::size_t i = kSlabNodes; i-- > 0;) {
      EventNode* node = &slab[i];
      node->index = base + static_cast<std::uint32_t>(i);
      node->next = free_;
      free_ = node;
    }
    slabs_.push_back(std::move(slab));
  }

  std::vector<std::unique_ptr<EventNode[]>> slabs_;  ///< index → slab dir
  EventNode* free_ = nullptr;
  std::size_t live_ = 0;
};

}  // namespace offload::sim
