#include "src/sim/timing_wheel.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace offload::sim {

int TimingWheel::level_for(std::uint64_t t, std::uint64_t base) {
  // The lowest level whose *parent* slot matches the cursor's: such an
  // event needs no further cascading to be fired from that level.
  if ((t >> kSlotBits) == (base >> kSlotBits)) return 0;
  if ((t >> (2 * kSlotBits)) == (base >> (2 * kSlotBits))) return 1;
  if ((t >> (3 * kSlotBits)) == (base >> (3 * kSlotBits))) return 2;
  if ((t >> kBlockBits) == (base >> kBlockBits)) return 3;
  return -1;  // different block: calendar overflow
}

void TimingWheel::insert(const Record& rec) {
  if (rec.when < base_) {
    // The cursor ran ahead of `now` (a run_until drained the next slot
    // past its deadline); merge into the due batch in (when, seq) order.
    auto it = std::lower_bound(
        due_.begin() + static_cast<std::ptrdiff_t>(due_head_), due_.end(),
        rec, [](const Record& a, const Record& b) {
          if (a.when != b.when) return a.when < b.when;
          return a.seq < b.seq;
        });
    due_.insert(it, rec);
    return;
  }
  insert_at(rec);
}

void TimingWheel::insert_at(const Record& rec) {
  int level = level_for(rec.when, base_);
  if (level < 0) {
    // Steady-state workloads land almost every overflow insert in the
    // same (next) block; memoize that bucket to skip the map walk.
    std::uint64_t key = rec.when >> kBlockBits;
    if (key != ovf_key_ || ovf_bucket_ == nullptr) {
      ovf_bucket_ = &overflow_[key];
      ovf_key_ = key;
    }
    ovf_bucket_->push_back(rec);
    return;
  }
  int idx = static_cast<int>((rec.when >> (level * kSlotBits)) & (kSlots - 1));
  slots_[level][idx].push_back(rec);
  set_bit(level, idx);
}

int TimingWheel::find_bit(int level, int from) const {
  if (from >= kSlots) return -1;
  int word = from >> 6;
  std::uint64_t mask = ~0ULL << (from & 63);
  for (; word < kSlots / 64; ++word) {
    std::uint64_t bits = bits_[level][word] & mask;
    if (bits != 0) return word * 64 + std::countr_zero(bits);
    mask = ~0ULL;
  }
  return -1;
}

void TimingWheel::set_bit(int level, int idx) {
  bits_[level][idx >> 6] |= 1ULL << (idx & 63);
}

void TimingWheel::clear_bit(int level, int idx) {
  bits_[level][idx >> 6] &= ~(1ULL << (idx & 63));
}

void TimingWheel::cascade_scratch() {
  // Re-binning never targets the slot being drained: the cursor already
  // advanced, so every record lands at a strictly lower level (or, after
  // a block migration, anywhere in the now-current wheels).
  for (const Record& r : scratch_) insert_at(r);
  scratch_.clear();
}

void TimingWheel::park_cursor(std::uint64_t parked) {
  std::uint64_t block = base_ >> kBlockBits;
  if ((parked >> kBlockBits) != block) {
    parked = ((block + 1) << kBlockBits) - 1;
  }
  base_ = parked;
}

void TimingWheel::migrate_lowest_bucket() {
  auto it = overflow_.begin();
  base_ = it->first << kBlockBits;  // jump the cursor to the block start
  scratch_.swap(it->second);
  overflow_.erase(it);
  ovf_bucket_ = nullptr;  // the memoized bucket may be the erased node
  cascade_scratch();
}

bool TimingWheel::fill_due() {
  while (true) {
    // A level-1 direct drain of slot 255 parks the cursor at the start of
    // the NEXT window, entering it without the cascade that normally
    // empties the cursor's outer-level slots — so the level-2 (and, when
    // the carry ripples further, level-3) slot under the cursor may still
    // hold this window's records. Drain those top-down first; inserts
    // never target a cursor slot at these levels, so occupied-at-cursor
    // implies base_ is exactly the window start and every record is ahead
    // of it.
    for (int level = kLevels - 1; level >= 2; --level) {
      int cur = static_cast<int>((base_ >> (level * kSlotBits)) &
                                 (kSlots - 1));
      if (!slots_[level][cur].empty()) {
        scratch_.swap(slots_[level][cur]);
        clear_bit(level, cur);
        cascade_scratch();
      }
    }
    // The cursor's own level-1 slot may still hold records (deposited
    // before the cursor entered this 2^16-ns window) whose timestamps
    // interleave with — or precede — whatever level 0 holds. Re-bin it
    // through insert() first: timestamps behind base_ merge into the due
    // batch in order, the rest land in level 0 for the scan below.
    int cur1 =
        static_cast<int>((base_ >> kSlotBits) & (kSlots - 1));
    if (!slots_[1][cur1].empty()) {
      scratch_.swap(slots_[1][cur1]);
      clear_bit(1, cur1);
      for (const Record& r : scratch_) insert(r);
      scratch_.clear();
    }
    // Level 0: the slot at the cursor itself may hold events at == base_.
    int idx = find_bit(0, static_cast<int>(base_ & (kSlots - 1)));
    if (idx >= 0) {
      base_ = (base_ & ~static_cast<std::uint64_t>(kSlots - 1)) |
              static_cast<std::uint64_t>(idx);
      std::vector<Record>& slot = slots_[0][idx];
      clear_bit(0, idx);
      // One level-0 slot == one exact timestamp; FIFO order is seq order.
      std::sort(slot.begin(), slot.end(),
                [](const Record& a, const Record& b) { return a.seq < b.seq; });
      due_.insert(due_.end(), slot.begin(), slot.end());
      slot.clear();
      return true;
    }
    // The cur1 re-bin above may have produced only behind-cursor merges.
    if (due_head_ < due_.size()) return true;
    // Level 1 ahead of the cursor: every record in such a slot is later
    // than anything fired or currently due, and one slot spans only 256
    // ticks — so skip the level-0 round trip and drain it straight into
    // the due batch in (when, seq) order, parking the cursor at the end
    // of the slot's range (inserts landing inside it merge via the
    // behind-cursor path above).
    int j1 = find_bit(1, cur1 + 1);
    if (j1 >= 0) {
      std::uint64_t group = base_ >> kSlotBits;
      group = (group & ~static_cast<std::uint64_t>(kSlots - 1)) |
              static_cast<std::uint64_t>(j1);
      park_cursor((group + 1) << kSlotBits);
      std::vector<Record>& slot = slots_[1][j1];
      clear_bit(1, j1);
      std::sort(slot.begin(), slot.end(),
                [](const Record& a, const Record& b) {
                  if (a.when != b.when) return a.when < b.when;
                  return a.seq < b.seq;
                });
      due_.insert(due_.end(), slot.begin(), slot.end());
      slot.clear();
      return true;
    }
    // Level 2 ahead of the cursor: levels 0 and 1 just came up empty, so
    // the rest of the current 2^16-ns window holds nothing — everything
    // in the next occupied level-2 slot is strictly later than anything
    // fired or due. Drain it straight into the due batch as one sorted
    // ~2^16-tick block (the batch size is also what makes the peek-time
    // node prefetch effective), parking the cursor past the slot's range.
    int cur2 = static_cast<int>((base_ >> (2 * kSlotBits)) & (kSlots - 1));
    int j2 = find_bit(2, cur2);
    if (j2 >= 0) {
      std::uint64_t group = base_ >> (2 * kSlotBits);
      group = (group & ~static_cast<std::uint64_t>(kSlots - 1)) |
              static_cast<std::uint64_t>(j2);
      park_cursor((group + 1) << (2 * kSlotBits));
      std::vector<Record>& slot = slots_[2][j2];
      clear_bit(2, j2);
      std::sort(slot.begin(), slot.end(),
                [](const Record& a, const Record& b) {
                  if (a.when != b.when) return a.when < b.when;
                  return a.seq < b.seq;
                });
      due_.insert(due_.end(), slot.begin(), slot.end());
      slot.clear();
      return true;
    }
    // Level 3: one slot spans 2^24 ticks — too wide to park the cursor
    // behind (inserts inside it would pay a due-batch merge on a batch
    // thousands long), so cascade it into the levels below and rescan.
    int cur3 = static_cast<int>((base_ >> (3 * kSlotBits)) & (kSlots - 1));
    int j3 = find_bit(3, cur3);
    if (j3 >= 0) {
      std::uint64_t group = base_ >> (3 * kSlotBits);
      group = (group & ~static_cast<std::uint64_t>(kSlots - 1)) |
              static_cast<std::uint64_t>(j3);
      base_ = group << (3 * kSlotBits);
      scratch_.swap(slots_[3][j3]);
      clear_bit(3, j3);
      cascade_scratch();
      continue;
    }
    if (overflow_.empty()) return false;
    migrate_lowest_bucket();
  }
}

EventNode* TimingWheel::peek() {
  while (true) {
    while (due_head_ < due_.size()) {
      const Record& rec = due_[due_head_];
      EventNode* node = arena_.at(rec.index);
      if (node->seq != rec.seq) {
        ++due_head_;  // tombstone: cancelled, slot possibly reused
        continue;
      }
      if (due_head_ + kPrefetchDepth < due_.size()) {
        // Pull an upcoming due node toward the cache while the caller
        // works through the ones before it (pure latency hiding; no
        // semantic effect). Fetching several events ahead matters: one
        // event's worth of work is far shorter than a DRAM load, so a
        // depth-1 prefetch would barely start before the stall. A node
        // spans two cache lines (timestamp/links + the inline closure
        // buffer), so touch both.
        const char* ahead = reinterpret_cast<const char*>(
            arena_.at(due_[due_head_ + kPrefetchDepth].index));
        __builtin_prefetch(ahead);
        __builtin_prefetch(ahead + 64);
      }
      return node;
    }
    due_.clear();
    due_head_ = 0;
    if (!fill_due()) return nullptr;
    // Warm the head of the fresh batch; the steady-state prefetch above
    // only covers entries kPrefetchDepth or more ahead.
    std::size_t warm = due_.size() < kPrefetchDepth ? due_.size()
                                                    : kPrefetchDepth;
    for (std::size_t i = 0; i < warm; ++i) {
      const char* node = reinterpret_cast<const char*>(arena_.at(due_[i].index));
      __builtin_prefetch(node);
      __builtin_prefetch(node + 64);
    }
  }
}

EventNode* TimingWheel::pop() {
  EventNode* node = peek();
  if (node != nullptr) ++due_head_;
  return node;
}

}  // namespace offload::sim
