// Discrete-event simulation engine. Single-threaded, deterministic:
// events at equal timestamps fire in scheduling order (FIFO tie-break by a
// monotonically increasing sequence number).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace offload::sim {

using EventFn = std::function<void()>;

/// Handle to a scheduled event; allows cancellation.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Simulation;
  explicit EventHandle(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

/// The event loop. Actors capture a reference to this and schedule
/// continuations; `run()` drains the queue in timestamp order.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` after the current time.
  EventHandle schedule(SimTime delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute simulated time (must not be in the past).
  EventHandle schedule_at(SimTime when, EventFn fn);

  /// Cancel a pending event. Returns false if it already ran or was
  /// cancelled before.
  bool cancel(EventHandle handle);

  /// Run until the queue is empty. Returns the number of events fired.
  std::size_t run();

  /// Run until the queue is empty or simulated time would exceed `deadline`.
  /// Events at exactly `deadline` still fire.
  std::size_t run_until(SimTime deadline);

  /// Fire the single next event, if any. Returns false when idle.
  bool step();

  std::size_t pending() const { return pending_.size(); }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool fire_next();

  SimTime now_;
  std::uint64_t next_seq_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> pending_;  // seqs scheduled, not yet fired
};

}  // namespace offload::sim
