// Discrete-event simulation engine. Single-threaded, deterministic:
// events at equal timestamps fire in scheduling order (FIFO tie-break by a
// monotonically increasing sequence number).
//
// Two interchangeable scheduler backends share one slab arena of intrusive
// event nodes (src/sim/event_arena.h):
//
//   "wheel" (default) — hierarchical timing wheel + calendar overflow
//     (src/sim/timing_wheel.h). O(1) schedule/cancel, amortized O(1)
//     fire; built for millions of pending events (bench_micro_sim pins
//     the speedup, bench_scale runs 10^6 simulated clients on it).
//   "heap"            — the classic binary heap over (when, seq) keys.
//     Kept as the differential-testing reference: tests/sim_test.cpp
//     asserts both backends produce identical firing orders over
//     randomized schedule/cancel workloads.
//
// Select with OFFLOAD_SIM_SCHED=heap|wheel or the explicit constructor.
// Either way cancellation destroys the event's closure eagerly (captured
// state is released at cancel time, not when the entry happens to drain)
// and firing moves the closure out of the arena slot — no per-event heap
// allocation for captures up to util::UniqueFunction::kInlineBytes.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "src/sim/event_arena.h"
#include "src/sim/time.h"
#include "src/sim/timing_wheel.h"
#include "src/util/unique_function.h"

namespace offload::sim {

using EventFn = util::UniqueFunction;

enum class SchedulerKind { kHeap, kWheel };

/// Handle to a scheduled event; allows cancellation. Generation-tagged:
/// once the event fires or is cancelled its arena slot retires this
/// handle, so stale cancels are O(1) "no".
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return index_ != 0 || gen_ != 0; }

 private:
  friend class Simulation;
  EventHandle(std::uint32_t index, std::uint32_t gen)
      : index_(index), gen_(gen) {}
  std::uint32_t index_ = 0;
  std::uint32_t gen_ = 0;  ///< arena generations are never 0
};

/// The event loop. Actors capture a reference to this and schedule
/// continuations; `run()` drains the queue in timestamp order.
class Simulation {
 public:
  /// Backend from OFFLOAD_SIM_SCHED ("heap" | "wheel"; default wheel).
  /// Throws std::invalid_argument on an unrecognized value.
  Simulation();
  explicit Simulation(SchedulerKind kind);
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  SchedulerKind scheduler() const { return kind_; }

  /// Schedule `fn` to run `delay` after the current time.
  EventHandle schedule(SimTime delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute simulated time (must not be in the past).
  EventHandle schedule_at(SimTime when, EventFn fn);

  /// Cancel a pending event. Returns false if it already ran or was
  /// cancelled before. The event's closure (and everything it captured)
  /// is destroyed before this returns.
  bool cancel(EventHandle handle);

  /// Run until the queue is empty. Returns the number of events fired.
  std::size_t run();

  /// Run until the queue is empty or simulated time would exceed `deadline`.
  /// Events at exactly `deadline` still fire.
  std::size_t run_until(SimTime deadline);

  /// Fire the single next event, if any. Returns false when idle.
  bool step();

  /// Timestamp of the earliest pending event, or SimTime::max() when the
  /// queue is empty. Never runs user code (it may advance wheel cursors
  /// and prune cancelled tombstones). The partitioned engine
  /// (src/sim/partition.h) uses this to compute conservative windows.
  SimTime next_event_time();

  std::size_t pending() const { return pending_; }

  /// Arena introspection for benches/tests: slabs ever allocated and the
  /// total node capacity they hold (stable across steady-state churn).
  std::uint64_t arena_slabs() const { return arena_.slab_allocations(); }
  std::size_t arena_capacity() const { return arena_.capacity(); }

 private:
  struct HeapKey {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t index;
  };
  struct Later {
    bool operator()(const HeapKey& a, const HeapKey& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool fire_next();
  /// Next live event in firing order, or nullptr. Heap backend: lazily
  /// pops stale (cancelled) keys. Never runs user code.
  EventNode* peek_next();

  SimTime now_;
  std::uint64_t next_seq_ = 1;
  std::size_t pending_ = 0;
  SchedulerKind kind_;
  EventArena arena_;
  TimingWheel wheel_{arena_};
  std::priority_queue<HeapKey, std::vector<HeapKey>, Later> heap_;
};

}  // namespace offload::sim
