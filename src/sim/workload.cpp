#include "src/sim/workload.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace offload::sim::workload {

namespace {

constexpr double kTwoPi = 6.283185307179586;

/// splitmix64 finalizer: stable per-client draws (device class, warm
/// pre-seed) that do not depend on arrival order or consume RNG stream.
std::uint64_t mix(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

double unit_fraction(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

std::uint64_t shard_begin(std::uint64_t n, std::uint32_t s,
                          std::uint32_t count) {
  // count <= 2^32 and n * count stays in 64 bits for every population
  // this project simulates (n < 2^32 even at the 10^6-client sweeps).
  return n * static_cast<std::uint64_t>(s) / count;
}

std::uint32_t shard_of(std::uint64_t client, std::uint64_t n,
                       std::uint32_t count) {
  std::uint64_t s = client * count / n;
  // Floor-division range bounds can be off by one around the estimate;
  // settle onto the shard whose [begin, end) actually holds the client.
  while (s > 0 && client < shard_begin(n, static_cast<std::uint32_t>(s),
                                       count)) {
    --s;
  }
  while (s + 1 < count &&
         client >= shard_begin(n, static_cast<std::uint32_t>(s) + 1, count)) {
    ++s;
  }
  return static_cast<std::uint32_t>(s);
}

std::vector<DeviceClass> default_device_classes() {
  // The three paper apps across a fast/slow device split; edge service
  // times follow the WebGL-server ablation (DESIGN.md §6), uplinks span
  // Wi-Fi to congested cellular so cold pre-sends differ meaningfully.
  return {
      {"googlenet_phone", 0.35, 8.0, 26.7, 41.0, 21.76},
      {"agenet_phone", 0.45, 12.0, 11.6, 18.0, 9.57},
      {"gendernet_embedded", 0.20, 3.0, 11.6, 18.0, 9.57},
  };
}

double DiurnalCurve::factor(double t_s) const {
  if (!enabled) return 1.0;
  double phase = t_s / period_s - peak_at_frac;
  return trough + (peak - trough) * 0.5 * (1.0 + std::cos(kTwoPi * phase));
}

Generator::Generator(Simulation& sim, Config config, RequestFn on_request)
    : sim_(sim),
      config_(std::move(config)),
      on_request_(std::move(on_request)),
      // Shard 0 keeps the historical stream constants, so a 1-shard
      // generator is stream-identical to the unsharded one.
      arrival_rng_(config_.seed,
                   0xa221 ^ (static_cast<std::uint64_t>(config_.shard_index)
                             << 16)),
      session_rng_(config_.seed,
                   0x5e55 ^ (static_cast<std::uint64_t>(config_.shard_index)
                             << 16)) {
  if (config_.clients == 0) {
    throw std::invalid_argument("workload::Generator: zero clients");
  }
  if (config_.shard_count == 0 ||
      config_.shard_index >= config_.shard_count) {
    throw std::invalid_argument(
        "workload::Generator: shard_index must be < shard_count (>= 1)");
  }
  shard_lo_ = shard_begin(config_.clients, config_.shard_index,
                          config_.shard_count);
  shard_hi_ = shard_begin(config_.clients, config_.shard_index + 1,
                          config_.shard_count);
  shard_share_ = static_cast<double>(shard_hi_ - shard_lo_) /
                 static_cast<double>(config_.clients);
  classes_ = config_.device_classes.empty() ? default_device_classes()
                                            : config_.device_classes;
  double total = 0;
  for (const DeviceClass& c : classes_) total += c.weight;
  if (total <= 0) {
    throw std::invalid_argument("workload::Generator: class weights <= 0");
  }
  double acc = 0;
  for (const DeviceClass& c : classes_) {
    acc += c.weight / total;
    class_cdf_.push_back(acc);
  }
  class_cdf_.back() = 1.0;  // close rounding gaps
  clients_.assign(shard_hi_ - shard_lo_, ClientState{SimTime::nanos(-1)});

  const ArrivalConfig& a = config_.arrivals;
  // The shard sees its population share of the aggregate rate. x * 1.0
  // is exact, so the 1-shard generator draws the identical stream.
  rate_max_ = a.session_rate_per_s * shard_share_;
  if (a.pattern == ArrivalConfig::Pattern::kBursty) {
    rate_max_ *= a.burst_multiplier;
  }
  if (a.diurnal.enabled) {
    rate_max_ *= std::max(a.diurnal.peak, a.diurnal.trough);
  }
  for (const FlashCrowd& f : a.flash_crowds) {
    rate_max_ *= std::max(1.0, f.multiplier);  // envelope covers overlaps
  }
  if (rate_max_ <= 0 && shard_hi_ > shard_lo_) {
    throw std::invalid_argument("workload::Generator: arrival rate <= 0");
  }
}

std::uint32_t Generator::device_class_of(std::uint64_t client) const {
  double u = unit_fraction(mix(client ^ (config_.seed * 0x9e3779b97f4a7c15ull)));
  for (std::size_t i = 0; i < class_cdf_.size(); ++i) {
    if (u < class_cdf_[i]) return static_cast<std::uint32_t>(i);
  }
  return static_cast<std::uint32_t>(class_cdf_.size() - 1);
}

double Generator::rate_at(double t_s) const {
  const ArrivalConfig& a = config_.arrivals;
  double rate = a.session_rate_per_s * shard_share_ * a.diurnal.factor(t_s);
  for (const FlashCrowd& f : a.flash_crowds) {
    if (t_s >= f.at_s && t_s < f.at_s + f.duration_s) rate *= f.multiplier;
  }
  return rate;
}

double Generator::exp_draw(util::Pcg32& rng, double mean) {
  return -mean * std::log(1.0 - rng.canonical());
}

void Generator::start(SimTime until) {
  if (shard_hi_ == shard_lo_) return;  // empty shard: nothing to emit
  until_s_ = until.to_seconds();
  arrival_cursor_s_ = sim_.now().to_seconds();
  if (config_.arrivals.pattern == ArrivalConfig::Pattern::kBursty) {
    burst_on_ = false;
    burst_until_s_ =
        arrival_cursor_s_ + exp_draw(arrival_rng_, config_.arrivals.mean_off_s);
  }
  schedule_next_arrival();
}

void Generator::schedule_next_arrival() {
  const ArrivalConfig& a = config_.arrivals;
  // Non-homogeneous Poisson via Lewis thinning: candidate gaps from the
  // constant envelope rate_max_, accepted with probability rate(t)/max.
  while (true) {
    arrival_cursor_s_ += exp_draw(arrival_rng_, 1.0 / rate_max_);
    if (arrival_cursor_s_ >= until_s_) return;  // stream exhausted
    if (a.pattern == ArrivalConfig::Pattern::kBursty) {
      while (burst_until_s_ <= arrival_cursor_s_) {
        burst_on_ = !burst_on_;
        burst_until_s_ +=
            exp_draw(arrival_rng_, burst_on_ ? a.mean_on_s : a.mean_off_s);
      }
    }
    double rate = rate_at(arrival_cursor_s_);
    if (a.pattern == ArrivalConfig::Pattern::kBursty && burst_on_) {
      rate *= a.burst_multiplier;
    }
    if (arrival_rng_.canonical() * rate_max_ < rate) break;
  }
  sim_.schedule_at(SimTime::seconds(arrival_cursor_s_), [this] {
    begin_session();
    schedule_next_arrival();
  });
}

void Generator::begin_session() {
  std::uint64_t client =
      shard_lo_ + session_rng_.next_below64(shard_hi_ - shard_lo_);
  std::uint32_t klass = device_class_of(client);
  ClientState& st = clients_[client - shard_lo_];
  if (st.warm_until.ns() < 0) {
    // First touch: some clients start the experiment with a warm cache.
    double u = unit_fraction(
        mix(client ^ (config_.seed * 0xd1342543de82ef95ull)));
    if (u < config_.session.warm_start_fraction) {
      st.warm_until = SimTime::seconds(config_.session.cache_ttl_s);
    }
  }
  bool cold = sim_.now() > st.warm_until;
  std::uint32_t count = 1;
  double p_more = config_.session.mean_requests <= 1.0
                      ? 0.0
                      : 1.0 - 1.0 / config_.session.mean_requests;
  while (session_rng_.chance(p_more)) ++count;
  ++sessions_started_;
  if (cold) ++cold_sessions_;
  emit_request(client, sessions_started_, klass, 0, count - 1, cold);
}

void Generator::emit_request(std::uint64_t client, std::uint64_t session,
                             std::uint32_t klass, std::uint32_t index,
                             std::uint32_t remaining, bool cold) {
  Request req;
  req.client = client;
  req.session = session;
  req.device_class = klass;
  req.index_in_session = index;
  req.cold_model = cold;
  req.at = sim_.now();
  ++requests_emitted_;
  clients_[client - shard_lo_].warm_until =
      sim_.now() + SimTime::seconds(config_.session.cache_ttl_s);
  on_request_(req);
  if (remaining > 0) {
    double gap = exp_draw(session_rng_, config_.session.mean_think_s);
    sim_.schedule(SimTime::seconds(gap),
                  [this, client, session, klass, index, remaining] {
                    emit_request(client, session, klass, index + 1,
                                 remaining - 1, false);
                  });
  }
}

}  // namespace offload::sim::workload
