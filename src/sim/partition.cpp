#include "src/sim/partition.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace offload::sim {

namespace {

constexpr int kMaxPartitions = 256;

}  // namespace

int PartitionedSimulation::partitions_from_env() {
  const char* env = std::getenv("OFFLOAD_SIM_PARTITIONS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1 || v > kMaxPartitions) {
    throw std::invalid_argument(
        "OFFLOAD_SIM_PARTITIONS must be an integer in [1, 256]");
  }
  return static_cast<int>(v);
}

PartitionedSimulation::PartitionedSimulation()
    : PartitionedSimulation(Options{partitions_from_env(), std::nullopt,
                                    SimTime::max()}) {}

PartitionedSimulation::PartitionedSimulation(Options options)
    : lookahead_(options.lookahead) {
  if (options.partitions < 1 || options.partitions > kMaxPartitions) {
    throw std::invalid_argument(
        "PartitionedSimulation: partitions must be in [1, 256]");
  }
  if (lookahead_ < SimTime::zero()) {
    throw std::invalid_argument(
        "PartitionedSimulation: lookahead must be >= 0");
  }
  // Resolve the backend once (reads OFFLOAD_SIM_SCHED when unset) so all
  // partitions agree even if the environment changes mid-construction.
  SchedulerKind kind =
      options.scheduler.has_value() ? *options.scheduler
                                    : Simulation().scheduler();
  const auto k = static_cast<std::size_t>(options.partitions);
  parts_.reserve(k);
  for (std::size_t p = 0; p < k; ++p) {
    parts_.push_back(std::make_unique<Partition>(kind));
  }
  mail_.reserve(k * k);
  for (std::size_t i = 0; i < k * k; ++i) {
    mail_.push_back(std::make_unique<util::SpscMailbox<Post>>());
  }
  if (k > 1) pool_ = std::make_unique<util::ThreadPool>(k);
}

PartitionedSimulation::~PartitionedSimulation() = default;

void PartitionedSimulation::post(int from, int to, SimTime when,
                                 std::uint64_t stamp, EventFn fn) {
  const int k = partitions();
  if (from < 0 || from >= k || to < 0 || to >= k) {
    throw std::out_of_range("PartitionedSimulation::post: bad partition");
  }
  if (lookahead_ == SimTime::max()) {
    throw std::logic_error(
        "PartitionedSimulation::post: partitions were declared independent "
        "(lookahead = SimTime::max()); construct with the real channel "
        "latency floor to enable cross-partition traffic");
  }
  // The conservative bound: nothing may land closer than `lookahead_`
  // ahead of the sender's clock, or it could fall inside a range a peer
  // already fired this window. Exactly the boundary is legal.
  SimTime sender_now = parts_[from]->engine.now();
  if (when - sender_now < lookahead_) {
    throw std::logic_error(
        "PartitionedSimulation::post: when violates the conservative "
        "lookahead bound (when < sender now + lookahead)");
  }
  Partition& sender = *parts_[from];
  mailbox(from, to).push(
      Post{when, stamp, static_cast<std::uint32_t>(from),
           sender.post_seq++, std::move(fn)});
}

void PartitionedSimulation::drain_mailboxes() {
  const int k = partitions();
  for (int to = 0; to < k; ++to) {
    drain_scratch_.clear();
    for (int from = 0; from < k; ++from) {
      mailbox(from, to).drain(
          [this](Post&& post) { drain_scratch_.push_back(std::move(post)); });
    }
    if (drain_scratch_.empty()) continue;
    // Deterministic merge order. (when, stamp) is the cross-K-stable
    // part of the key; (from, seq) breaks any remaining ties
    // reproducibly for a fixed K.
    std::sort(drain_scratch_.begin(), drain_scratch_.end(),
              [](const Post& a, const Post& b) {
                if (a.when != b.when) return a.when < b.when;
                if (a.stamp != b.stamp) return a.stamp < b.stamp;
                if (a.from != b.from) return a.from < b.from;
                return a.seq < b.seq;
              });
    Simulation& engine = parts_[to]->engine;
    for (Post& post : drain_scratch_) {
      engine.schedule_at(post.when, std::move(post.fn));
    }
    drain_scratch_.clear();
  }
}

void PartitionedSimulation::fire_window(SimTime cutoff) {
  const int k = partitions();
  if (k == 1) {
    parts_[0]->fired_this_round = parts_[0]->engine.run_until(cutoff);
  } else {
    auto body = [this, cutoff](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t p = lo; p < hi; ++p) {
        parts_[p]->fired_this_round = parts_[p]->engine.run_until(cutoff);
      }
    };
    pool_->parallel_for(0, k, 1, util::RangeFn(body));
  }
  for (int p = 0; p < k; ++p) total_fired_ += parts_[p]->fired_this_round;
}

std::size_t PartitionedSimulation::run_until(SimTime deadline) {
  const std::uint64_t fired_before = total_fired_;
  while (true) {
    // Merge barrier: everything posted before this point (setup posts
    // included, on the first pass) becomes schedulable now.
    drain_mailboxes();
    SimTime t = SimTime::max();
    for (auto& part : parts_) {
      t = std::min(t, part->engine.next_event_time());
    }
    if (t == SimTime::max() || t > deadline) break;
    committed_ = std::max(committed_, t);
    // Safe window [t, cutoff], cutoff inclusive. Zero lookahead
    // degenerates to lockstep over single timestamps; infinite lookahead
    // (independent partitions) runs each engine straight to the deadline.
    SimTime cutoff;
    if (lookahead_ == SimTime::max()) {
      cutoff = deadline;
    } else if (lookahead_ == SimTime::zero()) {
      cutoff = t;
    } else {
      const std::int64_t ns = t.ns();
      const std::int64_t la = lookahead_.ns();
      const std::int64_t end =
          ns > std::numeric_limits<std::int64_t>::max() - la
              ? std::numeric_limits<std::int64_t>::max()
              : ns + la - 1;
      cutoff = std::min(SimTime::nanos(end), deadline);
    }
    fire_window(cutoff);
    ++rounds_;
  }
  if (deadline != SimTime::max()) {
    // Mirror Simulation::run_until: idle clocks still advance to the
    // deadline so relative scheduling after the call behaves uniformly.
    for (auto& part : parts_) part->engine.run_until(deadline);
    committed_ = std::max(committed_, deadline);
  }
  return static_cast<std::size_t>(total_fired_ - fired_before);
}

std::size_t PartitionedSimulation::run() {
  return run_until(SimTime::max());
}

std::size_t PartitionedSimulation::pending() const {
  std::size_t n = 0;
  for (const auto& part : parts_) n += part->engine.pending();
  for (const auto& mb : mail_) n += mb->in_flight();
  return n;
}

}  // namespace offload::sim
