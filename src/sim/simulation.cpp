#include "src/sim/simulation.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace offload::sim {

namespace {

SchedulerKind scheduler_from_env() {
  const char* env = std::getenv("OFFLOAD_SIM_SCHED");
  if (env == nullptr || *env == '\0') return SchedulerKind::kWheel;
  std::string_view v(env);
  if (v == "wheel") return SchedulerKind::kWheel;
  if (v == "heap") return SchedulerKind::kHeap;
  throw std::invalid_argument(
      "OFFLOAD_SIM_SCHED must be 'heap' or 'wheel'");
}

}  // namespace

std::string SimTime::str() const {
  char buf[64];
  double s = to_seconds();
  if (ns_ >= 1000000000 || ns_ <= -1000000000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  } else if (ns_ >= 1000000 || ns_ <= -1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

Simulation::Simulation() : Simulation(scheduler_from_env()) {}

Simulation::Simulation(SchedulerKind kind) : kind_(kind) {}

EventHandle Simulation::schedule_at(SimTime when, EventFn fn) {
  if (when < now_) {
    throw std::logic_error("Simulation::schedule_at: time is in the past");
  }
  std::uint64_t seq = next_seq_++;
  EventNode* node = arena_.allocate(when, seq, std::move(fn));
  ++pending_;
  if (kind_ == SchedulerKind::kWheel) {
    wheel_.insert(TimingWheel::Record{
        static_cast<std::uint64_t>(when.ns()), seq, node->index});
  } else {
    heap_.push(HeapKey{when, seq, node->index});
  }
  return EventHandle(node->index, node->gen);
}

bool Simulation::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  EventNode* node = arena_.resolve(handle.index_, handle.gen_);
  if (node == nullptr) return false;
  --pending_;
  // Both backends keep (when, seq, index) records, not the node: the
  // record stays behind as a tombstone and is skipped lazily (the live
  // seq no longer matches); the closure and the node are reclaimed now.
  arena_.release(node);
  return true;
}

EventNode* Simulation::peek_next() {
  if (kind_ == SchedulerKind::kWheel) return wheel_.peek();
  while (!heap_.empty()) {
    const HeapKey& key = heap_.top();
    EventNode* node = arena_.at(key.index);
    if (node->seq == key.seq) return node;  // live (seqs are unique)
    heap_.pop();                            // cancelled: slot was recycled
  }
  return nullptr;
}

bool Simulation::fire_next() {
  EventNode* node;
  if (kind_ == SchedulerKind::kWheel) {
    node = wheel_.pop();  // one scan, not peek-then-pop
    if (node == nullptr) return false;
  } else {
    node = peek_next();
    if (node == nullptr) return false;
    heap_.pop();
  }
  now_ = node->when;
  --pending_;
  // Tombstone the slot before running user code, so a cancel of this very
  // event from inside its own callback is a clean "already fired" no (the
  // sequence number no longer matches, and resolve() treats seq == 0 as
  // free). The closure runs in place — no move of the inline capture
  // buffer — and the node is recycled right after; the node cannot be
  // handed out again mid-callback because it is not on the free list yet.
  node->seq = 0;
  node->fn.consume();  // invoke + destroy, one dispatch
  arena_.release(node);
  return true;
}

std::size_t Simulation::run() {
  std::size_t fired = 0;
  while (fire_next()) ++fired;
  return fired;
}

std::size_t Simulation::run_until(SimTime deadline) {
  std::size_t fired = 0;
  while (true) {
    EventNode* node = peek_next();
    if (node == nullptr || node->when > deadline) break;
    if (fire_next()) ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

bool Simulation::step() { return fire_next(); }

SimTime Simulation::next_event_time() {
  EventNode* node = peek_next();
  return node == nullptr ? SimTime::max() : node->when;
}

}  // namespace offload::sim
