#include "src/sim/simulation.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace offload::sim {

std::string SimTime::str() const {
  char buf[64];
  double s = to_seconds();
  if (ns_ >= 1000000000 || ns_ <= -1000000000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  } else if (ns_ >= 1000000 || ns_ <= -1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

EventHandle Simulation::schedule_at(SimTime when, EventFn fn) {
  if (when < now_) {
    throw std::logic_error("Simulation::schedule_at: time is in the past");
  }
  std::uint64_t seq = next_seq_++;
  queue_.push(Entry{when, seq, std::move(fn)});
  pending_.insert(seq);
  return EventHandle(seq);
}

bool Simulation::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  return pending_.erase(handle.seq_) > 0;
}

bool Simulation::fire_next() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (pending_.erase(e.seq) == 0) continue;  // Cancelled event; skip.
    now_ = e.when;
    e.fn();
    return true;
  }
  return false;
}

std::size_t Simulation::run() {
  std::size_t fired = 0;
  while (fire_next()) ++fired;
  return fired;
}

std::size_t Simulation::run_until(SimTime deadline) {
  std::size_t fired = 0;
  while (true) {
    // Prune cancelled entries so the deadline check sees a live event.
    while (!queue_.empty() && pending_.count(queue_.top().seq) == 0) {
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().when > deadline) break;
    if (fire_next()) ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

bool Simulation::step() { return fire_next(); }

}  // namespace offload::sim
