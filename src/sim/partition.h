// Partitioned parallel discrete-event simulation with a conservative-
// lookahead merge (Chandy–Misra–Bryant-style safe windows).
//
// K worker partitions each own a full single-threaded engine — their own
// timing wheel (or heap) and EventArena — and a disjoint slice of the
// simulated population. The coordinator repeatedly:
//
//   1. drains every cross-partition mailbox at a merge barrier,
//      scheduling the delivered posts into their destination engines in
//      a deterministic order (sorted by (when, stamp, from, seq));
//   2. computes the global horizon T = min over partitions of the next
//      pending event time, and the safe window [T, T + lookahead);
//   3. fires each partition's window in parallel (one task per
//      partition on a private thread pool), during which partitions may
//      post() new cross-partition events — but only at or beyond their
//      local now() + lookahead, so nothing a peer does inside the same
//      window can land in the past of anyone's already-processed range.
//
// `lookahead` is the minimum cross-partition delivery latency — for
// simulations wired through net::Channel, the channels' latency_floor().
// Three regimes:
//   * finite, positive — the normal conservative window protocol above;
//   * zero            — degenerates to lockstep: each round processes
//     exactly one global timestamp, and same-time posts are delivered
//     at the next barrier (still at that timestamp);
//   * SimTime::max()  — partitions are declared fully independent;
//     post() is an error and each partition runs to completion with a
//     single final barrier (bench_scale's sharded capacity sweep).
//
// Determinism (DESIGN.md §12): a run is byte-reproducible at any thread
// schedule, and per-lane event histories are identical at any partition
// count K as long as (a) mutable state is confined to one lane, (b)
// cross-lane traffic goes through post() with unique (when, stamp) keys
// per receiver, and (c) the run()/run_until() call sequence is the same
// — window boundaries depend only on the global event set and the
// lookahead, never on K or on which worker ran what.
// tests/sim_partition_test.cpp holds K ∈ {1,2,4,8} to byte-identical
// transcripts under both scheduler backends for 50 seeds.
//
// K = 1 (the OFFLOAD_SIM_PARTITIONS default) never spawns a thread and
// fires events in exactly the order a plain Simulation would, so the
// single-partition configuration is bit-for-bit the sequential engine.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/sim/simulation.h"
#include "src/util/spsc_mailbox.h"
#include "src/util/thread_pool.h"

namespace offload::sim {

class PartitionedSimulation {
 public:
  struct Options {
    /// Worker partitions. 1 (default) runs inline on the caller.
    int partitions = 1;
    /// Engine backend per partition; unset reads OFFLOAD_SIM_SCHED.
    std::optional<SchedulerKind> scheduler;
    /// Conservative lookahead: the minimum cross-partition delivery
    /// latency. SimTime::max() forbids post() entirely.
    SimTime lookahead = SimTime::max();
  };

  /// Partition count from OFFLOAD_SIM_PARTITIONS (default 1), backend
  /// from OFFLOAD_SIM_SCHED, lookahead = SimTime::max().
  PartitionedSimulation();
  explicit PartitionedSimulation(Options options);
  PartitionedSimulation(const PartitionedSimulation&) = delete;
  PartitionedSimulation& operator=(const PartitionedSimulation&) = delete;
  ~PartitionedSimulation();

  /// OFFLOAD_SIM_PARTITIONS as an int in [1, 256]; default 1. Throws
  /// std::invalid_argument on anything else.
  static int partitions_from_env();

  int partitions() const { return static_cast<int>(parts_.size()); }
  SimTime lookahead() const { return lookahead_; }

  /// Partition-local engine: schedule/cancel/now for actors living in
  /// partition `p`. Before run() any thread may touch any partition;
  /// during run() only partition p's own events may use it — the only
  /// legal cross-partition interaction is post().
  Simulation& partition(int p) { return parts_[p]->engine; }

  /// The committed global horizon: the start of the most recent safe
  /// window (or the run_until deadline when that is later). Monotone
  /// nondecreasing; every partition has fired all events below it.
  SimTime now() const { return committed_; }

  /// Schedule `fn` at absolute time `when` in partition `to`, from code
  /// currently executing in (or setting up) partition `from`. Requires
  /// when >= partition(from).now() + lookahead — exactly the boundary is
  /// legal. `stamp` breaks equal-`when` delivery ties deterministically
  /// across partition counts: deliveries are merged in
  /// (when, stamp, from, seq) order, so give stamps that are unique per
  /// (receiver, when) — e.g. (sender lane id, per-lane counter) — and
  /// the merged order is independent of K. There is no cross-partition
  /// cancel: to cancel a remote event, post a message asking its owner
  /// to cancel the handle it holds.
  void post(int from, int to, SimTime when, std::uint64_t stamp, EventFn fn);

  /// Run until every engine and mailbox is empty. Returns events fired.
  std::size_t run();

  /// Run until idle or the next safe window would start past `deadline`
  /// (events at exactly `deadline` still fire). Partition clocks and
  /// now() advance to `deadline`, like Simulation::run_until.
  std::size_t run_until(SimTime deadline);

  /// Pending events across all engines plus undrained posts. Exact when
  /// no run is in flight.
  std::size_t pending() const;

  std::uint64_t rounds() const { return rounds_; }          ///< merge barriers
  std::uint64_t events_fired() const { return total_fired_; }

 private:
  struct Post {
    SimTime when;
    std::uint64_t stamp = 0;
    std::uint32_t from = 0;
    std::uint64_t seq = 0;  ///< per-sender-partition post counter
    EventFn fn;
  };

  struct Partition {
    explicit Partition(SchedulerKind kind) : engine(kind) {}
    Simulation engine;
    std::uint64_t post_seq = 0;
    std::size_t fired_this_round = 0;
  };

  util::SpscMailbox<Post>& mailbox(int from, int to) {
    return *mail_[static_cast<std::size_t>(from) * parts_.size() + to];
  }
  /// Merge barrier: deliver every undrained post into its destination
  /// engine in (when, stamp, from, seq) order. Single-threaded.
  void drain_mailboxes();
  /// Fire one safe window [t, cutoff] on every partition in parallel.
  void fire_window(SimTime cutoff);

  SimTime lookahead_;
  SimTime committed_;
  std::uint64_t rounds_ = 0;
  std::uint64_t total_fired_ = 0;
  std::vector<std::unique_ptr<Partition>> parts_;
  std::vector<std::unique_ptr<util::SpscMailbox<Post>>> mail_;
  std::vector<Post> drain_scratch_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null when partitions == 1
};

}  // namespace offload::sim
