// Simulated-time representation. Integer nanoseconds, so event ordering is
// exact and experiments are deterministic across platforms (no FP drift).
#pragma once

#include <cstdint>
#include <string>

namespace offload::sim {

/// A point in (or span of) simulated time, in integer nanoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime nanos(std::int64_t ns) { return SimTime(ns); }
  static constexpr SimTime micros(std::int64_t us) {
    return SimTime(us * 1000);
  }
  static constexpr SimTime millis(std::int64_t ms) {
    return SimTime(ms * 1000000);
  }
  static constexpr SimTime seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() {
    return SimTime(INT64_MAX);
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr SimTime operator+(SimTime other) const {
    return SimTime(ns_ + other.ns_);
  }
  constexpr SimTime operator-(SimTime other) const {
    return SimTime(ns_ - other.ns_);
  }
  SimTime& operator+=(SimTime other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr auto operator<=>(const SimTime&) const = default;

  std::string str() const;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace offload::sim
