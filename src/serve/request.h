// Typed requests, replies, and per-request timing for the serving
// scheduler. Two job shapes flow through one queue:
//
//  - *opaque* jobs: a precomputed busy time (the snapshot restore + execute
//    + capture path of the edge server). Never fused — each one is a full
//    JS VM execution with its own realm.
//  - *inference* jobs: (model, cut, feature tensor). Jobs that agree on
//    model and cut may be fused into one batched rear-range forward.
#pragma once

#include <cstdint>
#include <functional>

#include "src/nn/tensor.h"
#include "src/sim/time.h"

namespace offload::serve {

/// Why a submission was refused admission.
enum class RejectReason {
  kQueueFull,     ///< pending queue at its configured bound — load shed
  kUnknownModel,  ///< inference job names a model never registered
};

const char* reject_reason_name(RejectReason reason);

/// Typed load-shed reply. The edge server forwards this to the client as
/// an "overloaded:" control message; clients fall back to local execution.
struct Reject {
  RejectReason reason = RejectReason::kQueueFull;
  std::size_t queue_depth = 0;  ///< pending jobs at the moment of rejection
};

/// Per-request latency breakdown, filled by the scheduler.
///
/// The wait is split at `available` = max(submitted, replica-free-since):
/// time before `available` the request was blocked behind other work
/// (queue wait); time after it the replica sat idle on purpose while the
/// batch formed (batch wait). Under the degenerate single-replica FIFO
/// configuration batch wait is identically zero and queue wait reproduces
/// the old reservation model bit-for-bit.
struct RequestTiming {
  sim::SimTime submitted;
  sim::SimTime dispatched;
  sim::SimTime completed;
  double queue_wait_s = 0;  ///< waited for a replica (contention)
  double batch_wait_s = 0;  ///< replica free, held for batch formation
  double compute_s = 0;     ///< fused-launch time (shared by the batch)
  int batch_size = 1;       ///< jobs fused into the launch that ran this one
  int replica = 0;          ///< lane index that executed the job
  /// Obs span id of the lane-busy span covering this job's launch (0 when
  /// the scheduler has no obs sink). Lets callers parent their own
  /// sub-spans (e.g. the edge server's restore/execute/capture) inside
  /// the lane interval.
  std::uint64_t busy_span = 0;

  double total_s() const { return (completed - submitted).to_seconds(); }
};

/// Completion callback for opaque jobs, invoked at the completion sim-time.
using OpaqueDoneFn = std::function<void(const RequestTiming&)>;
/// Expiry callback: the job's deadline passed while it was still queued
/// and the scheduler cancelled it (SchedulerConfig::drop_expired). The
/// timing records submitted and the cancellation time (`completed`); no
/// compute ever ran.
using ExpiredFn = std::function<void(const RequestTiming&)>;
/// Completion callback for inference jobs: this request's slice of the
/// batched output, plus timing.
using InferDoneFn = std::function<void(nn::Tensor output,
                                       const RequestTiming&)>;

/// Outcome of a submit call. Admission is decided synchronously.
struct SubmitResult {
  bool admitted = false;
  std::uint64_t id = 0;  ///< admission sequence number (valid if admitted)
  Reject reject;         ///< valid if !admitted
};

}  // namespace offload::serve
