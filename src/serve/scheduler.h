// The serving scheduler: one bounded queue of jobs from many concurrent
// clients, a configurable ordering policy (FIFO / EDF), dynamic batching
// of compatible inference jobs, and a pool of model-replica lanes.
//
// Event-driven over the discrete-event simulation: a job dispatches only
// when a lane is idle at the current sim time; lane completions and batch
// hold-timers re-pump the queue. All decisions depend only on sim time and
// admission order, so results are deterministic at any OFFLOAD_THREADS.
//
// Batching (the reason this subsystem exists): jobs that agree on
// (model, cut) fuse into one batched rear-range forward of up to
// `max_batch` samples. A partial batch is held until the oldest member has
// waited `max_batch_wait`, unless the batch fills first. Fused launches
// amortize per-layer overhead and run marginal samples at the profile's
// batch_marginal_speedup, which is where the throughput win over
// request-at-a-time FIFO comes from.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/device.h"
#include "src/nn/network.h"
#include "src/obs/obs.h"
#include "src/serve/policy.h"
#include "src/serve/request.h"
#include "src/sim/simulation.h"

namespace offload::serve {

struct SchedulerConfig {
  nn::DeviceProfile profile = nn::DeviceProfile::edge_server();
  /// Model-replica lanes. Each lane executes one launch at a time; the
  /// whole pool shares the one queue.
  int replicas = 1;
  /// Max inference jobs fused into one launch. 1 = no batching.
  std::size_t max_batch = 1;
  /// How long a partial batch may hold an idle lane, measured from the
  /// submission of its oldest member. Zero = dispatch immediately.
  sim::SimTime max_batch_wait = sim::SimTime::zero();
  /// Admission bound on the pending queue; submissions beyond it are shed
  /// with Reject{kQueueFull}. 0 = unbounded.
  std::size_t max_queue = 0;
  /// Queue ordering: "fifo" or "edf".
  std::string policy = "fifo";
  /// Deadline-aware cancellation: queued jobs whose deadline has passed
  /// are dropped at the next pump instead of occupying a lane; their
  /// `on_expired` callback fires. Off by default (deadlines then only
  /// order the EDF policy, as before).
  bool drop_expired = false;
  /// Observability sink (optional). When set, the scheduler maintains a
  /// queue-depth gauge, submission/completion/shed counters, and wait
  /// histograms (all keys prefixed "<obs_name>."), and emits queue-wait /
  /// batch-wait / lane-busy spans per dispatched job. Null disables all of
  /// it at the cost of one branch per site.
  obs::Obs* obs = nullptr;
  /// Metric-key and span-resource prefix for this scheduler instance, so
  /// several schedulers (e.g. primary + secondary edge server) can share
  /// one registry without colliding.
  std::string obs_name = "serve";
};

class Scheduler {
 public:
  Scheduler(sim::Simulation& sim, SchedulerConfig config);

  /// Make `net` available for inference jobs under net->name(). The
  /// network is shared by all lanes (weights are read-only at serve time).
  void register_model(std::shared_ptr<const nn::Network> net);
  bool has_model(const std::string& name) const;

  /// Opaque job: occupies a lane for exactly `busy_s`; never fused.
  /// `on_done` runs at the completion sim-time. With `drop_expired` on,
  /// `on_expired` fires instead if the deadline passes while queued.
  /// `ctx` ties the job's spans into the submitting request's trace.
  SubmitResult submit_opaque(double busy_s, OpaqueDoneFn on_done,
                             sim::SimTime deadline = sim::SimTime::max(),
                             ExpiredFn on_expired = nullptr,
                             obs::TraceContext ctx = {});

  /// Inference job: rear-range forward of `model` from `cut` over
  /// `feature`. May fuse with compatible jobs. `on_done` receives this
  /// request's output slice at the completion sim-time.
  SubmitResult submit_infer(const std::string& model, std::size_t cut,
                            nn::Tensor feature, InferDoneFn on_done,
                            sim::SimTime deadline = sim::SimTime::max(),
                            ExpiredFn on_expired = nullptr,
                            obs::TraceContext ctx = {});

  /// Withdraw a still-queued job (work stealing / session migration). The
  /// job's callbacks never fire; the caller owns its fate from here on.
  /// Returns false when `id` is unknown, already dispatched, or done.
  bool cancel(std::uint64_t id);

  std::size_t queue_depth() const { return pending_.size(); }
  /// Cheap pull-style load signals for the partition-point controller (and
  /// tests): no metrics-registry round-trip, just the scheduler's own
  /// state. Parity with the obs gauges is asserted in serve_test.
  int lanes() const { return static_cast<int>(lanes_.size()); }
  /// Lanes whose current launch is still running at `now`.
  int busy_lanes(sim::SimTime now) const {
    int n = 0;
    for (const Lane& l : lanes_) {
      if (l.busy_until > now) ++n;
    }
    return n;
  }
  /// Batch-formation wait of the most recent launch on `lane` (seconds;
  /// 0 until that lane has dispatched).
  double lane_batch_wait_s(int lane) const {
    return lanes_.at(static_cast<std::size_t>(lane)).last_batch_wait_s;
  }
  /// Max over lanes of the most recent launch's batch-formation wait —
  /// the pull-side analogue of the serve.batch_wait_ms histogram tail.
  double recent_batch_wait_s() const {
    double w = 0;
    for (const Lane& l : lanes_) w = std::max(w, l.last_batch_wait_s);
    return w;
  }
  /// Whether a submission at this instant would pass admission control.
  /// Lets callers shed *before* doing per-request work (e.g. the edge
  /// server refuses a snapshot before restoring it).
  bool would_admit() const {
    return config_.max_queue == 0 || pending_.size() < config_.max_queue;
  }
  const SchedulerConfig& config() const { return config_; }
  std::string_view policy_name() const { return policy_->name(); }

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;   ///< load-shed at admission
    std::uint64_t expired = 0;    ///< cancelled in-queue past their deadline
    std::uint64_t cancelled = 0;  ///< withdrawn in-queue via cancel()
    std::uint64_t launches = 0;   ///< lane dispatches (batches + singles)
    std::uint64_t fused_jobs = 0; ///< jobs that rode in a batch of size > 1
    std::size_t peak_queue_depth = 0;
    int largest_batch = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    bool opaque = false;
    std::string model;     // inference only
    std::size_t cut = 0;   // inference only
    nn::Tensor feature;    // inference only
    double busy_s = 0;     // opaque only
    sim::SimTime submitted;
    sim::SimTime deadline = sim::SimTime::max();
    OpaqueDoneFn on_opaque_done;
    InferDoneFn on_infer_done;
    ExpiredFn on_expired;
    obs::TraceContext ctx;

    JobInfo info() const { return {id, submitted, deadline}; }
    /// Fusion key: opaque jobs never share a key.
    bool fuses_with(const Job& other) const {
      return !opaque && !other.opaque && model == other.model &&
             cut == other.cut;
    }
  };

  struct Lane {
    sim::SimTime busy_until;
    sim::SimTime free_since;  ///< when the lane last became idle
    /// Longest batch-formation wait in this lane's most recent launch.
    double last_batch_wait_s = 0;
  };

  SubmitResult admit(Job job);
  /// Refresh the queue-depth gauge after any pending_ mutation.
  void note_queue_depth();
  /// Drop queued jobs whose deadline has passed (drop_expired only).
  void expire_overdue();
  /// Dispatch as much ready work as idle lanes allow; arm the hold timer
  /// for batches still forming.
  void pump();
  /// Take the jobs at `indices` (policy order) out of pending_ and launch
  /// them on `lane` now.
  void dispatch(const std::vector<std::size_t>& indices, int lane);
  void complete(std::vector<Job> batch, std::vector<RequestTiming> timings,
                int lane);

  sim::Simulation& sim_;
  SchedulerConfig config_;
  std::unique_ptr<QueuePolicy> policy_;
  std::map<std::string, std::shared_ptr<const nn::Network>> models_;
  std::vector<Job> pending_;
  std::vector<Lane> lanes_;
  sim::EventHandle hold_timer_;
  sim::SimTime hold_timer_at_ = sim::SimTime::max();
  std::uint64_t next_id_ = 1;
  Stats stats_;
};

}  // namespace offload::serve
