// Queue-ordering policies for the serving scheduler. A policy is a strict
// weak order over waiting jobs; the scheduler dispatches the minimum. Ties
// always break by admission sequence, so every policy is deterministic and
// starvation-free for jobs that share a priority.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "src/sim/time.h"

namespace offload::serve {

/// The slice of a queued job a policy may look at.
struct JobInfo {
  std::uint64_t id = 0;  ///< admission sequence (monotone per scheduler)
  sim::SimTime submitted;
  sim::SimTime deadline = sim::SimTime::max();  ///< max() = no deadline
};

class QueuePolicy {
 public:
  virtual ~QueuePolicy() = default;
  virtual std::string_view name() const = 0;
  /// True if `a` should dispatch before `b` (strict weak order).
  virtual bool before(const JobInfo& a, const JobInfo& b) const = 0;
};

/// First-come-first-served by admission sequence. The degenerate
/// configuration (1 replica, batch 1, FIFO) reproduces the original
/// edge-server compute reservation exactly.
class FifoPolicy final : public QueuePolicy {
 public:
  std::string_view name() const override { return "fifo"; }
  bool before(const JobInfo& a, const JobInfo& b) const override {
    return a.id < b.id;
  }
};

/// Earliest-deadline-first; jobs without a deadline (SimTime::max()) sort
/// after every deadlined job, and equal deadlines fall back to FIFO.
class EdfPolicy final : public QueuePolicy {
 public:
  std::string_view name() const override { return "edf"; }
  bool before(const JobInfo& a, const JobInfo& b) const override {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.id < b.id;
  }
};

/// Factory for config strings: "fifo" or "edf". Throws
/// std::invalid_argument on anything else.
std::unique_ptr<QueuePolicy> make_policy(std::string_view name);

}  // namespace offload::serve
