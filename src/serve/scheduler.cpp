#include "src/serve/scheduler.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace offload::serve {

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull:
      return "queue_full";
    case RejectReason::kUnknownModel:
      return "unknown_model";
  }
  return "unknown";
}

Scheduler::Scheduler(sim::Simulation& sim, SchedulerConfig config)
    : sim_(sim),
      config_(std::move(config)),
      policy_(make_policy(config_.policy)) {
  if (config_.replicas < 1) {
    throw std::invalid_argument("Scheduler: replicas must be >= 1");
  }
  if (config_.max_batch < 1) {
    throw std::invalid_argument("Scheduler: max_batch must be >= 1");
  }
  lanes_.resize(static_cast<std::size_t>(config_.replicas));
}

void Scheduler::register_model(std::shared_ptr<const nn::Network> net) {
  if (!net) throw std::invalid_argument("Scheduler: null model");
  models_[net->name()] = std::move(net);
}

bool Scheduler::has_model(const std::string& name) const {
  return models_.count(name) > 0;
}

SubmitResult Scheduler::submit_opaque(double busy_s, OpaqueDoneFn on_done,
                                      sim::SimTime deadline,
                                      ExpiredFn on_expired,
                                      obs::TraceContext ctx) {
  Job job;
  job.opaque = true;
  job.busy_s = busy_s;
  job.deadline = deadline;
  job.on_opaque_done = std::move(on_done);
  job.on_expired = std::move(on_expired);
  job.ctx = ctx;
  return admit(std::move(job));
}

SubmitResult Scheduler::submit_infer(const std::string& model, std::size_t cut,
                                     nn::Tensor feature, InferDoneFn on_done,
                                     sim::SimTime deadline,
                                     ExpiredFn on_expired,
                                     obs::TraceContext ctx) {
  Job job;
  job.opaque = false;
  job.model = model;
  job.cut = cut;
  job.feature = std::move(feature);
  job.deadline = deadline;
  job.on_infer_done = std::move(on_done);
  job.on_expired = std::move(on_expired);
  job.ctx = ctx;
  return admit(std::move(job));
}

bool Scheduler::cancel(std::uint64_t id) {
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].id != id) continue;
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    ++stats_.cancelled;
    if (config_.obs) {
      config_.obs->metrics.add(config_.obs_name + ".cancelled");
    }
    note_queue_depth();
    return true;
  }
  return false;
}

void Scheduler::note_queue_depth() {
  if (config_.obs) {
    config_.obs->metrics.set_gauge(config_.obs_name + ".queue_depth",
                                   static_cast<std::int64_t>(pending_.size()));
  }
}

SubmitResult Scheduler::admit(Job job) {
  SubmitResult result;
  obs::Obs* obs = config_.obs;
  if (!job.opaque && !has_model(job.model)) {
    ++stats_.rejected;
    result.reject = {RejectReason::kUnknownModel, pending_.size()};
    if (obs) {
      obs->metrics.add(config_.obs_name + ".rejected.unknown_model");
      obs->trace.marker(job.ctx.trace, job.ctx.root, "reject:unknown_model",
                        config_.obs_name + "/queue", sim_.now());
    }
    return result;
  }
  if (config_.max_queue > 0 && pending_.size() >= config_.max_queue) {
    ++stats_.rejected;
    result.reject = {RejectReason::kQueueFull, pending_.size()};
    if (obs) {
      obs->metrics.add(config_.obs_name + ".rejected.queue_full");
      obs->trace.marker(job.ctx.trace, job.ctx.root, "reject:queue_full",
                        config_.obs_name + "/queue", sim_.now());
    }
    return result;
  }
  job.id = next_id_++;
  job.submitted = sim_.now();
  ++stats_.submitted;
  result.admitted = true;
  result.id = job.id;
  pending_.push_back(std::move(job));
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, pending_.size());
  if (obs) obs->metrics.add(config_.obs_name + ".submitted");
  note_queue_depth();
  pump();
  return result;
}

void Scheduler::expire_overdue() {
  // Collect first, then erase, then notify: an expiry callback may
  // synchronously submit follow-up work that re-enters the scheduler.
  std::vector<Job> expired;
  for (std::size_t i = pending_.size(); i-- > 0;) {
    if (pending_[i].deadline < sim_.now()) {
      expired.push_back(std::move(pending_[i]));
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  // Restore submission order (the reverse sweep above flipped it).
  std::sort(expired.begin(), expired.end(),
            [](const Job& a, const Job& b) { return a.id < b.id; });
  if (!expired.empty()) note_queue_depth();
  for (Job& job : expired) {
    ++stats_.expired;
    if (config_.obs) {
      config_.obs->metrics.add(config_.obs_name + ".expired");
      config_.obs->trace.marker(job.ctx.trace, job.ctx.root, "expired",
                                config_.obs_name + "/queue", sim_.now());
    }
    if (job.on_expired) {
      RequestTiming t;
      t.submitted = job.submitted;
      t.dispatched = sim_.now();
      t.completed = sim_.now();
      t.queue_wait_s = (sim_.now() - job.submitted).to_seconds();
      job.on_expired(t);
    }
  }
}

void Scheduler::pump() {
  if (config_.drop_expired) expire_overdue();
  for (;;) {
    int lane = -1;
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      if (lanes_[i].busy_until <= sim_.now()) {
        lane = static_cast<int>(i);
        break;
      }
    }
    if (lane < 0 || pending_.empty()) return;

    // Policy order over the waiting jobs (ids break all ties, so this is a
    // total, deterministic order).
    std::vector<std::size_t> order(pending_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                return policy_->before(pending_[a].info(), pending_[b].info());
              });

    bool dispatched = false;
    sim::SimTime earliest_ready = sim::SimTime::max();
    // Heads already passed over because their batch is still forming; any
    // later job of the same key must wait with them (dispatching it alone
    // would reorder within the key).
    std::vector<std::size_t> held_heads;
    for (std::size_t oi = 0; oi < order.size(); ++oi) {
      const Job& head = pending_[order[oi]];
      bool held = false;
      for (std::size_t h : held_heads) {
        if (head.fuses_with(pending_[h])) {
          held = true;
          break;
        }
      }
      if (held) continue;

      if (head.opaque || config_.max_batch <= 1) {
        dispatch({order[oi]}, lane);
        dispatched = true;
        break;
      }
      std::vector<std::size_t> batch;
      sim::SimTime oldest = head.submitted;
      for (std::size_t oj = oi;
           oj < order.size() && batch.size() < config_.max_batch; ++oj) {
        const Job& j = pending_[order[oj]];
        if (oj == oi || j.fuses_with(head)) {
          batch.push_back(order[oj]);
          oldest = std::min(oldest, j.submitted);
        }
      }
      const sim::SimTime ready_at = oldest + config_.max_batch_wait;
      if (batch.size() >= config_.max_batch || sim_.now() >= ready_at) {
        dispatch(batch, lane);
        dispatched = true;
        break;
      }
      held_heads.push_back(order[oi]);
      earliest_ready = std::min(earliest_ready, ready_at);
    }
    if (dispatched) continue;  // lane + queue changed; rescan

    // Everything waiting is a batch still forming. Arm (or retarget) the
    // hold timer for the soonest formation deadline.
    if (earliest_ready != sim::SimTime::max() &&
        earliest_ready != hold_timer_at_) {
      if (hold_timer_.valid()) sim_.cancel(hold_timer_);
      hold_timer_at_ = earliest_ready;
      hold_timer_ = sim_.schedule_at(earliest_ready, [this] {
        hold_timer_ = {};
        hold_timer_at_ = sim::SimTime::max();
        pump();
      });
    }
    return;
  }
}

void Scheduler::dispatch(const std::vector<std::size_t>& indices, int lane) {
  const sim::SimTime now = sim_.now();
  std::vector<Job> batch;
  batch.reserve(indices.size());
  for (std::size_t idx : indices) batch.push_back(std::move(pending_[idx]));
  std::vector<std::size_t> erase_order = indices;
  std::sort(erase_order.begin(), erase_order.end(),
            std::greater<std::size_t>());
  for (std::size_t idx : erase_order) {
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(idx));
  }

  const Job& head = batch.front();
  double compute_s = 0;
  if (head.opaque) {
    compute_s = head.busy_s;
  } else {
    const auto& net = models_.at(head.model);
    compute_s = config_.profile.network_batch_time_s(
        *net, head.cut + 1, net->size(),
        static_cast<std::int64_t>(batch.size()));
  }
  const sim::SimTime end = now + sim::SimTime::seconds(compute_s);

  Lane& l = lanes_[static_cast<std::size_t>(lane)];
  obs::Obs* obs = config_.obs;
  const std::string lane_res =
      obs ? config_.obs_name + "/lane" + std::to_string(lane) : std::string();
  // One lane-busy span per launch; per-job wait spans hang off each job's
  // own trace. Callers of opaque jobs receive the busy-span id through
  // RequestTiming so their restore/execute/capture sub-spans can nest in
  // the lane interval.
  obs::SpanId busy_span = 0;
  if (obs) {
    const Job& h = batch.front();
    busy_span = obs->trace.emit(
        h.ctx.trace, h.ctx.root, obs::SpanKind::kLaneBusy,
        h.opaque ? "launch" : "launch:" + h.model, lane_res, now, end,
        compute_s);
    obs->trace.attr(busy_span, "batch_size",
                    static_cast<std::int64_t>(batch.size()));
  }
  std::vector<RequestTiming> timings;
  timings.reserve(batch.size());
  for (const Job& j : batch) {
    RequestTiming t;
    t.submitted = j.submitted;
    t.dispatched = now;
    t.completed = end;
    const sim::SimTime available = std::max(j.submitted, l.free_since);
    t.queue_wait_s = (available - j.submitted).to_seconds();
    t.batch_wait_s = (now - available).to_seconds();
    t.compute_s = compute_s;
    t.batch_size = static_cast<int>(batch.size());
    t.replica = lane;
    t.busy_span = busy_span;
    if (obs) {
      obs->trace.emit(j.ctx.trace, j.ctx.root, obs::SpanKind::kQueueWait,
                      "queue_wait", config_.obs_name + "/queue", j.submitted,
                      available, t.queue_wait_s);
      obs->trace.emit(j.ctx.trace, j.ctx.root, obs::SpanKind::kBatchWait,
                      "batch_wait", config_.obs_name + "/queue", available,
                      now, t.batch_wait_s);
    }
    timings.push_back(t);
  }
  l.busy_until = end;
  l.last_batch_wait_s = 0;
  for (const RequestTiming& t : timings) {
    l.last_batch_wait_s = std::max(l.last_batch_wait_s, t.batch_wait_s);
  }
  note_queue_depth();

  ++stats_.launches;
  stats_.largest_batch =
      std::max(stats_.largest_batch, static_cast<int>(batch.size()));
  if (batch.size() > 1) stats_.fused_jobs += batch.size();

  sim_.schedule_at(end, [this, lane, batch = std::move(batch),
                         timings = std::move(timings)]() mutable {
    complete(std::move(batch), std::move(timings), lane);
  });
}

void Scheduler::complete(std::vector<Job> batch,
                         std::vector<RequestTiming> timings, int lane) {
  // Mark the lane idle before callbacks run: a completion callback may
  // synchronously submit follow-up work that should see this lane free.
  lanes_[static_cast<std::size_t>(lane)].free_since = sim_.now();

  if (obs::Obs* obs = config_.obs) {
    for (std::size_t i = 0;
         i < (batch.front().opaque ? std::size_t{1} : batch.size()); ++i) {
      const RequestTiming& t = timings[i];
      obs->metrics.add(config_.obs_name + ".completed");
      obs->metrics.observe(config_.obs_name + ".queue_wait_ms",
                           t.queue_wait_s * 1e3);
      obs->metrics.observe(config_.obs_name + ".batch_wait_ms",
                           t.batch_wait_s * 1e3);
      obs->metrics.observe(config_.obs_name + ".total_ms", t.total_s() * 1e3);
    }
    obs->metrics.observe(config_.obs_name + ".compute_ms",
                         timings[0].compute_s * 1e3);
  }

  if (batch.front().opaque) {
    ++stats_.completed;
    if (batch.front().on_opaque_done) batch.front().on_opaque_done(timings[0]);
  } else {
    const auto& net = models_.at(batch.front().model);
    const std::size_t cut = batch.front().cut;
    std::vector<nn::Tensor> features;
    features.reserve(batch.size());
    for (Job& j : batch) features.push_back(std::move(j.feature));
    if (cut + 1 >= net->size()) {
      // Nothing after the cut: each job's output is its own feature.
      for (std::size_t i = 0; i < batch.size(); ++i) {
        ++stats_.completed;
        if (batch[i].on_infer_done) {
          batch[i].on_infer_done(std::move(features[i]), timings[i]);
        }
      }
    } else {
      nn::Tensor stacked = nn::Tensor::stack(features);
      nn::Tensor out = net->forward_rear_batch(stacked, cut);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        ++stats_.completed;
        if (batch[i].on_infer_done) {
          batch[i].on_infer_done(out.sample(static_cast<std::int64_t>(i)),
                                 timings[i]);
        }
      }
    }
  }
  pump();
}

}  // namespace offload::serve
