#include "src/serve/policy.h"

#include <stdexcept>
#include <string>

namespace offload::serve {

std::unique_ptr<QueuePolicy> make_policy(std::string_view name) {
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "edf") return std::make_unique<EdfPolicy>();
  throw std::invalid_argument("make_policy: unknown policy '" +
                              std::string(name) + "' (want fifo|edf)");
}

}  // namespace offload::serve
