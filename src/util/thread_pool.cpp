#include "src/util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace offload::util {
namespace {

/// True while the current thread is executing a parallel_for chunk; nested
/// parallel_for calls then run inline instead of deadlocking on job_mutex_.
thread_local bool t_in_parallel_region = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks() {
  const bool was_in_region = t_in_parallel_region;
  t_in_parallel_region = true;
  while (true) {
    const std::int64_t c = next_chunk_.fetch_add(1);
    if (c >= chunk_count_) break;
    const std::int64_t lo = job_begin_ + c * chunk_size_;
    const std::int64_t hi = std::min(job_end_, lo + chunk_size_);
    try {
      fn_(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lk(m_);
      if (!error_) error_ = std::current_exception();
    }
    completed_.fetch_add(1);
  }
  t_in_parallel_region = was_in_region;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      // A worker can wake after the job it was notified for already
      // completed (the caller only waits for chunk completion, not for
      // every notified worker). Joining then would race with the next
      // job's initialization, so re-check under the lock that this
      // generation still has chunks to hand out.
      if (completed_.load() >= chunk_count_) continue;
      ++active_;
    }
    run_chunks();
    {
      std::lock_guard<std::mutex> lk(m_);
      --active_;
    }
    cv_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              std::int64_t grain, RangeFn fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const std::int64_t range = end - begin;
  // Sequential fallback: no workers, tiny range, or nested invocation. The
  // callee sees the exact same [begin, end) split it would see as a single
  // chunk, so results are identical by construction.
  if (workers_.empty() || range <= grain || t_in_parallel_region) {
    fn(begin, end);
    return;
  }

  std::lock_guard<std::mutex> job_lock(job_mutex_);
  // ~4 chunks per thread gives dynamic load balancing without handing out
  // chunks so small the atomic fetch_add dominates.
  const std::int64_t target_chunks = static_cast<std::int64_t>(size()) * 4;
  const std::int64_t chunk =
      std::max(grain, (range + target_chunks - 1) / target_chunks);
  {
    std::lock_guard<std::mutex> lk(m_);
    fn_ = fn;
    job_begin_ = begin;
    job_end_ = end;
    chunk_size_ = chunk;
    chunk_count_ = (range + chunk - 1) / chunk;
    next_chunk_.store(0);
    completed_.store(0);
    error_ = nullptr;
    ++generation_;
  }
  cv_start_.notify_all();
  run_chunks();  // caller participates
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(m_);
    cv_done_.wait(lk, [&] {
      return active_ == 0 && completed_.load() == chunk_count_;
    });
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

std::size_t default_thread_count() {
  if (const char* env = std::getenv("OFFLOAD_THREADS"); env && *env) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

namespace {
std::mutex g_default_pool_mutex;
std::unique_ptr<ThreadPool> g_default_pool;
}  // namespace

ThreadPool& default_pool() {
  std::lock_guard<std::mutex> lk(g_default_pool_mutex);
  if (!g_default_pool) {
    g_default_pool = std::make_unique<ThreadPool>(default_thread_count());
  }
  return *g_default_pool;
}

void set_default_pool_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lk(g_default_pool_mutex);
  g_default_pool = std::make_unique<ThreadPool>(
      threads == 0 ? default_thread_count() : threads);
}

}  // namespace offload::util
