// Minimal leveled logger. Quiet by default (warnings and errors only) so
// tests and benches stay readable; examples raise the level for narration.
#pragma once

#include <sstream>
#include <string>

namespace offload::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: LogMessage(kInfo) << "x=" << x;
/// Emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() {
    if (level_ >= log_level()) detail::emit(level_, out_.str());
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace offload::util

#define OFFLOAD_LOG_DEBUG \
  ::offload::util::LogMessage(::offload::util::LogLevel::kDebug)
#define OFFLOAD_LOG_INFO \
  ::offload::util::LogMessage(::offload::util::LogLevel::kInfo)
#define OFFLOAD_LOG_WARN \
  ::offload::util::LogMessage(::offload::util::LogLevel::kWarn)
#define OFFLOAD_LOG_ERROR \
  ::offload::util::LogMessage(::offload::util::LogLevel::kError)
