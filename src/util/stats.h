// Streaming statistics accumulators used by the benchmark harnesses and the
// network bandwidth sampler.
#pragma once

#include <cstddef>
#include <vector>

namespace offload::util {

/// Welford-style running mean/variance plus min/max.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores all samples; supports exact percentiles. Fine for the sample
/// counts our experiments produce (thousands, not millions).
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  /// Append another collector's samples (partitioned benches merge their
  /// per-shard collectors in deterministic shard order).
  void merge(const Samples& other) {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  }
  std::size_t count() const { return values_.size(); }
  double mean() const;
  /// Exact percentile via linear interpolation; p in [0,100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

 private:
  std::vector<double> values_;
};

/// Exponentially weighted moving average — the runtime network-status
/// estimator (Section III.B.2 "runtime network status") uses this.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.25) : alpha_(alpha) {}
  void add(double x);
  double value() const { return value_; }
  bool empty() const { return !seeded_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

}  // namespace offload::util
