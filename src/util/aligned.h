// Minimal aligned allocator so hot value types (nn::Tensor storage, packed
// GEMM panels) land on cache-line boundaries: vector loads never split a
// line and aligned SIMD kernels can assume their base pointers. Uses the
// C++17 aligned operator new, so no platform #ifdefs.
#pragma once

#include <cstddef>
#include <new>

namespace offload::util {

template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two >= alignof(T)");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}  // NOLINT

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  bool operator==(const AlignedAllocator&) const noexcept { return true; }
  bool operator!=(const AlignedAllocator&) const noexcept { return false; }
};

/// True when `p` sits on an `alignment`-byte boundary.
inline bool is_aligned(const void* p, std::size_t alignment) {
  return (reinterpret_cast<std::uintptr_t>(p) & (alignment - 1)) == 0;
}

}  // namespace offload::util
