// ASCII table printer. Every bench binary prints its paper-figure rows with
// this so the output is uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace offload::util {

/// Column-aligned text table. First added row may be marked as a header and
/// gets an underline. Numeric-looking cells are right-aligned.
class TextTable {
 public:
  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);
  /// Render with single-space-padded, pipe-separated columns.
  std::string str() const;

 private:
  bool has_header_ = false;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace offload::util
