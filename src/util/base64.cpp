#include "src/util/base64.h"

#include <array>

namespace offload::util {
namespace {

constexpr std::string_view kAlphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> make_decode_table() {
  std::array<std::int8_t, 256> t{};
  t.fill(-1);
  for (std::size_t i = 0; i < kAlphabet.size(); ++i) {
    t[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return t;
}

const std::array<std::int8_t, 256>& decode_table() {
  static const auto t = make_decode_table();
  return t;
}

}  // namespace

std::string base64_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                      data[i + 2];
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back(kAlphabet[(v >> 6) & 0x3f]);
    out.push_back(kAlphabet[v & 0x3f]);
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back(kAlphabet[(v >> 6) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

std::string base64_encode(std::string_view data) {
  return base64_encode(as_bytes(data));
}

Bytes base64_decode(std::string_view text) {
  if (text.size() % 4 != 0) {
    throw DecodeError("base64: length not a multiple of 4");
  }
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  const auto& t = decode_table();
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    std::uint32_t v = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      char c = text[i + j];
      if (c == '=') {
        // Padding is only legal in the last two positions of the final group.
        if (i + 4 != text.size() || j < 2) {
          throw DecodeError("base64: unexpected padding");
        }
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) throw DecodeError("base64: data after padding");
      std::int8_t d = t[static_cast<unsigned char>(c)];
      if (d < 0) throw DecodeError("base64: invalid character");
      v = (v << 6) | static_cast<std::uint32_t>(d);
    }
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>(v >> 8));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(v));
  }
  return out;
}

}  // namespace offload::util
