// Byte-buffer primitives: a growable byte container plus little-endian
// binary reader/writer used by every serialization format in the project
// (model weights, snapshots, VM overlays, network messages).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace offload::util {

using Bytes = std::vector<std::uint8_t>;

/// Thrown when a BinaryReader runs past the end of its input or a
/// format-level check fails while decoding.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Little-endian append-only encoder over an owned byte vector.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  void f64(double v);

  /// Unsigned LEB128; compact encoding for sizes and counts.
  void varint(std::uint64_t v);

  /// Length-prefixed (varint) string.
  void str(std::string_view s);

  /// Length-prefixed (varint) blob.
  void blob(std::span<const std::uint8_t> data);

  /// Raw bytes, no length prefix.
  void raw(std::span<const std::uint8_t> data);
  void raw(std::string_view data);

  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buf_;
};

/// Little-endian decoder over a non-owning byte span. Throws DecodeError on
/// overrun so callers never read stale/garbage values.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32();
  double f64();

  std::uint64_t varint();
  std::string str();
  Bytes blob();

  /// Raw bytes with an explicit count.
  std::span<const std::uint8_t> raw(std::size_t n) { return take(n); }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }
  std::size_t position() const { return pos_; }

 private:
  std::span<const std::uint8_t> take(std::size_t n);

  template <typename T>
  T read_le() {
    auto s = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(s[i]) << (8 * i));
    }
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Convenience: view a string as bytes (no copy).
inline std::span<const std::uint8_t> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Convenience: copy bytes into a std::string.
inline std::string to_string(std::span<const std::uint8_t> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace offload::util
