// FNV-1a hashing for content addressing (model-file identity in the edge
// ModelStore, snapshot function-body dedup).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace offload::util {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a(std::string_view data,
                              std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a(std::span<const std::uint8_t> data,
                           std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (auto b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace offload::util
