// Per-thread scratch arena for kernel workspaces (im2col buffers, packed
// GEMM panels). A kernel opens a Frame, bump-allocates what it needs, and
// the Frame's destructor returns the space — the backing block is kept, so
// after warm-up repeated forward passes perform zero heap allocations for
// scratch. Buffers are handed out 64-byte aligned for vector loads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace offload::util {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Scoped allocation region. Frames nest (LIFO); destruction rewinds the
  /// arena to where the frame began without freeing the backing block.
  class Frame {
   public:
    explicit Frame(ScratchArena& arena)
        : arena_(arena), saved_offset_(arena.offset_) {}
    ~Frame() { arena_.rewind(saved_offset_); }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

    float* floats(std::size_t n) {
      return static_cast<float*>(arena_.allocate(n * sizeof(float)));
    }
    std::uint8_t* bytes(std::size_t n) {
      return static_cast<std::uint8_t*>(arena_.allocate(n));
    }

   private:
    ScratchArena& arena_;
    std::size_t saved_offset_;
  };

  /// Arena of the current thread. Kernels running on pool workers or on the
  /// caller each get their own, so no synchronization is needed.
  static ScratchArena& local();

  /// Number of heap blocks ever allocated by this arena. Stable across two
  /// identical forward passes ⇒ the second pass did zero scratch
  /// allocations (asserted by tests).
  std::uint64_t block_allocations() const { return block_allocations_; }
  std::size_t capacity() const;

 private:
  friend class Frame;

  void* allocate(std::size_t bytes);
  void rewind(std::size_t offset);

  // Bump allocation runs over main_; requests that do not fit while frames
  // are live go to overflow blocks (their pointers must stay valid), and
  // the next full rewind consolidates total demand back into main_ so the
  // steady state is a single block and zero allocations.
  std::vector<std::byte> main_;
  std::vector<std::vector<std::byte>> overflow_;
  std::size_t offset_ = 0;      ///< bump offset into main_ (aligned base)
  std::size_t high_water_ = 0;  ///< peak total demand seen
  std::uint64_t block_allocations_ = 0;
};

}  // namespace offload::util
