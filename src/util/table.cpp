#include "src/util/table.h"

#include <algorithm>
#include <cctype>

namespace offload::util {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != ' ' &&
               !std::isalpha(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  // Treat "12.07", "44 MB", "7.79 s" as numeric for alignment purposes.
  return digit && !std::isalpha(static_cast<unsigned char>(s.front()));
}

}  // namespace

void TextTable::header(std::vector<std::string> cells) {
  rows_.insert(rows_.begin(), std::move(cells));
  has_header_ = true;
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  if (rows_.empty()) return "";
  std::size_t cols = 0;
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::string out;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto& r = rows_[i];
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < r.size() ? r[c] : "";
      const bool right = i > 0 && looks_numeric(cell);
      std::string pad(width[c] - cell.size(), ' ');
      out += "| ";
      out += right ? pad + cell : cell + pad;
      out += ' ';
    }
    out += "|\n";
    if (i == 0 && has_header_) {
      for (std::size_t c = 0; c < cols; ++c) {
        out += "|-";
        out += std::string(width[c], '-');
        out += '-';
      }
      out += "|\n";
    }
  }
  return out;
}

}  // namespace offload::util
