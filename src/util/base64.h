// Base64 (RFC 4648) encode/decode. Used by the snapshot writer's compact
// typed-array encoding mode (Float32Array payloads embedded in snapshot
// source) and by tests.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "src/util/bytes.h"

namespace offload::util {

std::string base64_encode(std::span<const std::uint8_t> data);
std::string base64_encode(std::string_view data);

/// Throws DecodeError on malformed input (bad character, bad padding).
Bytes base64_decode(std::string_view text);

}  // namespace offload::util
