// Move-only `void()` callable with small-buffer optimisation. The sim
// event loop schedules millions of closures; std::function costs a heap
// allocation for anything bigger than ~2 pointers and another on every
// copy out of the priority queue. UniqueFunction stores typical captures
// (up to kInlineBytes) inline in the event node itself and never copies —
// moving transfers ownership, so firing an event moves the closure out of
// the arena slot without touching the heap.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace offload::util {

class UniqueFunction {
 public:
  /// Captures up to this many bytes live inline in the object; bigger
  /// callables fall back to a single heap cell. 48 bytes fits the common
  /// sim closures (a `this` pointer plus a handful of scalars / handles).
  static constexpr std::size_t kInlineBytes = 48;

  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = inline_ops<Fn>();
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = heap_ops<Fn>();
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { steal(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  void operator()() {
    assert(ops_ != nullptr && "invoking an empty UniqueFunction");
    ops_->invoke(storage_);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Destroy the held callable (and release its captures) immediately.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Invoke, then destroy, leaving the function empty — one virtual
  /// dispatch instead of two on the event-loop fire path.
  void consume() {
    assert(ops_ != nullptr && "consuming an empty UniqueFunction");
    const Ops* ops = ops_;
    ops_ = nullptr;  // cleared first: the callable may re-enter the owner
    ops->consume(storage_);
  }

  /// True when the callable lives in the inline buffer (observable in
  /// tests/benches: inline events cost zero heap allocations).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_stored; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*move)(void* dst, void* src);  ///< move-construct dst, destroy src
    void (*destroy)(void*);
    void (*consume)(void*);  ///< invoke then destroy, fused
    bool inline_stored;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static const Ops* inline_ops() {
    static constexpr Ops ops = {
        [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
        [](void* dst, void* src) {
          Fn* s = std::launder(reinterpret_cast<Fn*>(src));
          ::new (dst) Fn(std::move(*s));
          s->~Fn();
        },
        [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
        [](void* p) {
          Fn* f = std::launder(reinterpret_cast<Fn*>(p));
          (*f)();
          f->~Fn();
        },
        true};
    return &ops;
  }

  template <typename Fn>
  static const Ops* heap_ops() {
    static constexpr Ops ops = {
        [](void* p) { (**reinterpret_cast<Fn**>(p))(); },
        [](void* dst, void* src) {
          *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
        },
        [](void* p) { delete *reinterpret_cast<Fn**>(p); },
        [](void* p) {
          Fn* f = *reinterpret_cast<Fn**>(p);
          (*f)();
          delete f;
        },
        false};
    return &ops;
  }

  void steal(UniqueFunction& other) {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->move(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace offload::util
