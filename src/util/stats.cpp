#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace offload::util {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::percentile(double p) const {
  if (values_.empty()) return 0.0;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0) return sorted.front();
  if (p >= 100) return sorted.back();
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

void Ewma::add(double x) {
  if (!seeded_) {
    value_ = x;
    seeded_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

}  // namespace offload::util
