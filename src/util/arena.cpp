#include "src/util/arena.h"

#include <algorithm>

namespace offload::util {
namespace {

constexpr std::size_t kAlign = 64;

std::size_t align_up(std::size_t n) {
  return (n + (kAlign - 1)) & ~(kAlign - 1);
}

std::byte* aligned_base(std::vector<std::byte>& storage) {
  auto v = reinterpret_cast<std::uintptr_t>(storage.data());
  v = (v + (kAlign - 1)) & ~static_cast<std::uintptr_t>(kAlign - 1);
  return reinterpret_cast<std::byte*>(v);
}

}  // namespace

ScratchArena& ScratchArena::local() {
  thread_local ScratchArena arena;
  return arena;
}

std::size_t ScratchArena::capacity() const {
  std::size_t n = main_.size();
  for (const auto& b : overflow_) n += b.size();
  return n;
}

void* ScratchArena::allocate(std::size_t bytes) {
  bytes = align_up(std::max<std::size_t>(bytes, 1));
  const std::size_t usable = main_.size() < kAlign ? 0 : main_.size() - kAlign;
  if (offset_ + bytes > usable) {
    if (offset_ == 0) {
      // No live pointers into main_ yet — safe to regrow it in place.
      const std::size_t want =
          std::max({bytes, main_.size() * 2, std::size_t{64} * 1024});
      main_.assign(want + kAlign, std::byte{0});
      ++block_allocations_;
    } else {
      // Frames hold pointers into main_; satisfy this request from a
      // dedicated overflow block instead.
      overflow_.emplace_back(bytes + kAlign);
      ++block_allocations_;
      high_water_ = std::max(high_water_, offset_ + bytes);
      return aligned_base(overflow_.back());
    }
  }
  void* p = aligned_base(main_) + offset_;
  offset_ += bytes;
  high_water_ = std::max(high_water_, offset_);
  return p;
}

void ScratchArena::rewind(std::size_t offset) {
  offset_ = offset;
  if (offset_ == 0 && !overflow_.empty()) {
    // Consolidate: one block sized for the peak demand, so the next frame
    // sequence allocates nothing.
    std::size_t total = high_water_;
    for (const auto& b : overflow_) total += b.size();
    overflow_.clear();
    main_.assign(align_up(total) + kAlign, std::byte{0});
    ++block_allocations_;
  }
}

}  // namespace offload::util
