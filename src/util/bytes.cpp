#include "src/util/bytes.h"

#include <bit>

namespace offload::util {

void BinaryWriter::f32(float v) {
  static_assert(sizeof(float) == 4);
  u32(std::bit_cast<std::uint32_t>(v));
}

void BinaryWriter::f64(double v) {
  static_assert(sizeof(double) == 8);
  u64(std::bit_cast<std::uint64_t>(v));
}

void BinaryWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void BinaryWriter::str(std::string_view s) {
  varint(s.size());
  raw(s);
}

void BinaryWriter::blob(std::span<const std::uint8_t> data) {
  varint(data.size());
  raw(data);
}

void BinaryWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void BinaryWriter::raw(std::string_view data) { raw(as_bytes(data)); }

float BinaryReader::f32() { return std::bit_cast<float>(u32()); }

double BinaryReader::f64() { return std::bit_cast<double>(u64()); }

std::uint64_t BinaryReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (shift >= 64) throw DecodeError("varint too long");
    std::uint8_t b = u8();
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

std::string BinaryReader::str() {
  auto n = varint();
  auto s = take(static_cast<std::size_t>(n));
  return to_string(s);
}

Bytes BinaryReader::blob() {
  auto n = varint();
  auto s = take(static_cast<std::size_t>(n));
  return {s.begin(), s.end()};
}

std::span<const std::uint8_t> BinaryReader::take(std::size_t n) {
  if (remaining() < n) {
    throw DecodeError("BinaryReader overrun: need " + std::to_string(n) +
                      " bytes, have " + std::to_string(remaining()));
  }
  auto s = data_.subspan(pos_, n);
  pos_ += n;
  return s;
}

}  // namespace offload::util
