#include "src/util/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace offload::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string format_bytes(double bytes) {
  const char* unit = "B";
  double v = bytes;
  if (v >= 1024.0 * 1024.0 * 1024.0) {
    v /= 1024.0 * 1024.0 * 1024.0;
    unit = "GB";
  } else if (v >= 1024.0 * 1024.0) {
    v /= 1024.0 * 1024.0;
    unit = "MB";
  } else if (v >= 1024.0) {
    v /= 1024.0;
    unit = "KB";
  }
  char buf[64];
  if (v == std::floor(v) && v < 1000) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, unit);
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  }
  return buf;
}

}  // namespace offload::util
