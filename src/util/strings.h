// Small string helpers shared across the parser, model description format
// and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace offload::util {

std::vector<std::string> split(std::string_view s, char delim);
/// Split on whitespace runs, dropping empty tokens.
std::vector<std::string> split_ws(std::string_view s);
std::string_view trim(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string to_lower(std::string_view s);

/// "1.50 MB", "312.0 KB", "87 B" — human-readable sizes for reports.
std::string format_bytes(double bytes);
/// "1.234 s", "56.7 ms" — human-readable durations (input in seconds).
std::string format_seconds(double seconds);
/// Fixed-point with the given number of decimals.
std::string format_fixed(double v, int decimals);

}  // namespace offload::util
