// CRC-32 (IEEE 802.3 polynomial) used for integrity checks on snapshots,
// model files and VM overlay chunks.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace offload::util {

/// Incremental CRC-32 accumulator.
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);
  std::uint32_t value() const { return ~state_; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// One-shot CRC-32 of a byte span.
std::uint32_t crc32(std::span<const std::uint8_t> data);
std::uint32_t crc32(std::string_view data);

}  // namespace offload::util
