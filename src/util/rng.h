// Deterministic PCG32 random number generator. All stochastic pieces of the
// project (synthetic weights, workload generators, network jitter, property
// tests) draw from this so every experiment is reproducible bit-for-bit.
#pragma once

#include <cmath>
#include <cstdint>

namespace offload::util {

/// PCG-XSH-RR 64/32 (O'Neill). Small, fast, and statistically solid; we
/// deliberately avoid std::mt19937 so streams are identical across
/// standard-library implementations.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1) | 1;
    next_u32();
    state_ += seed;
    next_u32();
  }

  std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    auto rot = static_cast<std::uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform in [0, bound). Uses rejection sampling to avoid modulo bias.
  std::uint32_t next_below(std::uint32_t bound) {
    if (bound == 0) return 0;
    std::uint32_t threshold = -bound % bound;
    while (true) {
      std::uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [0, bound) for 64-bit bounds, rejection-sampled like
  /// next_below. Bounds that fit in 32 bits delegate to next_below and
  /// consume the identical stream, so callers can widen without
  /// perturbing existing seeded runs.
  std::uint64_t next_below64(std::uint64_t bound) {
    if (bound <= 0xffffffffULL) {
      return next_below(static_cast<std::uint32_t>(bound));
    }
    std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
      std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// 53-bit uniform in [0, 1).
  double canonical() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * canonical(); }

  /// Standard normal via Box–Muller.
  double gaussian() {
    double u1 = canonical();
    double u2 = canonical();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(6.283185307179586 * u2);
  }

  bool chance(double p) { return canonical() < p; }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace offload::util
