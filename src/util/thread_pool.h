// Fixed-size thread pool with a parallel_for primitive — the execution
// substrate for the DNN kernels and the block-parallel compressor. Worker
// count comes from the OFFLOAD_THREADS environment variable (default:
// hardware_concurrency). A pool of size 1 never spawns threads and runs
// every parallel_for inline on the caller, which makes the sequential
// fallback *exact*: kernels write disjoint output ranges and compute each
// element in a fixed order, so results are bit-identical at any pool size.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace offload::util {

/// Non-owning reference to a callable `void(int64 lo, int64 hi)`. Avoids
/// std::function's possible heap allocation so steady-state kernel launches
/// stay allocation-free.
class RangeFn {
 public:
  RangeFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, RangeFn>)
  RangeFn(F& fn)  // NOLINT: implicit by design
      : obj_(const_cast<void*>(static_cast<const void*>(&fn))),
        call_([](void* o, std::int64_t lo, std::int64_t hi) {
          (*static_cast<F*>(o))(lo, hi);
        }) {}

  void operator()(std::int64_t lo, std::int64_t hi) const {
    call_(obj_, lo, hi);
  }

 private:
  void* obj_ = nullptr;
  void (*call_)(void*, std::int64_t, std::int64_t) = nullptr;
};

class ThreadPool {
 public:
  /// `threads` is the total degree of parallelism including the calling
  /// thread; 0 means hardware_concurrency. A pool of size n spawns n-1
  /// workers.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }

  /// Partition [begin, end) into chunks of at least `grain` indices and run
  /// `fn(lo, hi)` over them, caller participating. Blocks until every chunk
  /// finished. Concurrent calls from different threads serialize; a nested
  /// call from inside a running chunk executes inline (no deadlock). The
  /// first exception thrown by `fn` is rethrown on the caller.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    RangeFn fn);

 private:
  void worker_loop();
  void run_chunks();

  std::vector<std::thread> workers_;

  std::mutex job_mutex_;  ///< serializes whole jobs

  std::mutex m_;  ///< guards job state handoff below
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::size_t active_ = 0;  ///< workers currently inside run_chunks

  // Current job (valid while a parallel_for is in flight).
  RangeFn fn_;
  std::int64_t job_begin_ = 0;
  std::int64_t job_end_ = 0;
  std::int64_t chunk_size_ = 1;
  std::int64_t chunk_count_ = 0;
  std::atomic<std::int64_t> next_chunk_{0};
  std::atomic<std::int64_t> completed_{0};
  std::exception_ptr error_;
};

/// Thread count the default pool uses: OFFLOAD_THREADS if set (>= 1),
/// otherwise hardware_concurrency (>= 1).
std::size_t default_thread_count();

/// Process-wide pool, created lazily with default_thread_count() workers.
ThreadPool& default_pool();

/// Replace the default pool with one of `threads` workers (0 → re-read the
/// environment). Intended for tests and benchmarks that sweep thread
/// counts; do not call while kernels are executing on other threads.
void set_default_pool_threads(std::size_t threads);

/// parallel_for on the default pool.
template <typename F>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  F&& fn) {
  default_pool().parallel_for(begin, end, grain, RangeFn(fn));
}

}  // namespace offload::util
