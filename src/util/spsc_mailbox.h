// Single-producer single-consumer mailbox: an unbounded chunked queue
// with wait-free push on the producer side and batch drain on the
// consumer side. Built for the partitioned simulation's cross-partition
// channels (src/sim/partition.h): during a round exactly one worker
// thread appends posts, and the consumer drains only after a barrier —
// but the queue is a real SPSC structure (release/acquire publication,
// no locks), so a drain that races a push is still well-defined: it
// simply observes a prefix of the pushed elements.
//
// Chunks are cache-line aligned and never freed while the mailbox lives
// (the consumer recycles fully-drained chunks back to the producer
// through an atomic free hand-off), so steady-state traffic allocates
// nothing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace offload::util {

template <typename T>
class SpscMailbox {
 public:
  static constexpr std::size_t kChunkCapacity = 128;

  SpscMailbox() {
    head_ = tail_ = new Chunk();
  }
  SpscMailbox(const SpscMailbox&) = delete;
  SpscMailbox& operator=(const SpscMailbox&) = delete;

  ~SpscMailbox() {
    // Destroy unconsumed elements, then every chunk (live list + free
    // hand-off). Destruction is single-threaded by contract.
    Chunk* c = head_;
    std::size_t read = read_;
    while (c != nullptr) {
      std::size_t count = c->count.load(std::memory_order_acquire);
      for (std::size_t i = read; i < count; ++i) c->slot(i)->~T();
      Chunk* next = c->next.load(std::memory_order_acquire);
      delete c;
      c = next;
      read = 0;
    }
    delete spare_.load(std::memory_order_acquire);
  }

  /// Producer side. Wait-free except when a fresh chunk must be
  /// allocated (amortized over kChunkCapacity pushes, and only when the
  /// recycle hand-off is empty).
  void push(T value) {
    Chunk* t = tail_;
    std::size_t n = t->count.load(std::memory_order_relaxed);
    if (n == kChunkCapacity) {
      Chunk* fresh = spare_.exchange(nullptr, std::memory_order_acquire);
      if (fresh == nullptr) fresh = new Chunk();
      fresh->count.store(0, std::memory_order_relaxed);
      fresh->next.store(nullptr, std::memory_order_relaxed);
      // Publish the link before the producer-visible tail moves; the
      // consumer follows `next` only after exhausting this chunk.
      t->next.store(fresh, std::memory_order_release);
      tail_ = fresh;
      t = fresh;
      n = 0;
    }
    ::new (t->raw(n)) T(std::move(value));
    t->count.store(n + 1, std::memory_order_release);
    produced_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Consumer side: move every element visible at this instant into
  /// `out` (a callable taking T&&), in push order. Returns the number
  /// drained. Fully-consumed chunks are recycled to the producer.
  template <typename Sink>
  std::size_t drain(Sink&& out) {
    std::size_t drained = 0;
    while (true) {
      Chunk* c = head_;
      std::size_t count = c->count.load(std::memory_order_acquire);
      while (read_ < count) {
        T* slot = c->slot(read_);
        out(std::move(*slot));
        slot->~T();
        ++read_;
        ++drained;
      }
      if (read_ < kChunkCapacity) break;  // producer still filling here
      Chunk* next = c->next.load(std::memory_order_acquire);
      if (next == nullptr) break;  // full chunk, successor not linked yet
      head_ = next;
      read_ = 0;
      // Hand the drained chunk back to the producer; if a spare is
      // already parked, this one is surplus.
      Chunk* prev = spare_.exchange(c, std::memory_order_release);
      delete prev;
    }
    consumed_ += drained;
    return drained;
  }

  /// Producer-side push count minus consumer-side drain count. Exact
  /// only when producer and consumer are quiescent (e.g. at a barrier).
  std::size_t in_flight() const {
    return produced_.load(std::memory_order_relaxed) - consumed_;
  }

 private:
  struct alignas(64) Chunk {
    std::atomic<std::size_t> count{0};
    std::atomic<Chunk*> next{nullptr};
    alignas(alignof(T)) unsigned char storage[sizeof(T) * kChunkCapacity];
    void* raw(std::size_t i) { return storage + i * sizeof(T); }
    T* slot(std::size_t i) {
      return std::launder(reinterpret_cast<T*>(storage + i * sizeof(T)));
    }
  };

  Chunk* head_;            ///< consumer cursor chunk
  std::size_t read_ = 0;   ///< consumed elements within head_
  Chunk* tail_;            ///< producer cursor chunk
  std::atomic<Chunk*> spare_{nullptr};  ///< drained-chunk recycle hand-off
  std::atomic<std::uint64_t> produced_{0};
  std::uint64_t consumed_ = 0;
};

}  // namespace offload::util
