#include "src/fleet/fleet.h"

#include <limits>
#include <stdexcept>
#include <utility>

namespace offload::fleet {

namespace {
constexpr std::size_t kIdle = std::numeric_limits<std::size_t>::max();
}  // namespace

EdgeFleet::EdgeFleet(sim::Simulation& sim, FleetConfig config)
    : sim_(sim), config_(std::move(config)) {
  if (config_.size == 0) {
    throw std::invalid_argument("EdgeFleet: size must be at least 1");
  }
  balancer_ = std::make_unique<Balancer>(config_.balancer, config_.size);
  outstanding_.assign(config_.size, 0);
}

EdgeFleet::~EdgeFleet() = default;

std::string EdgeFleet::server_name(std::size_t k) const {
  // A fleet of one keeps the historical single-server name, so channel
  // endpoint names, obs resources, and therefore every golden trace stay
  // byte-identical to the pre-fleet runtime.
  if (k >= config_.size) {
    const std::size_t spare = k - config_.size;
    // Degenerate fleet: the historical secondary-server name ("server-b",
    // then "-c", …) so the pre-fleet failover goldens stay byte-identical.
    if (config_.size == 1) {
      return "server-" + std::string(1, static_cast<char>('b' + spare));
    }
    return "fleet/spare" + std::to_string(spare);
  }
  if (config_.size == 1) return "server";
  return "fleet/server" + std::to_string(k);
}

EdgeFleet::ClientLink EdgeFleet::connect_client(const std::string& name) {
  ClientLink link;
  link.id = charged_.size();
  charged_.push_back(kIdle);
  const bool first = servers_.empty();
  for (std::size_t k = 0; k < config_.size + config_.spares; ++k) {
    auto channel =
        net::Channel::make(sim_, config_.channel, name, server_name(k));
    if (config_.obs) channel->set_obs(config_.obs);
    if (first) {
      edge::EdgeServerConfig server_config = config_.server;
      server_config.obs = config_.obs;
      // A real fleet namespaces each server's metrics/spans; the
      // degenerate fleet keeps the caller's obs_name untouched — except
      // for its spares, which take the historical "-b" suffix.
      if (config_.size > 1) {
        server_config.obs_name = server_name(k);
      } else if (k >= config_.size) {
        server_config.obs_name +=
            "-" + std::string(1, static_cast<char>('b' + (k - config_.size)));
      }
      servers_.push_back(std::make_unique<edge::EdgeServer>(
          sim_, channel->b(), std::move(server_config)));
    } else {
      servers_[k]->attach(channel->b());
    }
    link.endpoints.push_back(&channel->a());
    link.channels.push_back(channel.get());
    channels_.push_back(std::move(channel));
  }
  return link;
}

void EdgeFleet::configure_client(edge::ClientConfig& config,
                                 const ClientLink& link,
                                 const std::string& session) {
  config.dedup_presend = config_.dedup;
  if (config_.size == 1) return;  // degenerate: no routing hook, no markers
  const std::size_t id = link.id;
  config.route = [this, id, session](std::uint64_t) {
    return route_for(id, session);
  };
  config.on_inference_done = [this, id](std::size_t, bool) {
    complete_for(id);
  };
}

std::vector<std::size_t> EdgeFleet::route_for(std::size_t client,
                                              const std::string& session) {
  std::vector<std::size_t> order = balancer_->route(session, outstanding_);
  // Spares trail every candidate list: reached only after the balanced
  // servers are exhausted, exactly like the historical secondary server.
  for (std::size_t j = 0; j < config_.spares; ++j) {
    order.push_back(config_.size + j);
  }
  const std::size_t primary = order.empty() ? 0 : order.front();
  // Charge the primary for the whole inference. Completion (wherever the
  // inference actually finished) releases the same charge, so the
  // outstanding gauges never drift even across failovers.
  if (charged_[client] != kIdle) complete_for(client);
  charged_[client] = primary;
  if (primary < outstanding_.size()) ++outstanding_[primary];
  if (config_.obs) {
    config_.obs->trace.marker(0, 0, "route:server" + std::to_string(primary),
                              "fleet/balancer", sim_.now());
    config_.obs->metrics.add("fleet.routed.server" + std::to_string(primary));
    config_.obs->metrics.set_gauge(
        "fleet.outstanding.server" + std::to_string(primary),
        outstanding_[primary]);
  }
  return order;
}

void EdgeFleet::complete_for(std::size_t client) {
  const std::size_t k = charged_[client];
  charged_[client] = kIdle;
  if (k >= outstanding_.size() || outstanding_[k] == 0) return;
  --outstanding_[k];
  if (config_.obs) {
    config_.obs->metrics.set_gauge(
        "fleet.outstanding.server" + std::to_string(k), outstanding_[k]);
  }
}

std::uint64_t EdgeFleet::dedup_bytes_saved() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_) total += s->stats().dedup_bytes_saved;
  return total;
}

}  // namespace offload::fleet
