// An edge-server fleet: N edge::EdgeServers (each client gets a dedicated
// shaped channel to every server), a Balancer routing each inference to a
// server, per-server outstanding accounting, and the content-addressed
// model pre-send flag wired into client configs. The degenerate fleet —
// size 1, "hash" policy, dedup off — is bit-for-bit identical to the
// single-server runtime: same endpoint names, same obs resources, same
// event order.
//
// Usage (the OffloadingRuntime does exactly this):
//   fleet::EdgeFleet fleet(sim, fleet_config);
//   auto link = fleet.connect_client("client");
//   fleet.configure_client(client_config, link, "client");
//   edge::ClientDevice client(sim, *link.endpoints[0], client_config, app);
//   for (std::size_t k = 1; k < link.endpoints.size(); ++k)
//     client.attach_server(*link.endpoints[k]);
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/edge/client_device.h"
#include "src/edge/edge_server.h"
#include "src/fleet/balancer.h"
#include "src/net/channel.h"
#include "src/obs/obs.h"
#include "src/sim/simulation.h"

namespace offload::fleet {

struct FleetConfig {
  /// Number of balancer-routed edge servers. 1 reproduces the
  /// single-server runtime.
  std::size_t size = 1;
  /// Extra standby servers appended after the balanced set. Spares are
  /// never balancer-routed; they sit at the tail of every candidate list,
  /// so clients only reach them by exhausting the routed servers
  /// (failover). A fleet of one with one spare reproduces the historical
  /// client/"server-b" secondary-server wiring bit-for-bit.
  std::size_t spares = 0;
  BalancerConfig balancer;
  /// Turn on content-addressed pre-send for every connected client.
  bool dedup = false;
  /// Link shape used for every client↔server channel.
  net::ChannelConfig channel;
  /// Template for every server (obs_name is overridden per server).
  edge::EdgeServerConfig server;
  /// Shared observability sink (servers, channels, routing markers).
  obs::Obs* obs = nullptr;
};

class EdgeFleet {
 public:
  EdgeFleet(sim::Simulation& sim, FleetConfig config);
  ~EdgeFleet();

  /// One connected client's view of the fleet: an endpoint (and channel)
  /// per server, in fleet order. Index k talks to server k, so the vector
  /// doubles as the ClientDevice attach order.
  struct ClientLink {
    std::size_t id = 0;
    std::vector<net::Endpoint*> endpoints;
    std::vector<net::Channel*> channels;
  };

  /// Create this client's channels (one per server). The first client's
  /// channels also bring the servers up — server k is constructed on its
  /// b-side endpoint; later clients attach.
  ClientLink connect_client(const std::string& name);

  /// Wire fleet policy into a client config: the balancer routing hook,
  /// completion accounting, and the dedup pre-send flag. `session` is the
  /// balancer's session key (hash policy pins it to a server). With a
  /// fleet of one the config is left untouched except for dedup — the
  /// degenerate path stays byte-identical to the plain runtime.
  void configure_client(edge::ClientConfig& config, const ClientLink& link,
                        const std::string& session);

  std::size_t size() const { return config_.size; }
  std::size_t spares() const { return config_.spares; }
  edge::EdgeServer& server(std::size_t k) { return *servers_[k]; }
  std::size_t servers_up() const { return servers_.size(); }
  Balancer& balancer() { return *balancer_; }
  /// In-flight inferences per server (fleet accounting, not the server's
  /// own queue — that is the scheduler's queue_depth gauge).
  const std::vector<int>& outstanding() const { return outstanding_; }
  /// Outstanding count for one server (0 for out-of-range indices, so the
  /// partition controller can poll candidates it has not routed to yet).
  int outstanding_for(std::size_t k) const {
    return k < outstanding_.size() ? outstanding_[k] : 0;
  }
  /// Sum of every server's dedup_bytes_saved.
  std::uint64_t dedup_bytes_saved() const;
  /// "server" for a fleet of one (degenerate naming), else
  /// "fleet/server<k>" — used for channel endpoint names and obs
  /// resources alike. Spares (k >= size) are "server-b", "server-c", …
  /// for a fleet of one (the historical secondary-server names) and
  /// "fleet/spare<j>" otherwise.
  std::string server_name(std::size_t k) const;

 private:
  std::vector<std::size_t> route_for(std::size_t client,
                                     const std::string& session);
  void complete_for(std::size_t client);

  sim::Simulation& sim_;
  FleetConfig config_;
  std::unique_ptr<Balancer> balancer_;
  std::vector<std::unique_ptr<edge::EdgeServer>> servers_;
  std::vector<std::unique_ptr<net::Channel>> channels_;
  std::vector<int> outstanding_;
  /// Per-client: the server charged for its in-flight inference (SIZE_MAX
  /// when idle). Completion decrements the same server the route charged,
  /// even if a failover finished the inference elsewhere.
  std::vector<std::size_t> charged_;
};

}  // namespace offload::fleet
