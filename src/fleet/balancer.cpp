#include "src/fleet/balancer.h"

#include <algorithm>
#include <stdexcept>

#include "src/util/hash.h"

namespace offload::fleet {

namespace {
/// Ring positions need uniform dispersion across the full 64-bit space,
/// which raw FNV-1a of short, similar strings ("server-0#1", "session-7")
/// does not deliver — arcs end up lopsided. A splitmix64-style finalizer
/// on top fixes the avalanche without changing the identity semantics.
std::uint64_t mix(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

std::uint64_t ring_point(std::string_view key) {
  return mix(util::fnv1a(key));
}
}  // namespace

Balancer::Balancer(BalancerConfig config, std::size_t num_servers)
    : config_(std::move(config)), rng_(config_.seed, 0xba1a9ceull) {
  if (num_servers == 0) {
    throw std::invalid_argument("Balancer: empty fleet");
  }
  if (config_.policy != "hash" && config_.policy != "least_outstanding" &&
      config_.policy != "p2c") {
    throw std::invalid_argument("Balancer: unknown policy '" +
                                config_.policy + "'");
  }
  if (config_.virtual_nodes < 1) config_.virtual_nodes = 1;
  for (std::size_t id = 0; id < num_servers; ++id) servers_.push_back(id);
  rebuild_ring();
}

void Balancer::add_server(std::size_t id) {
  auto it = std::lower_bound(servers_.begin(), servers_.end(), id);
  if (it != servers_.end() && *it == id) return;
  servers_.insert(it, id);
  rebuild_ring();
}

void Balancer::remove_server(std::size_t id) {
  auto it = std::lower_bound(servers_.begin(), servers_.end(), id);
  if (it == servers_.end() || *it != id) return;
  if (servers_.size() == 1) {
    throw std::logic_error("Balancer: cannot remove the last server");
  }
  servers_.erase(it);
  rebuild_ring();
}

void Balancer::rebuild_ring() {
  ring_.clear();
  for (std::size_t id : servers_) {
    for (int v = 0; v < config_.virtual_nodes; ++v) {
      // A server's ring points depend only on its own id, so membership
      // changes leave every other server's points untouched — the
      // consistent-hashing remap guarantee.
      std::string key =
          "server-" + std::to_string(id) + "#" + std::to_string(v);
      ring_.emplace_back(ring_point(key), id);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int Balancer::load(std::size_t id, const std::vector<int>& outstanding) const {
  return id < outstanding.size() ? outstanding[id] : 0;
}

std::vector<std::size_t> Balancer::route(std::string_view session,
                                         const std::vector<int>& outstanding) {
  if (config_.policy == "hash") return route_hash(session);
  if (config_.policy == "least_outstanding") return route_least(outstanding);
  return route_p2c(outstanding);
}

std::vector<std::size_t> Balancer::route_hash(std::string_view session) const {
  std::vector<std::size_t> out;
  const std::uint64_t point = ring_point(session);
  // First ring entry at or after the session's point (wrapping), then walk
  // clockwise collecting each distinct server once: the natural failover
  // order of consistent hashing.
  auto start = std::lower_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(point, std::size_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  const std::size_t n = ring_.size();
  std::size_t begin = start == ring_.end()
                          ? 0
                          : static_cast<std::size_t>(start - ring_.begin());
  for (std::size_t i = 0; i < n && out.size() < servers_.size(); ++i) {
    std::size_t id = ring_[(begin + i) % n].second;
    if (std::find(out.begin(), out.end(), id) == out.end()) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<std::size_t> Balancer::route_least(
    const std::vector<int>& outstanding) const {
  std::vector<std::size_t> out = servers_;
  std::stable_sort(out.begin(), out.end(),
                   [&](std::size_t a, std::size_t b) {
                     int la = load(a, outstanding);
                     int lb = load(b, outstanding);
                     if (la != lb) return la < lb;
                     return a < b;
                   });
  return out;
}

std::vector<std::size_t> Balancer::route_p2c(
    const std::vector<int>& outstanding) {
  const std::size_t n = servers_.size();
  if (n == 1) return servers_;
  // Two distinct draws from the seeded stream (always exactly two, so the
  // stream position — and therefore every later decision — is independent
  // of the load values).
  std::uint32_t i = rng_.next_below(static_cast<std::uint32_t>(n));
  std::uint32_t j = rng_.next_below(static_cast<std::uint32_t>(n - 1));
  if (j >= i) ++j;
  std::size_t a = servers_[i];
  std::size_t b = servers_[j];
  // Strictly less loaded wins; an exact tie keeps the first draw (the
  // classic p2c rule) — deterministic, since the draws are, and it spreads
  // an idle fleet instead of collapsing onto the lowest id.
  if (load(b, outstanding) < load(a, outstanding)) std::swap(a, b);
  std::vector<std::size_t> out{a, b};
  // Remaining servers by (load, id): sensible deep-failover order.
  for (std::size_t id : route_least(outstanding)) {
    if (id != a && id != b) out.push_back(id);
  }
  return out;
}

}  // namespace offload::fleet
