// Deterministic load-balancing policies for an edge-server fleet. A
// Balancer turns a session key plus the fleet's current per-server
// outstanding counts into an ordered candidate list: index 0 is the
// primary, the rest are failover targets in preference order (what
// ClientDevice::attach_server consumes).
//
// Three policies, all bit-for-bit reproducible:
//   "hash"              — consistent hashing over virtual nodes: a session
//                         sticks to one server, and adding/removing a
//                         server remaps only ~1/N of the sessions.
//   "least_outstanding" — pick the server with the fewest in-flight
//                         requests; ties break to the lower id.
//   "p2c"               — power-of-two-choices: two draws from a seeded
//                         PCG32 stream, keep the less loaded (classic
//                         log-log-n max-load balance at a fraction of the
//                         coordination cost); a load tie keeps the first
//                         draw, so an idle fleet still spreads.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/rng.h"

namespace offload::fleet {

struct BalancerConfig {
  /// "hash" | "least_outstanding" | "p2c".
  std::string policy = "hash";
  /// Seed of the p2c draw stream (unused by the other policies).
  std::uint64_t seed = 1;
  /// Ring points per server for consistent hashing.
  int virtual_nodes = 64;
};

class Balancer {
 public:
  /// Servers get ids 0..num_servers-1. Throws std::invalid_argument on an
  /// unknown policy name or an empty fleet.
  Balancer(BalancerConfig config, std::size_t num_servers);

  /// Bring a (new or previously removed) server id into rotation.
  void add_server(std::size_t id);
  /// Take a server out of rotation (crash/drain). With consistent
  /// hashing, only sessions it owned remap.
  void remove_server(std::size_t id);
  /// Live server ids, ascending.
  const std::vector<std::size_t>& servers() const { return servers_; }

  /// Ordered candidate list for `session` (primary first, every live
  /// server exactly once). `outstanding` is indexed by server id; ids
  /// beyond its size count as idle. The p2c policy consumes one pair of
  /// draws from its stream per call, so two balancers with the same seed
  /// and call sequence route identically.
  std::vector<std::size_t> route(std::string_view session,
                                 const std::vector<int>& outstanding);

 private:
  int load(std::size_t id, const std::vector<int>& outstanding) const;
  void rebuild_ring();
  std::vector<std::size_t> route_hash(std::string_view session) const;
  std::vector<std::size_t> route_least(
      const std::vector<int>& outstanding) const;
  std::vector<std::size_t> route_p2c(const std::vector<int>& outstanding);

  BalancerConfig config_;
  std::vector<std::size_t> servers_;  ///< live ids, ascending
  /// Consistent-hash ring: (point, server id), sorted by point then id.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
  util::Pcg32 rng_;
};

}  // namespace offload::fleet
