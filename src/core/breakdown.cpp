#include "src/core/breakdown.h"

namespace offload::core {

const std::vector<std::string>& InferenceBreakdown::labels() {
  static const std::vector<std::string> kLabels = {
      "DNN Execution (C)",     "Snapshot Capture (C)", "Transmission (C->S)",
      "Snapshot Restore (S)",  "DNN Execution (S)",    "Snapshot Capture (S)",
      "Queue Wait (S)",        "Batch Formation (S)",  "Transmission (S->C)",
      "Snapshot Restore (C)",  "Retry Backoff",        "Crash Recovery",
      "Other",
  };
  return kLabels;
}

std::vector<double> InferenceBreakdown::values() const {
  return {dnn_execution_client,  snapshot_capture_client, transmission_up,
          snapshot_restore_server, dnn_execution_server,
          snapshot_capture_server, server_queue_wait, server_batch_wait,
          transmission_down, snapshot_restore_client, retry_backoff,
          crash_recovery, other};
}

}  // namespace offload::core
