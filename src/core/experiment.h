// Experiment presets: the five Fig. 6 configurations for each benchmark
// app, plus cut-point labeling for the Fig. 8 partial-inference sweep.
#pragma once

#include <string>
#include <vector>

#include "src/core/app.h"
#include "src/core/runtime.h"

namespace offload::core {

enum class Scenario {
  kClientOnly,       ///< app runs on the client only
  kServerOnly,       ///< app runs on the server only
  kOffloadBeforeAck, ///< snapshot offload while the model is still uploading
  kOffloadAfterAck,  ///< snapshot offload with the model pre-sent
  kOffloadPartial,   ///< partial inference (rear offload) after ACK
};

const char* scenario_name(Scenario scenario);

struct ScenarioOptions {
  double bandwidth_bps = 30e6;  ///< the paper's netem setting
  sim::SimTime latency = sim::SimTime::millis(1);
  /// Partition point for kOffloadPartial; SIZE_MAX selects the paper's
  /// choice, the first pooling layer (Section IV.B).
  std::size_t partial_cut = SIZE_MAX;
  std::uint64_t image_seed = 3;
};

/// Run one benchmark app under one configuration end to end.
RunResult run_scenario(const nn::BenchmarkModel& model, Scenario scenario,
                       const ScenarioOptions& options = {});

/// A labeled offloading point for the Fig. 8 x-axis: input, 1st_conv,
/// 1st_pool, 2nd_conv, ... Only input/conv/pool cut points are labeled
/// (the paper's candidates).
struct CutLabel {
  std::size_t cut;
  std::string label;
  nn::LayerKind kind;
};
std::vector<CutLabel> labeled_cut_points(const nn::Network& net);

/// The paper's chosen offloading point: the first pooling layer (max pool
/// preferred, then average pool). Networks with no pooling cut point fall
/// back to the first conv cut point, and failing that to the first cut
/// point (node 0 / full offload for a multi-node net; for a single-node
/// net the only cut point is the final node, i.e. fully local). The
/// fallback chain is pinned by partition_test so the controller can
/// iterate candidates on any model without special cases.
std::size_t first_pool_cut(const nn::Network& net);

/// A click time safely after the model ACK for this app/config.
sim::SimTime after_ack_click_time(const nn::Network& net, bool rear_only,
                                  std::size_t cut, double bandwidth_bps);

}  // namespace offload::core
