#include "src/core/app.h"

namespace offload::core {

std::string full_inference_app_source(const std::string& model_name) {
  // Keep in sync with the sketch in the paper's Fig. 2. The image-loading
  // handler runs at app start (the harness clicks #load before #btn).
  return
      "var model = loadModel(\"" + model_name + "\");\n"
      "var canvas = document.createElement('canvas');\n"
      "canvas.id = 'canvas';\n"
      "document.body.appendChild(canvas);\n"
      "var loadBtn = document.createElement('button');\n"
      "loadBtn.id = 'load';\n"
      "loadBtn.textContent = 'Load image';\n"
      "document.body.appendChild(loadBtn);\n"
      "var btn = document.createElement('button');\n"
      "btn.id = 'btn';\n"
      "btn.textContent = 'Inference';\n"
      "document.body.appendChild(btn);\n"
      "var result = document.createElement('div');\n"
      "result.id = 'result';\n"
      "document.body.appendChild(result);\n"
      "loadBtn.addEventListener('click', function() {\n"
      "  canvas.setImageData(loadImage('input'));\n"
      "});\n"
      "btn.addEventListener('click', function() {\n"
      "  var img = canvas.getImageData();\n"
      "  var scores = model.inference(img);\n"
      "  var best = 0;\n"
      "  for (var i = 1; i < scores.length; i++) {\n"
      "    if (scores[i] > scores[best]) { best = i; }\n"
      "  }\n"
      "  result.textContent = 'label ' + best + ' score ' + scores[best];\n"
      "});\n"
      "loadBtn.dispatchEvent('click');\n";
}

std::string partial_inference_app_source(const std::string& model_name) {
  // The Fig. 5 app. `image` is local to front(), and no canvas keeps the
  // pixels, so the migrated state carries only the denatured feature.
  return
      "var model = loadModel(\"" + model_name + "\");\n"
      "var btn = document.createElement('button');\n"
      "btn.id = 'btn';\n"
      "btn.textContent = 'Inference';\n"
      "document.body.appendChild(btn);\n"
      "var result = document.createElement('div');\n"
      "result.id = 'result';\n"
      "document.body.appendChild(result);\n"
      "var feature = null;\n"
      "function front() {\n"
      "  var image = loadImage('input');\n"
      "  feature = model.inference_front(image);\n"
      "  btn.dispatchEvent('front_complete');\n"
      "}\n"
      "function rear() {\n"
      "  var scores = model.inference_rear(feature);\n"
      "  feature = null;\n"
      "  var best = 0;\n"
      "  for (var i = 1; i < scores.length; i++) {\n"
      "    if (scores[i] > scores[best]) { best = i; }\n"
      "  }\n"
      "  result.textContent = 'label ' + best + ' score ' + scores[best];\n"
      "}\n"
      "btn.addEventListener('click', front);\n"
      "btn.addEventListener('front_complete', rear);\n";
}

nn::Tensor make_input_image(std::int64_t hw, std::uint64_t seed) {
  // Canvas pixel data: integer byte values (what ImageData holds). These
  // serialize compactly in snapshots (3-4 text chars per pixel), exactly
  // like the paper's migrated input images.
  util::Pcg32 rng(seed, 0x696d616765ULL);
  nn::Tensor img(nn::Shape{3, hw, hw});
  for (auto& v : img.data()) {
    v = static_cast<float>(rng.next_below(256));
  }
  return img;
}

edge::AppBundle make_benchmark_app(const nn::BenchmarkModel& model,
                                   bool partial, std::uint64_t image_seed) {
  edge::AppBundle bundle;
  bundle.name = partial ? std::string(model.app_name) + "-partial"
                        : std::string(model.app_name);
  // The app loads the model under its network name.
  std::shared_ptr<nn::Network> net = model.build(model.seed);
  bundle.source = partial ? partial_inference_app_source(net->name())
                          : full_inference_app_source(net->name());
  bundle.name = net->name();
  bundle.network = std::move(net);
  bundle.input_image = make_input_image(model.input_hw, image_seed);
  bundle.click_target = "btn";
  bundle.result_element = "result";
  return bundle;
}

}  // namespace offload::core
