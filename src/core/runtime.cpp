#include "src/core/runtime.h"

#include <cstdlib>
#include <stdexcept>

#include "src/core/trace_breakdown.h"

namespace offload::core {

namespace {
bool env_truthy(const char* name) {
  const char* env = std::getenv(name);
  if (!env) return false;
  const std::string v(env);
  return v == "1" || v == "true" || v == "on";
}
}  // namespace

void RuntimeConfig::TierOptions::apply_env() {
  if (ignore_env) return;
  if (env_truthy("OFFLOAD_TIER")) enabled = true;
  if (env_truthy("OFFLOAD_STEAL")) steal = true;
}

OffloadingRuntime::OffloadingRuntime(RuntimeConfig config,
                                     edge::AppBundle app)
    : config_(std::move(config)) {
  if (config_.client.supervisor.enabled) {
    // The supervisor watches per-phase deadlines through the server's
    // "accepted:"/"done:" receipts; turn them on to match.
    config_.server.ack_snapshots = true;
  }
  if (config_.obs) {
    obs_ = config_.obs;
  } else {
    owned_obs_ = std::make_unique<obs::Obs>();
    obs_ = owned_obs_.get();
  }
  config_.client.obs = obs_;
  config_.server.obs = obs_;
  fleet::FleetConfig fleet_config;
  fleet_config.size = config_.fleet.size;
  fleet_config.spares = config_.fleet.spares;
  fleet_config.balancer = config_.fleet.balancer;
  fleet_config.dedup = config_.fleet.dedup;
  fleet_config.channel = config_.channel;
  fleet_config.server = config_.server;
  fleet_config.obs = obs_;
  fleet_ = std::make_unique<fleet::EdgeFleet>(sim_, std::move(fleet_config));
  link_ = fleet_->connect_client("client");
  fleet_->configure_client(config_.client, link_, "client");
  {
    // Partition-controller telemetry: the scheduler's pull accessors and
    // the fleet's outstanding counts, read live at decision time. Always
    // wired — the client only calls it when an adaptive policy is on.
    config_.client.signals = [this](std::size_t server) {
      ctrl::LinkSignals s;
      if (server < fleet_->servers_up()) {
        const serve::Scheduler& sched = fleet_->server(server).scheduler();
        s.queue_depth = sched.queue_depth();
        s.lanes = sched.lanes();
        s.batch_wait_s = sched.recent_batch_wait_s();
        s.outstanding = fleet_->outstanding_for(server);
        // Jobs the edge relayed up-tier or cross-peer still occupy it
        // (their results route back through it); 0 without a topology,
        // leaving the flat-fleet predictions bit-identical.
        s.escalations =
            topology_ ? topology_->outstanding_relays(server) : 0;
      }
      return s;
    };
  }
  client_ = std::make_unique<edge::ClientDevice>(
      sim_, *link_.endpoints[0], config_.client, std::move(app));
  for (std::size_t k = 1; k < link_.endpoints.size(); ++k) {
    client_->attach_server(*link_.endpoints[k]);
  }
  if (config_.faults) {
    injector_ = std::make_unique<fault::FaultInjector>(sim_, *config_.faults);
    injector_->attach_channel(*link_.channels[0]);
    injector_->attach_server(fleet_->server(0));
  }
  config_.tier.apply_env();
  if (config_.tier.enabled) {
    tier::TierConfig tier_config;
    tier_config.escalation_budget = config_.tier.escalation_budget;
    tier_config.steal = config_.tier.steal;
    tier_config.steal_interval = config_.tier.steal_interval;
    tier_config.steal_seed = config_.tier.steal_seed;
    tier_config.steal_min_backlog = config_.tier.steal_min_backlog;
    tier_config.uplink.a_to_b.bandwidth_bps = config_.tier.uplink_bandwidth_bps;
    tier_config.uplink.a_to_b.latency = config_.tier.uplink_latency;
    tier_config.uplink.b_to_a.bandwidth_bps = config_.tier.uplink_bandwidth_bps;
    tier_config.uplink.b_to_a.latency = config_.tier.uplink_latency;
    tier_config.cloud_replicas = config_.tier.cloud_replicas;
    tier_config.obs = obs_;
    if (injector_) {
      // Tier links share the run's fault plan: blackout windows (and any
      // message-fault specs) apply to the uplink and every relay channel.
      tier_config.on_channel = [this](net::Channel& channel) {
        injector_->attach_channel(channel);
      };
    }
    topology_ = std::make_unique<tier::Topology>(sim_, *fleet_,
                                                 std::move(tier_config));
  }
}

OffloadingRuntime::~OffloadingRuntime() = default;

RunResult OffloadingRuntime::run() {
  client_->start();
  client_->click_at(config_.click_at);
  sim_.run();

  if (!client_->finished()) {
    throw std::runtime_error(
        "OffloadingRuntime: app did not finish (offload stalled?)");
  }

  RunResult result;
  result.timeline = client_->timeline();
  result.result_text = client_->result_text();
  result.offloaded = result.timeline.offloaded;
  result.inference_seconds = result.timeline.inference_seconds();
  if (result.timeline.ack_received) {
    result.model_upload_seconds =
        (*result.timeline.ack_received - result.timeline.model_upload_started)
            .to_seconds();
  }

  if (result.offloaded) {
    // The result may have come from another fleet server — a balanced
    // peer, or a spare at the tail of the candidate order.
    edge::EdgeServer* source = &fleet_->server(0);
    const auto idx = static_cast<std::size_t>(result.timeline.server_index);
    if (result.timeline.server_index > 0 && idx < fleet_->servers_up()) {
      source = &fleet_->server(idx);
    }
    if (source->executions().empty()) {
      throw std::runtime_error(
          "OffloadingRuntime: offloaded but server has no execution record");
    }
    result.server_record = source->executions().back();
  }

  // The breakdown comes from the span tree — the trace is the single
  // source of truth for where the time went (the derivation reproduces the
  // historical timeline/record arithmetic bit-for-bit).
  result.trace_id = client_->last_trace_id();
  result.breakdown = breakdown_from_trace(obs_->trace, result.trace_id);

  obs::ExportOptions export_opts = obs::ExportOptions::from_env();
  if (export_opts.any()) obs::export_obs(*obs_, export_opts);
  return result;
}

double server_only_inference_seconds(const nn::Network& net,
                                     const nn::DeviceProfile& profile) {
  return profile.network_time_s(net);
}

}  // namespace offload::core
