#include "src/core/runtime.h"

#include <stdexcept>

#include "src/core/trace_breakdown.h"

namespace offload::core {

OffloadingRuntime::OffloadingRuntime(RuntimeConfig config,
                                     edge::AppBundle app)
    : config_(std::move(config)) {
  if (config_.client.supervisor.enabled) {
    // The supervisor watches per-phase deadlines through the server's
    // "accepted:"/"done:" receipts; turn them on to match.
    config_.server.ack_snapshots = true;
  }
  if (config_.obs) {
    obs_ = config_.obs;
  } else {
    owned_obs_ = std::make_unique<obs::Obs>();
    obs_ = owned_obs_.get();
  }
  config_.client.obs = obs_;
  config_.server.obs = obs_;
  fleet::FleetConfig fleet_config;
  fleet_config.size = config_.fleet.size;
  fleet_config.balancer = config_.fleet.balancer;
  fleet_config.dedup = config_.fleet.dedup;
  fleet_config.channel = config_.channel;
  fleet_config.server = config_.server;
  fleet_config.obs = obs_;
  fleet_ = std::make_unique<fleet::EdgeFleet>(sim_, std::move(fleet_config));
  link_ = fleet_->connect_client("client");
  fleet_->configure_client(config_.client, link_, "client");
  {
    // Partition-controller telemetry: the scheduler's pull accessors and
    // the fleet's outstanding counts, read live at decision time. Always
    // wired — the client only calls it when an adaptive policy is on.
    config_.client.signals = [this](std::size_t server) {
      ctrl::LinkSignals s;
      if (server < fleet_->servers_up()) {
        const serve::Scheduler& sched = fleet_->server(server).scheduler();
        s.queue_depth = sched.queue_depth();
        s.lanes = sched.lanes();
        s.batch_wait_s = sched.recent_batch_wait_s();
        s.outstanding = fleet_->outstanding_for(server);
      } else if (secondary_server_) {
        const serve::Scheduler& sched = secondary_server_->scheduler();
        s.queue_depth = sched.queue_depth();
        s.lanes = sched.lanes();
        s.batch_wait_s = sched.recent_batch_wait_s();
      }
      return s;
    };
  }
  client_ = std::make_unique<edge::ClientDevice>(
      sim_, *link_.endpoints[0], config_.client, std::move(app));
  for (std::size_t k = 1; k < link_.endpoints.size(); ++k) {
    client_->attach_server(*link_.endpoints[k]);
  }
  if (config_.secondary_server) {
    secondary_channel_ =
        net::Channel::make(sim_, config_.channel, "client", "server-b");
    secondary_channel_->set_obs(obs_);
    edge::EdgeServerConfig secondary_config = config_.server;
    secondary_config.obs_name = config_.server.obs_name + "-b";
    secondary_server_ = std::make_unique<edge::EdgeServer>(
        sim_, secondary_channel_->b(), std::move(secondary_config));
    client_->attach_secondary(secondary_channel_->a());
  }
  if (config_.faults) {
    injector_ = std::make_unique<fault::FaultInjector>(sim_, *config_.faults);
    injector_->attach_channel(*link_.channels[0]);
    injector_->attach_server(fleet_->server(0));
  }
}

OffloadingRuntime::~OffloadingRuntime() = default;

RunResult OffloadingRuntime::run() {
  client_->start();
  client_->click_at(config_.click_at);
  sim_.run();

  if (!client_->finished()) {
    throw std::runtime_error(
        "OffloadingRuntime: app did not finish (offload stalled?)");
  }

  RunResult result;
  result.timeline = client_->timeline();
  result.result_text = client_->result_text();
  result.offloaded = result.timeline.offloaded;
  result.inference_seconds = result.timeline.inference_seconds();
  if (result.timeline.ack_received) {
    result.model_upload_seconds =
        (*result.timeline.ack_received - result.timeline.model_upload_started)
            .to_seconds();
  }

  if (result.offloaded) {
    // The result may have come from another fleet server — or the legacy
    // secondary, which sits after the fleet in the candidate order.
    edge::EdgeServer* source = &fleet_->server(0);
    const auto idx = static_cast<std::size_t>(result.timeline.server_index);
    if (result.timeline.server_index > 0) {
      if (idx < fleet_->size()) {
        source = &fleet_->server(idx);
      } else if (secondary_server_) {
        source = secondary_server_.get();
      }
    }
    if (source->executions().empty()) {
      throw std::runtime_error(
          "OffloadingRuntime: offloaded but server has no execution record");
    }
    result.server_record = source->executions().back();
  }

  // The breakdown comes from the span tree — the trace is the single
  // source of truth for where the time went (the derivation reproduces the
  // historical timeline/record arithmetic bit-for-bit).
  result.trace_id = client_->last_trace_id();
  result.breakdown = breakdown_from_trace(obs_->trace, result.trace_id);

  obs::ExportOptions export_opts = obs::ExportOptions::from_env();
  if (export_opts.any()) obs::export_obs(*obs_, export_opts);
  return result;
}

double server_only_inference_seconds(const nn::Network& net,
                                     const nn::DeviceProfile& profile) {
  return profile.network_time_s(net);
}

}  // namespace offload::core
