#include "src/core/runtime.h"

#include <stdexcept>

namespace offload::core {

OffloadingRuntime::OffloadingRuntime(RuntimeConfig config,
                                     edge::AppBundle app)
    : config_(std::move(config)) {
  if (config_.client.supervisor.enabled) {
    // The supervisor watches per-phase deadlines through the server's
    // "accepted:"/"done:" receipts; turn them on to match.
    config_.server.ack_snapshots = true;
  }
  channel_ = net::Channel::make(sim_, config_.channel);
  server_ = std::make_unique<edge::EdgeServer>(sim_, channel_->b(),
                                               config_.server);
  client_ = std::make_unique<edge::ClientDevice>(
      sim_, channel_->a(), config_.client, std::move(app));
  if (config_.secondary_server) {
    secondary_channel_ =
        net::Channel::make(sim_, config_.channel, "client", "server-b");
    secondary_server_ = std::make_unique<edge::EdgeServer>(
        sim_, secondary_channel_->b(), config_.server);
    client_->attach_secondary(secondary_channel_->a());
  }
  if (config_.faults) {
    injector_ = std::make_unique<fault::FaultInjector>(sim_, *config_.faults);
    injector_->attach_channel(*channel_);
    injector_->attach_server(*server_);
  }
}

OffloadingRuntime::~OffloadingRuntime() = default;

RunResult OffloadingRuntime::run() {
  client_->start();
  client_->click_at(config_.click_at);
  sim_.run();

  if (!client_->finished()) {
    throw std::runtime_error(
        "OffloadingRuntime: app did not finish (offload stalled?)");
  }

  RunResult result;
  result.timeline = client_->timeline();
  result.result_text = client_->result_text();
  result.offloaded = result.timeline.offloaded;
  result.inference_seconds = result.timeline.inference_seconds();
  if (result.timeline.ack_received) {
    result.model_upload_seconds =
        (*result.timeline.ack_received - result.timeline.model_upload_started)
            .to_seconds();
  }

  InferenceBreakdown& b = result.breakdown;
  b.dnn_execution_client = result.timeline.client_exec_s;
  b.retry_backoff = result.timeline.backoff_wait_s;
  b.crash_recovery = result.timeline.recovery_s;
  if (result.offloaded) {
    // The result may have come from the secondary after a failover.
    edge::EdgeServer* source = server_.get();
    if (result.timeline.server_index == 1 && secondary_server_) {
      source = secondary_server_.get();
    }
    if (source->executions().empty()) {
      throw std::runtime_error(
          "OffloadingRuntime: offloaded but server has no execution record");
    }
    const edge::ServerExecutionRecord& record = source->executions().back();
    result.server_record = record;
    b.snapshot_capture_client = result.timeline.capture_s;
    b.transmission_up =
        (record.received_at - *result.timeline.snapshot_sent).to_seconds();
    b.snapshot_restore_server = record.restore_s;
    b.dnn_execution_server = record.execute_s;
    b.snapshot_capture_server = record.capture_s;
    b.server_queue_wait = record.queue_wait_s;
    b.server_batch_wait = record.batch_wait_s;
    b.transmission_down =
        (*result.timeline.result_received - record.received_at).to_seconds() -
        record.busy_s() - record.queue_wait_s - record.batch_wait_s;
    b.snapshot_restore_client = result.timeline.restore_s;
    // Residual between the measured end-to-end latency and the categorized
    // parts (e.g. waiting for a refused snapshot to be re-sendable).
    b.other = result.inference_seconds - b.total();
    if (b.other < 1e-9 && b.other > -1e-9) b.other = 0;
  }
  return result;
}

double server_only_inference_seconds(const nn::Network& net,
                                     const nn::DeviceProfile& profile) {
  return profile.network_time_s(net);
}

}  // namespace offload::core
