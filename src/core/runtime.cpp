#include "src/core/runtime.h"

#include <stdexcept>

namespace offload::core {

OffloadingRuntime::OffloadingRuntime(RuntimeConfig config,
                                     edge::AppBundle app)
    : config_(std::move(config)) {
  channel_ = net::Channel::make(sim_, config_.channel);
  server_ = std::make_unique<edge::EdgeServer>(sim_, channel_->b(),
                                               config_.server);
  client_ = std::make_unique<edge::ClientDevice>(
      sim_, channel_->a(), config_.client, std::move(app));
}

OffloadingRuntime::~OffloadingRuntime() = default;

RunResult OffloadingRuntime::run() {
  client_->start();
  client_->click_at(config_.click_at);
  sim_.run();

  if (!client_->finished()) {
    throw std::runtime_error(
        "OffloadingRuntime: app did not finish (offload stalled?)");
  }

  RunResult result;
  result.timeline = client_->timeline();
  result.result_text = client_->result_text();
  result.offloaded = result.timeline.offloaded;
  result.inference_seconds = result.timeline.inference_seconds();
  if (result.timeline.ack_received) {
    result.model_upload_seconds =
        (*result.timeline.ack_received - result.timeline.model_upload_started)
            .to_seconds();
  }

  InferenceBreakdown& b = result.breakdown;
  b.dnn_execution_client = result.timeline.client_exec_s;
  if (result.offloaded) {
    if (server_->executions().empty()) {
      throw std::runtime_error(
          "OffloadingRuntime: offloaded but server has no execution record");
    }
    const edge::ServerExecutionRecord& record = server_->executions().back();
    result.server_record = record;
    b.snapshot_capture_client = result.timeline.capture_s;
    b.transmission_up =
        (record.received_at - *result.timeline.snapshot_sent).to_seconds();
    b.snapshot_restore_server = record.restore_s;
    b.dnn_execution_server = record.execute_s;
    b.snapshot_capture_server = record.capture_s;
    b.server_queue_wait = record.queue_wait_s;
    b.server_batch_wait = record.batch_wait_s;
    b.transmission_down =
        (*result.timeline.result_received - record.received_at).to_seconds() -
        record.busy_s() - record.queue_wait_s - record.batch_wait_s;
    b.snapshot_restore_client = result.timeline.restore_s;
    // Residual between the measured end-to-end latency and the categorized
    // parts (e.g. waiting for a refused snapshot to be re-sendable).
    b.other = result.inference_seconds - b.total();
    if (b.other < 1e-9 && b.other > -1e-9) b.other = 0;
  }
  return result;
}

double server_only_inference_seconds(const nn::Network& net,
                                     const nn::DeviceProfile& profile) {
  return profile.network_time_s(net);
}

}  // namespace offload::core
