// Umbrella header: the public API of the snapshot-offloading library.
//
//   #include "src/core/offload.h"
//
//   auto models = offload::nn::benchmark_models();
//   auto result = offload::core::run_scenario(
//       models[0], offload::core::Scenario::kOffloadAfterAck);
//   std::cout << result.inference_seconds << "\n";
//
// Layers (bottom-up): util → sim/net/nn/jsvm/vmsynth/privacy → edge →
// fleet → core.
#pragma once

#include "src/core/app.h"          // IWYU pragma: export
#include "src/core/breakdown.h"    // IWYU pragma: export
#include "src/core/experiment.h"   // IWYU pragma: export
#include "src/core/runtime.h"      // IWYU pragma: export
#include "src/edge/client_device.h"  // IWYU pragma: export
#include "src/edge/edge_server.h"    // IWYU pragma: export
#include "src/edge/supervisor.h"     // IWYU pragma: export
#include "src/fault/fault_plan.h"    // IWYU pragma: export
#include "src/fault/injector.h"      // IWYU pragma: export
#include "src/fleet/balancer.h"      // IWYU pragma: export
#include "src/fleet/fleet.h"         // IWYU pragma: export
#include "src/jsvm/snapshot.h"       // IWYU pragma: export
#include "src/nn/models.h"           // IWYU pragma: export
#include "src/nn/partition.h"        // IWYU pragma: export
