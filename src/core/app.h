// Benchmark web apps. Generates the MicroJS source of the image-recognition
// app from the paper's Fig. 2 (full inference) and Fig. 5 (partial
// inference with the front_complete custom event), parameterized by model
// name, plus AppBundle factories for the three evaluation apps.
#pragma once

#include <cstdint>
#include <string>

#include "src/edge/client_device.h"
#include "src/nn/models.h"

namespace offload::core {

/// The Fig. 2 app: load button puts the image on a canvas; the inference
/// button's click handler runs the full DNN and writes the top-1 label
/// into #result. Offload point: the "click" event on #btn.
std::string full_inference_app_source(const std::string& model_name);

/// The Fig. 5 app: front() runs the client-side part and dispatches
/// "front_complete"; rear() finishes on the server. The original image
/// stays out of the migrated state (privacy). Offload point: the
/// "front_complete" event.
std::string partial_inference_app_source(const std::string& model_name);

/// Deterministic synthetic input image in [0,1], CHW.
nn::Tensor make_input_image(std::int64_t hw, std::uint64_t seed);

/// Assemble the bundle for one of the paper's benchmark apps.
/// `partial` selects the Fig. 5 source. The bundle owns the full network.
edge::AppBundle make_benchmark_app(const nn::BenchmarkModel& model,
                                   bool partial, std::uint64_t image_seed = 3);

}  // namespace offload::core
