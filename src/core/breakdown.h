// The inference-time breakdown of the paper's Fig. 7: where the time goes
// in one offloaded inference, from the user's click to the result pixel.
#pragma once

#include <string>
#include <vector>

namespace offload::core {

struct InferenceBreakdown {
  // All values in seconds; "(C)" = on the client, "(S)" = on the server.
  double dnn_execution_client = 0;    ///< front part (partial) or full local
  double snapshot_capture_client = 0;
  double transmission_up = 0;         ///< snapshot (and model, pre-ACK) C→S
  double snapshot_restore_server = 0;
  double dnn_execution_server = 0;
  double snapshot_capture_server = 0;
  double server_queue_wait = 0;       ///< waited for a server replica
  double server_batch_wait = 0;       ///< held while a batch formed
  double transmission_down = 0;       ///< result snapshot S→C
  double snapshot_restore_client = 0;
  double retry_backoff = 0;           ///< supervisor waits between retries
  double crash_recovery = 0;          ///< model re-presend after a server
                                      ///< crash (detection → replay)
  double other = 0;                   ///< residual (e.g. refusal round trips)

  double total() const {
    return dnn_execution_client + snapshot_capture_client + transmission_up +
           snapshot_restore_server + dnn_execution_server +
           snapshot_capture_server + server_queue_wait + server_batch_wait +
           transmission_down + snapshot_restore_client + retry_backoff +
           crash_recovery + other;
  }

  /// Fig. 7 category labels, in stack order.
  static const std::vector<std::string>& labels();
  /// Values in the same order as labels().
  std::vector<double> values() const;
};

}  // namespace offload::core
