#include "src/core/experiment.h"

#include <stdexcept>

#include "src/nn/model_io.h"

namespace offload::core {
namespace {

std::string ordinal(int n) {
  switch (n) {
    case 1: return "1st";
    case 2: return "2nd";
    case 3: return "3rd";
    default: return std::to_string(n) + "th";
  }
}

}  // namespace

const char* scenario_name(Scenario scenario) {
  switch (scenario) {
    case Scenario::kClientOnly: return "Client";
    case Scenario::kServerOnly: return "Server";
    case Scenario::kOffloadBeforeAck: return "Offload (before ACK)";
    case Scenario::kOffloadAfterAck: return "Offload (after ACK)";
    case Scenario::kOffloadPartial: return "Offload (partial)";
  }
  return "?";
}

std::vector<CutLabel> labeled_cut_points(const nn::Network& net) {
  std::vector<CutLabel> out;
  int conv_count = 0;
  int pool_count = 0;
  for (std::size_t cut : net.cut_points()) {
    nn::LayerKind kind = net.layer(cut).kind();
    if (kind == nn::LayerKind::kInput) {
      out.push_back({cut, "input", kind});
    } else if (kind == nn::LayerKind::kConv) {
      out.push_back({cut, ordinal(++conv_count) + "_conv", kind});
    } else if (kind == nn::LayerKind::kMaxPool ||
               kind == nn::LayerKind::kAvgPool) {
      out.push_back({cut, ordinal(++pool_count) + "_pool", kind});
    }
  }
  return out;
}

std::size_t first_pool_cut(const nn::Network& net) {
  for (std::size_t cut : net.cut_points()) {
    if (net.layer(cut).kind() == nn::LayerKind::kMaxPool) return cut;
  }
  for (std::size_t cut : net.cut_points()) {
    if (net.layer(cut).kind() == nn::LayerKind::kAvgPool) return cut;
  }
  for (std::size_t cut : net.cut_points()) {
    if (net.layer(cut).kind() == nn::LayerKind::kConv) return cut;
  }
  return net.cut_points().front();
}

sim::SimTime after_ack_click_time(const nn::Network& net, bool rear_only,
                                  std::size_t cut, double bandwidth_bps) {
  std::vector<nn::ModelFile> files =
      rear_only ? nn::model_files_rear_only(net, cut) : nn::model_files(net);
  double bytes = static_cast<double>(nn::total_size(files));
  // Transfer + server store + generous margin.
  return sim::SimTime::seconds(bytes * 8.0 / bandwidth_bps + bytes / 400e6 +
                               2.0);
}

RunResult run_scenario(const nn::BenchmarkModel& model, Scenario scenario,
                       const ScenarioOptions& options) {
  if (scenario == Scenario::kServerOnly) {
    // No migration: the app (and its data) already live on the server.
    auto net = model.build(model.seed);
    RunResult result;
    result.inference_seconds = server_only_inference_seconds(
        *net, nn::DeviceProfile::edge_server());
    result.breakdown.dnn_execution_server = result.inference_seconds;
    result.offloaded = false;
    result.result_text = "(server-local)";
    return result;
  }

  const bool partial = scenario == Scenario::kOffloadPartial;
  edge::AppBundle bundle =
      make_benchmark_app(model, partial, options.image_seed);

  RuntimeConfig config;
  config.channel.a_to_b.bandwidth_bps = options.bandwidth_bps;
  config.channel.a_to_b.latency = options.latency;
  config.channel.b_to_a.bandwidth_bps = options.bandwidth_bps;
  config.channel.b_to_a.latency = options.latency;

  switch (scenario) {
    case Scenario::kClientOnly:
      config.client.offload = false;
      config.client.presend_model = false;
      config.click_at = sim::SimTime::seconds(0.05);
      break;
    case Scenario::kOffloadBeforeAck:
      config.client.offload = true;
      config.client.presend_model = true;
      config.client.offload_event = "click";
      // Click while the model upload is still in flight.
      config.click_at = sim::SimTime::seconds(0.05);
      break;
    case Scenario::kOffloadAfterAck:
      config.client.offload = true;
      config.client.presend_model = true;
      config.client.offload_event = "click";
      config.click_at = after_ack_click_time(*bundle.network, false, 0,
                                             options.bandwidth_bps);
      break;
    case Scenario::kOffloadPartial: {
      config.client.offload = true;
      config.client.presend_model = true;
      config.client.presend_rear_only = true;
      config.client.offload_event = "front_complete";
      std::size_t cut = options.partial_cut != SIZE_MAX
                            ? options.partial_cut
                            : first_pool_cut(*bundle.network);
      config.client.partition_cut = cut;
      config.click_at = after_ack_click_time(*bundle.network, true, cut,
                                             options.bandwidth_bps);
      break;
    }
    default:
      throw std::logic_error("run_scenario: unhandled scenario");
  }

  OffloadingRuntime runtime(config, std::move(bundle));
  return runtime.run();
}

}  // namespace offload::core
