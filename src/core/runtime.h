// OffloadingRuntime: wires one client, one edge server, and a shaped
// network link inside a deterministic simulation, runs an app through one
// offloaded (or local) inference, and reports the end-to-end latency plus
// the Fig. 7 breakdown. This is the top-level entry point of the library.
#pragma once

#include <memory>
#include <optional>

#include "src/core/breakdown.h"
#include "src/edge/client_device.h"
#include "src/edge/edge_server.h"
#include "src/fault/injector.h"
#include "src/fleet/fleet.h"
#include "src/net/channel.h"
#include "src/obs/obs.h"
#include "src/sim/simulation.h"
#include "src/tier/topology.h"

namespace offload::core {

struct RuntimeConfig {
  /// Both directions default to the paper's 30 Mbps netem-shaped Ethernet.
  net::ChannelConfig channel = default_channel();
  edge::ClientConfig client;
  edge::EdgeServerConfig server;
  /// When the user clicks the inference button, relative to app start.
  /// Before the model upload finishes → the paper's "before ACK" arm;
  /// comfortably after → "after ACK".
  sim::SimTime click_at = sim::SimTime::seconds(0.1);
  /// Deterministic fault plan, applied to the *primary* channel and server
  /// (spares, when present, stay healthy — they are the escape hatch). No
  /// plan (the default) = a fault-free run.
  std::optional<fault::FaultPlanConfig> faults;
  /// Edge-fleet shape. The default (one server, "hash" balancing, dedup
  /// off) reproduces the single-server runtime bit-for-bit.
  struct FleetOptions {
    std::size_t size = 1;
    /// Standby servers appended after the balanced set — never
    /// balancer-routed, reached only by candidate-list failover. One spare
    /// on a fleet of one reproduces the historical secondary-server
    /// wiring ("server-b") bit-for-bit.
    std::size_t spares = 0;
    fleet::BalancerConfig balancer;
    /// Content-addressed model pre-send: offer digests first, upload only
    /// the files the server's blob cache is missing.
    bool dedup = false;
  };
  FleetOptions fleet;
  /// Edge→cloud tier above the fleet. Off by default: the degenerate
  /// configuration constructs no topology, no cloud, no extra channels —
  /// the paper reproduction stays bit-for-bit identical.
  struct TierOptions {
    /// `OFFLOAD_TIER=1` turns the tier on (cloud overflow escalation and
    /// drain-based migration become available).
    bool enabled = false;
    /// `OFFLOAD_STEAL=1` additionally enables deterministic work stealing
    /// between edges (implies nothing unless `enabled` is also set).
    bool steal = false;
    /// Per-relay deadline budget (tier::TierConfig::escalation_budget).
    sim::SimTime escalation_budget = sim::SimTime::seconds(2);
    sim::SimTime steal_interval = sim::SimTime::millis(50);
    std::uint64_t steal_seed = 1;
    std::size_t steal_min_backlog = 2;
    /// Edge→cloud WAN shape: fatter but farther than the client links.
    double uplink_bandwidth_bps = 200e6;
    sim::SimTime uplink_latency = sim::SimTime::millis(20);
    /// Lanes on the cloud scheduler (it absorbs every edge's overflow).
    int cloud_replicas = 4;
    /// Tests set this to pin a configuration against ambient env vars.
    bool ignore_env = false;
    /// Fold in `OFFLOAD_TIER` / `OFFLOAD_STEAL` ("1"/"true"/"on" enable).
    void apply_env();
  };
  TierOptions tier;
  /// Observability sink shared by every actor (client, servers, channels,
  /// schedulers). Null = the runtime owns one internally; tracing is
  /// always on (a handful of spans per inference), and the breakdown is
  /// derived from the span tree, so the two cannot drift.
  obs::Obs* obs = nullptr;

  static net::ChannelConfig default_channel() {
    net::ChannelConfig ch;
    ch.a_to_b.bandwidth_bps = 30e6;
    ch.a_to_b.latency = sim::SimTime::millis(1);
    ch.b_to_a.bandwidth_bps = 30e6;
    ch.b_to_a.latency = sim::SimTime::millis(1);
    return ch;
  }
};

struct RunResult {
  edge::ClientTimeline timeline;
  std::optional<edge::ServerExecutionRecord> server_record;
  InferenceBreakdown breakdown;
  std::string result_text;
  bool offloaded = false;
  /// Click → result displayed, in seconds (the Fig. 6/8 metric).
  double inference_seconds = 0;
  /// App start → model ACK (pre-sending cost), -1 if no ACK happened.
  double model_upload_seconds = -1;
  /// Trace id of the (last) inference; look its spans up in obs().trace.
  obs::TraceId trace_id = 0;
};

class OffloadingRuntime {
 public:
  OffloadingRuntime(RuntimeConfig config, edge::AppBundle app);
  ~OffloadingRuntime();

  /// Drive the scenario to completion and assemble the result. Runs the
  /// simulation until quiescent; throws std::runtime_error if the app
  /// never finishes (protocol bug).
  RunResult run();

  sim::Simulation& simulation() { return sim_; }
  edge::ClientDevice& client() { return *client_; }
  /// Fleet server 0 (the only server in the degenerate configuration).
  edge::EdgeServer& server() { return fleet_->server(0); }
  /// The fleet every server lives in (size 1 unless configured larger).
  fleet::EdgeFleet& fleet() { return *fleet_; }
  /// The client's channels to the fleet (index k ↔ server k). Benches use
  /// channel->link_a_to_b().set_bandwidth_bps(...) to model netem-style
  /// mid-run bandwidth shifts for the dynamic-partitioning experiments.
  const fleet::EdgeFleet::ClientLink& client_link() const { return link_; }
  /// The active fault plan (null for fault-free runs).
  fault::FaultPlan* fault_plan() {
    return injector_ ? &injector_->plan() : nullptr;
  }
  /// The edge→cloud tier, or null when RuntimeConfig::tier left it off.
  tier::Topology* topology() { return topology_.get(); }
  /// The observability sink all actors share (the caller's, or the
  /// runtime-owned one). Valid for the runtime's lifetime.
  obs::Obs& obs() { return *obs_; }
  const obs::Obs& obs() const { return *obs_; }

 private:
  RuntimeConfig config_;
  sim::Simulation sim_;
  std::unique_ptr<obs::Obs> owned_obs_;
  obs::Obs* obs_ = nullptr;
  std::unique_ptr<fleet::EdgeFleet> fleet_;
  fleet::EdgeFleet::ClientLink link_;
  std::unique_ptr<edge::ClientDevice> client_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<tier::Topology> topology_;
};

/// The Fig. 6 "Server" baseline: the app runs entirely on the server's
/// browser; returns the server-side inference seconds (no migration).
double server_only_inference_seconds(const nn::Network& net,
                                     const nn::DeviceProfile& profile);

}  // namespace offload::core
