// Derive the Fig. 7 InferenceBreakdown from a request's span tree, so the
// breakdown and the trace can never drift apart: the runtime builds its
// breakdown exclusively through this function, and the reconciliation test
// checks the derived values against per-kind leaf-span sums.
#pragma once

#include "src/core/breakdown.h"
#include "src/obs/trace.h"

namespace offload::core {

/// Assemble the breakdown of the request traced as `trace` from the spans
/// recorded in `tracer`. Mirrors the original timeline/record arithmetic
/// term for term (same doubles, same grouping), so the degenerate
/// configuration reproduces the historical breakdown bit-for-bit:
///  - client-side categories are sums of charged span durations in
///    emission order, matching the timeline's `+=` accumulation order;
///  - server-side categories come from the *last* span of each kind (the
///    execution that actually produced the result), matching
///    `executions().back()`;
///  - transmission_up is the last transmit-up span's SimTime interval
///    (server receive − last send);
///  - transmission_down is the residual of the server round trip minus
///    the categorized server time, with the exact grouping
///    `interval − (restore + execute + capture) − queue − batch`;
///  - `other` absorbs what is left of the end-to-end latency, snapped to
///    zero within ±1e-9 — exactly as the runtime always computed it.
/// A trace whose root says the inference was not offloaded only carries
/// client execution, retry backoff, and crash recovery.
InferenceBreakdown breakdown_from_trace(const obs::Tracer& tracer,
                                        obs::TraceId trace);

}  // namespace offload::core
