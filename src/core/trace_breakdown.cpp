#include "src/core/trace_breakdown.h"

#include <stdexcept>

namespace offload::core {

namespace {

bool root_attr_is(const obs::Span& root, const char* key, const char* value) {
  for (const auto& [k, v] : root.attrs) {
    if (k == key) return v == value;
  }
  return false;
}

}  // namespace

InferenceBreakdown breakdown_from_trace(const obs::Tracer& tracer,
                                        obs::TraceId trace) {
  InferenceBreakdown b;
  if (trace == 0) return b;

  const obs::Span* root = nullptr;
  // Last span of each server-side kind: the execution that produced the
  // result (mirrors `executions().back()`); superseded attempts from
  // retries stay in the trace but do not shape these categories.
  const obs::Span* up = nullptr;
  const obs::Span* down = nullptr;
  const obs::Span* queue = nullptr;
  const obs::Span* batch = nullptr;
  const obs::Span* restore_srv = nullptr;
  const obs::Span* exec_srv = nullptr;
  const obs::Span* capture_srv = nullptr;
  const obs::Span* restore_cli = nullptr;

  // One pass in emission order: client-side sums accumulate in the same
  // order the timeline's `+=` sites ran, reproducing their rounding.
  for (const obs::Span& s : tracer.spans()) {
    if (s.trace != trace) continue;
    switch (s.kind) {
      case obs::SpanKind::kInference:
        if (s.parent == 0) root = &s;
        break;
      case obs::SpanKind::kClientExec:
        b.dnn_execution_client += s.dur_s;
        break;
      case obs::SpanKind::kClientCapture:
        b.snapshot_capture_client += s.dur_s;
        break;
      case obs::SpanKind::kRetryBackoff:
        b.retry_backoff += s.dur_s;
        break;
      case obs::SpanKind::kCrashRecovery:
        b.crash_recovery += s.dur_s;
        break;
      case obs::SpanKind::kTransmitUp:
        up = &s;
        break;
      case obs::SpanKind::kTransmitDown:
        down = &s;
        break;
      case obs::SpanKind::kQueueWait:
        queue = &s;
        break;
      case obs::SpanKind::kBatchWait:
        batch = &s;
        break;
      case obs::SpanKind::kServerRestore:
        restore_srv = &s;
        break;
      case obs::SpanKind::kServerExec:
        exec_srv = &s;
        break;
      case obs::SpanKind::kServerCapture:
        capture_srv = &s;
        break;
      case obs::SpanKind::kClientRestore:
        restore_cli = &s;
        break;
      default:
        break;  // structural spans never feed the breakdown
    }
  }
  if (!root) {
    throw std::runtime_error(
        "breakdown_from_trace: trace has no root inference span");
  }
  if (!root_attr_is(*root, "offloaded", "1")) return b;
  if (!up || !down || !restore_srv || !exec_srv || !capture_srv ||
      !restore_cli || !queue || !batch) {
    throw std::runtime_error(
        "breakdown_from_trace: offloaded trace is missing phase spans");
  }

  // (server receive − last send): the span interval is the same SimTime
  // subtraction the runtime historically performed on the timeline.
  b.transmission_up = (up->end - up->start).to_seconds();
  b.snapshot_restore_server = restore_srv->dur_s;
  b.dnn_execution_server = exec_srv->dur_s;
  b.snapshot_capture_server = capture_srv->dur_s;
  b.server_queue_wait = queue->dur_s;
  b.server_batch_wait = batch->dur_s;
  // Residual of the server round trip: grouping matches
  // `interval − busy_s() − queue − batch` with busy_s() = r + e + c.
  b.transmission_down =
      (down->end - up->end).to_seconds() -
      (restore_srv->dur_s + exec_srv->dur_s + capture_srv->dur_s) -
      queue->dur_s - batch->dur_s;
  b.snapshot_restore_client = restore_cli->dur_s;
  b.other = (root->end - root->start).to_seconds() - b.total();
  if (b.other < 1e-9 && b.other > -1e-9) b.other = 0;
  return b;
}

}  // namespace offload::core
