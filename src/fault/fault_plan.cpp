#include "src/fault/fault_plan.h"

namespace offload::fault {

FaultPlanConfig FaultPlanConfig::uniform(double rate, std::uint64_t seed) {
  FaultPlanConfig config;
  config.seed = seed;
  MessageFaults faults;
  faults.drop_rate = rate;
  faults.duplicate_rate = rate / 4;
  faults.corrupt_rate = rate / 4;
  faults.delay_rate = rate / 2;
  config.uplink = faults;
  config.downlink = faults;
  return config;
}

FaultPlan::FaultPlan(FaultPlanConfig config)
    : config_(std::move(config)),
      up_rng_(config_.seed, 0x0fau),
      down_rng_(config_.seed, 0x0fbu) {}

net::FaultDecision FaultPlan::decide(bool uplink,
                                     const net::Message& message) {
  const MessageFaults& faults = uplink ? config_.uplink : config_.downlink;
  util::Pcg32& rng = uplink ? up_rng_ : down_rng_;
  ++stats_.consulted;

  // Always the same five draws, in the same order, so the decision stream
  // for one message never depends on the verdicts for earlier ones.
  const double drop_draw = rng.canonical();
  const double duplicate_draw = rng.canonical();
  const double corrupt_draw = rng.canonical();
  const std::uint32_t corrupt_at = rng.next_u32();
  const double delay_draw = rng.canonical();

  net::FaultDecision decision;
  if (drop_draw < faults.drop_rate) {
    decision.drop = true;
    ++stats_.drops;
    return decision;  // the attempt is lost; nothing else applies
  }
  if (duplicate_draw < faults.duplicate_rate) {
    decision.duplicate = true;
    ++stats_.duplicates;
  }
  if (corrupt_draw < faults.corrupt_rate && !message.payload.empty()) {
    decision.corrupt_mask = 0x40;  // any nonzero mask defeats the CRC
    decision.corrupt_index = corrupt_at;
    ++stats_.corruptions;
  }
  if (delay_draw < faults.delay_rate) {
    decision.extra_delay = faults.delay;
    ++stats_.delays;
  }
  return decision;
}

}  // namespace offload::fault
