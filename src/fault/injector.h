// Binds a FaultPlan to the live system: installs the plan's message-fault
// hooks on a channel and schedules its crash/stall events on an edge
// server. One injector drives one plan; attach as many channels/servers as
// the scenario needs (decisions stay deterministic because the simulation
// consults them in a fixed order).
#pragma once

#include <memory>

#include "src/edge/edge_server.h"
#include "src/fault/fault_plan.h"
#include "src/net/channel.h"
#include "src/sim/simulation.h"

namespace offload::fault {

class FaultInjector {
 public:
  FaultInjector(sim::Simulation& sim, FaultPlanConfig config);

  /// Install the plan's uplink faults on a→b and downlink faults on b→a.
  /// A direction with no configured faults is left un-hooked.
  void attach_channel(net::Channel& channel);

  /// Schedule every crash and stall in the plan on `server`. The server
  /// must outlive the simulation events this schedules.
  void attach_server(edge::EdgeServer& server);

  FaultPlan& plan() { return plan_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  sim::Simulation& sim_;
  FaultPlan plan_;
};

}  // namespace offload::fault
