// Deterministic fault-injection plans. A FaultPlan is a pure function of
// its seed and the (deterministic) order of events it is consulted about,
// so a faulted run is exactly as reproducible as a clean one: same seed →
// same drops, duplicates, corruptions, delays, crashes, and stalls, at the
// same simulated instants, at any OFFLOAD_THREADS.
//
// Message-level faults are decided per transmission attempt via the
// net::Channel fault hooks; server-level faults (crash/restart, stall) are
// scheduled on the simulation clock by the FaultInjector.
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/channel.h"
#include "src/sim/time.h"
#include "src/util/rng.h"

namespace offload::fault {

/// Per-direction message fault rates (each in [0,1], per attempt).
struct MessageFaults {
  double drop_rate = 0;       ///< lose the attempt (ARQ path)
  double duplicate_rate = 0;  ///< deliver one extra copy
  double corrupt_rate = 0;    ///< flip one payload byte (CRC catches it)
  double delay_rate = 0;      ///< add `delay` to the arrival time
  sim::SimTime delay = sim::SimTime::millis(250);

  bool any() const {
    return drop_rate > 0 || duplicate_rate > 0 || corrupt_rate > 0 ||
           delay_rate > 0;
  }
};

/// A server crash schedule: at `first_at` the server goes down, loses its
/// model store, session cache, and in-flight executions, and comes back
/// cold `downtime` later. `period` > 0 repeats the crash `count` times.
struct CrashSpec {
  sim::SimTime first_at;
  sim::SimTime downtime = sim::SimTime::seconds(1);
  sim::SimTime period = sim::SimTime::zero();
  int count = 1;
};

/// A server stall: message processing frozen during [at, at+duration).
struct StallSpec {
  sim::SimTime at;
  sim::SimTime duration = sim::SimTime::seconds(1);
};

/// A link blackout: every transmission attempt in [start, start+duration)
/// is dropped, both directions (models a WAN path failing over, the
/// edge→cloud uplink in the tier topology). Unlike the probabilistic
/// MessageFaults, blackouts are time-windowed and consume no PRNG draws,
/// so adding one never perturbs the rest of the plan's decisions.
struct BlackoutSpec {
  sim::SimTime start;
  sim::SimTime duration = sim::SimTime::seconds(1);

  bool covers(sim::SimTime t) const {
    return t >= start && t < start + duration;
  }
};

struct FaultPlanConfig {
  std::uint64_t seed = 1;
  MessageFaults uplink;    ///< client → server direction (channel a→b)
  MessageFaults downlink;  ///< server → client direction (channel b→a)
  std::vector<CrashSpec> crashes;
  std::vector<StallSpec> stalls;
  std::vector<BlackoutSpec> blackouts;

  /// True when any blackout window covers `t`.
  bool blacked_out(sim::SimTime t) const {
    for (const BlackoutSpec& b : blackouts) {
      if (b.covers(t)) return true;
    }
    return false;
  }

  /// Convenience: the symmetric "p on every message kind, both ways" plan
  /// the fault benchmarks sweep.
  static FaultPlanConfig uniform(double rate, std::uint64_t seed = 1);
};

/// Draws per-message fault decisions from two seeded PCG32 streams (one
/// per direction, so the directions' decisions are independent of how
/// their messages interleave). A fixed number of draws happens per
/// consultation regardless of the outcome, keeping the streams aligned
/// across plans that differ only in rates.
class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig config);

  net::FaultDecision decide(bool uplink, const net::Message& message);

  const FaultPlanConfig& config() const { return config_; }

  struct Stats {
    std::uint64_t consulted = 0;
    std::uint64_t drops = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t delays = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  FaultPlanConfig config_;
  util::Pcg32 up_rng_;
  util::Pcg32 down_rng_;
  Stats stats_;
};

}  // namespace offload::fault
