#include "src/fault/injector.h"

#include <algorithm>

namespace offload::fault {

FaultInjector::FaultInjector(sim::Simulation& sim, FaultPlanConfig config)
    : sim_(sim), plan_(std::move(config)) {}

void FaultInjector::attach_channel(net::Channel& channel) {
  if (plan_.config().uplink.any()) {
    channel.set_fault_hook(/*a_to_b=*/true, [this](const net::Message& m) {
      return plan_.decide(/*uplink=*/true, m);
    });
  }
  if (plan_.config().downlink.any()) {
    channel.set_fault_hook(/*a_to_b=*/false, [this](const net::Message& m) {
      return plan_.decide(/*uplink=*/false, m);
    });
  }
}

void FaultInjector::attach_server(edge::EdgeServer& server) {
  for (const CrashSpec& crash : plan_.config().crashes) {
    const int repeats =
        crash.period > sim::SimTime::zero() ? std::max(crash.count, 1) : 1;
    for (int i = 0; i < repeats; ++i) {
      sim::SimTime at = crash.first_at;
      for (int k = 0; k < i; ++k) at += crash.period;
      server.schedule_crash(at, crash.downtime);
    }
  }
  for (const StallSpec& stall : plan_.config().stalls) {
    server.schedule_stall(stall.at, stall.duration);
  }
}

}  // namespace offload::fault
