#include "src/fault/injector.h"

#include <algorithm>

namespace offload::fault {

FaultInjector::FaultInjector(sim::Simulation& sim, FaultPlanConfig config)
    : sim_(sim), plan_(std::move(config)) {}

void FaultInjector::attach_channel(net::Channel& channel) {
  // Blackout windows are checked before the probabilistic decision and
  // short-circuit it, so they never consume PRNG draws — a plan with and
  // without blackouts makes identical per-message decisions outside the
  // windows.
  const bool blackouts = !plan_.config().blackouts.empty();
  if (plan_.config().uplink.any() || blackouts) {
    channel.set_fault_hook(/*a_to_b=*/true, [this](const net::Message& m) {
      if (plan_.config().blacked_out(sim_.now())) {
        return net::FaultDecision{.drop = true};
      }
      if (!plan_.config().uplink.any()) return net::FaultDecision{};
      return plan_.decide(/*uplink=*/true, m);
    });
  }
  if (plan_.config().downlink.any() || blackouts) {
    channel.set_fault_hook(/*a_to_b=*/false, [this](const net::Message& m) {
      if (plan_.config().blacked_out(sim_.now())) {
        return net::FaultDecision{.drop = true};
      }
      if (!plan_.config().downlink.any()) return net::FaultDecision{};
      return plan_.decide(/*uplink=*/false, m);
    });
  }
}

void FaultInjector::attach_server(edge::EdgeServer& server) {
  for (const CrashSpec& crash : plan_.config().crashes) {
    const int repeats =
        crash.period > sim::SimTime::zero() ? std::max(crash.count, 1) : 1;
    for (int i = 0; i < repeats; ++i) {
      sim::SimTime at = crash.first_at;
      for (int k = 0; k < i; ++k) at += crash.period;
      server.schedule_crash(at, crash.downtime);
    }
  }
  for (const StallSpec& stall : plan_.config().stalls) {
    server.schedule_stall(stall.at, stall.duration);
  }
}

}  // namespace offload::fault
