#include "src/nn/partition.h"

#include <algorithm>
#include <stdexcept>

namespace offload::nn {

bool denatures_input(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv:
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool:
    case LayerKind::kFullyConnected:
    case LayerKind::kLRN:
      return true;
    default:
      return false;
  }
}

Partitioner::Partitioner(const Network& net, const LayerCostModel& client,
                         const LayerCostModel& server,
                         PartitionerOptions options)
    : net_(net), client_(client), server_(server), options_(options) {}

std::vector<PartitionCandidate> Partitioner::evaluate(double bandwidth_bps,
                                                      double latency_s) const {
  if (bandwidth_bps <= 0) {
    throw std::invalid_argument("Partitioner: bandwidth must be positive");
  }
  const auto& analysis = net_.analyze();
  std::vector<PartitionCandidate> out;
  bool denatured_so_far = false;
  std::size_t cut_i = 0;
  auto cuts = net_.cut_points();
  // Track denaturing along the node sequence: a cut at node i denatures iff
  // any transforming layer exists in (0, i].
  std::vector<bool> denature_at(net_.size(), false);
  for (std::size_t i = 0; i < net_.size(); ++i) {
    if (denatures_input(net_.layer(i).kind())) denatured_so_far = true;
    denature_at[i] = denatured_so_far;
  }
  (void)cut_i;

  for (std::size_t cut : cuts) {
    PartitionCandidate c;
    c.cut = cut;
    c.layer_name = net_.layer(cut).name();
    c.kind = net_.layer(cut).kind();
    c.denatures = denature_at[cut];
    const bool fully_local = cut + 1 == net_.size();
    c.client_front_s = client_.predict_range(net_, 1, cut + 1);
    if (fully_local) {
      out.push_back(c);
      continue;
    }
    c.feature_bytes = analysis.output_bytes[cut];
    c.snapshot_bytes =
        options_.snapshot_base_bytes +
        static_cast<std::uint64_t>(static_cast<double>(c.feature_bytes) *
                                   options_.text_expansion);
    c.capture_s =
        static_cast<double>(c.snapshot_bytes) / options_.client_serialize_Bps;
    c.upload_s = latency_s + static_cast<double>(c.snapshot_bytes) * 8.0 /
                                 bandwidth_bps;
    c.restore_s =
        static_cast<double>(c.snapshot_bytes) / options_.server_parse_Bps;
    c.server_rear_s = server_.predict_range(net_, cut + 1, net_.size());
    const double result_bytes =
        static_cast<double>(options_.result_snapshot_bytes);
    c.return_s = result_bytes / options_.server_serialize_Bps +  // capture
                 latency_s + result_bytes * 8.0 / bandwidth_bps +  // transfer
                 result_bytes / options_.client_parse_Bps;         // restore
    out.push_back(c);
  }
  return out;
}

PartitionCandidate Partitioner::best(double bandwidth_bps,
                                     double latency_s) const {
  auto candidates = evaluate(bandwidth_bps, latency_s);
  if (candidates.empty()) {
    throw std::logic_error("Partitioner: no candidates");
  }
  const PartitionCandidate* best = nullptr;
  for (const auto& c : candidates) {
    if (options_.require_denature && !c.denatures) continue;
    if (!best || c.total_s() < best->total_s()) best = &c;
  }
  if (!best) {
    // Privacy constraint cannot be met (e.g. a pure-fc net with one node);
    // fall back to the unconstrained optimum.
    for (const auto& c : candidates) {
      if (!best || c.total_s() < best->total_s()) best = &c;
    }
  }
  return *best;
}

}  // namespace offload::nn
