// Internal declarations shared between the kernel backend TUs and the
// registry (kernels.cpp). Not part of the public nn API.
#pragma once

#include "src/nn/kernels.h"

namespace offload::nn::detail {

// Scalar reference kernels (kernels_scalar.cpp; compiled with the kernel
// optimization flags + -ffp-contract=off so every rounding step is exactly
// what the source says).
void scalar_gemm_tile(const float* apack, std::int64_t kd, const float* b,
                      std::int64_t n, const float* bias, float* c,
                      std::int64_t m_total, std::int64_t i0, std::int64_t i1,
                      std::int64_t j0, std::int64_t j1);
void scalar_gemm_tile_i8(const std::int8_t* apack, std::int64_t kd,
                         const std::int8_t* b, std::int64_t n,
                         const float* bias, float dequant, float* c,
                         std::int64_t m_total, std::int64_t i0, std::int64_t i1,
                         std::int64_t j0, std::int64_t j1);
void scalar_fc_rows(const float* w, const float* wt, std::int64_t in,
                    const float* x, const float* bias, float* y,
                    std::int64_t row0, std::int64_t row1);
void scalar_fc_rows_i8(const std::int8_t* qw, std::int64_t in,
                       const std::int8_t* qx, const float* bias, float dequant,
                       float* y, std::int64_t row0, std::int64_t row1);
void scalar_relu_range(float* data, std::int64_t lo, std::int64_t hi);
void scalar_pool_plane(const float* in, float* out, std::int64_t H,
                       std::int64_t W, std::int64_t OH, std::int64_t OW,
                       std::int64_t kernel, std::int64_t stride,
                       std::int64_t pad, bool average);
void scalar_lrn_row(const float* in, float* out, std::int64_t C,
                    std::int64_t H, std::int64_t W, std::int64_t h,
                    std::int64_t local_size, double alpha, double beta,
                    double k);

/// Edge-tile fallback shared by the vector backends: same fma contract as
/// scalar_gemm_tile but for an arbitrary panel row count `mr`.
void gemm_tile_edge(const float* apack, std::int64_t mr_panel, std::int64_t kd,
                    const float* b, std::int64_t n, const float* bias, float* c,
                    std::int64_t m_total, std::int64_t i0, std::int64_t i1,
                    std::int64_t j0, std::int64_t j1);

/// Build the simd backend table (kernels_simd.cpp). On machines without
/// AVX2+FMA every pointer degrades to the scalar kernel above.
KernelOps make_simd_ops();

}  // namespace offload::nn::detail
