#include "src/nn/model_io.h"

#include <map>
#include <sstream>
#include <stdexcept>

#include "src/nn/activation.h"
#include "src/nn/concat.h"
#include "src/nn/conv.h"
#include "src/nn/dense.h"
#include "src/nn/lrn.h"
#include "src/nn/pool.h"
#include "src/util/strings.h"

namespace offload::nn {
namespace {

constexpr std::string_view kWeightsMagic = "OFWT";
constexpr std::uint32_t kWeightsVersion = 1;

std::string inputs_str(const Network& net, std::size_t i) {
  const auto& ins = net.inputs_of(i);
  std::vector<std::string> names;
  names.reserve(ins.size());
  for (auto idx : ins) names.push_back(net.layer(idx).name());
  return util::join(names, ",");
}

using KvMap = std::map<std::string, std::string>;

KvMap parse_kv(const std::vector<std::string>& tokens, std::size_t from) {
  KvMap kv;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    auto eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      throw util::DecodeError("model description: expected key=value, got '" +
                              tokens[i] + "'");
    }
    kv[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
  }
  return kv;
}

std::int64_t kv_int(const KvMap& kv, const std::string& key) {
  auto it = kv.find(key);
  if (it == kv.end()) {
    throw util::DecodeError("model description: missing key '" + key + "'");
  }
  return std::stoll(it->second);
}

double kv_double(const KvMap& kv, const std::string& key) {
  auto it = kv.find(key);
  if (it == kv.end()) {
    throw util::DecodeError("model description: missing key '" + key + "'");
  }
  return std::stod(it->second);
}

Shape parse_shape(const std::string& text) {
  std::vector<std::int64_t> dims;
  for (const auto& part : util::split(text, 'x')) {
    dims.push_back(std::stoll(part));
  }
  return Shape(std::move(dims));
}

LayerPtr make_layer(const std::string& kind, const std::string& name,
                    const KvMap& kv) {
  if (kind == "input") {
    auto it = kv.find("shape");
    if (it == kv.end()) throw util::DecodeError("input layer: missing shape");
    double scale = 1.0;
    if (auto s = kv.find("scale"); s != kv.end()) scale = std::stod(s->second);
    return std::make_unique<InputLayer>(name, parse_shape(it->second), scale);
  }
  if (kind == "conv") {
    // "g" (channel groups) is optional so pre-group descriptions parse
    // unchanged.
    std::int64_t groups = 1;
    if (auto g = kv.find("g"); g != kv.end()) groups = std::stoll(g->second);
    return std::make_unique<ConvLayer>(
        name, ConvConfig{.in_channels = kv_int(kv, "in"),
                         .out_channels = kv_int(kv, "out"),
                         .kernel = kv_int(kv, "k"),
                         .stride = kv_int(kv, "s"),
                         .pad = kv_int(kv, "p"),
                         .groups = groups});
  }
  if (kind == "maxpool" || kind == "avgpool") {
    return std::make_unique<PoolLayer>(
        name,
        PoolConfig{.kernel = kv_int(kv, "k"),
                   .stride = kv_int(kv, "s"),
                   .pad = kv_int(kv, "p")},
        kind == "avgpool");
  }
  if (kind == "fc") {
    return std::make_unique<FullyConnectedLayer>(name, kv_int(kv, "in"),
                                                 kv_int(kv, "out"));
  }
  if (kind == "relu") return std::make_unique<ReluLayer>(name);
  if (kind == "softmax") return std::make_unique<SoftmaxLayer>(name);
  if (kind == "concat") return std::make_unique<ConcatLayer>(name);
  if (kind == "dropout") {
    return std::make_unique<DropoutLayer>(name, kv_double(kv, "rate"));
  }
  if (kind == "lrn") {
    return std::make_unique<LrnLayer>(name,
                                      LrnConfig{.local_size = kv_int(kv, "n"),
                                                .alpha = kv_double(kv, "alpha"),
                                                .beta = kv_double(kv, "beta"),
                                                .k = kv_double(kv, "kk")});
  }
  throw util::DecodeError("model description: unknown layer kind '" + kind +
                          "'");
}

}  // namespace

std::string save_description(const Network& net) {
  std::ostringstream out;
  out << "model " << net.name() << "\n";
  for (std::size_t i = 0; i < net.size(); ++i) {
    const Layer& layer = net.layer(i);
    out << "layer " << layer.name() << " " << layer_kind_name(layer.kind());
    std::string cfg = layer.config_str();
    if (!cfg.empty()) out << " " << cfg;
    if (i > 0) out << " inputs=" << inputs_str(net, i);
    out << "\n";
  }
  return out.str();
}

std::unique_ptr<Network> parse_description(const std::string& text) {
  std::unique_ptr<Network> net;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto tokens = util::split_ws(trimmed);
    if (tokens[0] == "model") {
      if (tokens.size() != 2) {
        throw util::DecodeError("line " + std::to_string(line_no) +
                                ": bad model header");
      }
      if (net) throw util::DecodeError("duplicate model header");
      net = std::make_unique<Network>(tokens[1]);
      continue;
    }
    if (tokens[0] != "layer" || tokens.size() < 3) {
      throw util::DecodeError("line " + std::to_string(line_no) +
                              ": expected 'layer <name> <kind> ...'");
    }
    if (!net) throw util::DecodeError("layer before model header");
    const std::string& name = tokens[1];
    const std::string& kind = tokens[2];
    KvMap kv = parse_kv(tokens, 3);
    std::vector<std::string> inputs;
    if (auto it = kv.find("inputs"); it != kv.end()) {
      inputs = util::split(it->second, ',');
      kv.erase(it);
    }
    net->add(make_layer(kind, name, kv), inputs);
  }
  if (!net) throw util::DecodeError("empty model description");
  return net;
}

util::Bytes save_weights(const Network& net, std::size_t begin,
                         std::size_t end) {
  end = std::min(end, net.size());
  util::BinaryWriter w;
  w.raw(kWeightsMagic);
  w.u32(kWeightsVersion);
  // Count parameterized layers in range.
  std::uint32_t count = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (net.layer(i).param_count() > 0) ++count;
  }
  w.u32(count);
  for (std::size_t i = begin; i < end; ++i) {
    const Layer& layer = net.layer(i);
    if (layer.param_count() == 0) continue;
    w.str(layer.name());
    w.u64(layer.param_count());
    layer.write_params(w);
  }
  return std::move(w).take();
}

void load_weights(Network& net, std::span<const std::uint8_t> blob,
                  std::size_t begin, std::size_t end) {
  end = std::min(end, net.size());
  util::BinaryReader r(blob);
  auto magic = r.raw(4);
  if (util::to_string(magic) != kWeightsMagic) {
    throw util::DecodeError("weights: bad magic");
  }
  if (r.u32() != kWeightsVersion) {
    throw util::DecodeError("weights: unsupported version");
  }
  std::uint32_t count = r.u32();
  for (std::uint32_t n = 0; n < count; ++n) {
    std::string name = r.str();
    std::uint64_t params = r.u64();
    std::size_t idx = net.index_of(name);
    if (idx < begin || idx >= end) {
      throw util::DecodeError("weights: layer " + name + " out of range");
    }
    Layer& layer = net.layer(idx);
    if (layer.param_count() != params) {
      throw util::DecodeError("weights: parameter count mismatch for " + name);
    }
    layer.read_params(r);
  }
}

std::vector<ModelFile> model_files(const Network& net) {
  std::vector<ModelFile> files;
  std::string desc = save_description(net);
  files.push_back(
      {net.name() + ".desc", util::Bytes(desc.begin(), desc.end())});
  files.push_back({net.name() + ".weights", save_weights(net)});
  return files;
}

std::vector<ModelFile> model_files_rear_only(const Network& net,
                                             std::size_t cut) {
  std::vector<ModelFile> files;
  std::string desc = save_description(net);
  files.push_back(
      {net.name() + ".desc", util::Bytes(desc.begin(), desc.end())});
  files.push_back(
      {net.name() + ".rear.weights", save_weights(net, cut + 1, net.size())});
  return files;
}

std::uint64_t total_size(const std::vector<ModelFile>& files) {
  std::uint64_t n = 0;
  for (const auto& f : files) n += f.size();
  return n;
}

}  // namespace offload::nn
