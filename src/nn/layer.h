// Layer abstraction for the CNN inference engine. Layers are stateless with
// respect to activations: forward() maps input tensors to an output tensor.
// Parameters (conv filters, fc weights) live inside the layer and are
// (de)serialized through write_params/read_params — that is what the model
// files of Section III.B.1 ("pre-sending the NN model") carry.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "src/nn/tensor.h"
#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace offload::nn {

enum class LayerKind : std::uint8_t {
  kInput = 0,
  kConv = 1,
  kMaxPool = 2,
  kAvgPool = 3,
  kFullyConnected = 4,
  kReLU = 5,
  kLRN = 6,
  kSoftmax = 7,
  kConcat = 8,
  kDropout = 9,
};

const char* layer_kind_name(LayerKind kind);

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  const std::string& name() const { return name_; }
  virtual LayerKind kind() const = 0;

  /// Shape of the output given input shapes; throws std::invalid_argument
  /// on arity/shape mismatches so graph bugs surface at build time.
  virtual Shape output_shape(std::span<const Shape> inputs) const = 0;

  /// Floating-point operation count for one forward pass over a single
  /// sample (multiply and add counted separately, the Neurosurgeon
  /// convention). Drives the device cost model; a fused batch of B samples
  /// costs B x this many FLOPs (see DeviceProfile::layer_batch_time_s for
  /// how the dispatch overhead amortizes).
  virtual std::uint64_t flops(std::span<const Shape> inputs) const = 0;

  virtual Tensor forward(std::span<const Tensor* const> inputs) const = 0;

  /// Batched forward: every input tensor carries a leading batch dimension
  /// prepended to its per-sample shape (a CHW input becomes {B, C, H, W}),
  /// and the output does too. The default implementation slices each
  /// sample, runs forward(), and stacks the outputs, so every layer is
  /// batch-correct by construction; the hot layers (conv, pool, fc, relu,
  /// lrn, concat) override it with kernels that parallelize across the
  /// whole batch. Results are bit-identical to per-sample forward() at any
  /// batch size and thread count.
  virtual Tensor forward_batch(std::span<const Tensor* const> inputs,
                               std::int64_t batch) const;

  virtual std::uint64_t param_count() const { return 0; }
  virtual void init_params(util::Pcg32& /*rng*/) {}
  virtual void write_params(util::BinaryWriter& /*w*/) const {}
  virtual void read_params(util::BinaryReader& /*r*/) {}

  /// One-line config for the model description file, e.g.
  /// "k=7 s=2 p=3 out=64". Parsed back by model_io.
  virtual std::string config_str() const { return ""; }

 protected:
  /// Helper for subclasses: demand exactly `n` inputs.
  static void require_arity(std::span<const Shape> inputs, std::size_t n,
                            const char* what);

 private:
  std::string name_;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace offload::nn
