// Partition-point selection for partial inference (Section III.B.2). For
// every valid cut point the partitioner estimates
//   total = client(front) + capture + upload(snapshot+feature)
//         + restore + server(rear) + return path
// using the per-device layer cost models and the runtime bandwidth
// estimate, then picks the minimum — subject to the privacy constraint
// that at least one real layer runs on the client ("denaturing").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/nn/cost_model.h"
#include "src/nn/network.h"

namespace offload::nn {

struct PartitionCandidate {
  std::size_t cut = 0;          ///< node index whose output is transferred
  std::string layer_name;
  LayerKind kind = LayerKind::kInput;
  std::uint64_t feature_bytes = 0;   ///< raw fp32 feature size
  std::uint64_t snapshot_bytes = 0;  ///< estimated snapshot size (text)
  double client_front_s = 0;
  double capture_s = 0;
  double upload_s = 0;
  double restore_s = 0;
  double server_rear_s = 0;
  double return_s = 0;  ///< result snapshot back to the client
  bool denatures = false;  ///< true if >= 1 transforming layer runs locally

  double total_s() const {
    return client_front_s + capture_s + upload_s + restore_s + server_rear_s +
           return_s;
  }
};

struct PartitionerOptions {
  /// Snapshot bytes unrelated to the feature tensor (app code, heap, DOM) —
  /// the paper measures 0.02–0.09 MB.
  std::uint64_t snapshot_base_bytes = 90'000;
  /// Snapshot text bytes per raw feature byte. Floats print as decimal text
  /// in the snapshot, ~4.5x their binary size (the paper's GoogLeNet
  /// numbers: 14.7 MB of text for a 3.2 MB raw conv1 output).
  double text_expansion = 4.5;
  /// Result snapshot returned by the server (DOM update + scores).
  std::uint64_t result_snapshot_bytes = 20'000;
  /// Require at least one transforming layer on the client.
  bool require_denature = true;
  /// Snapshot capture/restore rates (bytes/s) on each side.
  double client_serialize_Bps = 25e6;
  double client_parse_Bps = 50e6;
  double server_serialize_Bps = 300e6;
  double server_parse_Bps = 600e6;
};

class Partitioner {
 public:
  Partitioner(const Network& net, const LayerCostModel& client,
              const LayerCostModel& server, PartitionerOptions options = {});

  /// Score every valid cut point under the given network conditions.
  /// Ordered by cut index; includes cut=0 (full offload) and the final
  /// node (fully local, infinite-bandwidth-independent baseline).
  std::vector<PartitionCandidate> evaluate(double bandwidth_bps,
                                           double latency_s) const;

  /// The minimizing candidate honoring the denature constraint (if the
  /// constraint filters everything, it is relaxed and the global best is
  /// returned).
  PartitionCandidate best(double bandwidth_bps, double latency_s) const;

  const PartitionerOptions& options() const { return options_; }

 private:
  const Network& net_;
  const LayerCostModel& client_;
  const LayerCostModel& server_;
  PartitionerOptions options_;
};

/// True for layer kinds that meaningfully transform the input so that the
/// transferred feature no longer resembles the user's image (conv, pool,
/// fc, lrn — not relu/dropout/concat which are shape- or sign-preserving).
bool denatures_input(LayerKind kind);

}  // namespace offload::nn
