#include "src/nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace offload::nn {

std::int64_t Shape::elements() const {
  std::int64_t n = 1;
  for (auto d : dims_) {
    if (d < 0) throw std::invalid_argument("Shape: negative dimension");
    n *= d;
  }
  return n;
}

std::string Shape::str() const {
  std::string out;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) out += 'x';
    out += std::to_string(dims_[i]);
  }
  return out.empty() ? "scalar" : out;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.elements()), 0.0f) {}

Tensor::Tensor(Shape shape, AlignedFloats data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (static_cast<std::int64_t>(data_.size()) != shape_.elements()) {
    throw std::invalid_argument("Tensor: data size does not match shape " +
                                shape_.str());
  }
}

Tensor::Tensor(Shape shape, const std::vector<float>& data)
    : Tensor(std::move(shape), AlignedFloats(data.begin(), data.end())) {}

Tensor::Tensor(Shape shape, std::initializer_list<float> data)
    : Tensor(std::move(shape), AlignedFloats(data.begin(), data.end())) {}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  std::fill(t.data_.begin(), t.data_.end(), value);
  return t;
}

Tensor Tensor::random_uniform(Shape shape, util::Pcg32& rng, float lo,
                              float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.elements() != elements()) {
    throw std::invalid_argument("Tensor::reshaped: element count mismatch");
  }
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::stack(std::span<const Tensor> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("Tensor::stack: no samples");
  }
  const Shape& per = samples[0].shape();
  std::vector<std::int64_t> dims;
  dims.reserve(per.rank() + 1);
  dims.push_back(static_cast<std::int64_t>(samples.size()));
  for (auto d : per.dims()) dims.push_back(d);
  Tensor out(Shape{std::move(dims)});
  const std::int64_t stride = per.elements();
  for (std::size_t b = 0; b < samples.size(); ++b) {
    if (samples[b].shape() != per) {
      throw std::invalid_argument("Tensor::stack: sample shapes differ: " +
                                  per.str() + " vs " +
                                  samples[b].shape().str());
    }
    auto src = samples[b].data();
    std::copy(src.begin(), src.end(),
              out.data_.begin() + static_cast<std::int64_t>(b) * stride);
  }
  return out;
}

Tensor Tensor::sample(std::int64_t b) const {
  if (shape_.rank() < 1 || b < 0 || b >= shape_[0]) {
    throw std::out_of_range("Tensor::sample: index " + std::to_string(b) +
                            " out of batch " + shape_.str());
  }
  Shape per(std::vector<std::int64_t>(shape_.dims().begin() + 1,
                                      shape_.dims().end()));
  const std::int64_t stride = per.elements();
  Tensor out(per);
  std::copy(data_.begin() + b * stride, data_.begin() + (b + 1) * stride,
            out.data_.begin());
  return out;
}

std::int64_t Tensor::argmax() const {
  if (data_.empty()) throw std::logic_error("Tensor::argmax on empty tensor");
  return std::max_element(data_.begin(), data_.end()) - data_.begin();
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  float m = 0.0f;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  }
  return m;
}

}  // namespace offload::nn
