// Local response normalization across channels (Caffe ACROSS_CHANNELS
// mode), used by GoogLeNet's stem and the Levi–Hassner age/gender nets.
#pragma once

#include "src/nn/layer.h"

namespace offload::nn {

struct LrnConfig {
  std::int64_t local_size = 5;
  double alpha = 1e-4;
  double beta = 0.75;
  double k = 1.0;
};

class LrnLayer final : public Layer {
 public:
  LrnLayer(std::string name, const LrnConfig& config)
      : Layer(std::move(name)), config_(config) {}

  LayerKind kind() const override { return LayerKind::kLRN; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  std::uint64_t flops(std::span<const Shape> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs) const override;
  Tensor forward_batch(std::span<const Tensor* const> inputs,
                       std::int64_t batch) const override;
  std::string config_str() const override;

  const LrnConfig& config() const { return config_; }

 private:
  LrnConfig config_;
};

}  // namespace offload::nn
