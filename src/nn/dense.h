// Fully connected (inner-product) layer. Flattens its input. The row
// kernel comes from the active kernel backend (src/nn/kernels.h); vector
// backends read a cached block-transposed copy of the weights, the int8
// backend a cached symmetric quantization.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/nn/layer.h"
#include "src/nn/quant.h"
#include "src/util/aligned.h"

namespace offload::nn {

class FullyConnectedLayer final : public Layer {
 public:
  FullyConnectedLayer(std::string name, std::int64_t in_features,
                      std::int64_t out_features);

  LayerKind kind() const override { return LayerKind::kFullyConnected; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  std::uint64_t flops(std::span<const Shape> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs) const override;
  Tensor forward_batch(std::span<const Tensor* const> inputs,
                       std::int64_t batch) const override;

  std::uint64_t param_count() const override;
  void init_params(util::Pcg32& rng) override;
  void write_params(util::BinaryWriter& w) const override;
  void read_params(util::BinaryReader& r) override;
  std::string config_str() const override;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

  /// Mutable access invalidates the transposed / quantized weight caches
  /// (rebuilt lazily on the next forward()).
  Tensor& weights() {
    invalidate_packs();
    return weights_;
  }
  Tensor& bias() { return bias_; }

 private:
  /// Block-transposed weight panels for one fc_block size (see
  /// pack_fc_transposed). Same locking discipline as ConvLayer's caches.
  struct TCache {
    std::vector<float, util::AlignedAllocator<float, 64>> panels;
    std::int64_t block = 0;
    std::atomic<bool> valid{false};
  };
  /// Row-major int8 quantized weights + the per-layer scale.
  struct QCache {
    std::vector<std::int8_t, util::AlignedAllocator<std::int8_t, 64>> qw;
    QuantParams params;
    std::atomic<bool> valid{false};
  };

  const float* ensure_transposed(std::int64_t block) const;
  const QCache& ensure_quantized() const;
  void warm_pack() const;
  void invalidate_packs();

  std::int64_t in_;
  std::int64_t out_;
  Tensor weights_;  ///< {out, in}
  Tensor bias_;     ///< {out}

  mutable TCache tcache_;
  mutable QCache qcache_;
  mutable std::mutex pack_mutex_;
};

}  // namespace offload::nn
