// Fully connected (inner-product) layer. Flattens its input.
#pragma once

#include "src/nn/layer.h"

namespace offload::nn {

class FullyConnectedLayer final : public Layer {
 public:
  FullyConnectedLayer(std::string name, std::int64_t in_features,
                      std::int64_t out_features);

  LayerKind kind() const override { return LayerKind::kFullyConnected; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  std::uint64_t flops(std::span<const Shape> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs) const override;
  Tensor forward_batch(std::span<const Tensor* const> inputs,
                       std::int64_t batch) const override;

  std::uint64_t param_count() const override;
  void init_params(util::Pcg32& rng) override;
  void write_params(util::BinaryWriter& w) const override;
  void read_params(util::BinaryReader& r) override;
  std::string config_str() const override;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  Tensor weights_;  ///< {out, in}
  Tensor bias_;     ///< {out}
};

}  // namespace offload::nn
