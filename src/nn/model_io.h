// Model file formats. A model ships as two files, mirroring Caffe's
// deploy.prototxt + .caffemodel pair that Caffe.js loads:
//  - "<name>.desc"    — text description of the layer graph,
//  - "<name>.weights" — binary fp32 parameters (the bulk of the bytes).
// These are the files the client pre-sends to the edge server
// (Section III.B.1). For partial inference the weights can be split at a
// cut point into front/rear files so the front part is never uploaded
// (Section III.B.2's defense against feature inversion).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/network.h"
#include "src/util/bytes.h"

namespace offload::nn {

/// A named file blob as moved by the offloading protocol.
struct ModelFile {
  std::string name;
  util::Bytes content;

  std::uint64_t size() const { return content.size(); }
};

/// Serialize the layer graph (no parameters) as a text description.
std::string save_description(const Network& net);

/// Rebuild a Network (uninitialized parameters) from a description.
/// Throws util::DecodeError on malformed input.
std::unique_ptr<Network> parse_description(const std::string& text);

/// Serialize parameters of nodes [begin, end) (default: all).
util::Bytes save_weights(const Network& net, std::size_t begin = 0,
                         std::size_t end = SIZE_MAX);

/// Load parameters into nodes [begin, end). Layer names and parameter
/// counts must match; throws util::DecodeError otherwise.
void load_weights(Network& net, std::span<const std::uint8_t> blob,
                  std::size_t begin = 0, std::size_t end = SIZE_MAX);

/// The full pre-send bundle: description + all weights.
std::vector<ModelFile> model_files(const Network& net);

/// Privacy-preserving bundle: description + only the rear weights
/// (parameters of nodes strictly after `cut`). The front stays client-side.
std::vector<ModelFile> model_files_rear_only(const Network& net,
                                             std::size_t cut);

/// Total bytes across files.
std::uint64_t total_size(const std::vector<ModelFile>& files);

}  // namespace offload::nn
