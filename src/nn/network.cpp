#include "src/nn/network.h"

#include <stdexcept>

#include "src/nn/kernels.h"
#include "src/obs/metrics.h"

namespace offload::nn {

std::size_t Network::add(LayerPtr layer, std::vector<std::string> inputs) {
  if (!layer) throw std::invalid_argument("Network::add: null layer");
  if (by_name_.count(layer->name())) {
    throw std::invalid_argument("Network::add: duplicate layer name " +
                                layer->name());
  }
  Node node;
  if (nodes_.empty()) {
    if (layer->kind() != LayerKind::kInput) {
      throw std::invalid_argument("Network::add: first node must be an input");
    }
    if (!inputs.empty()) {
      throw std::invalid_argument("Network::add: input layer takes no inputs");
    }
  } else if (inputs.empty()) {
    node.inputs.push_back(nodes_.size() - 1);  // default: chain
  } else {
    for (const auto& in : inputs) {
      node.inputs.push_back(index_of(in));
    }
  }
  by_name_.emplace(layer->name(), nodes_.size());
  node.layer = std::move(layer);
  nodes_.push_back(std::move(node));
  analyzed_ = false;
  // Validate shapes eagerly so graph construction errors fail fast; roll
  // back the node on error.
  try {
    analyze();
  } catch (...) {
    by_name_.erase(nodes_.back().layer->name());
    nodes_.pop_back();
    analyzed_ = false;
    throw;
  }
  return nodes_.size() - 1;
}

std::size_t Network::index_of(std::string_view layer_name) const {
  auto it = by_name_.find(std::string(layer_name));
  if (it == by_name_.end()) {
    throw std::out_of_range("Network: no layer named " +
                            std::string(layer_name));
  }
  return it->second;
}

bool Network::has_layer(std::string_view layer_name) const {
  return by_name_.count(std::string(layer_name)) > 0;
}

void Network::init_params(std::uint64_t seed) {
  util::Pcg32 rng(seed, 0x6d6f64656cULL);
  for (auto& node : nodes_) node.layer->init_params(rng);
}

std::uint64_t Network::param_count() const {
  return param_count_in_range(0, nodes_.size());
}

std::uint64_t Network::param_count_in_range(std::size_t begin,
                                            std::size_t end) const {
  std::uint64_t n = 0;
  for (std::size_t i = begin; i < end && i < nodes_.size(); ++i) {
    n += nodes_[i].layer->param_count();
  }
  return n;
}

const Network::Analysis& Network::analyze() const {
  if (analyzed_) return analysis_;
  Analysis a;
  a.shapes.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    std::vector<Shape> in_shapes;
    in_shapes.reserve(node.inputs.size());
    for (auto idx : node.inputs) in_shapes.push_back(a.shapes.at(idx));
    Shape out = node.layer->output_shape(in_shapes);
    std::uint64_t fl = node.layer->flops(in_shapes);
    a.shapes.push_back(out);
    a.flops.push_back(fl);
    a.output_bytes.push_back(static_cast<std::uint64_t>(out.elements()) *
                             sizeof(float));
    a.total_flops += fl;
  }
  analysis_ = std::move(a);
  analyzed_ = true;
  return analysis_;
}

Tensor Network::run_range(std::size_t begin, std::size_t end,
                          std::vector<Tensor>& values,
                          ForwardResult* result) const {
  // Ambient metrics sink (installed by ScopedMetrics around the measured
  // run_events calls). Read once on the calling thread — never inside the
  // kernels' parallel regions.
  obs::MetricsRegistry* metrics = obs::tls_metrics();
  for (std::size_t i = begin; i < end; ++i) {
    const Node& node = nodes_[i];
    std::vector<const Tensor*> ins;
    ins.reserve(node.inputs.size());
    for (auto idx : node.inputs) {
      if (values[idx].elements() == 0) {
        throw std::logic_error("Network: node " + node.layer->name() +
                               " reads unavailable value");
      }
      ins.push_back(&values[idx]);
    }
    values[i] = node.layer->forward(ins);
    if (result) {
      result->flops[i] = analyze().flops[i];
      result->output_bytes[i] = values[i].bytes();
    }
    if (metrics) {
      metrics->add("nn.layers_run");
      metrics->add("nn.flops", analyze().flops[i]);
      metrics->add("nn.output_bytes", values[i].bytes());
    }
  }
  if (metrics) {
    metrics->add("nn.forward_ranges");
    // Which backend ran the kernels. Counted only off the default so the
    // scalar metrics snapshots (and their goldens) keep their exact lines.
    const KernelBackend k = active_kernel_backend();
    if (k != KernelBackend::kScalar) {
      metrics->add(std::string("nn.kernels.") + kernel_backend_name(k));
    }
  }
  return values[end - 1];
}

Network::ForwardResult Network::forward(const Tensor& input) const {
  if (nodes_.empty()) throw std::logic_error("Network::forward: empty graph");
  ForwardResult result;
  result.flops.assign(nodes_.size(), 0);
  result.output_bytes.assign(nodes_.size(), 0);
  std::vector<Tensor> values(nodes_.size());
  const Tensor* in[] = {&input};
  values[0] = nodes_[0].layer->forward(in);
  result.flops[0] = 0;
  result.output_bytes[0] = values[0].bytes();
  result.output = run_range(1, nodes_.size(), values, &result);
  if (nodes_.size() == 1) result.output = values[0];
  return result;
}

Tensor Network::run_range_batch(std::size_t begin, std::size_t end,
                                std::vector<Tensor>& values,
                                std::int64_t batch) const {
  obs::MetricsRegistry* metrics = obs::tls_metrics();
  for (std::size_t i = begin; i < end; ++i) {
    const Node& node = nodes_[i];
    std::vector<const Tensor*> ins;
    ins.reserve(node.inputs.size());
    for (auto idx : node.inputs) {
      if (values[idx].elements() == 0) {
        throw std::logic_error("Network: node " + node.layer->name() +
                               " reads unavailable value");
      }
      ins.push_back(&values[idx]);
    }
    values[i] = node.layer->forward_batch(ins, batch);
    if (metrics) {
      metrics->add("nn.layers_run");
      metrics->add("nn.flops",
                   analyze().flops[i] * static_cast<std::uint64_t>(batch));
      metrics->add("nn.output_bytes", values[i].bytes());
    }
  }
  if (metrics) {
    metrics->add("nn.forward_ranges");
    metrics->add("nn.batched_samples", static_cast<std::uint64_t>(batch));
    const KernelBackend k = active_kernel_backend();
    if (k != KernelBackend::kScalar) {
      metrics->add(std::string("nn.kernels.") + kernel_backend_name(k));
    }
  }
  return values[end - 1];
}

Tensor Network::forward_batch(const Tensor& input) const {
  if (nodes_.empty()) {
    throw std::logic_error("Network::forward_batch: empty graph");
  }
  if (input.shape().rank() < 1 || input.shape()[0] < 1) {
    throw std::invalid_argument(
        "Network::forward_batch: input needs a leading batch dim");
  }
  const std::int64_t batch = input.shape()[0];
  std::vector<Tensor> values(nodes_.size());
  const Tensor* in[] = {&input};
  values[0] = nodes_[0].layer->forward_batch(in, batch);
  if (nodes_.size() == 1) return values[0];
  return run_range_batch(1, nodes_.size(), values, batch);
}

Tensor Network::forward_rear_batch(const Tensor& features,
                                   std::size_t cut) const {
  if (cut + 1 >= nodes_.size()) {
    throw std::out_of_range("forward_rear_batch: nothing after cut");
  }
  if (features.shape().rank() < 1 || features.shape()[0] < 1) {
    throw std::invalid_argument(
        "forward_rear_batch: features need a leading batch dim");
  }
  const std::int64_t batch = features.shape()[0];
  std::vector<std::int64_t> per(features.shape().dims().begin() + 1,
                                features.shape().dims().end());
  if (Shape(per) != analyze().shapes[cut]) {
    throw std::invalid_argument("forward_rear_batch: per-sample shape " +
                                Shape(per).str() + " != expected " +
                                analyze().shapes[cut].str());
  }
  std::vector<Tensor> values(nodes_.size());
  values[cut] = features;
  return run_range_batch(cut + 1, nodes_.size(), values, batch);
}

Tensor Network::forward_front(const Tensor& input, std::size_t cut) const {
  if (cut >= nodes_.size()) {
    throw std::out_of_range("forward_front: cut out of range");
  }
  std::vector<Tensor> values(nodes_.size());
  const Tensor* in[] = {&input};
  values[0] = nodes_[0].layer->forward(in);
  if (cut == 0) return values[0];
  return run_range(1, cut + 1, values, nullptr);
}

Tensor Network::forward_rear(const Tensor& feature, std::size_t cut) const {
  if (cut + 1 >= nodes_.size()) {
    throw std::out_of_range("forward_rear: nothing after cut");
  }
  if (feature.shape() != analyze().shapes[cut]) {
    throw std::invalid_argument("forward_rear: feature shape " +
                                feature.shape().str() + " != expected " +
                                analyze().shapes[cut].str());
  }
  std::vector<Tensor> values(nodes_.size());
  values[cut] = feature;
  return run_range(cut + 1, nodes_.size(), values, nullptr);
}

std::vector<std::size_t> Network::cut_points() const {
  std::vector<std::size_t> points;
  if (nodes_.empty()) return points;
  // lowest_input[v] = min over inputs; a cut after node i is valid iff no
  // node v > i has an input u < i. Track the running minimum as we scan
  // backwards.
  const std::size_t n = nodes_.size();
  std::vector<std::size_t> min_input_after(n + 1, n);
  for (std::size_t v = n; v-- > 1;) {
    std::size_t m = min_input_after[v + 1];
    for (auto u : nodes_[v].inputs) m = std::min(m, u);
    min_input_after[v] = m;
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    // Edges from nodes > i must originate at >= i (i.e. at node i itself).
    if (min_input_after[i + 1] >= i) points.push_back(i);
  }
  points.push_back(n - 1);  // "cut" after the last node = run fully local
  return points;
}

}  // namespace offload::nn
