#include "src/nn/models.h"

#include <memory>
#include <string>

#include "src/nn/activation.h"
#include "src/nn/concat.h"
#include "src/nn/conv.h"
#include "src/nn/dense.h"
#include "src/nn/lrn.h"
#include "src/nn/pool.h"

namespace offload::nn {
namespace {

/// Fluent chain builder: remembers the last-added node so sequential
/// architectures read top-to-bottom like a prototxt.
class Builder {
 public:
  explicit Builder(Network& net) : net_(net) {}

  Builder& input(const std::string& name, Shape shape,
                 double scale = 1.0 / 255.0) {
    // Apps feed canvas pixel data (0..255); the input layer applies the
    // Caffe-style transform scale into [0,1].
    net_.add(std::make_unique<InputLayer>(name, std::move(shape), scale));
    last_ = name;
    return *this;
  }

  Builder& conv(const std::string& name, std::int64_t in, std::int64_t out,
                std::int64_t k, std::int64_t s, std::int64_t p,
                bool relu = true) {
    net_.add(std::make_unique<ConvLayer>(
                 name, ConvConfig{.in_channels = in,
                                  .out_channels = out,
                                  .kernel = k,
                                  .stride = s,
                                  .pad = p}),
             {last_});
    last_ = name;
    if (relu) this->relu(name + "_relu");
    return *this;
  }

  Builder& relu(const std::string& name) {
    net_.add(std::make_unique<ReluLayer>(name), {last_});
    last_ = name;
    return *this;
  }

  Builder& maxpool(const std::string& name, std::int64_t k, std::int64_t s,
                   std::int64_t p = 0) {
    net_.add(std::make_unique<PoolLayer>(
                 name, PoolConfig{.kernel = k, .stride = s, .pad = p},
                 /*average=*/false),
             {last_});
    last_ = name;
    return *this;
  }

  Builder& avgpool(const std::string& name, std::int64_t k, std::int64_t s) {
    net_.add(std::make_unique<PoolLayer>(
                 name, PoolConfig{.kernel = k, .stride = s, .pad = 0},
                 /*average=*/true),
             {last_});
    last_ = name;
    return *this;
  }

  Builder& lrn(const std::string& name) {
    net_.add(std::make_unique<LrnLayer>(name, LrnConfig{}), {last_});
    last_ = name;
    return *this;
  }

  Builder& fc(const std::string& name, std::int64_t in, std::int64_t out,
              bool relu = false) {
    net_.add(std::make_unique<FullyConnectedLayer>(name, in, out), {last_});
    last_ = name;
    if (relu) this->relu(name + "_relu");
    return *this;
  }

  Builder& dropout(const std::string& name, double rate) {
    net_.add(std::make_unique<DropoutLayer>(name, rate), {last_});
    last_ = name;
    return *this;
  }

  Builder& softmax(const std::string& name) {
    net_.add(std::make_unique<SoftmaxLayer>(name), {last_});
    last_ = name;
    return *this;
  }

  /// GoogLeNet inception module: four parallel branches concatenated along
  /// channels (1x1; 1x1→3x3; 1x1→5x5; 3x3 maxpool→1x1).
  Builder& inception(const std::string& prefix, std::int64_t in,
                     std::int64_t c1, std::int64_t c3r, std::int64_t c3,
                     std::int64_t c5r, std::int64_t c5, std::int64_t cp) {
    const std::string from = last_;
    auto branch_conv = [&](const std::string& n, std::int64_t ic,
                           std::int64_t oc, std::int64_t k, std::int64_t p,
                           const std::string& src) {
      net_.add(std::make_unique<ConvLayer>(
                   n, ConvConfig{.in_channels = ic,
                                 .out_channels = oc,
                                 .kernel = k,
                                 .stride = 1,
                                 .pad = p}),
               {src});
      net_.add(std::make_unique<ReluLayer>(n + "_relu"), {n});
      return n + "_relu";
    };
    std::string b1 = branch_conv(prefix + "_1x1", in, c1, 1, 0, from);
    std::string b3r = branch_conv(prefix + "_3x3r", in, c3r, 1, 0, from);
    std::string b3 = branch_conv(prefix + "_3x3", c3r, c3, 3, 1, b3r);
    std::string b5r = branch_conv(prefix + "_5x5r", in, c5r, 1, 0, from);
    std::string b5 = branch_conv(prefix + "_5x5", c5r, c5, 5, 2, b5r);
    net_.add(std::make_unique<PoolLayer>(
                 prefix + "_pool", PoolConfig{.kernel = 3, .stride = 1, .pad = 1},
                 /*average=*/false),
             {from});
    std::string bp =
        branch_conv(prefix + "_poolproj", in, cp, 1, 0, prefix + "_pool");
    net_.add(std::make_unique<ConcatLayer>(prefix + "_out"),
             {b1, b3, b5, bp});
    last_ = prefix + "_out";
    return *this;
  }

  const std::string& last() const { return last_; }

 private:
  Network& net_;
  std::string last_;
};

}  // namespace

std::unique_ptr<Network> build_googlenet(std::uint64_t param_seed) {
  auto net = std::make_unique<Network>("googlenet");
  Builder b(*net);
  b.input("data", Shape{3, 224, 224})
      .conv("conv1", 3, 64, 7, 2, 3)
      .maxpool("pool1", 3, 2)
      .lrn("norm1")
      .conv("conv2r", 64, 64, 1, 1, 0)
      .conv("conv2", 64, 192, 3, 1, 1)
      .lrn("norm2")
      .maxpool("pool2", 3, 2)
      .inception("inc3a", 192, 64, 96, 128, 16, 32, 32)
      .inception("inc3b", 256, 128, 128, 192, 32, 96, 64)
      .maxpool("pool3", 3, 2)
      .inception("inc4a", 480, 192, 96, 208, 16, 48, 64)
      .inception("inc4b", 512, 160, 112, 224, 24, 64, 64)
      .inception("inc4c", 512, 128, 128, 256, 24, 64, 64)
      .inception("inc4d", 512, 112, 144, 288, 32, 64, 64)
      .inception("inc4e", 528, 256, 160, 320, 32, 128, 128)
      .maxpool("pool4", 3, 2)
      .inception("inc5a", 832, 256, 160, 320, 32, 128, 128)
      .inception("inc5b", 832, 384, 192, 384, 48, 128, 128)
      .avgpool("pool5", 7, 1)
      .dropout("drop", 0.4)
      .fc("loss3_classifier", 1024, 1000)
      .softmax("prob");
  net->init_params(param_seed);
  return net;
}

namespace {

/// Levi–Hassner CNN; AgeNet and GenderNet differ only in the output count.
std::unique_ptr<Network> build_levi_hassner(const std::string& name,
                                            std::int64_t classes,
                                            std::uint64_t param_seed) {
  auto net = std::make_unique<Network>(name);
  Builder b(*net);
  b.input("data", Shape{3, 227, 227})
      .conv("conv1", 3, 96, 7, 4, 0)
      .maxpool("pool1", 3, 2)
      .lrn("norm1")
      .conv("conv2", 96, 256, 5, 1, 2)
      .maxpool("pool2", 3, 2)
      .lrn("norm2")
      .conv("conv3", 256, 384, 3, 1, 1)
      .maxpool("pool5", 3, 2)
      .fc("fc6", 384 * 7 * 7, 512, /*relu=*/true)
      .dropout("drop6", 0.5)
      .fc("fc7", 512, 512, /*relu=*/true)
      .dropout("drop7", 0.5)
      .fc("fc8", 512, classes)
      .softmax("prob");
  net->init_params(param_seed);
  return net;
}

}  // namespace

std::unique_ptr<Network> build_agenet(std::uint64_t param_seed) {
  return build_levi_hassner("agenet", 8, param_seed);
}

std::unique_ptr<Network> build_gendernet(std::uint64_t param_seed) {
  return build_levi_hassner("gendernet", 2, param_seed);
}

std::unique_ptr<Network> build_tiny_cnn(std::uint64_t param_seed,
                                        std::int64_t classes) {
  auto net = std::make_unique<Network>("tinycnn");
  Builder b(*net);
  b.input("data", Shape{3, 32, 32})
      .conv("conv1", 3, 16, 5, 1, 2)
      .maxpool("pool1", 2, 2)
      .conv("conv2", 16, 32, 5, 1, 2)
      .maxpool("pool2", 2, 2)
      .fc("fc3", 32 * 8 * 8, 64, /*relu=*/true)
      .fc("fc4", 64, classes)
      .softmax("prob");
  net->init_params(param_seed);
  return net;
}

std::unique_ptr<Network> build_tiny_cnn_default(std::uint64_t param_seed) {
  return build_tiny_cnn(param_seed, 10);
}

std::vector<BenchmarkModel> benchmark_models() {
  return {
      {"GoogleNet", &build_googlenet, 7, 224},
      {"AgeNet", &build_agenet, 11, 227},
      {"GenderNet", &build_gendernet, 13, 227},
  };
}

}  // namespace offload::nn
