#include "src/nn/device.h"

namespace offload::nn {
namespace {

constexpr std::size_t idx(LayerKind kind) {
  return static_cast<std::size_t>(kind);
}

}  // namespace

DeviceProfile DeviceProfile::for_kernel_backend(KernelBackend k) const {
  if (k == KernelBackend::kScalar) return *this;
  DeviceProfile p = *this;
  const double dense =
      k == KernelBackend::kInt8 ? int8_dense_gain : simd_dense_gain;
  p.gflops[idx(LayerKind::kConv)] *= dense;
  p.gflops[idx(LayerKind::kFullyConnected)] *= dense;
  // int8 runs the simd fp32 kernels on its non-GEMM layers, so both
  // backends share the light-layer gain.
  p.gflops[idx(LayerKind::kMaxPool)] *= simd_light_gain;
  p.gflops[idx(LayerKind::kAvgPool)] *= simd_light_gain;
  p.gflops[idx(LayerKind::kReLU)] *= simd_light_gain;
  p.gflops[idx(LayerKind::kLRN)] *= simd_light_gain;
  p.gflops[idx(LayerKind::kSoftmax)] *= simd_light_gain;
  p.name += std::string("+") + kernel_backend_name(k);
  return p;
}

double DeviceProfile::layer_time_s(LayerKind kind, std::uint64_t flops) const {
  double throughput = gflops[idx(kind)];
  if (throughput <= 0.0) return per_layer_overhead_s;  // free layers (input)
  return static_cast<double>(flops) / (throughput * 1e9) +
         per_layer_overhead_s;
}

double DeviceProfile::layer_batch_time_s(LayerKind kind, std::uint64_t flops,
                                         std::int64_t batch) const {
  const double first = layer_time_s(kind, flops);
  if (batch <= 1) return first;
  const double throughput = gflops[idx(kind)];
  if (throughput <= 0.0) return first;  // overhead-only layers don't scale
  const double speedup = batch_marginal_speedup > 0.0
                             ? batch_marginal_speedup
                             : 1.0;
  const double marginal =
      static_cast<double>(flops) / (throughput * speedup * 1e9);
  return first + static_cast<double>(batch - 1) * marginal;
}

double DeviceProfile::network_time_s(const Network& net, std::size_t begin,
                                     std::size_t end) const {
  const auto& analysis = net.analyze();
  double total = 0.0;
  end = std::min(end, net.size());
  for (std::size_t i = begin; i < end; ++i) {
    total += layer_time_s(net.layer(i).kind(), analysis.flops[i]);
  }
  return total;
}

double DeviceProfile::network_batch_time_s(const Network& net,
                                           std::size_t begin, std::size_t end,
                                           std::int64_t batch) const {
  const auto& analysis = net.analyze();
  double total = 0.0;
  end = std::min(end, net.size());
  for (std::size_t i = begin; i < end; ++i) {
    total += layer_batch_time_s(net.layer(i).kind(), analysis.flops[i], batch);
  }
  return total;
}

double DeviceProfile::snapshot_capture_s(std::uint64_t snapshot_bytes) const {
  return static_cast<double>(snapshot_bytes) / snapshot_serialize_Bps;
}

double DeviceProfile::snapshot_restore_s(std::uint64_t snapshot_bytes) const {
  return static_cast<double>(snapshot_bytes) / snapshot_parse_Bps;
}

DeviceProfile DeviceProfile::embedded_client() {
  DeviceProfile p;
  p.name = "odroid-xu4-caffejs";
  p.gflops[idx(LayerKind::kInput)] = 0.0;
  p.gflops[idx(LayerKind::kConv)] = 0.15;
  p.gflops[idx(LayerKind::kMaxPool)] = 0.06;
  p.gflops[idx(LayerKind::kAvgPool)] = 0.06;
  p.gflops[idx(LayerKind::kFullyConnected)] = 0.125;
  p.gflops[idx(LayerKind::kReLU)] = 0.25;
  p.gflops[idx(LayerKind::kLRN)] = 0.04;
  p.gflops[idx(LayerKind::kSoftmax)] = 0.05;
  p.gflops[idx(LayerKind::kConcat)] = 0.40;
  p.gflops[idx(LayerKind::kDropout)] = 0.0;
  p.per_layer_overhead_s = 1.0e-3;
  p.snapshot_serialize_Bps = 25e6;
  p.snapshot_parse_Bps = 50e6;
  // Small caches: weights are re-streamed for every sample, so fusing a
  // batch barely helps beyond amortizing dispatch overhead.
  p.batch_marginal_speedup = 1.25;
  // NEON-class vectors: modest fp32 gain (128-bit lanes, in-order core),
  // bigger int8 win (sdot-style 4x density), but the weakest rounding
  // hardware in the fleet — quantized answers drift the most here.
  p.simd_dense_gain = 3.3;
  p.simd_light_gain = 2.0;
  p.int8_dense_gain = 5.5;
  p.int8_fidelity = 0.993;
  return p;
}

DeviceProfile DeviceProfile::edge_server_gpu() {
  DeviceProfile p = edge_server();
  p.name = "x86-edge-webgl";
  // WebGL moves the tensor ops to the GPU: ~80x on the compute-dense
  // layers, less on memory-bound ones (transfer overheads).
  p.gflops[idx(LayerKind::kConv)] *= 80.0;
  p.gflops[idx(LayerKind::kFullyConnected)] *= 80.0;
  p.gflops[idx(LayerKind::kMaxPool)] *= 20.0;
  p.gflops[idx(LayerKind::kAvgPool)] *= 20.0;
  p.gflops[idx(LayerKind::kLRN)] *= 20.0;
  p.gflops[idx(LayerKind::kReLU)] *= 20.0;
  p.gflops[idx(LayerKind::kSoftmax)] *= 20.0;
  p.gflops[idx(LayerKind::kConcat)] *= 10.0;
  p.per_layer_overhead_s = 0.2e-3;  // GPU dispatch overhead
  // Uploading weight textures dominates single-sample WebGL inference;
  // fused batches reuse them, so marginal samples are far cheaper.
  p.batch_marginal_speedup = 5.0;
  // The WebGL path bypasses the CPU kernel backends entirely: deriving a
  // simd/int8 profile of a GPU device is a no-op by construction.
  p.simd_dense_gain = 1.0;
  p.simd_light_gain = 1.0;
  p.int8_dense_gain = 1.0;
  p.int8_fidelity = 1.0;
  return p;
}

DeviceProfile DeviceProfile::edge_server() {
  DeviceProfile p = embedded_client();
  p.name = "x86-edge-caffejs";
  // The paper's server runs the same Caffe.js stack far faster per layer
  // (3.4 GHz out-of-order x86 with large caches vs a 2.0 GHz in-order
  // ARM); ~24x per core for JS float loops.
  for (auto& g : p.gflops) g *= 24.0;
  p.per_layer_overhead_s = 0.1e-3;
  p.snapshot_serialize_Bps = 300e6;
  p.snapshot_parse_Bps = 600e6;
  // Large caches keep the hot weight working set resident across the
  // samples of a fused batch.
  p.batch_marginal_speedup = 1.7;
  // AVX2/AVX-512-class vectors: wide fp32 FMA units and vpmaddubsw-style
  // int8 throughput; rounding-hardware quality keeps quantized answers
  // close to fp32.
  p.simd_dense_gain = 6.8;
  p.simd_light_gain = 3.0;
  p.int8_dense_gain = 11.0;
  p.int8_fidelity = 0.998;
  return p;
}

DeviceProfile DeviceProfile::cloud_server() {
  DeviceProfile p = edge_server();
  p.name = "x86-cloud-caffejs";
  // A regional-cloud machine: newer cores, wider vectors, more memory
  // bandwidth — ~3x the edge box per lane across the board.
  for (auto& g : p.gflops) g *= 3.0;
  p.per_layer_overhead_s = 0.05e-3;
  p.snapshot_serialize_Bps = 600e6;
  p.snapshot_parse_Bps = 1200e6;
  p.batch_marginal_speedup = 2.0;
  // Newer vector units than the edge box (full-width AVX-512 + VNNI).
  p.simd_dense_gain = 7.5;
  p.simd_light_gain = 3.2;
  p.int8_dense_gain = 12.5;
  p.int8_fidelity = 0.999;
  return p;
}

}  // namespace offload::nn
