// Kernel backend registry: env-driven selection, CPU detection, and the
// per-backend ops tables. Kernel bodies live in kernels_scalar.cpp /
// kernels_simd.cpp; this TU has no float math of its own.
#include "src/nn/kernels.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "src/nn/kernels_impl.h"

namespace offload::nn {
namespace {

KernelOps make_scalar_ops() {
  KernelOps ops;
  ops.kind = KernelBackend::kScalar;
  ops.name = "scalar";
  ops.quantized = false;
  ops.gemm_mr = 4;
  ops.gemm_nr = 8;
  ops.gemm_tile = &detail::scalar_gemm_tile;
  ops.gemm_tile_i8 = &detail::scalar_gemm_tile_i8;
  ops.fc_block = 8;
  ops.fc_rows = &detail::scalar_fc_rows;
  ops.fc_rows_i8 = &detail::scalar_fc_rows_i8;
  ops.relu_range = &detail::scalar_relu_range;
  ops.pool_plane = &detail::scalar_pool_plane;
  ops.lrn_row = &detail::scalar_lrn_row;
  return ops;
}

struct Tables {
  KernelOps scalar;
  KernelOps simd;
  KernelOps int8;
  Tables() {
    scalar = make_scalar_ops();
    simd = detail::make_simd_ops();
    // int8 = the simd table with the quantized conv/fc paths switched on:
    // non-GEMM layers run the fastest fp32 kernels the machine has.
    int8 = simd;
    int8.kind = KernelBackend::kInt8;
    int8.name = "int8";
    int8.quantized = true;
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

KernelBackend backend_from_env() {
  if (const char* env = std::getenv("OFFLOAD_KERNELS")) {
    if (auto parsed = parse_kernel_backend(env)) return *parsed;
  }
  return KernelBackend::kScalar;  // unknown values fall back to scalar
}

std::atomic<KernelBackend>& active_slot() {
  static std::atomic<KernelBackend> slot{backend_from_env()};
  return slot;
}

}  // namespace

const char* kernel_backend_name(KernelBackend k) {
  switch (k) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kSimd:
      return "simd";
    case KernelBackend::kInt8:
      return "int8";
  }
  return "?";
}

std::optional<KernelBackend> parse_kernel_backend(std::string_view s) {
  if (s == "scalar" || s == "fp32") return KernelBackend::kScalar;
  if (s == "simd" || s == "vector") return KernelBackend::kSimd;
  if (s == "int8" || s == "quant") return KernelBackend::kInt8;
  return std::nullopt;
}

bool cpu_supports_simd() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_supports_avx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

KernelBackend active_kernel_backend() {
  return active_slot().load(std::memory_order_relaxed);
}

KernelBackend set_kernel_backend(KernelBackend k) {
  return active_slot().exchange(k, std::memory_order_relaxed);
}

const KernelOps& kernel_ops(KernelBackend k) {
  const Tables& t = tables();
  switch (k) {
    case KernelBackend::kSimd:
      return t.simd;
    case KernelBackend::kInt8:
      return t.int8;
    case KernelBackend::kScalar:
      break;
  }
  return t.scalar;
}

void tag_kernel_backend_span(obs::Tracer& tracer, obs::SpanId span) {
  const KernelBackend k = active_kernel_backend();
  if (k == KernelBackend::kScalar) return;  // golden traces stay untouched
  tracer.attr(span, "kernels.backend", kernel_backend_name(k));
}

}  // namespace offload::nn
