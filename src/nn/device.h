// Device performance profiles. The paper runs Caffe.js on a weak ARM
// client (Odroid-XU4) and a 3.4 GHz x86 edge server; we reproduce that as
// per-layer-kind floating-point throughputs (JS engines execute conv, fc,
// lrn... at very different efficiencies) plus snapshot serialize/parse
// rates. Simulated compute time = measured FLOPs ÷ throughput, so the
// experiments are deterministic while the tensors themselves are real.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "src/nn/kernels.h"
#include "src/nn/layer.h"
#include "src/nn/network.h"

namespace offload::nn {

struct DeviceProfile {
  std::string name;
  /// GFLOP/s per layer kind (indexed by LayerKind).
  std::array<double, 10> gflops{};
  /// Fixed dispatch overhead charged per layer execution (seconds).
  double per_layer_overhead_s = 0.0;
  /// Snapshot text production rate, bytes/second (capture side).
  double snapshot_serialize_Bps = 30e6;
  /// Snapshot parse+restore rate, bytes/second (restore side).
  double snapshot_parse_Bps = 60e6;
  /// Effective throughput multiplier for the 2nd..Nth sample of a fused
  /// batched layer launch. Weights stream through the cache (or over the
  /// PCIe bus, for WebGL) once per launch instead of once per sample, so
  /// marginal samples run closer to compute-bound. 1.0 = batching buys
  /// nothing beyond amortized per-layer overhead.
  double batch_marginal_speedup = 1.0;

  // --- kernel-backend cost modeling (opt-in via for_kernel_backend) ---
  //
  // How much faster this device's GEMM-heavy layers (conv, fc) run under
  // the hand-vectorized simd resp. int8 backend, and how much its
  // memory-bound layers (pool, relu, lrn) gain from vector loads. The
  // defaults are identity, so nothing changes unless a caller explicitly
  // derives a backend-adjusted profile — golden traces and the paper
  // figures always see the base (scalar) numbers.
  double simd_dense_gain = 1.0;   ///< conv/fc gflops multiplier under simd
  double simd_light_gain = 1.0;   ///< pool/relu/lrn/softmax gain under simd
  double int8_dense_gain = 1.0;   ///< conv/fc gflops multiplier under int8
  /// Top-1-preserving output fidelity of the int8 backend on this device
  /// (1.0 = bit-perfect). Feeds accuracy-aware cut selection: a controller
  /// can refuse to move layers onto a device whose quantized path would
  /// degrade the answer.
  double int8_fidelity = 1.0;

  /// Profile this device would present if its NN stack ran the given
  /// kernel backend: kScalar returns *this unchanged; kSimd scales conv/fc
  /// by simd_dense_gain and the light layers by simd_light_gain; kInt8
  /// additionally swaps the dense gain for int8_dense_gain. The name gains
  /// a "+simd"/"+int8" suffix so profiled tables stay distinguishable.
  DeviceProfile for_kernel_backend(KernelBackend k) const;

  /// Time to execute one layer with the given FLOP count.
  double layer_time_s(LayerKind kind, std::uint64_t flops) const;

  /// Time to execute one layer over a fused batch of `batch` samples,
  /// each costing `flops`. The first sample pays the same as
  /// layer_time_s (so batch=1 is bit-for-bit the unbatched cost); each
  /// additional sample adds flops/(throughput × batch_marginal_speedup)
  /// and no further per-layer overhead.
  double layer_batch_time_s(LayerKind kind, std::uint64_t flops,
                            std::int64_t batch) const;

  /// Time to execute nodes [begin, end) of `net` on this device.
  double network_time_s(const Network& net, std::size_t begin,
                        std::size_t end) const;
  double network_time_s(const Network& net) const {
    return network_time_s(net, 0, net.size());
  }

  /// Batched-launch time for nodes [begin, end): sums layer_batch_time_s
  /// per node. Equals network_time_s when batch == 1.
  double network_batch_time_s(const Network& net, std::size_t begin,
                              std::size_t end, std::int64_t batch) const;

  double snapshot_capture_s(std::uint64_t snapshot_bytes) const;
  double snapshot_restore_s(std::uint64_t snapshot_bytes) const;

  /// Odroid-XU4-class embedded client running a JS ML framework
  /// (~0.15 GFLOP/s on conv — no SIMD, no GPU, as the paper notes).
  static DeviceProfile embedded_client();
  /// x86 edge server (3.4 GHz quad-core) running the same stack, ~24x the
  /// client per core.
  static DeviceProfile edge_server();
  /// Near-future server the paper anticipates in Section IV.A: a browser
  /// ML stack using the GPU via WebGL ("~80x speedup for DNN inference").
  /// Conv/fc throughput scales by that factor; memory-bound layers by
  /// less.
  static DeviceProfile edge_server_gpu();
  /// Regional cloud machine above the edge tier: newer cores and wider
  /// SIMD than the edge box, reached over a fatter but higher-latency WAN
  /// uplink (src/tier escalation target).
  static DeviceProfile cloud_server();
};

}  // namespace offload::nn
