#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/nn/activation.h"
#include "src/nn/concat.h"
#include "src/nn/conv.h"
#include "src/nn/dense.h"
#include "src/nn/lrn.h"
#include "src/nn/pool.h"
#include "src/util/arena.h"
#include "src/util/thread_pool.h"

namespace offload::nn {
namespace {

void require_rank3(const Shape& s, const char* what) {
  if (s.rank() != 3) {
    throw std::invalid_argument(std::string(what) +
                                ": expected CHW input, got " + s.str());
  }
}

/// Caffe conv output size: floor((in + 2p - k) / s) + 1.
std::int64_t conv_out_dim(std::int64_t in, std::int64_t k, std::int64_t s,
                          std::int64_t p) {
  return (in + 2 * p - k) / s + 1;
}

/// Caffe pool output size: ceil((in + 2p - k) / s) + 1, clipped so the last
/// window starts inside the (padded) input.
std::int64_t pool_out_dim(std::int64_t in, std::int64_t k, std::int64_t s,
                          std::int64_t p) {
  std::int64_t out =
      (in + 2 * p - k + s - 1) / s + 1;  // ceil division for non-negatives
  if (p > 0 && (out - 1) * s >= in + p) --out;
  return out;
}

}  // namespace

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput:
      return "input";
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kMaxPool:
      return "maxpool";
    case LayerKind::kAvgPool:
      return "avgpool";
    case LayerKind::kFullyConnected:
      return "fc";
    case LayerKind::kReLU:
      return "relu";
    case LayerKind::kLRN:
      return "lrn";
    case LayerKind::kSoftmax:
      return "softmax";
    case LayerKind::kConcat:
      return "concat";
    case LayerKind::kDropout:
      return "dropout";
  }
  return "?";
}

void Layer::require_arity(std::span<const Shape> inputs, std::size_t n,
                          const char* what) {
  if (inputs.size() != n) {
    throw std::invalid_argument(std::string(what) + ": expected " +
                                std::to_string(n) + " inputs, got " +
                                std::to_string(inputs.size()));
  }
}

// ---------------------------------------------------------------- InputLayer

Shape InputLayer::output_shape(std::span<const Shape> inputs) const {
  if (!inputs.empty()) {
    throw std::invalid_argument("input layer takes no graph inputs");
  }
  return shape_;
}

std::uint64_t InputLayer::flops(std::span<const Shape>) const { return 0; }

Tensor InputLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) {
    throw std::invalid_argument("input layer: feed exactly one tensor");
  }
  if (inputs[0]->shape() != shape_) {
    throw std::invalid_argument("input layer: expected " + shape_.str() +
                                ", got " + inputs[0]->shape().str());
  }
  Tensor out = *inputs[0];
  if (scale_ != 1.0) {
    const auto s = static_cast<float>(scale_);
    for (auto& v : out.data()) v *= s;
  }
  return out;
}

std::string InputLayer::config_str() const {
  std::string out = "shape=" + shape_.str();
  if (scale_ != 1.0) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", scale_);  // exact round trip
    out += std::string(" scale=") + buf;
  }
  return out;
}

// ----------------------------------------------------------------- ConvLayer
//
// forward() = parallel im2col + packed, register-tiled GEMM. The GEMM
// partitions the output matrix into kRowBlock x kColBlock macro-tiles that
// run as independent parallel_for tasks (disjoint output ranges), and each
// macro-tile is computed with a kMR x kNR register micro-kernel over
// panel-packed weights. Every output element accumulates bias-first then k
// ascending, so results are bit-identical at any thread count.

namespace {

constexpr std::int64_t kMR = 4;   ///< micro-kernel rows (output channels)
constexpr std::int64_t kNR = 8;   ///< micro-kernel cols (output pixels)
constexpr std::int64_t kRowBlock = 64;   ///< C rows per task (multiple of kMR)
constexpr std::int64_t kColBlock = 512;  ///< C cols per task (multiple of kNR)

/// col[r][ow..] rows for r in [row_lo, row_hi), r = (c*K + kh)*K + kw.
/// Writes zeros where the window reads padding, so the buffer needs no
/// pre-clearing (it comes from the scratch arena, not calloc).
void im2col_rows(const float* src, std::int64_t H, std::int64_t W,
                 std::int64_t K, std::int64_t S, std::int64_t P,
                 std::int64_t OH, std::int64_t OW, float* col,
                 std::int64_t row_lo, std::int64_t row_hi) {
  const std::int64_t N = OH * OW;
  for (std::int64_t r = row_lo; r < row_hi; ++r) {
    const std::int64_t c = r / (K * K);
    const std::int64_t kh = (r / K) % K;
    const std::int64_t kw = r % K;
    float* dst = col + r * N;
    // ow range whose input column iw = ow*S + kw - P lands inside [0, W).
    const std::int64_t ow0 =
        kw >= P ? 0 : std::min(OW, (P - kw + S - 1) / S);
    const std::int64_t ow1 =
        W - 1 - kw + P < 0
            ? ow0
            : std::max(ow0, std::min(OW, (W - 1 - kw + P) / S + 1));
    for (std::int64_t oh = 0; oh < OH; ++oh) {
      const std::int64_t ih = oh * S + kh - P;
      if (ih < 0 || ih >= H) {
        std::fill(dst, dst + OW, 0.0f);
        dst += OW;
        continue;
      }
      const float* row = src + (c * H + ih) * W;
      std::fill(dst, dst + ow0, 0.0f);
      if (S == 1) {
        const float* from = row + ow0 + kw - P;
        std::copy(from, from + (ow1 - ow0), dst + ow0);
      } else {
        for (std::int64_t ow = ow0; ow < ow1; ++ow) {
          dst[ow] = row[ow * S + kw - P];
        }
      }
      std::fill(dst + ow1, dst + OW, 0.0f);
      dst += OW;
    }
  }
}

/// One macro-tile: C[i0:i1) x [j0:j1) = Apack * B + bias, full depth Kd.
/// Apack holds kMR-row panels (panel[k*kMR + m]); B is row-major Kd x N.
void gemm_tile(const float* apack, std::int64_t kd, const float* b,
               std::int64_t n, const float* bias, float* c, std::int64_t m_total,
               std::int64_t i0, std::int64_t i1, std::int64_t j0,
               std::int64_t j1) {
  for (std::int64_t i = i0; i < i1; i += kMR) {
    const float* panel = apack + (i / kMR) * (kd * kMR);
    const std::int64_t mr = std::min(kMR, m_total - i);
    for (std::int64_t j = j0; j < j1; j += kNR) {
      const std::int64_t nr = std::min(kNR, j1 - j);
      float acc[kMR][kNR];
      if (mr == kMR && nr == kNR) {
        for (std::int64_t m = 0; m < kMR; ++m) {
          const float bm = bias[i + m];
          for (std::int64_t v = 0; v < kNR; ++v) acc[m][v] = bm;
        }
        for (std::int64_t k = 0; k < kd; ++k) {
          const float* bk = b + k * n + j;
          const float* ak = panel + k * kMR;
          for (std::int64_t m = 0; m < kMR; ++m) {
            const float a = ak[m];
            for (std::int64_t v = 0; v < kNR; ++v) acc[m][v] += a * bk[v];
          }
        }
        for (std::int64_t m = 0; m < kMR; ++m) {
          float* crow = c + (i + m) * n + j;
          for (std::int64_t v = 0; v < kNR; ++v) crow[v] = acc[m][v];
        }
      } else {
        for (std::int64_t m = 0; m < mr; ++m) {
          const float bm = bias[i + m];
          for (std::int64_t v = 0; v < nr; ++v) acc[m][v] = bm;
        }
        for (std::int64_t k = 0; k < kd; ++k) {
          const float* bk = b + k * n + j;
          const float* ak = panel + k * kMR;
          for (std::int64_t m = 0; m < mr; ++m) {
            const float a = ak[m];
            for (std::int64_t v = 0; v < nr; ++v) acc[m][v] += a * bk[v];
          }
        }
        for (std::int64_t m = 0; m < mr; ++m) {
          float* crow = c + (i + m) * n + j;
          for (std::int64_t v = 0; v < nr; ++v) crow[v] = acc[m][v];
        }
      }
    }
  }
}

/// C[m_total x n] = Apack * B + bias, parallel over macro-tiles.
void gemm_parallel(const float* apack, std::int64_t kd, const float* b,
                   std::int64_t n, const float* bias, float* c,
                   std::int64_t m_total) {
  const std::int64_t row_blocks = (m_total + kRowBlock - 1) / kRowBlock;
  const std::int64_t col_blocks = (n + kColBlock - 1) / kColBlock;
  auto run = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      const std::int64_t rb = t / col_blocks;
      const std::int64_t cb = t % col_blocks;
      gemm_tile(apack, kd, b, n, bias, c, m_total, rb * kRowBlock,
                std::min(m_total, (rb + 1) * kRowBlock), cb * kColBlock,
                std::min(n, (cb + 1) * kColBlock));
    }
  };
  util::parallel_for(0, row_blocks * col_blocks, 1, run);
}

}  // namespace

ConvLayer::ConvLayer(std::string name, const ConvConfig& config)
    : Layer(std::move(name)),
      config_(config),
      weights_(Shape{config.out_channels,
                     config.in_channels / std::max<std::int64_t>(1, config.groups),
                     config.kernel, config.kernel}),
      bias_(Shape{config.out_channels}) {
  if (config.in_channels <= 0 || config.out_channels <= 0 ||
      config.kernel <= 0 || config.stride <= 0 || config.pad < 0 ||
      config.groups <= 0 || config.in_channels % config.groups != 0 ||
      config.out_channels % config.groups != 0) {
    throw std::invalid_argument("conv " + this->name() + ": bad config");
  }
}

void ConvLayer::check_input(const Shape& in) const {
  require_rank3(in, "conv");
  if (in[0] != config_.in_channels) {
    throw std::invalid_argument("conv " + name() + ": expected " +
                                std::to_string(config_.in_channels) +
                                " channels, got " + in.str());
  }
  if (conv_out_dim(in[1], config_.kernel, config_.stride, config_.pad) <= 0 ||
      conv_out_dim(in[2], config_.kernel, config_.stride, config_.pad) <= 0) {
    throw std::invalid_argument("conv " + name() + ": input too small: " +
                                in.str());
  }
}

Shape ConvLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "conv");
  check_input(inputs[0]);
  return Shape{
      config_.out_channels,
      conv_out_dim(inputs[0][1], config_.kernel, config_.stride, config_.pad),
      conv_out_dim(inputs[0][2], config_.kernel, config_.stride, config_.pad)};
}

std::uint64_t ConvLayer::flops(std::span<const Shape> inputs) const {
  Shape out = output_shape(inputs);
  // Per output element: (in_ch/groups)*k*k multiply-adds (2 flops each)
  // plus bias.
  std::uint64_t per_elem =
      2ull * static_cast<std::uint64_t>((config_.in_channels /
                                         config_.groups) *
                                        config_.kernel * config_.kernel) +
      1;
  return static_cast<std::uint64_t>(out.elements()) * per_elem;
}

void ConvLayer::ensure_packed() const {
  if (packed_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lk(pack_mutex_);
  if (packed_valid_.load(std::memory_order_relaxed)) return;
  const std::int64_t G = config_.groups;
  const std::int64_t Mg = config_.out_channels / G;
  const std::int64_t Kd =
      (config_.in_channels / G) * config_.kernel * config_.kernel;
  const std::int64_t tiles = (Mg + kMR - 1) / kMR;
  packed_.assign(static_cast<std::size_t>(G * tiles * Kd * kMR), 0.0f);
  const float* w = weights_.data().data();
  for (std::int64_t g = 0; g < G; ++g) {
    for (std::int64_t t = 0; t < tiles; ++t) {
      float* panel = packed_.data() + (g * tiles + t) * Kd * kMR;
      for (std::int64_t m = 0; m < kMR; ++m) {
        const std::int64_t row = t * kMR + m;
        if (row >= Mg) continue;  // padding rows stay zero
        const float* src = w + (g * Mg + row) * Kd;
        for (std::int64_t k = 0; k < Kd; ++k) panel[k * kMR + m] = src[k];
      }
    }
  }
  packed_valid_.store(true, std::memory_order_release);
}

Tensor ConvLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("conv: one input");
  const Tensor& in = *inputs[0];
  check_input(in.shape());
  const std::int64_t C = in.shape()[0];
  const std::int64_t H = in.shape()[1];
  const std::int64_t W = in.shape()[2];
  const std::int64_t K = config_.kernel;
  const std::int64_t S = config_.stride;
  const std::int64_t P = config_.pad;
  const std::int64_t OH = conv_out_dim(H, K, S, P);
  const std::int64_t OW = conv_out_dim(W, K, S, P);
  const std::int64_t M = config_.out_channels;
  const std::int64_t G = config_.groups;
  const std::int64_t N = OH * OW;
  const std::int64_t Mg = M / G;
  const std::int64_t Kd = (C / G) * K * K;  // per-group GEMM depth

  ensure_packed();
  Tensor out(Shape{M, OH, OW});
  util::ScratchArena::Frame scratch(util::ScratchArena::local());

  // im2col: col[(c*K+kh)*K+kw][oh*OW+ow] = in[c][oh*S+kh-P][ow*S+kw-P].
  // Rows are independent, so they im2col in parallel; a 1x1/s1/p0 conv is
  // the identity im2col and reads the input directly (GoogLeNet is full of
  // those).
  const float* src = in.data().data();
  const float* col;
  if (K == 1 && S == 1 && P == 0) {
    col = src;
  } else {
    float* buf = scratch.floats(static_cast<std::size_t>(C * K * K * N));
    auto fill = [&](std::int64_t lo, std::int64_t hi) {
      im2col_rows(src, H, W, K, S, P, OH, OW, buf, lo, hi);
    };
    util::parallel_for(0, C * K * K, 1, fill);
    col = buf;
  }

  // Per-group GEMM over the packed panels; group g's col rows and output
  // rows are contiguous slices.
  const std::int64_t tiles = (Mg + kMR - 1) / kMR;
  for (std::int64_t g = 0; g < G; ++g) {
    gemm_parallel(packed_.data() + g * tiles * Kd * kMR, Kd,
                  col + g * Kd * N, N, bias_.data().data() + g * Mg,
                  out.data().data() + g * Mg * N, Mg);
  }
  return out;
}

std::uint64_t ConvLayer::param_count() const {
  return static_cast<std::uint64_t>(weights_.elements() + bias_.elements());
}

void ConvLayer::init_params(util::Pcg32& rng) {
  // Xavier-style scale keeps activations bounded through deep stacks so
  // synthetic-weight forward passes stay numerically sane.
  const double fan_in =
      static_cast<double>((config_.in_channels / config_.groups) *
                          config_.kernel * config_.kernel);
  const float scale = static_cast<float>(std::sqrt(3.0 / fan_in));
  for (auto& v : weights_.data()) {
    v = static_cast<float>(rng.uniform(-scale, scale));
  }
  for (auto& v : bias_.data()) {
    v = static_cast<float>(rng.uniform(-0.01, 0.01));
  }
  packed_valid_.store(false, std::memory_order_release);
  ensure_packed();  // pack once up front; forward never repacks
}

void ConvLayer::write_params(util::BinaryWriter& w) const {
  for (float v : weights_.data()) w.f32(v);
  for (float v : bias_.data()) w.f32(v);
}

void ConvLayer::read_params(util::BinaryReader& r) {
  for (auto& v : weights_.data()) v = r.f32();
  for (auto& v : bias_.data()) v = r.f32();
  packed_valid_.store(false, std::memory_order_release);
  ensure_packed();
}

std::string ConvLayer::config_str() const {
  std::string s = "in=" + std::to_string(config_.in_channels) +
                  " out=" + std::to_string(config_.out_channels) +
                  " k=" + std::to_string(config_.kernel) +
                  " s=" + std::to_string(config_.stride) +
                  " p=" + std::to_string(config_.pad);
  // Emitted only when non-default so existing model descriptions (and
  // their fingerprints) are unchanged.
  if (config_.groups != 1) s += " g=" + std::to_string(config_.groups);
  return s;
}

// ----------------------------------------------------------------- PoolLayer

PoolLayer::PoolLayer(std::string name, const PoolConfig& config, bool average)
    : Layer(std::move(name)), config_(config), average_(average) {
  if (config.kernel <= 0 || config.stride <= 0 || config.pad < 0) {
    throw std::invalid_argument("pool " + this->name() + ": bad config");
  }
}

Shape PoolLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "pool");
  require_rank3(inputs[0], "pool");
  std::int64_t oh =
      pool_out_dim(inputs[0][1], config_.kernel, config_.stride, config_.pad);
  std::int64_t ow =
      pool_out_dim(inputs[0][2], config_.kernel, config_.stride, config_.pad);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("pool " + name() + ": input too small: " +
                                inputs[0].str());
  }
  return Shape{inputs[0][0], oh, ow};
}

std::uint64_t PoolLayer::flops(std::span<const Shape> inputs) const {
  Shape out = output_shape(inputs);
  // One compare-or-add per window element.
  return static_cast<std::uint64_t>(out.elements()) *
         static_cast<std::uint64_t>(config_.kernel * config_.kernel);
}

Tensor PoolLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("pool: one input");
  const Tensor& in = *inputs[0];
  Shape shapes[1] = {in.shape()};
  Shape out_shape = output_shape(shapes);
  const std::int64_t C = in.shape()[0];
  const std::int64_t H = in.shape()[1];
  const std::int64_t W = in.shape()[2];
  const std::int64_t OH = out_shape[1];
  const std::int64_t OW = out_shape[2];
  Tensor out(out_shape);
  // Channels are independent → parallel over c; each task writes only its
  // own output plane, and per-element window math is order-identical at
  // any thread count.
  auto pool_channels = [&](std::int64_t c_lo, std::int64_t c_hi) {
    for (std::int64_t c = c_lo; c < c_hi; ++c) {
      for (std::int64_t oh = 0; oh < OH; ++oh) {
        for (std::int64_t ow = 0; ow < OW; ++ow) {
          const std::int64_t h0 = oh * config_.stride - config_.pad;
          const std::int64_t w0 = ow * config_.stride - config_.pad;
          const std::int64_t h1 = std::min(h0 + config_.kernel, H);
          const std::int64_t w1 = std::min(w0 + config_.kernel, W);
          const std::int64_t hs = std::max<std::int64_t>(h0, 0);
          const std::int64_t ws = std::max<std::int64_t>(w0, 0);
          if (average_) {
            float sum = 0.0f;
            for (std::int64_t h = hs; h < h1; ++h) {
              for (std::int64_t w = ws; w < w1; ++w) sum += in.at(c, h, w);
            }
            // Caffe averages over the full kernel area including padding.
            out.at(c, oh, ow) =
                sum / static_cast<float>(config_.kernel * config_.kernel);
          } else {
            float m = -std::numeric_limits<float>::infinity();
            for (std::int64_t h = hs; h < h1; ++h) {
              for (std::int64_t w = ws; w < w1; ++w) {
                m = std::max(m, in.at(c, h, w));
              }
            }
            out.at(c, oh, ow) = m;
          }
        }
      }
    }
  };
  util::parallel_for(0, C, 1, pool_channels);
  return out;
}

std::string PoolLayer::config_str() const {
  return "k=" + std::to_string(config_.kernel) +
         " s=" + std::to_string(config_.stride) +
         " p=" + std::to_string(config_.pad);
}

// ------------------------------------------------------- FullyConnectedLayer

FullyConnectedLayer::FullyConnectedLayer(std::string name,
                                         std::int64_t in_features,
                                         std::int64_t out_features)
    : Layer(std::move(name)),
      in_(in_features),
      out_(out_features),
      weights_(Shape{out_features, in_features}),
      bias_(Shape{out_features}) {
  if (in_ <= 0 || out_ <= 0) {
    throw std::invalid_argument("fc " + this->name() + ": bad dimensions");
  }
}

Shape FullyConnectedLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "fc");
  if (inputs[0].elements() != in_) {
    throw std::invalid_argument("fc " + name() + ": expected " +
                                std::to_string(in_) + " features, got " +
                                inputs[0].str());
  }
  return Shape{out_};
}

std::uint64_t FullyConnectedLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "fc");
  return 2ull * static_cast<std::uint64_t>(in_) *
             static_cast<std::uint64_t>(out_) +
         static_cast<std::uint64_t>(out_);
}

Tensor FullyConnectedLayer::forward(
    std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("fc: one input");
  const Tensor& in = *inputs[0];
  if (in.elements() != in_) {
    throw std::invalid_argument("fc " + name() + ": feature count mismatch");
  }
  Tensor out(Shape{out_});
  const float* x = in.data().data();
  const float* wts = weights_.data().data();
  // Output rows are independent dot products → parallel over i.
  auto rows = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const float* row = wts + i * in_;
      float acc = bias_[i];
      for (std::int64_t j = 0; j < in_; ++j) acc += row[j] * x[j];
      out[i] = acc;
    }
  };
  util::parallel_for(0, out_, 8, rows);
  return out;
}

std::uint64_t FullyConnectedLayer::param_count() const {
  return static_cast<std::uint64_t>(weights_.elements() + bias_.elements());
}

void FullyConnectedLayer::init_params(util::Pcg32& rng) {
  const float scale =
      static_cast<float>(std::sqrt(3.0 / static_cast<double>(in_)));
  for (auto& v : weights_.data()) {
    v = static_cast<float>(rng.uniform(-scale, scale));
  }
  for (auto& v : bias_.data()) {
    v = static_cast<float>(rng.uniform(-0.01, 0.01));
  }
}

void FullyConnectedLayer::write_params(util::BinaryWriter& w) const {
  for (float v : weights_.data()) w.f32(v);
  for (float v : bias_.data()) w.f32(v);
}

void FullyConnectedLayer::read_params(util::BinaryReader& r) {
  for (auto& v : weights_.data()) v = r.f32();
  for (auto& v : bias_.data()) v = r.f32();
}

std::string FullyConnectedLayer::config_str() const {
  return "in=" + std::to_string(in_) + " out=" + std::to_string(out_);
}

// ------------------------------------------------------------ ReLU / Softmax

Shape ReluLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "relu");
  return inputs[0];
}

std::uint64_t ReluLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "relu");
  return static_cast<std::uint64_t>(inputs[0].elements());
}

Tensor ReluLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("relu: one input");
  Tensor out = *inputs[0];
  float* data = out.data().data();
  auto clamp = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) data[i] = std::max(data[i], 0.0f);
  };
  util::parallel_for(0, out.elements(), 1 << 15, clamp);
  return out;
}

Shape SoftmaxLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "softmax");
  return inputs[0];
}

std::uint64_t SoftmaxLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "softmax");
  return 5ull * static_cast<std::uint64_t>(inputs[0].elements());
}

Tensor SoftmaxLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("softmax: one input");
  Tensor out = *inputs[0];
  auto data = out.data();
  float m = -std::numeric_limits<float>::infinity();
  for (float v : data) m = std::max(m, v);
  double sum = 0.0;
  for (auto& v : data) {
    v = std::exp(v - m);
    sum += v;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (auto& v : data) v *= inv;
  return out;
}

// -------------------------------------------------------------- DropoutLayer

Shape DropoutLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "dropout");
  return inputs[0];
}

std::uint64_t DropoutLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "dropout");
  return 0;  // identity at inference time
}

Tensor DropoutLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("dropout: one input");
  return *inputs[0];
}

std::string DropoutLayer::config_str() const {
  return "rate=" + std::to_string(rate_);
}

// ------------------------------------------------------------------ LrnLayer

Shape LrnLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "lrn");
  require_rank3(inputs[0], "lrn");
  return inputs[0];
}

std::uint64_t LrnLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "lrn");
  // Per element: local_size squares/adds plus the pow and divide.
  return static_cast<std::uint64_t>(inputs[0].elements()) *
         (2ull * static_cast<std::uint64_t>(config_.local_size) + 3ull);
}

Tensor LrnLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("lrn: one input");
  const Tensor& in = *inputs[0];
  const std::int64_t C = in.shape()[0];
  const std::int64_t H = in.shape()[1];
  const std::int64_t W = in.shape()[2];
  const std::int64_t half = config_.local_size / 2;
  Tensor out(in.shape());
  const double alpha_over_n =
      config_.alpha / static_cast<double>(config_.local_size);
  // Spatial positions are independent → parallel over rows.
  auto lrn_rows = [&](std::int64_t h_lo, std::int64_t h_hi) {
    for (std::int64_t h = h_lo; h < h_hi; ++h) {
      for (std::int64_t w = 0; w < W; ++w) {
        for (std::int64_t c = 0; c < C; ++c) {
          const std::int64_t c0 = std::max<std::int64_t>(0, c - half);
          const std::int64_t c1 = std::min(C - 1, c + half);
          double sum = 0.0;
          for (std::int64_t cc = c0; cc <= c1; ++cc) {
            const double v = in.at(cc, h, w);
            sum += v * v;
          }
          const double denom =
              std::pow(config_.k + alpha_over_n * sum, config_.beta);
          out.at(c, h, w) = static_cast<float>(in.at(c, h, w) / denom);
        }
      }
    }
  };
  util::parallel_for(0, H, 1, lrn_rows);
  return out;
}

std::string LrnLayer::config_str() const {
  return "n=" + std::to_string(config_.local_size) +
         " alpha=" + std::to_string(config_.alpha) +
         " beta=" + std::to_string(config_.beta) +
         " kk=" + std::to_string(config_.k);
}

// --------------------------------------------------------------- ConcatLayer

Shape ConcatLayer::output_shape(std::span<const Shape> inputs) const {
  if (inputs.size() < 2) {
    throw std::invalid_argument("concat " + name() + ": needs >= 2 inputs");
  }
  require_rank3(inputs[0], "concat");
  std::int64_t channels = inputs[0][0];
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    require_rank3(inputs[i], "concat");
    if (inputs[i][1] != inputs[0][1] || inputs[i][2] != inputs[0][2]) {
      throw std::invalid_argument("concat " + name() +
                                  ": spatial dims differ: " + inputs[0].str() +
                                  " vs " + inputs[i].str());
    }
    channels += inputs[i][0];
  }
  return Shape{channels, inputs[0][1], inputs[0][2]};
}

std::uint64_t ConcatLayer::flops(std::span<const Shape> inputs) const {
  std::uint64_t n = 0;
  for (const auto& s : inputs) n += static_cast<std::uint64_t>(s.elements());
  return n;  // one copy per element
}

Tensor ConcatLayer::forward(std::span<const Tensor* const> inputs) const {
  std::vector<Shape> shapes;
  shapes.reserve(inputs.size());
  for (const Tensor* t : inputs) shapes.push_back(t->shape());
  Tensor out(output_shape(shapes));
  float* dst = out.data().data();
  for (const Tensor* t : inputs) {
    auto src = t->data();
    std::copy(src.begin(), src.end(), dst);
    dst += src.size();
  }
  return out;
}

}  // namespace offload::nn
