#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/nn/activation.h"
#include "src/nn/concat.h"
#include "src/nn/conv.h"
#include "src/nn/dense.h"
#include "src/nn/lrn.h"
#include "src/nn/pool.h"
#include "src/util/arena.h"
#include "src/util/thread_pool.h"

namespace offload::nn {
namespace {

void require_rank3(const Shape& s, const char* what) {
  if (s.rank() != 3) {
    throw std::invalid_argument(std::string(what) +
                                ": expected CHW input, got " + s.str());
  }
}

/// Per-sample shape of a batched tensor: validates the leading batch dim
/// and strips it.
Shape strip_batch(const Tensor& t, std::int64_t batch, const char* what) {
  if (t.shape().rank() < 1 || t.shape()[0] != batch) {
    throw std::invalid_argument(std::string(what) +
                                ": expected leading batch dim " +
                                std::to_string(batch) + ", got " +
                                t.shape().str());
  }
  return Shape(std::vector<std::int64_t>(t.shape().dims().begin() + 1,
                                         t.shape().dims().end()));
}

/// {B, dims...}.
Shape with_batch(const Shape& per_sample, std::int64_t batch) {
  std::vector<std::int64_t> dims;
  dims.reserve(per_sample.rank() + 1);
  dims.push_back(batch);
  for (auto d : per_sample.dims()) dims.push_back(d);
  return Shape(std::move(dims));
}

/// Caffe conv output size: floor((in + 2p - k) / s) + 1.
std::int64_t conv_out_dim(std::int64_t in, std::int64_t k, std::int64_t s,
                          std::int64_t p) {
  return (in + 2 * p - k) / s + 1;
}

/// Caffe pool output size: ceil((in + 2p - k) / s) + 1, clipped so the last
/// window starts inside the (padded) input.
std::int64_t pool_out_dim(std::int64_t in, std::int64_t k, std::int64_t s,
                          std::int64_t p) {
  std::int64_t out =
      (in + 2 * p - k + s - 1) / s + 1;  // ceil division for non-negatives
  if (p > 0 && (out - 1) * s >= in + p) --out;
  return out;
}

}  // namespace

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput:
      return "input";
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kMaxPool:
      return "maxpool";
    case LayerKind::kAvgPool:
      return "avgpool";
    case LayerKind::kFullyConnected:
      return "fc";
    case LayerKind::kReLU:
      return "relu";
    case LayerKind::kLRN:
      return "lrn";
    case LayerKind::kSoftmax:
      return "softmax";
    case LayerKind::kConcat:
      return "concat";
    case LayerKind::kDropout:
      return "dropout";
  }
  return "?";
}

void Layer::require_arity(std::span<const Shape> inputs, std::size_t n,
                          const char* what) {
  if (inputs.size() != n) {
    throw std::invalid_argument(std::string(what) + ": expected " +
                                std::to_string(n) + " inputs, got " +
                                std::to_string(inputs.size()));
  }
}

Tensor Layer::forward_batch(std::span<const Tensor* const> inputs,
                            std::int64_t batch) const {
  if (batch <= 0) {
    throw std::invalid_argument("forward_batch: batch must be >= 1");
  }
  std::vector<Tensor> slices(inputs.size());
  std::vector<const Tensor*> ptrs(inputs.size());
  Tensor out;
  std::int64_t per_out = 0;
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      slices[k] = inputs[k]->sample(b);
      ptrs[k] = &slices[k];
    }
    Tensor s = forward(ptrs);
    if (b == 0) {
      per_out = s.elements();
      out = Tensor(with_batch(s.shape(), batch));
    }
    auto src = s.data();
    std::copy(src.begin(), src.end(), out.data().begin() + b * per_out);
  }
  return out;
}

// ---------------------------------------------------------------- InputLayer

Shape InputLayer::output_shape(std::span<const Shape> inputs) const {
  if (!inputs.empty()) {
    throw std::invalid_argument("input layer takes no graph inputs");
  }
  return shape_;
}

std::uint64_t InputLayer::flops(std::span<const Shape>) const { return 0; }

Tensor InputLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) {
    throw std::invalid_argument("input layer: feed exactly one tensor");
  }
  if (inputs[0]->shape() != shape_) {
    throw std::invalid_argument("input layer: expected " + shape_.str() +
                                ", got " + inputs[0]->shape().str());
  }
  Tensor out = *inputs[0];
  if (scale_ != 1.0) {
    const auto s = static_cast<float>(scale_);
    for (auto& v : out.data()) v *= s;
  }
  return out;
}

std::string InputLayer::config_str() const {
  std::string out = "shape=" + shape_.str();
  if (scale_ != 1.0) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", scale_);  // exact round trip
    out += std::string(" scale=") + buf;
  }
  return out;
}

// ----------------------------------------------------------------- ConvLayer
//
// forward() = parallel im2col + packed, register-tiled GEMM. The GEMM
// partitions the output matrix into kRowBlock x kColBlock macro-tiles that
// run as independent parallel_for tasks (disjoint output ranges), and each
// macro-tile is computed with a kMR x kNR register micro-kernel over
// panel-packed weights. Every output element accumulates bias-first then k
// ascending, so results are bit-identical at any thread count.

namespace {

constexpr std::int64_t kMR = 4;   ///< micro-kernel rows (output channels)
constexpr std::int64_t kNR = 8;   ///< micro-kernel cols (output pixels)
constexpr std::int64_t kRowBlock = 64;   ///< C rows per task (multiple of kMR)
constexpr std::int64_t kColBlock = 512;  ///< C cols per task (multiple of kNR)

/// col[r][ow..] rows for r in [row_lo, row_hi), r = (c*K + kh)*K + kw.
/// Writes zeros where the window reads padding, so the buffer needs no
/// pre-clearing (it comes from the scratch arena, not calloc).
void im2col_rows(const float* src, std::int64_t H, std::int64_t W,
                 std::int64_t K, std::int64_t S, std::int64_t P,
                 std::int64_t OH, std::int64_t OW, float* col,
                 std::int64_t row_lo, std::int64_t row_hi) {
  const std::int64_t N = OH * OW;
  for (std::int64_t r = row_lo; r < row_hi; ++r) {
    const std::int64_t c = r / (K * K);
    const std::int64_t kh = (r / K) % K;
    const std::int64_t kw = r % K;
    float* dst = col + r * N;
    // ow range whose input column iw = ow*S + kw - P lands inside [0, W).
    const std::int64_t ow0 =
        kw >= P ? 0 : std::min(OW, (P - kw + S - 1) / S);
    const std::int64_t ow1 =
        W - 1 - kw + P < 0
            ? ow0
            : std::max(ow0, std::min(OW, (W - 1 - kw + P) / S + 1));
    for (std::int64_t oh = 0; oh < OH; ++oh) {
      const std::int64_t ih = oh * S + kh - P;
      if (ih < 0 || ih >= H) {
        std::fill(dst, dst + OW, 0.0f);
        dst += OW;
        continue;
      }
      const float* row = src + (c * H + ih) * W;
      std::fill(dst, dst + ow0, 0.0f);
      if (S == 1) {
        const float* from = row + ow0 + kw - P;
        std::copy(from, from + (ow1 - ow0), dst + ow0);
      } else {
        for (std::int64_t ow = ow0; ow < ow1; ++ow) {
          dst[ow] = row[ow * S + kw - P];
        }
      }
      std::fill(dst + ow1, dst + OW, 0.0f);
      dst += OW;
    }
  }
}

/// One macro-tile: C[i0:i1) x [j0:j1) = Apack * B + bias, full depth Kd.
/// Apack holds kMR-row panels (panel[k*kMR + m]); B is row-major Kd x N.
void gemm_tile(const float* apack, std::int64_t kd, const float* b,
               std::int64_t n, const float* bias, float* c, std::int64_t m_total,
               std::int64_t i0, std::int64_t i1, std::int64_t j0,
               std::int64_t j1) {
  for (std::int64_t i = i0; i < i1; i += kMR) {
    const float* panel = apack + (i / kMR) * (kd * kMR);
    const std::int64_t mr = std::min(kMR, m_total - i);
    for (std::int64_t j = j0; j < j1; j += kNR) {
      const std::int64_t nr = std::min(kNR, j1 - j);
      float acc[kMR][kNR];
      if (mr == kMR && nr == kNR) {
        for (std::int64_t m = 0; m < kMR; ++m) {
          const float bm = bias[i + m];
          for (std::int64_t v = 0; v < kNR; ++v) acc[m][v] = bm;
        }
        for (std::int64_t k = 0; k < kd; ++k) {
          const float* bk = b + k * n + j;
          const float* ak = panel + k * kMR;
          for (std::int64_t m = 0; m < kMR; ++m) {
            const float a = ak[m];
            for (std::int64_t v = 0; v < kNR; ++v) acc[m][v] += a * bk[v];
          }
        }
        for (std::int64_t m = 0; m < kMR; ++m) {
          float* crow = c + (i + m) * n + j;
          for (std::int64_t v = 0; v < kNR; ++v) crow[v] = acc[m][v];
        }
      } else {
        for (std::int64_t m = 0; m < mr; ++m) {
          const float bm = bias[i + m];
          for (std::int64_t v = 0; v < nr; ++v) acc[m][v] = bm;
        }
        for (std::int64_t k = 0; k < kd; ++k) {
          const float* bk = b + k * n + j;
          const float* ak = panel + k * kMR;
          for (std::int64_t m = 0; m < mr; ++m) {
            const float a = ak[m];
            for (std::int64_t v = 0; v < nr; ++v) acc[m][v] += a * bk[v];
          }
        }
        for (std::int64_t m = 0; m < mr; ++m) {
          float* crow = c + (i + m) * n + j;
          for (std::int64_t v = 0; v < nr; ++v) crow[v] = acc[m][v];
        }
      }
    }
  }
}

/// C[m_total x n] = Apack * B + bias, parallel over macro-tiles.
void gemm_parallel(const float* apack, std::int64_t kd, const float* b,
                   std::int64_t n, const float* bias, float* c,
                   std::int64_t m_total) {
  const std::int64_t row_blocks = (m_total + kRowBlock - 1) / kRowBlock;
  const std::int64_t col_blocks = (n + kColBlock - 1) / kColBlock;
  auto run = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      const std::int64_t rb = t / col_blocks;
      const std::int64_t cb = t % col_blocks;
      gemm_tile(apack, kd, b, n, bias, c, m_total, rb * kRowBlock,
                std::min(m_total, (rb + 1) * kRowBlock), cb * kColBlock,
                std::min(n, (cb + 1) * kColBlock));
    }
  };
  util::parallel_for(0, row_blocks * col_blocks, 1, run);
}

}  // namespace

ConvLayer::ConvLayer(std::string name, const ConvConfig& config)
    : Layer(std::move(name)),
      config_(config),
      weights_(Shape{config.out_channels,
                     config.in_channels / std::max<std::int64_t>(1, config.groups),
                     config.kernel, config.kernel}),
      bias_(Shape{config.out_channels}) {
  if (config.in_channels <= 0 || config.out_channels <= 0 ||
      config.kernel <= 0 || config.stride <= 0 || config.pad < 0 ||
      config.groups <= 0 || config.in_channels % config.groups != 0 ||
      config.out_channels % config.groups != 0) {
    throw std::invalid_argument("conv " + this->name() + ": bad config");
  }
}

void ConvLayer::check_input(const Shape& in) const {
  require_rank3(in, "conv");
  if (in[0] != config_.in_channels) {
    throw std::invalid_argument("conv " + name() + ": expected " +
                                std::to_string(config_.in_channels) +
                                " channels, got " + in.str());
  }
  if (conv_out_dim(in[1], config_.kernel, config_.stride, config_.pad) <= 0 ||
      conv_out_dim(in[2], config_.kernel, config_.stride, config_.pad) <= 0) {
    throw std::invalid_argument("conv " + name() + ": input too small: " +
                                in.str());
  }
}

Shape ConvLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "conv");
  check_input(inputs[0]);
  return Shape{
      config_.out_channels,
      conv_out_dim(inputs[0][1], config_.kernel, config_.stride, config_.pad),
      conv_out_dim(inputs[0][2], config_.kernel, config_.stride, config_.pad)};
}

std::uint64_t ConvLayer::flops(std::span<const Shape> inputs) const {
  Shape out = output_shape(inputs);
  // Per output element: (in_ch/groups)*k*k multiply-adds (2 flops each)
  // plus bias.
  std::uint64_t per_elem =
      2ull * static_cast<std::uint64_t>((config_.in_channels /
                                         config_.groups) *
                                        config_.kernel * config_.kernel) +
      1;
  return static_cast<std::uint64_t>(out.elements()) * per_elem;
}

void ConvLayer::ensure_packed() const {
  if (packed_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lk(pack_mutex_);
  if (packed_valid_.load(std::memory_order_relaxed)) return;
  const std::int64_t G = config_.groups;
  const std::int64_t Mg = config_.out_channels / G;
  const std::int64_t Kd =
      (config_.in_channels / G) * config_.kernel * config_.kernel;
  const std::int64_t tiles = (Mg + kMR - 1) / kMR;
  packed_.assign(static_cast<std::size_t>(G * tiles * Kd * kMR), 0.0f);
  const float* w = weights_.data().data();
  for (std::int64_t g = 0; g < G; ++g) {
    for (std::int64_t t = 0; t < tiles; ++t) {
      float* panel = packed_.data() + (g * tiles + t) * Kd * kMR;
      for (std::int64_t m = 0; m < kMR; ++m) {
        const std::int64_t row = t * kMR + m;
        if (row >= Mg) continue;  // padding rows stay zero
        const float* src = w + (g * Mg + row) * Kd;
        for (std::int64_t k = 0; k < Kd; ++k) panel[k * kMR + m] = src[k];
      }
    }
  }
  packed_valid_.store(true, std::memory_order_release);
}

Tensor ConvLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("conv: one input");
  const Tensor& in = *inputs[0];
  check_input(in.shape());
  const std::int64_t C = in.shape()[0];
  const std::int64_t H = in.shape()[1];
  const std::int64_t W = in.shape()[2];
  const std::int64_t K = config_.kernel;
  const std::int64_t S = config_.stride;
  const std::int64_t P = config_.pad;
  const std::int64_t OH = conv_out_dim(H, K, S, P);
  const std::int64_t OW = conv_out_dim(W, K, S, P);
  const std::int64_t M = config_.out_channels;
  const std::int64_t G = config_.groups;
  const std::int64_t N = OH * OW;
  const std::int64_t Mg = M / G;
  const std::int64_t Kd = (C / G) * K * K;  // per-group GEMM depth

  ensure_packed();
  Tensor out(Shape{M, OH, OW});
  util::ScratchArena::Frame scratch(util::ScratchArena::local());

  // im2col: col[(c*K+kh)*K+kw][oh*OW+ow] = in[c][oh*S+kh-P][ow*S+kw-P].
  // Rows are independent, so they im2col in parallel; a 1x1/s1/p0 conv is
  // the identity im2col and reads the input directly (GoogLeNet is full of
  // those).
  const float* src = in.data().data();
  const float* col;
  if (K == 1 && S == 1 && P == 0) {
    col = src;
  } else {
    float* buf = scratch.floats(static_cast<std::size_t>(C * K * K * N));
    auto fill = [&](std::int64_t lo, std::int64_t hi) {
      im2col_rows(src, H, W, K, S, P, OH, OW, buf, lo, hi);
    };
    util::parallel_for(0, C * K * K, 1, fill);
    col = buf;
  }

  // Per-group GEMM over the packed panels; group g's col rows and output
  // rows are contiguous slices.
  const std::int64_t tiles = (Mg + kMR - 1) / kMR;
  for (std::int64_t g = 0; g < G; ++g) {
    gemm_parallel(packed_.data() + g * tiles * Kd * kMR, Kd,
                  col + g * Kd * N, N, bias_.data().data() + g * Mg,
                  out.data().data() + g * Mg * N, Mg);
  }
  return out;
}

Tensor ConvLayer::forward_batch(std::span<const Tensor* const> inputs,
                                std::int64_t batch) const {
  if (inputs.size() != 1) throw std::invalid_argument("conv: one input");
  const Tensor& in = *inputs[0];
  const Shape per = strip_batch(in, batch, "conv");
  check_input(per);
  const std::int64_t C = per[0];
  const std::int64_t H = per[1];
  const std::int64_t W = per[2];
  const std::int64_t K = config_.kernel;
  const std::int64_t S = config_.stride;
  const std::int64_t P = config_.pad;
  const std::int64_t OH = conv_out_dim(H, K, S, P);
  const std::int64_t OW = conv_out_dim(W, K, S, P);
  const std::int64_t M = config_.out_channels;
  const std::int64_t G = config_.groups;
  const std::int64_t N = OH * OW;
  const std::int64_t Mg = M / G;
  const std::int64_t Kd = (C / G) * K * K;
  const std::int64_t CKK = C * K * K;

  ensure_packed();
  Tensor out(Shape{batch, M, OH, OW});
  util::ScratchArena::Frame scratch(util::ScratchArena::local());

  // im2col every sample into one buffer (rows of all samples fill in
  // parallel); each task computes the same rows the single-sample path
  // would, so the column data is identical.
  const float* src = in.data().data();
  const float* col_base;
  std::int64_t col_stride;  // floats between consecutive samples' columns
  if (K == 1 && S == 1 && P == 0) {
    col_base = src;
    col_stride = C * H * W;
  } else {
    float* buf = scratch.floats(static_cast<std::size_t>(batch * CKK * N));
    auto fill = [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t t = lo; t < hi; ++t) {
        const std::int64_t b = t / CKK;
        const std::int64_t r = t % CKK;
        im2col_rows(src + b * C * H * W, H, W, K, S, P, OH, OW,
                    buf + b * CKK * N, r, r + 1);
      }
    };
    util::parallel_for(0, batch * CKK, 1, fill);
    col_base = buf;
    col_stride = CKK * N;
  }

  // One parallel GEMM over every (sample, group, macro-tile) task. Each
  // task runs the identical gemm_tile the single-sample path runs, so the
  // batched output is bit-identical to B per-sample forwards — but the
  // thread pool sees B x the tiles, which keeps every core busy even on
  // the small late-network feature maps.
  const std::int64_t tiles = (Mg + kMR - 1) / kMR;
  const std::int64_t row_blocks = (Mg + kRowBlock - 1) / kRowBlock;
  const std::int64_t col_blocks = (N + kColBlock - 1) / kColBlock;
  const std::int64_t per_sample_tasks = G * row_blocks * col_blocks;
  const float* bias = bias_.data().data();
  float* out_data = out.data().data();
  auto run = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      const std::int64_t b = t / per_sample_tasks;
      std::int64_t rem = t % per_sample_tasks;
      const std::int64_t g = rem / (row_blocks * col_blocks);
      rem %= row_blocks * col_blocks;
      const std::int64_t rb = rem / col_blocks;
      const std::int64_t cb = rem % col_blocks;
      gemm_tile(packed_.data() + g * tiles * Kd * kMR, Kd,
                col_base + b * col_stride + g * Kd * N, N, bias + g * Mg,
                out_data + (b * M + g * Mg) * N, Mg, rb * kRowBlock,
                std::min(Mg, (rb + 1) * kRowBlock), cb * kColBlock,
                std::min(N, (cb + 1) * kColBlock));
    }
  };
  util::parallel_for(0, batch * per_sample_tasks, 1, run);
  return out;
}

std::uint64_t ConvLayer::param_count() const {
  return static_cast<std::uint64_t>(weights_.elements() + bias_.elements());
}

void ConvLayer::init_params(util::Pcg32& rng) {
  // Xavier-style scale keeps activations bounded through deep stacks so
  // synthetic-weight forward passes stay numerically sane.
  const double fan_in =
      static_cast<double>((config_.in_channels / config_.groups) *
                          config_.kernel * config_.kernel);
  const float scale = static_cast<float>(std::sqrt(3.0 / fan_in));
  for (auto& v : weights_.data()) {
    v = static_cast<float>(rng.uniform(-scale, scale));
  }
  for (auto& v : bias_.data()) {
    v = static_cast<float>(rng.uniform(-0.01, 0.01));
  }
  packed_valid_.store(false, std::memory_order_release);
  ensure_packed();  // pack once up front; forward never repacks
}

void ConvLayer::write_params(util::BinaryWriter& w) const {
  for (float v : weights_.data()) w.f32(v);
  for (float v : bias_.data()) w.f32(v);
}

void ConvLayer::read_params(util::BinaryReader& r) {
  for (auto& v : weights_.data()) v = r.f32();
  for (auto& v : bias_.data()) v = r.f32();
  packed_valid_.store(false, std::memory_order_release);
  ensure_packed();
}

std::string ConvLayer::config_str() const {
  std::string s = "in=" + std::to_string(config_.in_channels) +
                  " out=" + std::to_string(config_.out_channels) +
                  " k=" + std::to_string(config_.kernel) +
                  " s=" + std::to_string(config_.stride) +
                  " p=" + std::to_string(config_.pad);
  // Emitted only when non-default so existing model descriptions (and
  // their fingerprints) are unchanged.
  if (config_.groups != 1) s += " g=" + std::to_string(config_.groups);
  return s;
}

// ----------------------------------------------------------------- PoolLayer

namespace {

/// Pool one CHW channel plane. Both the single-sample and the batched
/// kernels funnel through this, so their per-element arithmetic (and hence
/// their bits) is identical.
void pool_plane(const float* in, float* out, std::int64_t H, std::int64_t W,
                std::int64_t OH, std::int64_t OW, const PoolConfig& cfg,
                bool average) {
  for (std::int64_t oh = 0; oh < OH; ++oh) {
    for (std::int64_t ow = 0; ow < OW; ++ow) {
      const std::int64_t h0 = oh * cfg.stride - cfg.pad;
      const std::int64_t w0 = ow * cfg.stride - cfg.pad;
      const std::int64_t h1 = std::min(h0 + cfg.kernel, H);
      const std::int64_t w1 = std::min(w0 + cfg.kernel, W);
      const std::int64_t hs = std::max<std::int64_t>(h0, 0);
      const std::int64_t ws = std::max<std::int64_t>(w0, 0);
      if (average) {
        float sum = 0.0f;
        for (std::int64_t h = hs; h < h1; ++h) {
          for (std::int64_t w = ws; w < w1; ++w) sum += in[h * W + w];
        }
        // Caffe averages over the full kernel area including padding.
        out[oh * OW + ow] =
            sum / static_cast<float>(cfg.kernel * cfg.kernel);
      } else {
        float m = -std::numeric_limits<float>::infinity();
        for (std::int64_t h = hs; h < h1; ++h) {
          for (std::int64_t w = ws; w < w1; ++w) {
            m = std::max(m, in[h * W + w]);
          }
        }
        out[oh * OW + ow] = m;
      }
    }
  }
}

}  // namespace

PoolLayer::PoolLayer(std::string name, const PoolConfig& config, bool average)
    : Layer(std::move(name)), config_(config), average_(average) {
  if (config.kernel <= 0 || config.stride <= 0 || config.pad < 0) {
    throw std::invalid_argument("pool " + this->name() + ": bad config");
  }
}

Shape PoolLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "pool");
  require_rank3(inputs[0], "pool");
  std::int64_t oh =
      pool_out_dim(inputs[0][1], config_.kernel, config_.stride, config_.pad);
  std::int64_t ow =
      pool_out_dim(inputs[0][2], config_.kernel, config_.stride, config_.pad);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("pool " + name() + ": input too small: " +
                                inputs[0].str());
  }
  return Shape{inputs[0][0], oh, ow};
}

std::uint64_t PoolLayer::flops(std::span<const Shape> inputs) const {
  Shape out = output_shape(inputs);
  // One compare-or-add per window element.
  return static_cast<std::uint64_t>(out.elements()) *
         static_cast<std::uint64_t>(config_.kernel * config_.kernel);
}

Tensor PoolLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("pool: one input");
  const Tensor& in = *inputs[0];
  Shape shapes[1] = {in.shape()};
  Shape out_shape = output_shape(shapes);
  const std::int64_t C = in.shape()[0];
  const std::int64_t H = in.shape()[1];
  const std::int64_t W = in.shape()[2];
  const std::int64_t OH = out_shape[1];
  const std::int64_t OW = out_shape[2];
  Tensor out(out_shape);
  // Channels are independent → parallel over c; each task writes only its
  // own output plane, and per-element window math is order-identical at
  // any thread count.
  const float* src = in.data().data();
  float* dst = out.data().data();
  auto pool_channels = [&](std::int64_t c_lo, std::int64_t c_hi) {
    for (std::int64_t c = c_lo; c < c_hi; ++c) {
      pool_plane(src + c * H * W, dst + c * OH * OW, H, W, OH, OW, config_,
                 average_);
    }
  };
  util::parallel_for(0, C, 1, pool_channels);
  return out;
}

Tensor PoolLayer::forward_batch(std::span<const Tensor* const> inputs,
                                std::int64_t batch) const {
  if (inputs.size() != 1) throw std::invalid_argument("pool: one input");
  const Tensor& in = *inputs[0];
  Shape per = strip_batch(in, batch, "pool");
  Shape shapes[1] = {per};
  Shape out_per = output_shape(shapes);
  const std::int64_t C = per[0];
  const std::int64_t H = per[1];
  const std::int64_t W = per[2];
  const std::int64_t OH = out_per[1];
  const std::int64_t OW = out_per[2];
  Tensor out(with_batch(out_per, batch));
  // All B*C planes are independent — one flat parallel_for across them.
  const float* src = in.data().data();
  float* dst = out.data().data();
  auto pool_planes = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      pool_plane(src + t * H * W, dst + t * OH * OW, H, W, OH, OW, config_,
                 average_);
    }
  };
  util::parallel_for(0, batch * C, 1, pool_planes);
  return out;
}

std::string PoolLayer::config_str() const {
  return "k=" + std::to_string(config_.kernel) +
         " s=" + std::to_string(config_.stride) +
         " p=" + std::to_string(config_.pad);
}

// ------------------------------------------------------- FullyConnectedLayer

FullyConnectedLayer::FullyConnectedLayer(std::string name,
                                         std::int64_t in_features,
                                         std::int64_t out_features)
    : Layer(std::move(name)),
      in_(in_features),
      out_(out_features),
      weights_(Shape{out_features, in_features}),
      bias_(Shape{out_features}) {
  if (in_ <= 0 || out_ <= 0) {
    throw std::invalid_argument("fc " + this->name() + ": bad dimensions");
  }
}

Shape FullyConnectedLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "fc");
  if (inputs[0].elements() != in_) {
    throw std::invalid_argument("fc " + name() + ": expected " +
                                std::to_string(in_) + " features, got " +
                                inputs[0].str());
  }
  return Shape{out_};
}

std::uint64_t FullyConnectedLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "fc");
  return 2ull * static_cast<std::uint64_t>(in_) *
             static_cast<std::uint64_t>(out_) +
         static_cast<std::uint64_t>(out_);
}

Tensor FullyConnectedLayer::forward(
    std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("fc: one input");
  const Tensor& in = *inputs[0];
  if (in.elements() != in_) {
    throw std::invalid_argument("fc " + name() + ": feature count mismatch");
  }
  Tensor out(Shape{out_});
  const float* x = in.data().data();
  const float* wts = weights_.data().data();
  // Output rows are independent dot products → parallel over i.
  auto rows = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const float* row = wts + i * in_;
      float acc = bias_[i];
      for (std::int64_t j = 0; j < in_; ++j) acc += row[j] * x[j];
      out[i] = acc;
    }
  };
  util::parallel_for(0, out_, 8, rows);
  return out;
}

Tensor FullyConnectedLayer::forward_batch(
    std::span<const Tensor* const> inputs, std::int64_t batch) const {
  if (inputs.size() != 1) throw std::invalid_argument("fc: one input");
  const Tensor& in = *inputs[0];
  if (in.shape().rank() < 1 || in.shape()[0] != batch ||
      in.elements() != batch * in_) {
    throw std::invalid_argument("fc " + name() +
                                ": batched feature count mismatch");
  }
  Tensor out(Shape{batch, out_});
  const float* x = in.data().data();
  const float* wts = weights_.data().data();
  float* y = out.data().data();
  // All B*out_ dot products are independent; each accumulates in the same
  // j-ascending order as the single-sample kernel.
  auto rows = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      const std::int64_t b = t / out_;
      const std::int64_t i = t % out_;
      const float* row = wts + i * in_;
      const float* xb = x + b * in_;
      float acc = bias_[i];
      for (std::int64_t j = 0; j < in_; ++j) acc += row[j] * xb[j];
      y[t] = acc;
    }
  };
  util::parallel_for(0, batch * out_, 8, rows);
  return out;
}

std::uint64_t FullyConnectedLayer::param_count() const {
  return static_cast<std::uint64_t>(weights_.elements() + bias_.elements());
}

void FullyConnectedLayer::init_params(util::Pcg32& rng) {
  const float scale =
      static_cast<float>(std::sqrt(3.0 / static_cast<double>(in_)));
  for (auto& v : weights_.data()) {
    v = static_cast<float>(rng.uniform(-scale, scale));
  }
  for (auto& v : bias_.data()) {
    v = static_cast<float>(rng.uniform(-0.01, 0.01));
  }
}

void FullyConnectedLayer::write_params(util::BinaryWriter& w) const {
  for (float v : weights_.data()) w.f32(v);
  for (float v : bias_.data()) w.f32(v);
}

void FullyConnectedLayer::read_params(util::BinaryReader& r) {
  for (auto& v : weights_.data()) v = r.f32();
  for (auto& v : bias_.data()) v = r.f32();
}

std::string FullyConnectedLayer::config_str() const {
  return "in=" + std::to_string(in_) + " out=" + std::to_string(out_);
}

// ------------------------------------------------------------ ReLU / Softmax

Shape ReluLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "relu");
  return inputs[0];
}

std::uint64_t ReluLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "relu");
  return static_cast<std::uint64_t>(inputs[0].elements());
}

Tensor ReluLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("relu: one input");
  Tensor out = *inputs[0];
  float* data = out.data().data();
  auto clamp = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) data[i] = std::max(data[i], 0.0f);
  };
  util::parallel_for(0, out.elements(), 1 << 15, clamp);
  return out;
}

Tensor ReluLayer::forward_batch(std::span<const Tensor* const> inputs,
                                std::int64_t batch) const {
  if (inputs.size() != 1) throw std::invalid_argument("relu: one input");
  strip_batch(*inputs[0], batch, "relu");
  // Elementwise: identical arithmetic no matter how the index space is
  // chunked, so the flat batched range is trivially bit-exact.
  Tensor out = *inputs[0];
  float* data = out.data().data();
  auto clamp = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) data[i] = std::max(data[i], 0.0f);
  };
  util::parallel_for(0, out.elements(), 1 << 15, clamp);
  return out;
}

Shape SoftmaxLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "softmax");
  return inputs[0];
}

std::uint64_t SoftmaxLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "softmax");
  return 5ull * static_cast<std::uint64_t>(inputs[0].elements());
}

Tensor SoftmaxLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("softmax: one input");
  Tensor out = *inputs[0];
  auto data = out.data();
  float m = -std::numeric_limits<float>::infinity();
  for (float v : data) m = std::max(m, v);
  double sum = 0.0;
  for (auto& v : data) {
    v = std::exp(v - m);
    sum += v;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (auto& v : data) v *= inv;
  return out;
}

// -------------------------------------------------------------- DropoutLayer

Shape DropoutLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "dropout");
  return inputs[0];
}

std::uint64_t DropoutLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "dropout");
  return 0;  // identity at inference time
}

Tensor DropoutLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("dropout: one input");
  return *inputs[0];
}

std::string DropoutLayer::config_str() const {
  return "rate=" + std::to_string(rate_);
}

// ------------------------------------------------------------------ LrnLayer

Shape LrnLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "lrn");
  require_rank3(inputs[0], "lrn");
  return inputs[0];
}

std::uint64_t LrnLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "lrn");
  // Per element: local_size squares/adds plus the pow and divide.
  return static_cast<std::uint64_t>(inputs[0].elements()) *
         (2ull * static_cast<std::uint64_t>(config_.local_size) + 3ull);
}

namespace {

/// Normalizes one spatial row (all W positions × all C channels) of a CHW
/// plane. Shared by the single-sample and batched paths so both produce the
/// same bits for the same row.
void lrn_row(const float* in, float* out, std::int64_t C, std::int64_t H,
             std::int64_t W, std::int64_t h, const LrnConfig& cfg) {
  const std::int64_t half = cfg.local_size / 2;
  const double alpha_over_n = cfg.alpha / static_cast<double>(cfg.local_size);
  for (std::int64_t w = 0; w < W; ++w) {
    for (std::int64_t c = 0; c < C; ++c) {
      const std::int64_t c0 = std::max<std::int64_t>(0, c - half);
      const std::int64_t c1 = std::min(C - 1, c + half);
      double sum = 0.0;
      for (std::int64_t cc = c0; cc <= c1; ++cc) {
        const double v = in[(cc * H + h) * W + w];
        sum += v * v;
      }
      const double denom = std::pow(cfg.k + alpha_over_n * sum, cfg.beta);
      out[(c * H + h) * W + w] =
          static_cast<float>(in[(c * H + h) * W + w] / denom);
    }
  }
}

}  // namespace

Tensor LrnLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("lrn: one input");
  const Tensor& in = *inputs[0];
  const std::int64_t C = in.shape()[0];
  const std::int64_t H = in.shape()[1];
  const std::int64_t W = in.shape()[2];
  Tensor out(in.shape());
  const float* src = in.data().data();
  float* dst = out.data().data();
  // Spatial positions are independent → parallel over rows.
  auto lrn_rows = [&](std::int64_t h_lo, std::int64_t h_hi) {
    for (std::int64_t h = h_lo; h < h_hi; ++h) {
      lrn_row(src, dst, C, H, W, h, config_);
    }
  };
  util::parallel_for(0, H, 1, lrn_rows);
  return out;
}

Tensor LrnLayer::forward_batch(std::span<const Tensor* const> inputs,
                               std::int64_t batch) const {
  if (inputs.size() != 1) throw std::invalid_argument("lrn: one input");
  const Tensor& in = *inputs[0];
  const Shape per = strip_batch(in, batch, "lrn");
  require_rank3(per, "lrn");
  const std::int64_t C = per[0];
  const std::int64_t H = per[1];
  const std::int64_t W = per[2];
  const std::int64_t plane = C * H * W;
  Tensor out(in.shape());
  const float* src = in.data().data();
  float* dst = out.data().data();
  // Flat task space over every (sample, row) pair; each task runs the same
  // per-row kernel as the single-sample path.
  auto lrn_rows = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      const std::int64_t b = t / H;
      const std::int64_t h = t % H;
      lrn_row(src + b * plane, dst + b * plane, C, H, W, h, config_);
    }
  };
  util::parallel_for(0, batch * H, 1, lrn_rows);
  return out;
}

std::string LrnLayer::config_str() const {
  return "n=" + std::to_string(config_.local_size) +
         " alpha=" + std::to_string(config_.alpha) +
         " beta=" + std::to_string(config_.beta) +
         " kk=" + std::to_string(config_.k);
}

// --------------------------------------------------------------- ConcatLayer

Shape ConcatLayer::output_shape(std::span<const Shape> inputs) const {
  if (inputs.size() < 2) {
    throw std::invalid_argument("concat " + name() + ": needs >= 2 inputs");
  }
  require_rank3(inputs[0], "concat");
  std::int64_t channels = inputs[0][0];
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    require_rank3(inputs[i], "concat");
    if (inputs[i][1] != inputs[0][1] || inputs[i][2] != inputs[0][2]) {
      throw std::invalid_argument("concat " + name() +
                                  ": spatial dims differ: " + inputs[0].str() +
                                  " vs " + inputs[i].str());
    }
    channels += inputs[i][0];
  }
  return Shape{channels, inputs[0][1], inputs[0][2]};
}

std::uint64_t ConcatLayer::flops(std::span<const Shape> inputs) const {
  std::uint64_t n = 0;
  for (const auto& s : inputs) n += static_cast<std::uint64_t>(s.elements());
  return n;  // one copy per element
}

Tensor ConcatLayer::forward(std::span<const Tensor* const> inputs) const {
  std::vector<Shape> shapes;
  shapes.reserve(inputs.size());
  for (const Tensor* t : inputs) shapes.push_back(t->shape());
  Tensor out(output_shape(shapes));
  float* dst = out.data().data();
  for (const Tensor* t : inputs) {
    auto src = t->data();
    std::copy(src.begin(), src.end(), dst);
    dst += src.size();
  }
  return out;
}

Tensor ConcatLayer::forward_batch(std::span<const Tensor* const> inputs,
                                  std::int64_t batch) const {
  std::vector<Shape> shapes;
  shapes.reserve(inputs.size());
  for (const Tensor* t : inputs) {
    shapes.push_back(strip_batch(*t, batch, "concat"));
  }
  const Shape per_out = output_shape(shapes);
  Tensor out(with_batch(per_out, batch));
  const std::int64_t out_stride = per_out.elements();
  float* base = out.data().data();
  // Pure copies — order within a sample matches the single-sample path.
  auto copy_samples = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t b = lo; b < hi; ++b) {
      float* dst = base + b * out_stride;
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const std::int64_t stride = shapes[i].elements();
        const float* src = inputs[i]->data().data() + b * stride;
        std::copy(src, src + stride, dst);
        dst += stride;
      }
    }
  };
  util::parallel_for(0, batch, 1, copy_samples);
  return out;
}

}  // namespace offload::nn
