#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/nn/activation.h"
#include "src/nn/concat.h"
#include "src/nn/conv.h"
#include "src/nn/dense.h"
#include "src/nn/lrn.h"
#include "src/nn/pool.h"

namespace offload::nn {
namespace {

void require_rank3(const Shape& s, const char* what) {
  if (s.rank() != 3) {
    throw std::invalid_argument(std::string(what) +
                                ": expected CHW input, got " + s.str());
  }
}

/// Caffe conv output size: floor((in + 2p - k) / s) + 1.
std::int64_t conv_out_dim(std::int64_t in, std::int64_t k, std::int64_t s,
                          std::int64_t p) {
  return (in + 2 * p - k) / s + 1;
}

/// Caffe pool output size: ceil((in + 2p - k) / s) + 1, clipped so the last
/// window starts inside the (padded) input.
std::int64_t pool_out_dim(std::int64_t in, std::int64_t k, std::int64_t s,
                          std::int64_t p) {
  std::int64_t out =
      (in + 2 * p - k + s - 1) / s + 1;  // ceil division for non-negatives
  if (p > 0 && (out - 1) * s >= in + p) --out;
  return out;
}

}  // namespace

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput:
      return "input";
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kMaxPool:
      return "maxpool";
    case LayerKind::kAvgPool:
      return "avgpool";
    case LayerKind::kFullyConnected:
      return "fc";
    case LayerKind::kReLU:
      return "relu";
    case LayerKind::kLRN:
      return "lrn";
    case LayerKind::kSoftmax:
      return "softmax";
    case LayerKind::kConcat:
      return "concat";
    case LayerKind::kDropout:
      return "dropout";
  }
  return "?";
}

void Layer::require_arity(std::span<const Shape> inputs, std::size_t n,
                          const char* what) {
  if (inputs.size() != n) {
    throw std::invalid_argument(std::string(what) + ": expected " +
                                std::to_string(n) + " inputs, got " +
                                std::to_string(inputs.size()));
  }
}

// ---------------------------------------------------------------- InputLayer

Shape InputLayer::output_shape(std::span<const Shape> inputs) const {
  if (!inputs.empty()) {
    throw std::invalid_argument("input layer takes no graph inputs");
  }
  return shape_;
}

std::uint64_t InputLayer::flops(std::span<const Shape>) const { return 0; }

Tensor InputLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) {
    throw std::invalid_argument("input layer: feed exactly one tensor");
  }
  if (inputs[0]->shape() != shape_) {
    throw std::invalid_argument("input layer: expected " + shape_.str() +
                                ", got " + inputs[0]->shape().str());
  }
  Tensor out = *inputs[0];
  if (scale_ != 1.0) {
    const auto s = static_cast<float>(scale_);
    for (auto& v : out.data()) v *= s;
  }
  return out;
}

std::string InputLayer::config_str() const {
  std::string out = "shape=" + shape_.str();
  if (scale_ != 1.0) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", scale_);  // exact round trip
    out += std::string(" scale=") + buf;
  }
  return out;
}

// ----------------------------------------------------------------- ConvLayer

ConvLayer::ConvLayer(std::string name, const ConvConfig& config)
    : Layer(std::move(name)),
      config_(config),
      weights_(Shape{config.out_channels, config.in_channels, config.kernel,
                     config.kernel}),
      bias_(Shape{config.out_channels}) {
  if (config.in_channels <= 0 || config.out_channels <= 0 ||
      config.kernel <= 0 || config.stride <= 0 || config.pad < 0) {
    throw std::invalid_argument("conv " + this->name() + ": bad config");
  }
}

void ConvLayer::check_input(const Shape& in) const {
  require_rank3(in, "conv");
  if (in[0] != config_.in_channels) {
    throw std::invalid_argument("conv " + name() + ": expected " +
                                std::to_string(config_.in_channels) +
                                " channels, got " + in.str());
  }
  if (conv_out_dim(in[1], config_.kernel, config_.stride, config_.pad) <= 0 ||
      conv_out_dim(in[2], config_.kernel, config_.stride, config_.pad) <= 0) {
    throw std::invalid_argument("conv " + name() + ": input too small: " +
                                in.str());
  }
}

Shape ConvLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "conv");
  check_input(inputs[0]);
  return Shape{
      config_.out_channels,
      conv_out_dim(inputs[0][1], config_.kernel, config_.stride, config_.pad),
      conv_out_dim(inputs[0][2], config_.kernel, config_.stride, config_.pad)};
}

std::uint64_t ConvLayer::flops(std::span<const Shape> inputs) const {
  Shape out = output_shape(inputs);
  // Per output element: in_ch*k*k multiply-adds (2 flops each) plus bias.
  std::uint64_t per_elem = 2ull * static_cast<std::uint64_t>(
                                      config_.in_channels * config_.kernel *
                                      config_.kernel) +
                           1;
  return static_cast<std::uint64_t>(out.elements()) * per_elem;
}

Tensor ConvLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("conv: one input");
  const Tensor& in = *inputs[0];
  check_input(in.shape());
  const std::int64_t C = in.shape()[0];
  const std::int64_t H = in.shape()[1];
  const std::int64_t W = in.shape()[2];
  const std::int64_t K = config_.kernel;
  const std::int64_t S = config_.stride;
  const std::int64_t P = config_.pad;
  const std::int64_t OH = conv_out_dim(H, K, S, P);
  const std::int64_t OW = conv_out_dim(W, K, S, P);
  const std::int64_t M = config_.out_channels;
  const std::int64_t Kdim = C * K * K;  // GEMM inner dimension
  const std::int64_t N = OH * OW;

  // im2col: col[(c*K+kh)*K+kw][oh*OW+ow] = in[c][oh*S+kh-P][ow*S+kw-P]
  std::vector<float> col(static_cast<std::size_t>(Kdim * N), 0.0f);
  const float* src = in.data().data();
  for (std::int64_t c = 0; c < C; ++c) {
    for (std::int64_t kh = 0; kh < K; ++kh) {
      for (std::int64_t kw = 0; kw < K; ++kw) {
        float* dst = col.data() + ((c * K + kh) * K + kw) * N;
        for (std::int64_t oh = 0; oh < OH; ++oh) {
          const std::int64_t ih = oh * S + kh - P;
          if (ih < 0 || ih >= H) {
            dst += OW;
            continue;
          }
          const float* row = src + (c * H + ih) * W;
          for (std::int64_t ow = 0; ow < OW; ++ow) {
            const std::int64_t iw = ow * S + kw - P;
            *dst++ = (iw >= 0 && iw < W) ? row[iw] : 0.0f;
          }
        }
      }
    }
  }

  // GEMM: out[M x N] = weights[M x Kdim] * col[Kdim x N], ikj loop order so
  // the inner loop streams over contiguous memory and auto-vectorizes.
  Tensor out(Shape{M, OH, OW});
  float* o = out.data().data();
  const float* wts = weights_.data().data();
  for (std::int64_t i = 0; i < M; ++i) {
    float* orow = o + i * N;
    std::fill(orow, orow + N, bias_[i]);
    const float* wrow = wts + i * Kdim;
    for (std::int64_t k = 0; k < Kdim; ++k) {
      const float a = wrow[k];
      if (a == 0.0f) continue;
      const float* brow = col.data() + k * N;
      for (std::int64_t j = 0; j < N; ++j) {
        orow[j] += a * brow[j];
      }
    }
  }
  return out;
}

std::uint64_t ConvLayer::param_count() const {
  return static_cast<std::uint64_t>(weights_.elements() + bias_.elements());
}

void ConvLayer::init_params(util::Pcg32& rng) {
  // Xavier-style scale keeps activations bounded through deep stacks so
  // synthetic-weight forward passes stay numerically sane.
  const double fan_in = static_cast<double>(config_.in_channels *
                                            config_.kernel * config_.kernel);
  const float scale = static_cast<float>(std::sqrt(3.0 / fan_in));
  for (auto& v : weights_.data()) {
    v = static_cast<float>(rng.uniform(-scale, scale));
  }
  for (auto& v : bias_.data()) {
    v = static_cast<float>(rng.uniform(-0.01, 0.01));
  }
}

void ConvLayer::write_params(util::BinaryWriter& w) const {
  for (float v : weights_.data()) w.f32(v);
  for (float v : bias_.data()) w.f32(v);
}

void ConvLayer::read_params(util::BinaryReader& r) {
  for (auto& v : weights_.data()) v = r.f32();
  for (auto& v : bias_.data()) v = r.f32();
}

std::string ConvLayer::config_str() const {
  return "in=" + std::to_string(config_.in_channels) +
         " out=" + std::to_string(config_.out_channels) +
         " k=" + std::to_string(config_.kernel) +
         " s=" + std::to_string(config_.stride) +
         " p=" + std::to_string(config_.pad);
}

// ----------------------------------------------------------------- PoolLayer

PoolLayer::PoolLayer(std::string name, const PoolConfig& config, bool average)
    : Layer(std::move(name)), config_(config), average_(average) {
  if (config.kernel <= 0 || config.stride <= 0 || config.pad < 0) {
    throw std::invalid_argument("pool " + this->name() + ": bad config");
  }
}

Shape PoolLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "pool");
  require_rank3(inputs[0], "pool");
  std::int64_t oh =
      pool_out_dim(inputs[0][1], config_.kernel, config_.stride, config_.pad);
  std::int64_t ow =
      pool_out_dim(inputs[0][2], config_.kernel, config_.stride, config_.pad);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("pool " + name() + ": input too small: " +
                                inputs[0].str());
  }
  return Shape{inputs[0][0], oh, ow};
}

std::uint64_t PoolLayer::flops(std::span<const Shape> inputs) const {
  Shape out = output_shape(inputs);
  // One compare-or-add per window element.
  return static_cast<std::uint64_t>(out.elements()) *
         static_cast<std::uint64_t>(config_.kernel * config_.kernel);
}

Tensor PoolLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("pool: one input");
  const Tensor& in = *inputs[0];
  Shape shapes[1] = {in.shape()};
  Shape out_shape = output_shape(shapes);
  const std::int64_t C = in.shape()[0];
  const std::int64_t H = in.shape()[1];
  const std::int64_t W = in.shape()[2];
  const std::int64_t OH = out_shape[1];
  const std::int64_t OW = out_shape[2];
  Tensor out(out_shape);
  for (std::int64_t c = 0; c < C; ++c) {
    for (std::int64_t oh = 0; oh < OH; ++oh) {
      for (std::int64_t ow = 0; ow < OW; ++ow) {
        const std::int64_t h0 = oh * config_.stride - config_.pad;
        const std::int64_t w0 = ow * config_.stride - config_.pad;
        const std::int64_t h1 = std::min(h0 + config_.kernel, H);
        const std::int64_t w1 = std::min(w0 + config_.kernel, W);
        const std::int64_t hs = std::max<std::int64_t>(h0, 0);
        const std::int64_t ws = std::max<std::int64_t>(w0, 0);
        if (average_) {
          float sum = 0.0f;
          for (std::int64_t h = hs; h < h1; ++h) {
            for (std::int64_t w = ws; w < w1; ++w) sum += in.at(c, h, w);
          }
          // Caffe averages over the full kernel area including padding.
          out.at(c, oh, ow) =
              sum / static_cast<float>(config_.kernel * config_.kernel);
        } else {
          float m = -std::numeric_limits<float>::infinity();
          for (std::int64_t h = hs; h < h1; ++h) {
            for (std::int64_t w = ws; w < w1; ++w) {
              m = std::max(m, in.at(c, h, w));
            }
          }
          out.at(c, oh, ow) = m;
        }
      }
    }
  }
  return out;
}

std::string PoolLayer::config_str() const {
  return "k=" + std::to_string(config_.kernel) +
         " s=" + std::to_string(config_.stride) +
         " p=" + std::to_string(config_.pad);
}

// ------------------------------------------------------- FullyConnectedLayer

FullyConnectedLayer::FullyConnectedLayer(std::string name,
                                         std::int64_t in_features,
                                         std::int64_t out_features)
    : Layer(std::move(name)),
      in_(in_features),
      out_(out_features),
      weights_(Shape{out_features, in_features}),
      bias_(Shape{out_features}) {
  if (in_ <= 0 || out_ <= 0) {
    throw std::invalid_argument("fc " + this->name() + ": bad dimensions");
  }
}

Shape FullyConnectedLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "fc");
  if (inputs[0].elements() != in_) {
    throw std::invalid_argument("fc " + name() + ": expected " +
                                std::to_string(in_) + " features, got " +
                                inputs[0].str());
  }
  return Shape{out_};
}

std::uint64_t FullyConnectedLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "fc");
  return 2ull * static_cast<std::uint64_t>(in_) *
             static_cast<std::uint64_t>(out_) +
         static_cast<std::uint64_t>(out_);
}

Tensor FullyConnectedLayer::forward(
    std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("fc: one input");
  const Tensor& in = *inputs[0];
  if (in.elements() != in_) {
    throw std::invalid_argument("fc " + name() + ": feature count mismatch");
  }
  Tensor out(Shape{out_});
  const float* x = in.data().data();
  const float* wts = weights_.data().data();
  for (std::int64_t i = 0; i < out_; ++i) {
    const float* row = wts + i * in_;
    float acc = bias_[i];
    for (std::int64_t j = 0; j < in_; ++j) acc += row[j] * x[j];
    out[i] = acc;
  }
  return out;
}

std::uint64_t FullyConnectedLayer::param_count() const {
  return static_cast<std::uint64_t>(weights_.elements() + bias_.elements());
}

void FullyConnectedLayer::init_params(util::Pcg32& rng) {
  const float scale =
      static_cast<float>(std::sqrt(3.0 / static_cast<double>(in_)));
  for (auto& v : weights_.data()) {
    v = static_cast<float>(rng.uniform(-scale, scale));
  }
  for (auto& v : bias_.data()) {
    v = static_cast<float>(rng.uniform(-0.01, 0.01));
  }
}

void FullyConnectedLayer::write_params(util::BinaryWriter& w) const {
  for (float v : weights_.data()) w.f32(v);
  for (float v : bias_.data()) w.f32(v);
}

void FullyConnectedLayer::read_params(util::BinaryReader& r) {
  for (auto& v : weights_.data()) v = r.f32();
  for (auto& v : bias_.data()) v = r.f32();
}

std::string FullyConnectedLayer::config_str() const {
  return "in=" + std::to_string(in_) + " out=" + std::to_string(out_);
}

// ------------------------------------------------------------ ReLU / Softmax

Shape ReluLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "relu");
  return inputs[0];
}

std::uint64_t ReluLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "relu");
  return static_cast<std::uint64_t>(inputs[0].elements());
}

Tensor ReluLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("relu: one input");
  Tensor out = *inputs[0];
  for (auto& v : out.data()) v = std::max(v, 0.0f);
  return out;
}

Shape SoftmaxLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "softmax");
  return inputs[0];
}

std::uint64_t SoftmaxLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "softmax");
  return 5ull * static_cast<std::uint64_t>(inputs[0].elements());
}

Tensor SoftmaxLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("softmax: one input");
  Tensor out = *inputs[0];
  auto data = out.data();
  float m = -std::numeric_limits<float>::infinity();
  for (float v : data) m = std::max(m, v);
  double sum = 0.0;
  for (auto& v : data) {
    v = std::exp(v - m);
    sum += v;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (auto& v : data) v *= inv;
  return out;
}

// -------------------------------------------------------------- DropoutLayer

Shape DropoutLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "dropout");
  return inputs[0];
}

std::uint64_t DropoutLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "dropout");
  return 0;  // identity at inference time
}

Tensor DropoutLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("dropout: one input");
  return *inputs[0];
}

std::string DropoutLayer::config_str() const {
  return "rate=" + std::to_string(rate_);
}

// ------------------------------------------------------------------ LrnLayer

Shape LrnLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "lrn");
  require_rank3(inputs[0], "lrn");
  return inputs[0];
}

std::uint64_t LrnLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "lrn");
  // Per element: local_size squares/adds plus the pow and divide.
  return static_cast<std::uint64_t>(inputs[0].elements()) *
         (2ull * static_cast<std::uint64_t>(config_.local_size) + 3ull);
}

Tensor LrnLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("lrn: one input");
  const Tensor& in = *inputs[0];
  const std::int64_t C = in.shape()[0];
  const std::int64_t H = in.shape()[1];
  const std::int64_t W = in.shape()[2];
  const std::int64_t half = config_.local_size / 2;
  Tensor out(in.shape());
  const double alpha_over_n =
      config_.alpha / static_cast<double>(config_.local_size);
  for (std::int64_t h = 0; h < H; ++h) {
    for (std::int64_t w = 0; w < W; ++w) {
      for (std::int64_t c = 0; c < C; ++c) {
        const std::int64_t c0 = std::max<std::int64_t>(0, c - half);
        const std::int64_t c1 = std::min(C - 1, c + half);
        double sum = 0.0;
        for (std::int64_t cc = c0; cc <= c1; ++cc) {
          const double v = in.at(cc, h, w);
          sum += v * v;
        }
        const double denom =
            std::pow(config_.k + alpha_over_n * sum, config_.beta);
        out.at(c, h, w) = static_cast<float>(in.at(c, h, w) / denom);
      }
    }
  }
  return out;
}

std::string LrnLayer::config_str() const {
  return "n=" + std::to_string(config_.local_size) +
         " alpha=" + std::to_string(config_.alpha) +
         " beta=" + std::to_string(config_.beta) +
         " kk=" + std::to_string(config_.k);
}

// --------------------------------------------------------------- ConcatLayer

Shape ConcatLayer::output_shape(std::span<const Shape> inputs) const {
  if (inputs.size() < 2) {
    throw std::invalid_argument("concat " + name() + ": needs >= 2 inputs");
  }
  require_rank3(inputs[0], "concat");
  std::int64_t channels = inputs[0][0];
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    require_rank3(inputs[i], "concat");
    if (inputs[i][1] != inputs[0][1] || inputs[i][2] != inputs[0][2]) {
      throw std::invalid_argument("concat " + name() +
                                  ": spatial dims differ: " + inputs[0].str() +
                                  " vs " + inputs[i].str());
    }
    channels += inputs[i][0];
  }
  return Shape{channels, inputs[0][1], inputs[0][2]};
}

std::uint64_t ConcatLayer::flops(std::span<const Shape> inputs) const {
  std::uint64_t n = 0;
  for (const auto& s : inputs) n += static_cast<std::uint64_t>(s.elements());
  return n;  // one copy per element
}

Tensor ConcatLayer::forward(std::span<const Tensor* const> inputs) const {
  std::vector<Shape> shapes;
  shapes.reserve(inputs.size());
  for (const Tensor* t : inputs) shapes.push_back(t->shape());
  Tensor out(output_shape(shapes));
  float* dst = out.data().data();
  for (const Tensor* t : inputs) {
    auto src = t->data();
    std::copy(src.begin(), src.end(), dst);
    dst += src.size();
  }
  return out;
}

}  // namespace offload::nn
