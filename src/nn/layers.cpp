#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/nn/activation.h"
#include "src/nn/concat.h"
#include "src/nn/conv.h"
#include "src/nn/dense.h"
#include "src/nn/kernels.h"
#include "src/nn/lrn.h"
#include "src/nn/pool.h"
#include "src/util/arena.h"
#include "src/util/thread_pool.h"

namespace offload::nn {
namespace {

void require_rank3(const Shape& s, const char* what) {
  if (s.rank() != 3) {
    throw std::invalid_argument(std::string(what) +
                                ": expected CHW input, got " + s.str());
  }
}

/// Per-sample shape of a batched tensor: validates the leading batch dim
/// and strips it.
Shape strip_batch(const Tensor& t, std::int64_t batch, const char* what) {
  if (t.shape().rank() < 1 || t.shape()[0] != batch) {
    throw std::invalid_argument(std::string(what) +
                                ": expected leading batch dim " +
                                std::to_string(batch) + ", got " +
                                t.shape().str());
  }
  return Shape(std::vector<std::int64_t>(t.shape().dims().begin() + 1,
                                         t.shape().dims().end()));
}

/// {B, dims...}.
Shape with_batch(const Shape& per_sample, std::int64_t batch) {
  std::vector<std::int64_t> dims;
  dims.reserve(per_sample.rank() + 1);
  dims.push_back(batch);
  for (auto d : per_sample.dims()) dims.push_back(d);
  return Shape(std::move(dims));
}

/// Caffe conv output size: floor((in + 2p - k) / s) + 1.
std::int64_t conv_out_dim(std::int64_t in, std::int64_t k, std::int64_t s,
                          std::int64_t p) {
  return (in + 2 * p - k) / s + 1;
}

/// Caffe pool output size: ceil((in + 2p - k) / s) + 1, clipped so the last
/// window starts inside the (padded) input.
std::int64_t pool_out_dim(std::int64_t in, std::int64_t k, std::int64_t s,
                          std::int64_t p) {
  std::int64_t out =
      (in + 2 * p - k + s - 1) / s + 1;  // ceil division for non-negatives
  if (p > 0 && (out - 1) * s >= in + p) --out;
  return out;
}

/// int8 GEMM accumulators are int32: depth * 127 * 127 must not overflow.
void check_i8_depth(std::int64_t depth, const std::string& what) {
  if (depth > 130000) {
    throw std::runtime_error(what + ": int8 backend: reduction depth " +
                             std::to_string(depth) +
                             " would overflow int32 accumulation");
  }
}

}  // namespace

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput:
      return "input";
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kMaxPool:
      return "maxpool";
    case LayerKind::kAvgPool:
      return "avgpool";
    case LayerKind::kFullyConnected:
      return "fc";
    case LayerKind::kReLU:
      return "relu";
    case LayerKind::kLRN:
      return "lrn";
    case LayerKind::kSoftmax:
      return "softmax";
    case LayerKind::kConcat:
      return "concat";
    case LayerKind::kDropout:
      return "dropout";
  }
  return "?";
}

void Layer::require_arity(std::span<const Shape> inputs, std::size_t n,
                          const char* what) {
  if (inputs.size() != n) {
    throw std::invalid_argument(std::string(what) + ": expected " +
                                std::to_string(n) + " inputs, got " +
                                std::to_string(inputs.size()));
  }
}

Tensor Layer::forward_batch(std::span<const Tensor* const> inputs,
                            std::int64_t batch) const {
  if (batch <= 0) {
    throw std::invalid_argument("forward_batch: batch must be >= 1");
  }
  std::vector<Tensor> slices(inputs.size());
  std::vector<const Tensor*> ptrs(inputs.size());
  Tensor out;
  std::int64_t per_out = 0;
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      slices[k] = inputs[k]->sample(b);
      ptrs[k] = &slices[k];
    }
    Tensor s = forward(ptrs);
    if (b == 0) {
      per_out = s.elements();
      out = Tensor(with_batch(s.shape(), batch));
    }
    auto src = s.data();
    std::copy(src.begin(), src.end(), out.data().begin() + b * per_out);
  }
  return out;
}

// ---------------------------------------------------------------- InputLayer

Shape InputLayer::output_shape(std::span<const Shape> inputs) const {
  if (!inputs.empty()) {
    throw std::invalid_argument("input layer takes no graph inputs");
  }
  return shape_;
}

std::uint64_t InputLayer::flops(std::span<const Shape>) const { return 0; }

Tensor InputLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) {
    throw std::invalid_argument("input layer: feed exactly one tensor");
  }
  if (inputs[0]->shape() != shape_) {
    throw std::invalid_argument("input layer: expected " + shape_.str() +
                                ", got " + inputs[0]->shape().str());
  }
  Tensor out = *inputs[0];
  if (scale_ != 1.0) {
    const auto s = static_cast<float>(scale_);
    for (auto& v : out.data()) v *= s;
  }
  return out;
}

std::string InputLayer::config_str() const {
  std::string out = "shape=" + shape_.str();
  if (scale_ != 1.0) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", scale_);  // exact round trip
    out += std::string(" scale=") + buf;
  }
  return out;
}

// ----------------------------------------------------------------- ConvLayer
//
// forward() = parallel im2col + packed, register-tiled GEMM. The GEMM
// partitions the output matrix into kRowBlock x kColBlock macro-tiles that
// run as independent parallel_for tasks (disjoint output ranges); each
// macro-tile is computed by the active backend's micro-kernel over
// panel-packed weights. Every output element accumulates bias-first then k
// ascending (the DESIGN §11 contract), so results are bit-identical at any
// thread count and across the fp32 backends.

namespace {

/// Macro-tile task geometry. Multiples of every backend's micro-kernel
/// (mr in {4, 8}, nr in {8, 16}), so tile starts always land on panel
/// boundaries.
constexpr std::int64_t kRowBlock = 64;   ///< C rows per task
constexpr std::int64_t kColBlock = 512;  ///< C cols per task

/// col[r][ow..] rows for r in [row_lo, row_hi), r = (c*K + kh)*K + kw.
/// Writes zeros where the window reads padding, so the buffer needs no
/// pre-clearing (it comes from the scratch arena, not calloc). Templated so
/// the int8 path can im2col quantized activations with the same indexing.
template <typename T>
void im2col_rows(const T* src, std::int64_t H, std::int64_t W, std::int64_t K,
                 std::int64_t S, std::int64_t P, std::int64_t OH,
                 std::int64_t OW, T* col, std::int64_t row_lo,
                 std::int64_t row_hi) {
  const std::int64_t N = OH * OW;
  for (std::int64_t r = row_lo; r < row_hi; ++r) {
    const std::int64_t c = r / (K * K);
    const std::int64_t kh = (r / K) % K;
    const std::int64_t kw = r % K;
    T* dst = col + r * N;
    // ow range whose input column iw = ow*S + kw - P lands inside [0, W).
    const std::int64_t ow0 =
        kw >= P ? 0 : std::min(OW, (P - kw + S - 1) / S);
    const std::int64_t ow1 =
        W - 1 - kw + P < 0
            ? ow0
            : std::max(ow0, std::min(OW, (W - 1 - kw + P) / S + 1));
    for (std::int64_t oh = 0; oh < OH; ++oh) {
      const std::int64_t ih = oh * S + kh - P;
      if (ih < 0 || ih >= H) {
        std::fill(dst, dst + OW, T(0));
        dst += OW;
        continue;
      }
      const T* row = src + (c * H + ih) * W;
      std::fill(dst, dst + ow0, T(0));
      if (S == 1) {
        const T* from = row + ow0 + kw - P;
        std::copy(from, from + (ow1 - ow0), dst + ow0);
      } else {
        for (std::int64_t ow = ow0; ow < ow1; ++ow) {
          dst[ow] = row[ow * S + kw - P];
        }
      }
      std::fill(dst + ow1, dst + OW, T(0));
      dst += OW;
    }
  }
}

/// fp32 conv core shared by forward (batch == 1) and forward_batch: one
/// im2col over all samples, then one parallel GEMM over every (sample,
/// group, macro-tile) task. Each task runs the identical micro-kernel the
/// single-sample path would, so the batched output is bit-identical to B
/// per-sample forwards — but the thread pool sees B x the tiles, which
/// keeps every core busy even on the small late-network feature maps.
void conv_forward_fp32(const KernelOps& ops, const float* panels,
                       const float* src, float* out_data, const float* bias,
                       std::int64_t batch, std::int64_t C, std::int64_t H,
                       std::int64_t W, std::int64_t K, std::int64_t S,
                       std::int64_t P, std::int64_t OH, std::int64_t OW,
                       std::int64_t M, std::int64_t G) {
  const std::int64_t N = OH * OW;
  const std::int64_t Mg = M / G;
  const std::int64_t Kd = (C / G) * K * K;
  const std::int64_t CKK = C * K * K;
  const std::int64_t CHW = C * H * W;
  util::ScratchArena::Frame scratch(util::ScratchArena::local());

  // im2col: col[(c*K+kh)*K+kw][oh*OW+ow] = in[c][oh*S+kh-P][ow*S+kw-P].
  // Rows are independent, so they im2col in parallel; a 1x1/s1/p0 conv is
  // the identity im2col and reads the input directly (GoogLeNet is full of
  // those).
  const float* col_base;
  std::int64_t col_stride;  // floats between consecutive samples' columns
  if (K == 1 && S == 1 && P == 0) {
    col_base = src;
    col_stride = CHW;
  } else {
    float* buf = scratch.floats(static_cast<std::size_t>(batch * CKK * N));
    auto fill = [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t t = lo; t < hi; ++t) {
        const std::int64_t b = t / CKK;
        const std::int64_t r = t % CKK;
        im2col_rows(src + b * CHW, H, W, K, S, P, OH, OW, buf + b * CKK * N,
                    r, r + 1);
      }
    };
    util::parallel_for(0, batch * CKK, 1, fill);
    col_base = buf;
    col_stride = CKK * N;
  }

  const std::int64_t mr = ops.gemm_mr;
  const std::int64_t tiles = (Mg + mr - 1) / mr;
  const std::int64_t row_blocks = (Mg + kRowBlock - 1) / kRowBlock;
  const std::int64_t col_blocks = (N + kColBlock - 1) / kColBlock;
  const std::int64_t per_sample = G * row_blocks * col_blocks;
  auto run = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      const std::int64_t b = t / per_sample;
      std::int64_t rem = t % per_sample;
      const std::int64_t g = rem / (row_blocks * col_blocks);
      rem %= row_blocks * col_blocks;
      const std::int64_t rb = rem / col_blocks;
      const std::int64_t cb = rem % col_blocks;
      ops.gemm_tile(panels + g * tiles * Kd * mr, Kd,
                    col_base + b * col_stride + g * Kd * N, N, bias + g * Mg,
                    out_data + (b * M + g * Mg) * N, Mg, rb * kRowBlock,
                    std::min(Mg, (rb + 1) * kRowBlock), cb * kColBlock,
                    std::min(N, (cb + 1) * kColBlock));
    }
  };
  util::parallel_for(0, batch * per_sample, 1, run);
}

/// int8 conv core: per-sample symmetric activation quantization, int8
/// im2col, exact-int32 GEMM, fp32 dequant on the way out. Accumulation is
/// integer so every decomposition is bit-identical; simd == scalar by
/// construction.
void conv_forward_i8(const KernelOps& ops, const std::int8_t* qpanels,
                     float wscale, const float* src, float* out_data,
                     const float* bias, std::int64_t batch, std::int64_t C,
                     std::int64_t H, std::int64_t W, std::int64_t K,
                     std::int64_t S, std::int64_t P, std::int64_t OH,
                     std::int64_t OW, std::int64_t M, std::int64_t G) {
  const std::int64_t N = OH * OW;
  const std::int64_t Mg = M / G;
  const std::int64_t Kd = (C / G) * K * K;
  const std::int64_t CKK = C * K * K;
  const std::int64_t CHW = C * H * W;
  util::ScratchArena::Frame scratch(util::ScratchArena::local());

  std::int8_t* qsrc = reinterpret_cast<std::int8_t*>(
      scratch.bytes(static_cast<std::size_t>(batch * CHW)));
  float* dequants = scratch.floats(static_cast<std::size_t>(batch));
  auto quant = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t b = lo; b < hi; ++b) {
      const QuantParams qa = choose_symmetric_scale(
          {src + b * CHW, static_cast<std::size_t>(CHW)});
      quantize_symmetric(src + b * CHW, qsrc + b * CHW, CHW, qa.inv_scale);
      dequants[b] = wscale * qa.scale;
    }
  };
  util::parallel_for(0, batch, 1, quant);

  // Quantize-then-im2col == im2col-then-quantize: padding zeros quantize to
  // zero, everything else is elementwise.
  const std::int8_t* col_base;
  std::int64_t col_stride;
  if (K == 1 && S == 1 && P == 0) {
    col_base = qsrc;
    col_stride = CHW;
  } else {
    std::int8_t* buf = reinterpret_cast<std::int8_t*>(
        scratch.bytes(static_cast<std::size_t>(batch * CKK * N)));
    auto fill = [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t t = lo; t < hi; ++t) {
        const std::int64_t b = t / CKK;
        const std::int64_t r = t % CKK;
        im2col_rows(qsrc + b * CHW, H, W, K, S, P, OH, OW, buf + b * CKK * N,
                    r, r + 1);
      }
    };
    util::parallel_for(0, batch * CKK, 1, fill);
    col_base = buf;
    col_stride = CKK * N;
  }

  constexpr std::int64_t kMRq = 4;  // int8 panels are mr=4 for every backend
  const std::int64_t tiles = (Mg + kMRq - 1) / kMRq;
  const std::int64_t row_blocks = (Mg + kRowBlock - 1) / kRowBlock;
  const std::int64_t col_blocks = (N + kColBlock - 1) / kColBlock;
  const std::int64_t per_sample = G * row_blocks * col_blocks;
  auto run = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      const std::int64_t b = t / per_sample;
      std::int64_t rem = t % per_sample;
      const std::int64_t g = rem / (row_blocks * col_blocks);
      rem %= row_blocks * col_blocks;
      const std::int64_t rb = rem / col_blocks;
      const std::int64_t cb = rem % col_blocks;
      ops.gemm_tile_i8(qpanels + g * tiles * Kd * kMRq, Kd,
                       col_base + b * col_stride + g * Kd * N, N,
                       bias + g * Mg, dequants[b],
                       out_data + (b * M + g * Mg) * N, Mg, rb * kRowBlock,
                       std::min(Mg, (rb + 1) * kRowBlock), cb * kColBlock,
                       std::min(N, (cb + 1) * kColBlock));
    }
  };
  util::parallel_for(0, batch * per_sample, 1, run);
}

}  // namespace

ConvLayer::ConvLayer(std::string name, const ConvConfig& config)
    : Layer(std::move(name)),
      config_(config),
      weights_(Shape{config.out_channels,
                     config.in_channels / std::max<std::int64_t>(1, config.groups),
                     config.kernel, config.kernel}),
      bias_(Shape{config.out_channels}) {
  if (config.in_channels <= 0 || config.out_channels <= 0 ||
      config.kernel <= 0 || config.stride <= 0 || config.pad < 0 ||
      config.groups <= 0 || config.in_channels % config.groups != 0 ||
      config.out_channels % config.groups != 0) {
    throw std::invalid_argument("conv " + this->name() + ": bad config");
  }
}

void ConvLayer::check_input(const Shape& in) const {
  require_rank3(in, "conv");
  if (in[0] != config_.in_channels) {
    throw std::invalid_argument("conv " + name() + ": expected " +
                                std::to_string(config_.in_channels) +
                                " channels, got " + in.str());
  }
  if (conv_out_dim(in[1], config_.kernel, config_.stride, config_.pad) <= 0 ||
      conv_out_dim(in[2], config_.kernel, config_.stride, config_.pad) <= 0) {
    throw std::invalid_argument("conv " + name() + ": input too small: " +
                                in.str());
  }
}

Shape ConvLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "conv");
  check_input(inputs[0]);
  return Shape{
      config_.out_channels,
      conv_out_dim(inputs[0][1], config_.kernel, config_.stride, config_.pad),
      conv_out_dim(inputs[0][2], config_.kernel, config_.stride, config_.pad)};
}

std::uint64_t ConvLayer::flops(std::span<const Shape> inputs) const {
  Shape out = output_shape(inputs);
  // Per output element: (in_ch/groups)*k*k multiply-adds (2 flops each)
  // plus bias.
  std::uint64_t per_elem =
      2ull * static_cast<std::uint64_t>((config_.in_channels /
                                         config_.groups) *
                                        config_.kernel * config_.kernel) +
      1;
  return static_cast<std::uint64_t>(out.elements()) * per_elem;
}

const float* ConvLayer::ensure_packed(std::int64_t mr) const {
  if (mr != 4 && mr != 8) {
    throw std::logic_error("conv " + name() + ": unsupported panel mr " +
                           std::to_string(mr));
  }
  PackCache& cache = packs_[mr == 8 ? 1 : 0];
  if (!cache.valid.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(pack_mutex_);
    if (!cache.valid.load(std::memory_order_relaxed)) {
      const std::int64_t G = config_.groups;
      const std::int64_t Mg = config_.out_channels / G;
      const std::int64_t Kd =
          (config_.in_channels / G) * config_.kernel * config_.kernel;
      const std::int64_t tiles = (Mg + mr - 1) / mr;
      cache.panels.assign(static_cast<std::size_t>(G * tiles * Kd * mr), 0.0f);
      pack_gemm_panels(weights_.data().data(), G, Mg, Kd, mr,
                       cache.panels.data());
      cache.valid.store(true, std::memory_order_release);
    }
  }
  return cache.panels.data();
}

const ConvLayer::PackCacheI8& ConvLayer::ensure_packed_i8() const {
  if (!pack_i8_.valid.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(pack_mutex_);
    if (!pack_i8_.valid.load(std::memory_order_relaxed)) {
      const std::int64_t G = config_.groups;
      const std::int64_t Mg = config_.out_channels / G;
      const std::int64_t Kd =
          (config_.in_channels / G) * config_.kernel * config_.kernel;
      check_i8_depth(Kd, "conv " + name());
      constexpr std::int64_t kMRq = 4;
      const std::int64_t tiles = (Mg + kMRq - 1) / kMRq;
      pack_i8_.qw = choose_symmetric_scale(weights_.data());
      std::vector<std::int8_t> rows(
          static_cast<std::size_t>(weights_.elements()));
      quantize_symmetric(weights_.data().data(), rows.data(),
                         weights_.elements(), pack_i8_.qw.inv_scale);
      pack_i8_.panels.assign(static_cast<std::size_t>(G * tiles * Kd * kMRq),
                             0);
      pack_gemm_panels_i8(rows.data(), G, Mg, Kd, kMRq, pack_i8_.panels.data());
      pack_i8_.valid.store(true, std::memory_order_release);
    }
  }
  return pack_i8_;
}

void ConvLayer::warm_pack() const {
  const KernelOps& ops = active_kernel_ops();
  if (ops.quantized) {
    ensure_packed_i8();
  } else {
    ensure_packed(ops.gemm_mr);
  }
}

void ConvLayer::invalidate_packs() {
  for (auto& p : packs_) p.valid.store(false, std::memory_order_release);
  pack_i8_.valid.store(false, std::memory_order_release);
}

Tensor ConvLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("conv: one input");
  const Tensor& in = *inputs[0];
  check_input(in.shape());
  const std::int64_t C = in.shape()[0];
  const std::int64_t H = in.shape()[1];
  const std::int64_t W = in.shape()[2];
  const std::int64_t K = config_.kernel;
  const std::int64_t S = config_.stride;
  const std::int64_t P = config_.pad;
  const std::int64_t OH = conv_out_dim(H, K, S, P);
  const std::int64_t OW = conv_out_dim(W, K, S, P);
  const std::int64_t M = config_.out_channels;
  const std::int64_t G = config_.groups;

  const KernelOps& ops = active_kernel_ops();
  Tensor out(Shape{M, OH, OW});
  if (ops.quantized) {
    const PackCacheI8& qp = ensure_packed_i8();
    conv_forward_i8(ops, qp.panels.data(), qp.qw.scale, in.data().data(),
                    out.data().data(), bias_.data().data(), 1, C, H, W, K, S,
                    P, OH, OW, M, G);
  } else {
    const float* panels = ensure_packed(ops.gemm_mr);
    conv_forward_fp32(ops, panels, in.data().data(), out.data().data(),
                      bias_.data().data(), 1, C, H, W, K, S, P, OH, OW, M, G);
  }
  return out;
}

Tensor ConvLayer::forward_batch(std::span<const Tensor* const> inputs,
                                std::int64_t batch) const {
  if (inputs.size() != 1) throw std::invalid_argument("conv: one input");
  const Tensor& in = *inputs[0];
  const Shape per = strip_batch(in, batch, "conv");
  check_input(per);
  const std::int64_t C = per[0];
  const std::int64_t H = per[1];
  const std::int64_t W = per[2];
  const std::int64_t K = config_.kernel;
  const std::int64_t S = config_.stride;
  const std::int64_t P = config_.pad;
  const std::int64_t OH = conv_out_dim(H, K, S, P);
  const std::int64_t OW = conv_out_dim(W, K, S, P);
  const std::int64_t M = config_.out_channels;
  const std::int64_t G = config_.groups;

  const KernelOps& ops = active_kernel_ops();
  Tensor out(Shape{batch, M, OH, OW});
  if (ops.quantized) {
    const PackCacheI8& qp = ensure_packed_i8();
    conv_forward_i8(ops, qp.panels.data(), qp.qw.scale, in.data().data(),
                    out.data().data(), bias_.data().data(), batch, C, H, W, K,
                    S, P, OH, OW, M, G);
  } else {
    const float* panels = ensure_packed(ops.gemm_mr);
    conv_forward_fp32(ops, panels, in.data().data(), out.data().data(),
                      bias_.data().data(), batch, C, H, W, K, S, P, OH, OW, M,
                      G);
  }
  return out;
}

std::uint64_t ConvLayer::param_count() const {
  return static_cast<std::uint64_t>(weights_.elements() + bias_.elements());
}

void ConvLayer::init_params(util::Pcg32& rng) {
  // Xavier-style scale keeps activations bounded through deep stacks so
  // synthetic-weight forward passes stay numerically sane.
  const double fan_in =
      static_cast<double>((config_.in_channels / config_.groups) *
                          config_.kernel * config_.kernel);
  const float scale = static_cast<float>(std::sqrt(3.0 / fan_in));
  for (auto& v : weights_.data()) {
    v = static_cast<float>(rng.uniform(-scale, scale));
  }
  for (auto& v : bias_.data()) {
    v = static_cast<float>(rng.uniform(-0.01, 0.01));
  }
  invalidate_packs();
  warm_pack();  // pack once up front; forward never repacks
}

void ConvLayer::write_params(util::BinaryWriter& w) const {
  for (float v : weights_.data()) w.f32(v);
  for (float v : bias_.data()) w.f32(v);
}

void ConvLayer::read_params(util::BinaryReader& r) {
  for (auto& v : weights_.data()) v = r.f32();
  for (auto& v : bias_.data()) v = r.f32();
  invalidate_packs();
  warm_pack();
}

std::string ConvLayer::config_str() const {
  std::string s = "in=" + std::to_string(config_.in_channels) +
                  " out=" + std::to_string(config_.out_channels) +
                  " k=" + std::to_string(config_.kernel) +
                  " s=" + std::to_string(config_.stride) +
                  " p=" + std::to_string(config_.pad);
  // Emitted only when non-default so existing model descriptions (and
  // their fingerprints) are unchanged.
  if (config_.groups != 1) s += " g=" + std::to_string(config_.groups);
  return s;
}

// ----------------------------------------------------------------- PoolLayer

PoolLayer::PoolLayer(std::string name, const PoolConfig& config, bool average)
    : Layer(std::move(name)), config_(config), average_(average) {
  if (config.kernel <= 0 || config.stride <= 0 || config.pad < 0) {
    throw std::invalid_argument("pool " + this->name() + ": bad config");
  }
}

Shape PoolLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "pool");
  require_rank3(inputs[0], "pool");
  std::int64_t oh =
      pool_out_dim(inputs[0][1], config_.kernel, config_.stride, config_.pad);
  std::int64_t ow =
      pool_out_dim(inputs[0][2], config_.kernel, config_.stride, config_.pad);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("pool " + name() + ": input too small: " +
                                inputs[0].str());
  }
  return Shape{inputs[0][0], oh, ow};
}

std::uint64_t PoolLayer::flops(std::span<const Shape> inputs) const {
  Shape out = output_shape(inputs);
  // One compare-or-add per window element.
  return static_cast<std::uint64_t>(out.elements()) *
         static_cast<std::uint64_t>(config_.kernel * config_.kernel);
}

Tensor PoolLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("pool: one input");
  const Tensor& in = *inputs[0];
  Shape shapes[1] = {in.shape()};
  Shape out_shape = output_shape(shapes);
  const std::int64_t C = in.shape()[0];
  const std::int64_t H = in.shape()[1];
  const std::int64_t W = in.shape()[2];
  const std::int64_t OH = out_shape[1];
  const std::int64_t OW = out_shape[2];
  Tensor out(out_shape);
  // Channels are independent → parallel over c; each task writes only its
  // own output plane, and per-element window math is order-identical at
  // any thread count.
  const KernelOps& ops = active_kernel_ops();
  const float* src = in.data().data();
  float* dst = out.data().data();
  auto pool_channels = [&](std::int64_t c_lo, std::int64_t c_hi) {
    for (std::int64_t c = c_lo; c < c_hi; ++c) {
      ops.pool_plane(src + c * H * W, dst + c * OH * OW, H, W, OH, OW,
                     config_.kernel, config_.stride, config_.pad, average_);
    }
  };
  util::parallel_for(0, C, 1, pool_channels);
  return out;
}

Tensor PoolLayer::forward_batch(std::span<const Tensor* const> inputs,
                                std::int64_t batch) const {
  if (inputs.size() != 1) throw std::invalid_argument("pool: one input");
  const Tensor& in = *inputs[0];
  Shape per = strip_batch(in, batch, "pool");
  Shape shapes[1] = {per};
  Shape out_per = output_shape(shapes);
  const std::int64_t C = per[0];
  const std::int64_t H = per[1];
  const std::int64_t W = per[2];
  const std::int64_t OH = out_per[1];
  const std::int64_t OW = out_per[2];
  Tensor out(with_batch(out_per, batch));
  // All B*C planes are independent — one flat parallel_for across them.
  const KernelOps& ops = active_kernel_ops();
  const float* src = in.data().data();
  float* dst = out.data().data();
  auto pool_planes = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      ops.pool_plane(src + t * H * W, dst + t * OH * OW, H, W, OH, OW,
                     config_.kernel, config_.stride, config_.pad, average_);
    }
  };
  util::parallel_for(0, batch * C, 1, pool_planes);
  return out;
}

std::string PoolLayer::config_str() const {
  return "k=" + std::to_string(config_.kernel) +
         " s=" + std::to_string(config_.stride) +
         " p=" + std::to_string(config_.pad);
}

// ------------------------------------------------------- FullyConnectedLayer

namespace {

/// fp32 fc core: parallel over blocks of exactly ops.fc_block output rows
/// (last block ragged), so parallel_for chunking can never split a vector
/// panel. Per-row arithmetic is the DESIGN §11 mul-then-add chain at any
/// decomposition.
void fc_forward_fp32(const KernelOps& ops, const float* w, const float* wt,
                     std::int64_t in, std::int64_t out, const float* bias,
                     const float* x, float* y, std::int64_t batch) {
  const std::int64_t B = ops.fc_block;
  const std::int64_t nblocks = (out + B - 1) / B;
  auto run = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      const std::int64_t b = t / nblocks;
      const std::int64_t blk = t % nblocks;
      const std::int64_t r0 = blk * B;
      const std::int64_t r1 = std::min(out, r0 + B);
      ops.fc_rows(w, wt, in, x + b * in, bias, y + b * out, r0, r1);
    }
  };
  util::parallel_for(0, batch * nblocks, 1, run);
}

/// int8 fc core: per-sample activation quantization + exact int32 dots.
void fc_forward_i8(const KernelOps& ops, const std::int8_t* qw, float wscale,
                   std::int64_t in, std::int64_t out, const float* bias,
                   const float* x, float* y, std::int64_t batch) {
  util::ScratchArena::Frame scratch(util::ScratchArena::local());
  std::int8_t* qx = reinterpret_cast<std::int8_t*>(
      scratch.bytes(static_cast<std::size_t>(batch * in)));
  float* dequants = scratch.floats(static_cast<std::size_t>(batch));
  auto quant = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t b = lo; b < hi; ++b) {
      const QuantParams qa = choose_symmetric_scale(
          {x + b * in, static_cast<std::size_t>(in)});
      quantize_symmetric(x + b * in, qx + b * in, in, qa.inv_scale);
      dequants[b] = wscale * qa.scale;
    }
  };
  util::parallel_for(0, batch, 1, quant);

  const std::int64_t B = ops.fc_block;
  const std::int64_t nblocks = (out + B - 1) / B;
  auto run = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      const std::int64_t b = t / nblocks;
      const std::int64_t blk = t % nblocks;
      const std::int64_t r0 = blk * B;
      const std::int64_t r1 = std::min(out, r0 + B);
      ops.fc_rows_i8(qw, in, qx + b * in, bias, dequants[b], y + b * out, r0,
                     r1);
    }
  };
  util::parallel_for(0, batch * nblocks, 1, run);
}

}  // namespace

FullyConnectedLayer::FullyConnectedLayer(std::string name,
                                         std::int64_t in_features,
                                         std::int64_t out_features)
    : Layer(std::move(name)),
      in_(in_features),
      out_(out_features),
      weights_(Shape{out_features, in_features}),
      bias_(Shape{out_features}) {
  if (in_ <= 0 || out_ <= 0) {
    throw std::invalid_argument("fc " + this->name() + ": bad dimensions");
  }
}

Shape FullyConnectedLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "fc");
  if (inputs[0].elements() != in_) {
    throw std::invalid_argument("fc " + name() + ": expected " +
                                std::to_string(in_) + " features, got " +
                                inputs[0].str());
  }
  return Shape{out_};
}

std::uint64_t FullyConnectedLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "fc");
  return 2ull * static_cast<std::uint64_t>(in_) *
             static_cast<std::uint64_t>(out_) +
         static_cast<std::uint64_t>(out_);
}

const float* FullyConnectedLayer::ensure_transposed(std::int64_t block) const {
  if (tcache_.valid.load(std::memory_order_acquire) &&
      tcache_.block == block) {
    return tcache_.panels.data();
  }
  std::lock_guard<std::mutex> lk(pack_mutex_);
  if (!(tcache_.valid.load(std::memory_order_relaxed) &&
        tcache_.block == block)) {
    const std::int64_t tiles = (out_ + block - 1) / block;
    tcache_.panels.assign(static_cast<std::size_t>(tiles * block * in_), 0.0f);
    pack_fc_transposed(weights_.data().data(), out_, in_, block,
                       tcache_.panels.data());
    tcache_.block = block;
    tcache_.valid.store(true, std::memory_order_release);
  }
  return tcache_.panels.data();
}

const FullyConnectedLayer::QCache& FullyConnectedLayer::ensure_quantized()
    const {
  if (!qcache_.valid.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(pack_mutex_);
    if (!qcache_.valid.load(std::memory_order_relaxed)) {
      check_i8_depth(in_, "fc " + name());
      qcache_.params = choose_symmetric_scale(weights_.data());
      qcache_.qw.assign(static_cast<std::size_t>(out_ * in_), 0);
      quantize_symmetric(weights_.data().data(), qcache_.qw.data(), out_ * in_,
                         qcache_.params.inv_scale);
      qcache_.valid.store(true, std::memory_order_release);
    }
  }
  return qcache_;
}

void FullyConnectedLayer::warm_pack() const {
  const KernelOps& ops = active_kernel_ops();
  if (ops.quantized) {
    ensure_quantized();
  } else if (ops.fc_transposed) {
    ensure_transposed(ops.fc_block);
  }
}

void FullyConnectedLayer::invalidate_packs() {
  tcache_.valid.store(false, std::memory_order_release);
  qcache_.valid.store(false, std::memory_order_release);
}

Tensor FullyConnectedLayer::forward(
    std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("fc: one input");
  const Tensor& in = *inputs[0];
  if (in.elements() != in_) {
    throw std::invalid_argument("fc " + name() + ": feature count mismatch");
  }
  const KernelOps& ops = active_kernel_ops();
  Tensor out(Shape{out_});
  const float* x = in.data().data();
  if (ops.quantized) {
    const QCache& qc = ensure_quantized();
    fc_forward_i8(ops, qc.qw.data(), qc.params.scale, in_, out_,
                  bias_.data().data(), x, out.data().data(), 1);
  } else {
    const float* wt =
        ops.fc_transposed ? ensure_transposed(ops.fc_block) : nullptr;
    fc_forward_fp32(ops, weights_.data().data(), wt, in_, out_,
                    bias_.data().data(), x, out.data().data(), 1);
  }
  return out;
}

Tensor FullyConnectedLayer::forward_batch(
    std::span<const Tensor* const> inputs, std::int64_t batch) const {
  if (inputs.size() != 1) throw std::invalid_argument("fc: one input");
  const Tensor& in = *inputs[0];
  if (in.shape().rank() < 1 || in.shape()[0] != batch ||
      in.elements() != batch * in_) {
    throw std::invalid_argument("fc " + name() +
                                ": batched feature count mismatch");
  }
  const KernelOps& ops = active_kernel_ops();
  Tensor out(Shape{batch, out_});
  const float* x = in.data().data();
  if (ops.quantized) {
    const QCache& qc = ensure_quantized();
    fc_forward_i8(ops, qc.qw.data(), qc.params.scale, in_, out_,
                  bias_.data().data(), x, out.data().data(), batch);
  } else {
    const float* wt =
        ops.fc_transposed ? ensure_transposed(ops.fc_block) : nullptr;
    fc_forward_fp32(ops, weights_.data().data(), wt, in_, out_,
                    bias_.data().data(), x, out.data().data(), batch);
  }
  return out;
}

std::uint64_t FullyConnectedLayer::param_count() const {
  return static_cast<std::uint64_t>(weights_.elements() + bias_.elements());
}

void FullyConnectedLayer::init_params(util::Pcg32& rng) {
  const float scale =
      static_cast<float>(std::sqrt(3.0 / static_cast<double>(in_)));
  for (auto& v : weights_.data()) {
    v = static_cast<float>(rng.uniform(-scale, scale));
  }
  for (auto& v : bias_.data()) {
    v = static_cast<float>(rng.uniform(-0.01, 0.01));
  }
  invalidate_packs();
  warm_pack();
}

void FullyConnectedLayer::write_params(util::BinaryWriter& w) const {
  for (float v : weights_.data()) w.f32(v);
  for (float v : bias_.data()) w.f32(v);
}

void FullyConnectedLayer::read_params(util::BinaryReader& r) {
  for (auto& v : weights_.data()) v = r.f32();
  for (auto& v : bias_.data()) v = r.f32();
  invalidate_packs();
  warm_pack();
}

std::string FullyConnectedLayer::config_str() const {
  return "in=" + std::to_string(in_) + " out=" + std::to_string(out_);
}

// ------------------------------------------------------------ ReLU / Softmax

Shape ReluLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "relu");
  return inputs[0];
}

std::uint64_t ReluLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "relu");
  return static_cast<std::uint64_t>(inputs[0].elements());
}

Tensor ReluLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("relu: one input");
  Tensor out = *inputs[0];
  const KernelOps& ops = active_kernel_ops();
  float* data = out.data().data();
  auto clamp = [&](std::int64_t lo, std::int64_t hi) {
    ops.relu_range(data, lo, hi);
  };
  util::parallel_for(0, out.elements(), 1 << 15, clamp);
  return out;
}

Tensor ReluLayer::forward_batch(std::span<const Tensor* const> inputs,
                                std::int64_t batch) const {
  if (inputs.size() != 1) throw std::invalid_argument("relu: one input");
  strip_batch(*inputs[0], batch, "relu");
  // Elementwise: identical arithmetic no matter how the index space is
  // chunked, so the flat batched range is trivially bit-exact.
  Tensor out = *inputs[0];
  const KernelOps& ops = active_kernel_ops();
  float* data = out.data().data();
  auto clamp = [&](std::int64_t lo, std::int64_t hi) {
    ops.relu_range(data, lo, hi);
  };
  util::parallel_for(0, out.elements(), 1 << 15, clamp);
  return out;
}

Shape SoftmaxLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "softmax");
  return inputs[0];
}

std::uint64_t SoftmaxLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "softmax");
  return 5ull * static_cast<std::uint64_t>(inputs[0].elements());
}

Tensor SoftmaxLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("softmax: one input");
  Tensor out = *inputs[0];
  auto data = out.data();
  float m = -std::numeric_limits<float>::infinity();
  for (float v : data) m = std::max(m, v);
  double sum = 0.0;
  for (auto& v : data) {
    v = std::exp(v - m);
    sum += v;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (auto& v : data) v *= inv;
  return out;
}

// -------------------------------------------------------------- DropoutLayer

Shape DropoutLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "dropout");
  return inputs[0];
}

std::uint64_t DropoutLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "dropout");
  return 0;  // identity at inference time
}

Tensor DropoutLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("dropout: one input");
  return *inputs[0];
}

std::string DropoutLayer::config_str() const {
  return "rate=" + std::to_string(rate_);
}

// ------------------------------------------------------------------ LrnLayer

Shape LrnLayer::output_shape(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "lrn");
  require_rank3(inputs[0], "lrn");
  return inputs[0];
}

std::uint64_t LrnLayer::flops(std::span<const Shape> inputs) const {
  require_arity(inputs, 1, "lrn");
  // Per element: local_size squares/adds plus the pow and divide.
  return static_cast<std::uint64_t>(inputs[0].elements()) *
         (2ull * static_cast<std::uint64_t>(config_.local_size) + 3ull);
}

Tensor LrnLayer::forward(std::span<const Tensor* const> inputs) const {
  if (inputs.size() != 1) throw std::invalid_argument("lrn: one input");
  const Tensor& in = *inputs[0];
  const std::int64_t C = in.shape()[0];
  const std::int64_t H = in.shape()[1];
  const std::int64_t W = in.shape()[2];
  Tensor out(in.shape());
  const KernelOps& ops = active_kernel_ops();
  const float* src = in.data().data();
  float* dst = out.data().data();
  // Spatial positions are independent → parallel over rows.
  auto lrn_rows = [&](std::int64_t h_lo, std::int64_t h_hi) {
    for (std::int64_t h = h_lo; h < h_hi; ++h) {
      ops.lrn_row(src, dst, C, H, W, h, config_.local_size, config_.alpha,
                  config_.beta, config_.k);
    }
  };
  util::parallel_for(0, H, 1, lrn_rows);
  return out;
}

Tensor LrnLayer::forward_batch(std::span<const Tensor* const> inputs,
                               std::int64_t batch) const {
  if (inputs.size() != 1) throw std::invalid_argument("lrn: one input");
  const Tensor& in = *inputs[0];
  const Shape per = strip_batch(in, batch, "lrn");
  require_rank3(per, "lrn");
  const std::int64_t C = per[0];
  const std::int64_t H = per[1];
  const std::int64_t W = per[2];
  const std::int64_t plane = C * H * W;
  Tensor out(in.shape());
  const KernelOps& ops = active_kernel_ops();
  const float* src = in.data().data();
  float* dst = out.data().data();
  // Flat task space over every (sample, row) pair; each task runs the same
  // per-row kernel as the single-sample path.
  auto lrn_rows = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      const std::int64_t b = t / H;
      const std::int64_t h = t % H;
      ops.lrn_row(src + b * plane, dst + b * plane, C, H, W, h,
                  config_.local_size, config_.alpha, config_.beta, config_.k);
    }
  };
  util::parallel_for(0, batch * H, 1, lrn_rows);
  return out;
}

std::string LrnLayer::config_str() const {
  return "n=" + std::to_string(config_.local_size) +
         " alpha=" + std::to_string(config_.alpha) +
         " beta=" + std::to_string(config_.beta) +
         " kk=" + std::to_string(config_.k);
}

// --------------------------------------------------------------- ConcatLayer

Shape ConcatLayer::output_shape(std::span<const Shape> inputs) const {
  if (inputs.size() < 2) {
    throw std::invalid_argument("concat " + name() + ": needs >= 2 inputs");
  }
  require_rank3(inputs[0], "concat");
  std::int64_t channels = inputs[0][0];
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    require_rank3(inputs[i], "concat");
    if (inputs[i][1] != inputs[0][1] || inputs[i][2] != inputs[0][2]) {
      throw std::invalid_argument("concat " + name() +
                                  ": spatial dims differ: " + inputs[0].str() +
                                  " vs " + inputs[i].str());
    }
    channels += inputs[i][0];
  }
  return Shape{channels, inputs[0][1], inputs[0][2]};
}

std::uint64_t ConcatLayer::flops(std::span<const Shape> inputs) const {
  std::uint64_t n = 0;
  for (const auto& s : inputs) n += static_cast<std::uint64_t>(s.elements());
  return n;  // one copy per element
}

Tensor ConcatLayer::forward(std::span<const Tensor* const> inputs) const {
  std::vector<Shape> shapes;
  shapes.reserve(inputs.size());
  for (const Tensor* t : inputs) shapes.push_back(t->shape());
  Tensor out(output_shape(shapes));
  float* dst = out.data().data();
  for (const Tensor* t : inputs) {
    auto src = t->data();
    std::copy(src.begin(), src.end(), dst);
    dst += src.size();
  }
  return out;
}

Tensor ConcatLayer::forward_batch(std::span<const Tensor* const> inputs,
                                  std::int64_t batch) const {
  std::vector<Shape> shapes;
  shapes.reserve(inputs.size());
  for (const Tensor* t : inputs) {
    shapes.push_back(strip_batch(*t, batch, "concat"));
  }
  const Shape per_out = output_shape(shapes);
  Tensor out(with_batch(per_out, batch));
  const std::int64_t out_stride = per_out.elements();
  float* base = out.data().data();
  // Pure copies — order within a sample matches the single-sample path.
  auto copy_samples = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t b = lo; b < hi; ++b) {
      float* dst = base + b * out_stride;
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const std::int64_t stride = shapes[i].elements();
        const float* src = inputs[i]->data().data() + b * stride;
        std::copy(src, src + stride, dst);
        dst += stride;
      }
    }
  };
  util::parallel_for(0, batch, 1, copy_samples);
  return out;
}

}  // namespace offload::nn
