// Symmetric int8 quantization used by the `int8` kernel backend.
//
// Scheme (DESIGN §11): weights get a static per-layer symmetric scale
// computed when parameters are (re)loaded, activations get a dynamic
// per-tensor scale computed at layer entry; accumulation is exact int32, so
// the quantized GEMM is trivially order-free and bit-deterministic. Tensors
// flowing *between* layers (and across the offload cut) stay fp32 — the
// layer dequantizes on exit, so snapshots, compression, and the wire
// protocol are untouched by the backend choice.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

namespace offload::nn {

/// Symmetric scale mapping [-amax, amax] onto [-127, 127]. amax == 0 (an
/// all-zero tensor) degenerates to scale 0 / inv_scale 0, which quantizes
/// everything to 0 — exact.
struct QuantParams {
  float scale = 0.0f;      ///< dequant multiplier: real = q * scale
  float inv_scale = 0.0f;  ///< quant multiplier: q = round(real * inv_scale)
  float amax = 0.0f;       ///< max |v| observed
};

inline float max_abs(std::span<const float> v) {
  float m = 0.0f;
  for (float x : v) m = std::max(m, std::fabs(x));
  return m;
}

inline QuantParams choose_symmetric_scale(std::span<const float> v) {
  QuantParams p;
  p.amax = max_abs(v);
  if (p.amax > 0.0f) {
    p.scale = p.amax / 127.0f;
    p.inv_scale = 127.0f / p.amax;
  }
  return p;
}

/// Round-to-nearest-even, clamped to [-127, 127] (symmetric: -128 unused so
/// negation is closed).
inline std::int8_t quantize_one(float v, float inv_scale) {
  const long q = std::lrintf(v * inv_scale);
  return static_cast<std::int8_t>(q < -127 ? -127 : (q > 127 ? 127 : q));
}

inline void quantize_symmetric(const float* src, std::int8_t* dst,
                               std::int64_t n, float inv_scale) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = quantize_one(src[i], inv_scale);
}

/// Per-element error bound for an int8 GEMM output against the fp32
/// reference: `depth` multiply-adds of values bounded by amax_a / amax_b.
/// Each side quantizes with error <= scale/2 = amax/254, so each product
/// errs by <= amax_a*amax_b * (1/254 + 1/254 + small), i.e. ~amax_a*amax_b/127.
/// The 1.10 headroom covers fp32 reference rounding and the dequant multiply;
/// the epsilon covers layers whose true outputs are ~0.
inline float int8_error_bound(std::int64_t depth, float amax_a, float amax_b) {
  return static_cast<float>(depth) * amax_a * amax_b * (127.5f / 16129.0f) *
             1.10f +
         1e-5f;
}

}  // namespace offload::nn
