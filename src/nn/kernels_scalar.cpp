// The `scalar` kernel backend: the project's reference inner loops, moved
// out of layers.cpp with every fp32 rounding contract written explicitly
// (std::fma where the historical binary fused, separate multiply+add where
// it did not). This TU is compiled with the kernel optimization flags plus
// -ffp-contract=off, so the compiler cannot re-fuse what the source keeps
// separate — the emitted bits are the contract, on any build arch.
#include <algorithm>
#include <cmath>
#include <limits>

#include "src/nn/kernels_impl.h"

namespace offload::nn::detail {

namespace {
constexpr std::int64_t kMR = 4;  ///< scalar micro-kernel rows
constexpr std::int64_t kNR = 8;  ///< scalar micro-kernel cols
}  // namespace

// ------------------------------------------------------------- conv GEMM

void scalar_gemm_tile(const float* apack, std::int64_t kd, const float* b,
                      std::int64_t n, const float* bias, float* c,
                      std::int64_t m_total, std::int64_t i0, std::int64_t i1,
                      std::int64_t j0, std::int64_t j1) {
  for (std::int64_t i = i0; i < i1; i += kMR) {
    const float* panel = apack + (i / kMR) * (kd * kMR);
    const std::int64_t mr = std::min(kMR, m_total - i);
    for (std::int64_t j = j0; j < j1; j += kNR) {
      const std::int64_t nr = std::min(kNR, j1 - j);
      float acc[kMR][kNR];
      if (mr == kMR && nr == kNR) {
        for (std::int64_t m = 0; m < kMR; ++m) {
          const float bm = bias[i + m];
          for (std::int64_t v = 0; v < kNR; ++v) acc[m][v] = bm;
        }
        for (std::int64_t k = 0; k < kd; ++k) {
          const float* bk = b + k * n + j;
          const float* ak = panel + k * kMR;
          for (std::int64_t m = 0; m < kMR; ++m) {
            const float a = ak[m];
            for (std::int64_t v = 0; v < kNR; ++v) {
              acc[m][v] = std::fma(a, bk[v], acc[m][v]);
            }
          }
        }
        for (std::int64_t m = 0; m < kMR; ++m) {
          float* crow = c + (i + m) * n + j;
          for (std::int64_t v = 0; v < kNR; ++v) crow[v] = acc[m][v];
        }
      } else {
        for (std::int64_t m = 0; m < mr; ++m) {
          const float bm = bias[i + m];
          for (std::int64_t v = 0; v < nr; ++v) acc[m][v] = bm;
        }
        for (std::int64_t k = 0; k < kd; ++k) {
          const float* bk = b + k * n + j;
          const float* ak = panel + k * kMR;
          for (std::int64_t m = 0; m < mr; ++m) {
            const float a = ak[m];
            for (std::int64_t v = 0; v < nr; ++v) {
              acc[m][v] = std::fma(a, bk[v], acc[m][v]);
            }
          }
        }
        for (std::int64_t m = 0; m < mr; ++m) {
          float* crow = c + (i + m) * n + j;
          for (std::int64_t v = 0; v < nr; ++v) crow[v] = acc[m][v];
        }
      }
    }
  }
}

void gemm_tile_edge(const float* apack, std::int64_t mr_panel, std::int64_t kd,
                    const float* b, std::int64_t n, const float* bias, float* c,
                    std::int64_t m_total, std::int64_t i0, std::int64_t i1,
                    std::int64_t j0, std::int64_t j1) {
  for (std::int64_t i = i0; i < i1; i += mr_panel) {
    const float* panel = apack + (i / mr_panel) * (kd * mr_panel);
    const std::int64_t mr = std::min(mr_panel, m_total - i);
    for (std::int64_t m = 0; m < mr; ++m) {
      for (std::int64_t j = j0; j < j1; ++j) {
        float acc = bias[i + m];
        const float* bk = b + j;
        const float* ak = panel + m;
        for (std::int64_t k = 0; k < kd; ++k) {
          acc = std::fma(ak[k * mr_panel], bk[k * n], acc);
        }
        c[(i + m) * n + j] = acc;
      }
    }
  }
}

void scalar_gemm_tile_i8(const std::int8_t* apack, std::int64_t kd,
                         const std::int8_t* b, std::int64_t n,
                         const float* bias, float dequant, float* c,
                         std::int64_t m_total, std::int64_t i0, std::int64_t i1,
                         std::int64_t j0, std::int64_t j1) {
  // Exact int32 accumulation: order-free, so any tiling/vectorization of
  // this kernel is bit-identical by construction. The only fp steps are the
  // final int32->float convert and one fma against the bias.
  for (std::int64_t i = i0; i < i1; i += kMR) {
    const std::int8_t* panel = apack + (i / kMR) * (kd * kMR);
    const std::int64_t mr = std::min(kMR, m_total - i);
    for (std::int64_t j = j0; j < j1; j += kNR) {
      const std::int64_t nr = std::min(kNR, j1 - j);
      std::int32_t acc[kMR][kNR] = {};
      for (std::int64_t k = 0; k < kd; ++k) {
        const std::int8_t* bk = b + k * n + j;
        const std::int8_t* ak = panel + k * kMR;
        for (std::int64_t m = 0; m < mr; ++m) {
          const std::int32_t a = ak[m];
          for (std::int64_t v = 0; v < nr; ++v) {
            acc[m][v] += a * static_cast<std::int32_t>(bk[v]);
          }
        }
      }
      for (std::int64_t m = 0; m < mr; ++m) {
        float* crow = c + (i + m) * n + j;
        for (std::int64_t v = 0; v < nr; ++v) {
          crow[v] =
              std::fma(dequant, static_cast<float>(acc[m][v]), bias[i + m]);
        }
      }
    }
  }
}

// -------------------------------------------------------------------- fc

void scalar_fc_rows(const float* w, const float* /*wt*/, std::int64_t in,
                    const float* x, const float* bias, float* y,
                    std::int64_t row0, std::int64_t row1) {
  for (std::int64_t i = row0; i < row1; ++i) {
    const float* row = w + i * in;
    float acc = bias[i];
    for (std::int64_t j = 0; j < in; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
}

void scalar_fc_rows_i8(const std::int8_t* qw, std::int64_t in,
                       const std::int8_t* qx, const float* bias, float dequant,
                       float* y, std::int64_t row0, std::int64_t row1) {
  for (std::int64_t i = row0; i < row1; ++i) {
    const std::int8_t* row = qw + i * in;
    std::int32_t acc = 0;
    for (std::int64_t j = 0; j < in; ++j) {
      acc += static_cast<std::int32_t>(row[j]) *
             static_cast<std::int32_t>(qx[j]);
    }
    y[i] = std::fma(dequant, static_cast<float>(acc), bias[i]);
  }
}

// ---------------------------------------------------------- relu / pool

void scalar_relu_range(float* data, std::int64_t lo, std::int64_t hi) {
  for (std::int64_t i = lo; i < hi; ++i) data[i] = std::max(data[i], 0.0f);
}

void scalar_pool_plane(const float* in, float* out, std::int64_t H,
                       std::int64_t W, std::int64_t OH, std::int64_t OW,
                       std::int64_t kernel, std::int64_t stride,
                       std::int64_t pad, bool average) {
  for (std::int64_t oh = 0; oh < OH; ++oh) {
    for (std::int64_t ow = 0; ow < OW; ++ow) {
      const std::int64_t h0 = oh * stride - pad;
      const std::int64_t w0 = ow * stride - pad;
      const std::int64_t h1 = std::min(h0 + kernel, H);
      const std::int64_t w1 = std::min(w0 + kernel, W);
      const std::int64_t hs = std::max<std::int64_t>(h0, 0);
      const std::int64_t ws = std::max<std::int64_t>(w0, 0);
      if (average) {
        float sum = 0.0f;
        for (std::int64_t h = hs; h < h1; ++h) {
          for (std::int64_t w = ws; w < w1; ++w) sum += in[h * W + w];
        }
        // Caffe averages over the full kernel area including padding.
        out[oh * OW + ow] = sum / static_cast<float>(kernel * kernel);
      } else {
        float m = -std::numeric_limits<float>::infinity();
        for (std::int64_t h = hs; h < h1; ++h) {
          for (std::int64_t w = ws; w < w1; ++w) {
            m = std::max(m, in[h * W + w]);
          }
        }
        out[oh * OW + ow] = m;
      }
    }
  }
}

// ------------------------------------------------------------------- lrn

void scalar_lrn_row(const float* in, float* out, std::int64_t C,
                    std::int64_t H, std::int64_t W, std::int64_t h,
                    std::int64_t local_size, double alpha, double beta,
                    double k) {
  const std::int64_t half = local_size / 2;
  const double alpha_over_n = alpha / static_cast<double>(local_size);
  for (std::int64_t w = 0; w < W; ++w) {
    for (std::int64_t c = 0; c < C; ++c) {
      const std::int64_t c0 = std::max<std::int64_t>(0, c - half);
      const std::int64_t c1 = std::min(C - 1, c + half);
      double sum = 0.0;
      for (std::int64_t cc = c0; cc <= c1; ++cc) {
        // v is a float widened to double, so v*v is exact — adding the
        // product is one rounding whether or not the compiler fuses.
        const double v = in[(cc * H + h) * W + w];
        sum += v * v;
      }
      const double denom = std::pow(k + alpha_over_n * sum, beta);
      out[(c * H + h) * W + w] =
          static_cast<float>(in[(c * H + h) * W + w] / denom);
    }
  }
}

}  // namespace offload::nn::detail

// ------------------------------------------------------- packing helpers

namespace offload::nn {

void pack_gemm_panels(const float* w, std::int64_t G, std::int64_t Mg,
                      std::int64_t Kd, std::int64_t mr, float* dst) {
  const std::int64_t tiles = (Mg + mr - 1) / mr;
  for (std::int64_t g = 0; g < G; ++g) {
    for (std::int64_t t = 0; t < tiles; ++t) {
      float* panel = dst + (g * tiles + t) * Kd * mr;
      for (std::int64_t m = 0; m < mr; ++m) {
        const std::int64_t row = t * mr + m;
        if (row >= Mg) continue;  // padding rows stay zero
        const float* src = w + (g * Mg + row) * Kd;
        for (std::int64_t k = 0; k < Kd; ++k) panel[k * mr + m] = src[k];
      }
    }
  }
}

void pack_gemm_panels_i8(const std::int8_t* w, std::int64_t G, std::int64_t Mg,
                         std::int64_t Kd, std::int64_t mr, std::int8_t* dst) {
  const std::int64_t tiles = (Mg + mr - 1) / mr;
  for (std::int64_t g = 0; g < G; ++g) {
    for (std::int64_t t = 0; t < tiles; ++t) {
      std::int8_t* panel = dst + (g * tiles + t) * Kd * mr;
      for (std::int64_t m = 0; m < mr; ++m) {
        const std::int64_t row = t * mr + m;
        if (row >= Mg) continue;
        const std::int8_t* src = w + (g * Mg + row) * Kd;
        for (std::int64_t k = 0; k < Kd; ++k) panel[k * mr + m] = src[k];
      }
    }
  }
}

void pack_fc_transposed(const float* w, std::int64_t out, std::int64_t in,
                        std::int64_t block, float* dst) {
  const std::int64_t tiles = (out + block - 1) / block;
  for (std::int64_t t = 0; t < tiles; ++t) {
    float* panel = dst + t * block * in;
    for (std::int64_t l = 0; l < block; ++l) {
      const std::int64_t row = t * block + l;
      if (row >= out) continue;
      const float* src = w + row * in;
      for (std::int64_t j = 0; j < in; ++j) panel[j * block + l] = src[j];
    }
  }
}

}  // namespace offload::nn
