// Runtime-dispatched kernel backend registry for the NN layer inner loops.
//
// Three backends share one ops table shape:
//   scalar — the reference kernels (the original packed tiled-GEMM conv and
//            friends) with every fp32 accumulation contract written
//            explicitly in the source;
//   simd   — hand-vectorized AVX2/AVX-512 micro-kernels (runtime CPU
//            detection, per-function target attributes, scalar fallback on
//            machines without the ISA) that keep the *same* per-element
//            rounding contracts, so fp32 outputs are bit-identical to
//            scalar at any OFFLOAD_THREADS;
//   int8   — symmetric per-layer quantized conv/fc (exact int32
//            accumulation, fp32 tensors between layers); non-GEMM layers
//            run the simd fp32 kernels. Gated by accuracy deltas, not bit
//            equality.
//
// The fp32 contracts (DESIGN §11) every backend must honor per output
// element:
//   conv GEMM: acc = bias first, then acc = fma(w, x, acc) with k ascending
//              in im2col row order r = (c*K + kh)*K + kw;
//   fc:        acc = bias first, then acc = acc + w*x (separately rounded
//              multiply then add) with j ascending;
//   avg pool:  sum over the window in (h, w) order, then one divide;
//   max pool:  float max over the window (order-free);
//   lrn:       double-precision square sum in channel order (products of
//              float-valued doubles are exact, so contraction-immune);
//   relu:      elementwise max(x, 0).
//
// Backend selection: OFFLOAD_KERNELS={scalar,simd,int8} (default scalar).
// Requests for simd/int8 on a machine without AVX2+FMA quietly run the
// scalar fp32 kernels underneath — same table shape, same results as
// scalar/int8-over-scalar.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "src/obs/trace.h"

namespace offload::nn {

enum class KernelBackend : std::uint8_t { kScalar = 0, kSimd = 1, kInt8 = 2 };
inline constexpr std::size_t kKernelBackendCount = 3;

const char* kernel_backend_name(KernelBackend k);
std::optional<KernelBackend> parse_kernel_backend(std::string_view s);

/// Runtime ISA detection (x86: AVX2+FMA resp. AVX-512F; elsewhere false).
bool cpu_supports_simd();
bool cpu_supports_avx512();

/// The process-wide backend: OFFLOAD_KERNELS at first use, overridable via
/// set_kernel_backend (tests / harnesses). Unknown env values fall back to
/// scalar.
KernelBackend active_kernel_backend();
/// Returns the previous backend.
KernelBackend set_kernel_backend(KernelBackend k);

/// One backend's kernel table. All function pointers are non-null; the
/// int8 entries of fp32 backends point at the scalar int8 kernels (they are
/// only reached when a layer is explicitly asked for quantized execution).
struct KernelOps {
  KernelBackend kind = KernelBackend::kScalar;
  const char* name = "scalar";
  bool quantized = false;  ///< conv/fc run the int8 path

  /// Conv GEMM micro-kernel geometry: weights are packed into gemm_mr-row
  /// panels; the tile function walks columns in steps of gemm_nr.
  std::int64_t gemm_mr = 4;
  std::int64_t gemm_nr = 8;
  /// One macro-tile of C[i0:i1) x [j0:j1) = Apack * B + bias over depth kd.
  /// Apack holds gemm_mr-row panels (panel[k*mr + m]); B row-major kd x n;
  /// i0 is always a multiple of gemm_mr.
  void (*gemm_tile)(const float* apack, std::int64_t kd, const float* b,
                    std::int64_t n, const float* bias, float* c,
                    std::int64_t m_total, std::int64_t i0, std::int64_t i1,
                    std::int64_t j0, std::int64_t j1) = nullptr;
  /// Quantized macro-tile: int8 panels/columns, exact int32 accumulation,
  /// out = fma(dequant, (float)acc, bias). Panels are packed with mr = 4
  /// for every backend.
  void (*gemm_tile_i8)(const std::int8_t* apack, std::int64_t kd,
                       const std::int8_t* b, std::int64_t n, const float* bias,
                       float dequant, float* c, std::int64_t m_total,
                       std::int64_t i0, std::int64_t i1, std::int64_t j0,
                       std::int64_t j1) = nullptr;

  /// FC row-block size. The layer parallelizes over blocks of exactly this
  /// many output rows (last block ragged), so chunking cannot split a
  /// vector panel. `wt`, when non-null, holds fc_block-row transposed
  /// panels (panel t: in x fc_block, lane l = row t*fc_block + l); the
  /// scalar backend passes wt == nullptr and reads row-major w directly.
  std::int64_t fc_block = 8;
  /// Whether fc_rows wants the transposed wt panels (vector backends). The
  /// layer skips building/caching them when false.
  bool fc_transposed = false;
  void (*fc_rows)(const float* w, const float* wt, std::int64_t in,
                  const float* x, const float* bias, float* y,
                  std::int64_t row0, std::int64_t row1) = nullptr;
  void (*fc_rows_i8)(const std::int8_t* qw, std::int64_t in,
                     const std::int8_t* qx, const float* bias, float dequant,
                     float* y, std::int64_t row0, std::int64_t row1) = nullptr;

  void (*relu_range)(float* data, std::int64_t lo, std::int64_t hi) = nullptr;
  /// One pooled channel plane (max or average, Caffe window clipping).
  void (*pool_plane)(const float* in, float* out, std::int64_t H,
                     std::int64_t W, std::int64_t OH, std::int64_t OW,
                     std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                     bool average) = nullptr;
  /// One spatial row (all W x all C) of LRN channel normalization.
  void (*lrn_row)(const float* in, float* out, std::int64_t C, std::int64_t H,
                  std::int64_t W, std::int64_t h, std::int64_t local_size,
                  double alpha, double beta, double k) = nullptr;
};

/// The table for a specific backend (simd degrades to scalar kernels on
/// machines without AVX2+FMA — kind/name still say what was asked for).
const KernelOps& kernel_ops(KernelBackend k);
inline const KernelOps& active_kernel_ops() {
  return kernel_ops(active_kernel_backend());
}

/// RAII backend override for tests.
class ScopedKernelBackend {
 public:
  explicit ScopedKernelBackend(KernelBackend k) : prev_(set_kernel_backend(k)) {}
  ~ScopedKernelBackend() { set_kernel_backend(prev_); }
  ScopedKernelBackend(const ScopedKernelBackend&) = delete;
  ScopedKernelBackend& operator=(const ScopedKernelBackend&) = delete;

 private:
  KernelBackend prev_;
};

/// Tag an NN leaf span with the active kernel backend. Emits nothing under
/// the default scalar backend so golden traces stay byte-identical.
void tag_kernel_backend_span(obs::Tracer& tracer, obs::SpanId span);

// ---- shared packing helpers (implemented by the scalar backend TU) ----

/// Pack grouped conv weights {G*Mg rows x Kd} into mr-row panels:
/// dst[(g*tiles + t)*Kd*mr + k*mr + m] = w[(g*Mg + t*mr + m)*Kd + k],
/// padding rows zero. dst must hold G * ceil(Mg/mr) * Kd * mr entries.
void pack_gemm_panels(const float* w, std::int64_t G, std::int64_t Mg,
                      std::int64_t Kd, std::int64_t mr, float* dst);
void pack_gemm_panels_i8(const std::int8_t* w, std::int64_t G, std::int64_t Mg,
                         std::int64_t Kd, std::int64_t mr, std::int8_t* dst);
/// Transpose fc weights {out x in} into block-row panels:
/// dst[t*block*in + j*block + l] = w[(t*block + l)*in + j], padded with
/// zero rows. dst must hold ceil(out/block)*block*in entries.
void pack_fc_transposed(const float* w, std::int64_t out, std::int64_t in,
                        std::int64_t block, float* dst);

}  // namespace offload::nn
