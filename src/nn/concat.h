// Channel-wise concatenation — joins the four branches of a GoogLeNet
// inception module.
#pragma once

#include "src/nn/layer.h"

namespace offload::nn {

class ConcatLayer final : public Layer {
 public:
  explicit ConcatLayer(std::string name) : Layer(std::move(name)) {}
  LayerKind kind() const override { return LayerKind::kConcat; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  std::uint64_t flops(std::span<const Shape> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs) const override;
  Tensor forward_batch(std::span<const Tensor* const> inputs,
                       std::int64_t batch) const override;
};

}  // namespace offload::nn
