// Max/average pooling layers (Caffe semantics: ceil output rounding, which
// is what produces GoogLeNet's 112→56→28→14→7 pyramid).
#pragma once

#include "src/nn/layer.h"

namespace offload::nn {

struct PoolConfig {
  std::int64_t kernel = 2;
  std::int64_t stride = 2;
  std::int64_t pad = 0;
};

class PoolLayer final : public Layer {
 public:
  /// `average` false → max pooling (the paper's "pool layer"), true → the
  /// global average pool that ends GoogLeNet.
  PoolLayer(std::string name, const PoolConfig& config, bool average);

  LayerKind kind() const override {
    return average_ ? LayerKind::kAvgPool : LayerKind::kMaxPool;
  }
  Shape output_shape(std::span<const Shape> inputs) const override;
  std::uint64_t flops(std::span<const Shape> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs) const override;
  Tensor forward_batch(std::span<const Tensor* const> inputs,
                       std::int64_t batch) const override;
  std::string config_str() const override;

  const PoolConfig& config() const { return config_; }

 private:
  PoolConfig config_;
  bool average_;
};

}  // namespace offload::nn
