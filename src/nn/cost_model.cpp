#include "src/nn/cost_model.h"

#include <stdexcept>

namespace offload::nn {
namespace {

constexpr std::size_t idx(LayerKind kind) {
  return static_cast<std::size_t>(kind);
}

}  // namespace

void LayerCostModel::add_sample(LayerKind kind, std::uint64_t flops,
                                double seconds) {
  auto& s = samples_[idx(kind)];
  s.x.push_back(static_cast<double>(flops));
  s.y.push_back(seconds);
}

LayerCostModel::Fit LayerCostModel::least_squares(const Series& s) {
  Fit fit;
  const std::size_t n = s.x.size();
  if (n == 0) return fit;
  if (n == 1) {
    fit.slope = s.x[0] > 0 ? s.y[0] / s.x[0] : 0.0;
    fit.intercept = s.x[0] > 0 ? 0.0 : s.y[0];
    fit.valid = true;
    return fit;
  }
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += s.x[i];
    sy += s.y[i];
    sxx += s.x[i] * s.x[i];
    sxy += s.x[i] * s.y[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom <= 1e-30) {
    // All samples at the same FLOP count: constant model.
    fit.slope = 0.0;
    fit.intercept = sy / dn;
  } else {
    fit.slope = (dn * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / dn;
    if (fit.slope < 0) {  // Latency can't improve with work; clamp.
      fit.slope = 0;
      fit.intercept = sy / dn;
    }
    if (fit.intercept < 0) fit.intercept = 0;
  }
  fit.valid = true;
  return fit;
}

void LayerCostModel::fit() {
  Series all;
  for (std::size_t k = 0; k < samples_.size(); ++k) {
    fits_[k] = least_squares(samples_[k]);
    all.x.insert(all.x.end(), samples_[k].x.begin(), samples_[k].x.end());
    all.y.insert(all.y.end(), samples_[k].y.begin(), samples_[k].y.end());
  }
  global_ = least_squares(all);
  fitted_any_ = global_.valid;
}

bool LayerCostModel::fitted(LayerKind kind) const {
  return fits_[idx(kind)].valid;
}

double LayerCostModel::predict(LayerKind kind, std::uint64_t flops) const {
  if (!fitted_any_) {
    throw std::logic_error("LayerCostModel::predict before fit()");
  }
  const Fit& f = fits_[idx(kind)].valid ? fits_[idx(kind)] : global_;
  double t = f.slope * static_cast<double>(flops) + f.intercept;
  return t < 0 ? 0 : t;
}

double LayerCostModel::predict_range(const Network& net, std::size_t begin,
                                     std::size_t end) const {
  const auto& analysis = net.analyze();
  end = std::min(end, net.size());
  double total = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    total += predict(net.layer(i).kind(), analysis.flops[i]);
  }
  return total;
}

LayerCostModel LayerCostModel::profile_device(
    const DeviceProfile& device, std::span<const Network* const> nets) {
  LayerCostModel model;
  for (const Network* net : nets) {
    const auto& analysis = net->analyze();
    for (std::size_t i = 0; i < net->size(); ++i) {
      LayerKind kind = net->layer(i).kind();
      model.add_sample(kind, analysis.flops[i],
                       device.layer_time_s(kind, analysis.flops[i]));
    }
  }
  model.fit();
  return model;
}

}  // namespace offload::nn
