// The `simd` kernel backend: hand-vectorized AVX2 / AVX-512 micro-kernels
// behind per-function target attributes and __builtin_cpu_supports, so this
// TU compiles with baseline flags and the binary runs anywhere — machines
// without AVX2+FMA fall back to the scalar kernels at table-build time.
//
// Bit-exactness (fp32): every output element keeps the scalar backend's
// rounding contract exactly —
//   * conv GEMM: vfmadd lanes reproduce the scalar std::fma chain
//     (k-ascending, bias-first); lane independence means the wider AVX-512
//     8x16 tile is still the same per-element chain;
//   * fc: vmulps+vaddps across *output rows* (transposed weight panels)
//     reproduces the scalar separate-multiply-then-add chain, j-ascending;
//   * avg pool: masked-gather lanes add +0.0 for window positions the
//     scalar kernel skips — exact, because a partial sum is never -0.0;
//   * max pool: extra -inf lanes never change a float max;
//   * lrn: double products of float values are exact, so the vector fma
//     square-sum equals the scalar sum bit-for-bit.
// The int8 kernels accumulate in int32 (exact, order-free) and share the
// final fma(dequant, acc, bias) step with the scalar int8 kernels.
#include <algorithm>
#include <cmath>
#include <limits>

#include "src/nn/kernels_impl.h"

#if defined(__x86_64__) || defined(__i386__)
#define OFFLOAD_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace offload::nn::detail {

#if OFFLOAD_KERNELS_X86

namespace {

// ------------------------------------------------------ AVX2 conv GEMM

__attribute__((target("avx2,fma"))) void avx2_gemm_tile(
    const float* apack, std::int64_t kd, const float* b, std::int64_t n,
    const float* bias, float* c, std::int64_t m_total, std::int64_t i0,
    std::int64_t i1, std::int64_t j0, std::int64_t j1) {
  constexpr std::int64_t kMR = 4;
  constexpr std::int64_t kNR = 8;
  for (std::int64_t i = i0; i < i1; i += kMR) {
    const float* panel = apack + (i / kMR) * (kd * kMR);
    const std::int64_t mr = std::min(kMR, m_total - i);
    if (mr < kMR) {
      gemm_tile_edge(apack, kMR, kd, b, n, bias, c, m_total, i,
                     std::min(i + kMR, i1), j0, j1);
      continue;
    }
    std::int64_t j = j0;
    for (; j + kNR <= j1; j += kNR) {
      __m256 acc0 = _mm256_broadcast_ss(bias + i + 0);
      __m256 acc1 = _mm256_broadcast_ss(bias + i + 1);
      __m256 acc2 = _mm256_broadcast_ss(bias + i + 2);
      __m256 acc3 = _mm256_broadcast_ss(bias + i + 3);
      const float* bk = b + j;
      const float* ak = panel;
      for (std::int64_t k = 0; k < kd; ++k, bk += n, ak += kMR) {
        const __m256 bv = _mm256_loadu_ps(bk);
        acc0 = _mm256_fmadd_ps(_mm256_broadcast_ss(ak + 0), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_broadcast_ss(ak + 1), bv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_broadcast_ss(ak + 2), bv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_broadcast_ss(ak + 3), bv, acc3);
      }
      _mm256_storeu_ps(c + (i + 0) * n + j, acc0);
      _mm256_storeu_ps(c + (i + 1) * n + j, acc1);
      _mm256_storeu_ps(c + (i + 2) * n + j, acc2);
      _mm256_storeu_ps(c + (i + 3) * n + j, acc3);
    }
    if (j < j1) {
      gemm_tile_edge(apack, kMR, kd, b, n, bias, c, m_total, i,
                     std::min(i + kMR, i1), j, j1);
    }
  }
}

// --------------------------------------------------- AVX-512 conv GEMM
//
// 8x16 register tile: 8 zmm accumulators hide the FMA latency the scalar
// 4x8 tile cannot, and each k-step feeds them from one 64-byte column load.

__attribute__((target("avx512f,fma"))) void avx512_gemm_tile(
    const float* apack, std::int64_t kd, const float* b, std::int64_t n,
    const float* bias, float* c, std::int64_t m_total, std::int64_t i0,
    std::int64_t i1, std::int64_t j0, std::int64_t j1) {
  constexpr std::int64_t kMR = 8;
  constexpr std::int64_t kNR = 16;
  for (std::int64_t i = i0; i < i1; i += kMR) {
    const float* panel = apack + (i / kMR) * (kd * kMR);
    const std::int64_t mr = std::min(kMR, m_total - i);
    if (mr < kMR) {
      gemm_tile_edge(apack, kMR, kd, b, n, bias, c, m_total, i,
                     std::min(i + kMR, i1), j0, j1);
      continue;
    }
    for (std::int64_t j = j0; j < j1; j += kNR) {
      const std::int64_t nr = std::min(kNR, j1 - j);
      const __mmask16 mask =
          nr == kNR ? static_cast<__mmask16>(0xffff)
                    : static_cast<__mmask16>((1u << nr) - 1u);
      __m512 acc0 = _mm512_set1_ps(bias[i + 0]);
      __m512 acc1 = _mm512_set1_ps(bias[i + 1]);
      __m512 acc2 = _mm512_set1_ps(bias[i + 2]);
      __m512 acc3 = _mm512_set1_ps(bias[i + 3]);
      __m512 acc4 = _mm512_set1_ps(bias[i + 4]);
      __m512 acc5 = _mm512_set1_ps(bias[i + 5]);
      __m512 acc6 = _mm512_set1_ps(bias[i + 6]);
      __m512 acc7 = _mm512_set1_ps(bias[i + 7]);
      const float* bk = b + j;
      const float* ak = panel;
      if (nr == kNR) {
        for (std::int64_t k = 0; k < kd; ++k, bk += n, ak += kMR) {
          const __m512 bv = _mm512_loadu_ps(bk);
          acc0 = _mm512_fmadd_ps(_mm512_set1_ps(ak[0]), bv, acc0);
          acc1 = _mm512_fmadd_ps(_mm512_set1_ps(ak[1]), bv, acc1);
          acc2 = _mm512_fmadd_ps(_mm512_set1_ps(ak[2]), bv, acc2);
          acc3 = _mm512_fmadd_ps(_mm512_set1_ps(ak[3]), bv, acc3);
          acc4 = _mm512_fmadd_ps(_mm512_set1_ps(ak[4]), bv, acc4);
          acc5 = _mm512_fmadd_ps(_mm512_set1_ps(ak[5]), bv, acc5);
          acc6 = _mm512_fmadd_ps(_mm512_set1_ps(ak[6]), bv, acc6);
          acc7 = _mm512_fmadd_ps(_mm512_set1_ps(ak[7]), bv, acc7);
        }
      } else {
        for (std::int64_t k = 0; k < kd; ++k, bk += n, ak += kMR) {
          const __m512 bv = _mm512_maskz_loadu_ps(mask, bk);
          acc0 = _mm512_fmadd_ps(_mm512_set1_ps(ak[0]), bv, acc0);
          acc1 = _mm512_fmadd_ps(_mm512_set1_ps(ak[1]), bv, acc1);
          acc2 = _mm512_fmadd_ps(_mm512_set1_ps(ak[2]), bv, acc2);
          acc3 = _mm512_fmadd_ps(_mm512_set1_ps(ak[3]), bv, acc3);
          acc4 = _mm512_fmadd_ps(_mm512_set1_ps(ak[4]), bv, acc4);
          acc5 = _mm512_fmadd_ps(_mm512_set1_ps(ak[5]), bv, acc5);
          acc6 = _mm512_fmadd_ps(_mm512_set1_ps(ak[6]), bv, acc6);
          acc7 = _mm512_fmadd_ps(_mm512_set1_ps(ak[7]), bv, acc7);
        }
      }
      _mm512_mask_storeu_ps(c + (i + 0) * n + j, mask, acc0);
      _mm512_mask_storeu_ps(c + (i + 1) * n + j, mask, acc1);
      _mm512_mask_storeu_ps(c + (i + 2) * n + j, mask, acc2);
      _mm512_mask_storeu_ps(c + (i + 3) * n + j, mask, acc3);
      _mm512_mask_storeu_ps(c + (i + 4) * n + j, mask, acc4);
      _mm512_mask_storeu_ps(c + (i + 5) * n + j, mask, acc5);
      _mm512_mask_storeu_ps(c + (i + 6) * n + j, mask, acc6);
      _mm512_mask_storeu_ps(c + (i + 7) * n + j, mask, acc7);
    }
  }
}

// ----------------------------------------------------------------- fc

__attribute__((target("avx2,fma"))) void avx2_fc_rows(
    const float* w, const float* wt, std::int64_t in, const float* x,
    const float* bias, float* y, std::int64_t row0, std::int64_t row1) {
  constexpr std::int64_t kB = 8;
  if (wt == nullptr || row1 - row0 != kB || row0 % kB != 0) {
    scalar_fc_rows(w, nullptr, in, x, bias, y, row0, row1);  // ragged block
    return;
  }
  const float* panel = wt + row0 * in;  // (row0/kB) * kB * in
  __m256 acc = _mm256_loadu_ps(bias + row0);
  for (std::int64_t j = 0; j < in; ++j) {
    const __m256 wv = _mm256_loadu_ps(panel + j * kB);
    const __m256 xv = _mm256_broadcast_ss(x + j);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(wv, xv));  // two roundings: the
    // scalar fc contract is mul-then-add, never fused.
  }
  _mm256_storeu_ps(y + row0, acc);
}

__attribute__((target("avx512f,fma"))) void avx512_fc_rows(
    const float* w, const float* wt, std::int64_t in, const float* x,
    const float* bias, float* y, std::int64_t row0, std::int64_t row1) {
  constexpr std::int64_t kB = 16;
  if (wt == nullptr || row1 - row0 != kB || row0 % kB != 0) {
    scalar_fc_rows(w, nullptr, in, x, bias, y, row0, row1);
    return;
  }
  const float* panel = wt + row0 * in;
  __m512 acc = _mm512_loadu_ps(bias + row0);
  for (std::int64_t j = 0; j < in; ++j) {
    const __m512 wv = _mm512_loadu_ps(panel + j * kB);
    const __m512 xv = _mm512_set1_ps(x[j]);
    acc = _mm512_add_ps(acc, _mm512_mul_ps(wv, xv));
  }
  _mm512_storeu_ps(y + row0, acc);
}

// relu: no AVX2 variant. An explicit _mm256_max_ps loop measured 0.73x
// the scalar loop (bench_micro_kernels, relu 64x112²): the op is purely
// memory-bound, the compiler already vectorizes the scalar max, and the
// hand-written version only added dispatch and alignment overhead. The
// simd (and therefore int8) tables keep scalar_relu_range.

// --------------------------------------------------------------- pool

__attribute__((target("avx2"))) void avx2_pool_plane(
    const float* in, float* out, std::int64_t H, std::int64_t W,
    std::int64_t OH, std::int64_t OW, std::int64_t kernel, std::int64_t stride,
    std::int64_t pad, bool average) {
  const __m256i lane_idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i wlimit = _mm256_set1_epi32(static_cast<int>(W));
  const __m256 minus_inf = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
  const float area = static_cast<float>(kernel * kernel);
  for (std::int64_t oh = 0; oh < OH; ++oh) {
    const std::int64_t h0 = oh * stride - pad;
    const std::int64_t hs = std::max<std::int64_t>(h0, 0);
    const std::int64_t h1 = std::min(h0 + kernel, H);
    for (std::int64_t ow0 = 0; ow0 < OW; ow0 += 8) {
      const int n_act = static_cast<int>(std::min<std::int64_t>(8, OW - ow0));
      // Lane l handles output column ow0+l; its input columns are
      // iw = (ow0+l)*stride - pad + kw for kw in [0, kernel).
      const __m256i w_base = _mm256_add_epi32(
          _mm256_set1_epi32(static_cast<int>(ow0 * stride - pad)),
          _mm256_mullo_epi32(lane_idx, _mm256_set1_epi32(static_cast<int>(stride))));
      const __m256i act_mask = _mm256_cmpgt_epi32(
          _mm256_set1_epi32(n_act), lane_idx);  // lane < n_act
      if (average) {
        __m256 sum = _mm256_setzero_ps();
        for (std::int64_t h = hs; h < h1; ++h) {
          const float* row = in + h * W;
          for (std::int64_t kw = 0; kw < kernel; ++kw) {
            const __m256i iw = _mm256_add_epi32(
                w_base, _mm256_set1_epi32(static_cast<int>(kw)));
            const __m256i in_range = _mm256_and_si256(
                _mm256_cmpgt_epi32(iw, _mm256_set1_epi32(-1)),
                _mm256_cmpgt_epi32(wlimit, iw));
            const __m256i mask = _mm256_and_si256(in_range, act_mask);
            const __m256 v = _mm256_mask_i32gather_ps(
                _mm256_setzero_ps(), row, iw, _mm256_castsi256_ps(mask), 4);
            sum = _mm256_add_ps(sum, v);  // masked lanes add +0.0 — exact
          }
        }
        const __m256 res = _mm256_div_ps(sum, _mm256_set1_ps(area));
        _mm256_maskstore_ps(out + oh * OW + ow0, act_mask, res);
      } else {
        __m256 m = minus_inf;
        for (std::int64_t h = hs; h < h1; ++h) {
          const float* row = in + h * W;
          for (std::int64_t kw = 0; kw < kernel; ++kw) {
            const __m256i iw = _mm256_add_epi32(
                w_base, _mm256_set1_epi32(static_cast<int>(kw)));
            const __m256i in_range = _mm256_and_si256(
                _mm256_cmpgt_epi32(iw, _mm256_set1_epi32(-1)),
                _mm256_cmpgt_epi32(wlimit, iw));
            const __m256i mask = _mm256_and_si256(in_range, act_mask);
            const __m256 v = _mm256_mask_i32gather_ps(
                minus_inf, row, iw, _mm256_castsi256_ps(mask), 4);
            m = _mm256_max_ps(v, m);  // max(v, m): NaN/±0 ties keep m,
            // matching std::max(m, v)
          }
        }
        _mm256_maskstore_ps(out + oh * OW + ow0, act_mask, m);
      }
    }
  }
}

// ---------------------------------------------------------------- lrn

__attribute__((target("avx2,fma"))) void avx2_lrn_row(
    const float* in, float* out, std::int64_t C, std::int64_t H,
    std::int64_t W, std::int64_t h, std::int64_t local_size, double alpha,
    double beta, double k) {
  const std::int64_t half = local_size / 2;
  const double alpha_over_n = alpha / static_cast<double>(local_size);
  std::int64_t w0 = 0;
  alignas(32) double sums[4];
  for (; w0 + 4 <= W; w0 += 4) {
    for (std::int64_t c = 0; c < C; ++c) {
      const std::int64_t c0 = std::max<std::int64_t>(0, c - half);
      const std::int64_t c1 = std::min(C - 1, c + half);
      __m256d sum = _mm256_setzero_pd();
      for (std::int64_t cc = c0; cc <= c1; ++cc) {
        const __m256d v = _mm256_cvtps_pd(
            _mm_loadu_ps(in + (cc * H + h) * W + w0));
        sum = _mm256_fmadd_pd(v, v, sum);  // float-valued doubles: v*v is
        // exact, so fused == unfused
      }
      _mm256_store_pd(sums, sum);
      for (int l = 0; l < 4; ++l) {
        const std::int64_t idx = (c * H + h) * W + w0 + l;
        const double denom = std::pow(k + alpha_over_n * sums[l], beta);
        out[idx] = static_cast<float>(in[idx] / denom);
      }
    }
  }
  // Ragged tail columns: same double-precision formula, scalar.
  for (; w0 < W; ++w0) {
    for (std::int64_t c = 0; c < C; ++c) {
      const std::int64_t c0 = std::max<std::int64_t>(0, c - half);
      const std::int64_t c1 = std::min(C - 1, c + half);
      double sum = 0.0;
      for (std::int64_t cc = c0; cc <= c1; ++cc) {
        const double v = in[(cc * H + h) * W + w0];
        sum += v * v;
      }
      const double denom = std::pow(k + alpha_over_n * sum, beta);
      out[(c * H + h) * W + w0] =
          static_cast<float>(in[(c * H + h) * W + w0] / denom);
    }
  }
}

// ----------------------------------------------------------- int8 GEMM

__attribute__((target("avx2,fma"))) void avx2_gemm_tile_i8(
    const std::int8_t* apack, std::int64_t kd, const std::int8_t* b,
    std::int64_t n, const float* bias, float dequant, float* c,
    std::int64_t m_total, std::int64_t i0, std::int64_t i1, std::int64_t j0,
    std::int64_t j1) {
  constexpr std::int64_t kMR = 4;
  constexpr std::int64_t kNR = 8;
  const __m256 dq = _mm256_set1_ps(dequant);
  for (std::int64_t i = i0; i < i1; i += kMR) {
    const std::int8_t* panel = apack + (i / kMR) * (kd * kMR);
    const std::int64_t mr = std::min(kMR, m_total - i);
    std::int64_t j = j0;
    if (mr == kMR) {
      for (; j + kNR <= j1; j += kNR) {
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        __m256i acc2 = _mm256_setzero_si256();
        __m256i acc3 = _mm256_setzero_si256();
        const std::int8_t* bk = b + j;
        const std::int8_t* ak = panel;
        for (std::int64_t k = 0; k < kd; ++k, bk += n, ak += kMR) {
          const __m256i bv = _mm256_cvtepi8_epi32(
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(bk)));
          acc0 = _mm256_add_epi32(
              acc0, _mm256_mullo_epi32(_mm256_set1_epi32(ak[0]), bv));
          acc1 = _mm256_add_epi32(
              acc1, _mm256_mullo_epi32(_mm256_set1_epi32(ak[1]), bv));
          acc2 = _mm256_add_epi32(
              acc2, _mm256_mullo_epi32(_mm256_set1_epi32(ak[2]), bv));
          acc3 = _mm256_add_epi32(
              acc3, _mm256_mullo_epi32(_mm256_set1_epi32(ak[3]), bv));
        }
        _mm256_storeu_ps(
            c + (i + 0) * n + j,
            _mm256_fmadd_ps(dq, _mm256_cvtepi32_ps(acc0),
                            _mm256_broadcast_ss(bias + i + 0)));
        _mm256_storeu_ps(
            c + (i + 1) * n + j,
            _mm256_fmadd_ps(dq, _mm256_cvtepi32_ps(acc1),
                            _mm256_broadcast_ss(bias + i + 1)));
        _mm256_storeu_ps(
            c + (i + 2) * n + j,
            _mm256_fmadd_ps(dq, _mm256_cvtepi32_ps(acc2),
                            _mm256_broadcast_ss(bias + i + 2)));
        _mm256_storeu_ps(
            c + (i + 3) * n + j,
            _mm256_fmadd_ps(dq, _mm256_cvtepi32_ps(acc3),
                            _mm256_broadcast_ss(bias + i + 3)));
      }
    }
    if (j < j1 || mr < kMR) {
      scalar_gemm_tile_i8(apack, kd, b, n, bias, dequant, c, m_total, i,
                          std::min(i + kMR, i1), j, j1);
    }
  }
}

__attribute__((target("avx2"))) void avx2_fc_rows_i8(
    const std::int8_t* qw, std::int64_t in, const std::int8_t* qx,
    const float* bias, float dequant, float* y, std::int64_t row0,
    std::int64_t row1) {
  alignas(32) std::int32_t lanes[8];
  for (std::int64_t i = row0; i < row1; ++i) {
    const std::int8_t* row = qw + i * in;
    __m256i acc = _mm256_setzero_si256();
    std::int64_t j = 0;
    for (; j + 8 <= in; j += 8) {
      const __m256i wv = _mm256_cvtepi8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row + j)));
      const __m256i xv = _mm256_cvtepi8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(qx + j)));
      acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(wv, xv));
    }
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    std::int32_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] +
                         lanes[5] + lanes[6] + lanes[7];
    for (; j < in; ++j) {
      total += static_cast<std::int32_t>(row[j]) *
               static_cast<std::int32_t>(qx[j]);
    }
    y[i] = std::fma(dequant, static_cast<float>(total), bias[i]);
  }
}

}  // namespace

#endif  // OFFLOAD_KERNELS_X86

KernelOps make_simd_ops() {
  KernelOps ops;
  ops.kind = KernelBackend::kSimd;
  ops.name = "simd";
  ops.quantized = false;
  // Scalar fallbacks first; overridden below when the CPU qualifies.
  ops.gemm_mr = 4;
  ops.gemm_nr = 8;
  ops.gemm_tile = &scalar_gemm_tile;
  ops.gemm_tile_i8 = &scalar_gemm_tile_i8;
  ops.fc_block = 8;
  ops.fc_rows = &scalar_fc_rows;
  ops.fc_rows_i8 = &scalar_fc_rows_i8;
  ops.relu_range = &scalar_relu_range;
  ops.pool_plane = &scalar_pool_plane;
  ops.lrn_row = &scalar_lrn_row;
#if OFFLOAD_KERNELS_X86
  if (cpu_supports_simd()) {
    ops.gemm_tile = &avx2_gemm_tile;
    ops.gemm_tile_i8 = &avx2_gemm_tile_i8;
    ops.fc_rows = &avx2_fc_rows;
    ops.fc_transposed = true;
    ops.fc_rows_i8 = &avx2_fc_rows_i8;
    // relu_range stays scalar — see the note above the pool kernels.
    ops.pool_plane = &avx2_pool_plane;
    ops.lrn_row = &avx2_lrn_row;
    if (cpu_supports_avx512()) {
      ops.gemm_mr = 8;
      ops.gemm_nr = 16;
      ops.gemm_tile = &avx512_gemm_tile;
      ops.fc_block = 16;
      ops.fc_rows = &avx512_fc_rows;
    }
  }
#endif
  return ops;
}

}  // namespace offload::nn::detail
