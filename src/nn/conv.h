// 2-D convolution layer (Caffe semantics: floor output rounding, zero
// padding, optional channel groups). Forward runs as im2col + a packed,
// cache-blocked, register-tiled GEMM parallelized over output tiles through
// util::parallel_for; the inner micro-kernel comes from the active kernel
// backend (src/nn/kernels.h) — see layers.cpp for the orchestration.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/nn/layer.h"
#include "src/nn/quant.h"
#include "src/util/aligned.h"

namespace offload::nn {

struct ConvConfig {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 1;
  std::int64_t stride = 1;
  std::int64_t pad = 0;
  /// Channel groups (AlexNet/AgeNet style): group g convolves input
  /// channels [g*in/G, (g+1)*in/G) into output channels [g*out/G, ...).
  std::int64_t groups = 1;
};

class ConvLayer final : public Layer {
 public:
  ConvLayer(std::string name, const ConvConfig& config);

  LayerKind kind() const override { return LayerKind::kConv; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  std::uint64_t flops(std::span<const Shape> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs) const override;
  /// Fused batch: one im2col over all samples, then one parallel GEMM over
  /// every (sample, group, tile) task — far better thread utilization than
  /// sample-at-a-time on small feature maps, same bits.
  Tensor forward_batch(std::span<const Tensor* const> inputs,
                       std::int64_t batch) const override;

  std::uint64_t param_count() const override;
  void init_params(util::Pcg32& rng) override;
  void write_params(util::BinaryWriter& w) const override;
  void read_params(util::BinaryReader& r) override;
  std::string config_str() const override;

  const ConvConfig& config() const { return config_; }
  /// Mutable access invalidates every packed weight cache (fp32 panels and
  /// the int8 quantization); they are rebuilt lazily on the next forward().
  Tensor& weights() {
    invalidate_packs();
    return weights_;
  }
  Tensor& bias() { return bias_; }

 private:
  /// Panel-packed copy of weights_ for one micro-kernel geometry, built
  /// once per weight mutation so steady-state forward passes touch no heap.
  /// Guarded by pack_mutex_ for the (rare) rebuild; `valid` uses
  /// acquire/release so readers that observe `true` also observe the data.
  struct PackCache {
    std::vector<float, util::AlignedAllocator<float, 64>> panels;
    std::atomic<bool> valid{false};
  };
  /// int8 pack: symmetric per-layer weight quantization + mr=4 panels.
  struct PackCacheI8 {
    std::vector<std::int8_t, util::AlignedAllocator<std::int8_t, 64>> panels;
    QuantParams qw;
    std::atomic<bool> valid{false};
  };

  void check_input(const Shape& in) const;
  /// Pack weights_ into mr-row panels (mr in {4, 8}) if stale; returns the
  /// panel base.
  const float* ensure_packed(std::int64_t mr) const;
  const PackCacheI8& ensure_packed_i8() const;
  /// Warm the cache the active backend will use (called after param load so
  /// the first forward never repacks).
  void warm_pack() const;
  void invalidate_packs();

  ConvConfig config_;
  Tensor weights_;  ///< {out_ch, in_ch/groups, k, k}
  Tensor bias_;     ///< {out_ch}

  mutable PackCache packs_[2];  ///< slot 0: mr == 4, slot 1: mr == 8
  mutable PackCacheI8 pack_i8_;
  mutable std::mutex pack_mutex_;
};

}  // namespace offload::nn
