// 2-D convolution layer (Caffe semantics: floor output rounding, zero
// padding). Forward runs as im2col + GEMM, the same strategy Caffe.js uses.
#pragma once

#include "src/nn/layer.h"

namespace offload::nn {

struct ConvConfig {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 1;
  std::int64_t stride = 1;
  std::int64_t pad = 0;
};

class ConvLayer final : public Layer {
 public:
  ConvLayer(std::string name, const ConvConfig& config);

  LayerKind kind() const override { return LayerKind::kConv; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  std::uint64_t flops(std::span<const Shape> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs) const override;

  std::uint64_t param_count() const override;
  void init_params(util::Pcg32& rng) override;
  void write_params(util::BinaryWriter& w) const override;
  void read_params(util::BinaryReader& r) override;
  std::string config_str() const override;

  const ConvConfig& config() const { return config_; }
  Tensor& weights() { return weights_; }
  Tensor& bias() { return bias_; }

 private:
  void check_input(const Shape& in) const;

  ConvConfig config_;
  Tensor weights_;  ///< {out_ch, in_ch, k, k}
  Tensor bias_;     ///< {out_ch}
};

}  // namespace offload::nn
