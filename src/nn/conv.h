// 2-D convolution layer (Caffe semantics: floor output rounding, zero
// padding, optional channel groups). Forward runs as im2col + a packed,
// cache-blocked, register-tiled GEMM parallelized over output tiles through
// util::parallel_for — see layers.cpp for the kernel.
#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "src/nn/layer.h"

namespace offload::nn {

struct ConvConfig {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 1;
  std::int64_t stride = 1;
  std::int64_t pad = 0;
  /// Channel groups (AlexNet/AgeNet style): group g convolves input
  /// channels [g*in/G, (g+1)*in/G) into output channels [g*out/G, ...).
  std::int64_t groups = 1;
};

class ConvLayer final : public Layer {
 public:
  ConvLayer(std::string name, const ConvConfig& config);

  LayerKind kind() const override { return LayerKind::kConv; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  std::uint64_t flops(std::span<const Shape> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs) const override;
  /// Fused batch: one im2col over all samples, then one parallel GEMM over
  /// every (sample, group, tile) task — far better thread utilization than
  /// sample-at-a-time on small feature maps, same bits.
  Tensor forward_batch(std::span<const Tensor* const> inputs,
                       std::int64_t batch) const override;

  std::uint64_t param_count() const override;
  void init_params(util::Pcg32& rng) override;
  void write_params(util::BinaryWriter& w) const override;
  void read_params(util::BinaryReader& r) override;
  std::string config_str() const override;

  const ConvConfig& config() const { return config_; }
  /// Mutable access invalidates the packed GEMM panels; they are rebuilt
  /// lazily on the next forward().
  Tensor& weights() {
    packed_valid_.store(false, std::memory_order_release);
    return weights_;
  }
  Tensor& bias() { return bias_; }

 private:
  void check_input(const Shape& in) const;
  /// Repack weights_ into kMR-row panels (k-major within a panel) if stale.
  void ensure_packed() const;

  ConvConfig config_;
  Tensor weights_;  ///< {out_ch, in_ch/groups, k, k}
  Tensor bias_;     ///< {out_ch}

  // Panel-packed copy of weights_, built once per weight mutation so
  // steady-state forward passes touch no heap. Guarded by pack_mutex_ for
  // the (rare) rebuild; packed_valid_ uses acquire/release so readers that
  // observe `true` also observe the packed data.
  mutable std::vector<float> packed_;
  mutable std::atomic<bool> packed_valid_{false};
  mutable std::mutex pack_mutex_;
};

}  // namespace offload::nn
