// Elementwise / normalization layers without spatial structure: ReLU,
// Softmax, and (inference-mode) Dropout.
#pragma once

#include "src/nn/layer.h"

namespace offload::nn {

class ReluLayer final : public Layer {
 public:
  explicit ReluLayer(std::string name) : Layer(std::move(name)) {}
  LayerKind kind() const override { return LayerKind::kReLU; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  std::uint64_t flops(std::span<const Shape> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs) const override;
  Tensor forward_batch(std::span<const Tensor* const> inputs,
                       std::int64_t batch) const override;
};

class SoftmaxLayer final : public Layer {
 public:
  explicit SoftmaxLayer(std::string name) : Layer(std::move(name)) {}
  LayerKind kind() const override { return LayerKind::kSoftmax; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  std::uint64_t flops(std::span<const Shape> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs) const override;
};

/// Dropout at inference time is the identity (Caffe scales at train time);
/// it exists so model descriptions match the published architectures.
class DropoutLayer final : public Layer {
 public:
  DropoutLayer(std::string name, double rate)
      : Layer(std::move(name)), rate_(rate) {}
  LayerKind kind() const override { return LayerKind::kDropout; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  std::uint64_t flops(std::span<const Shape> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs) const override;
  std::string config_str() const override;
  double rate() const { return rate_; }

 private:
  double rate_;
};

/// The graph input placeholder; validates the image shape fed to forward()
/// and applies an input scale (Caffe's transform scale — e.g. 1/255 to map
/// canvas pixel bytes into [0,1]).
class InputLayer final : public Layer {
 public:
  InputLayer(std::string name, Shape shape, double scale = 1.0)
      : Layer(std::move(name)), shape_(std::move(shape)), scale_(scale) {}
  LayerKind kind() const override { return LayerKind::kInput; }
  Shape output_shape(std::span<const Shape> inputs) const override;
  std::uint64_t flops(std::span<const Shape> inputs) const override;
  Tensor forward(std::span<const Tensor* const> inputs) const override;
  std::string config_str() const override;
  const Shape& shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  Shape shape_;
  double scale_;
};

}  // namespace offload::nn
