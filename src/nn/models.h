// The three benchmark networks from the paper's evaluation, faithful to the
// published architectures (so per-layer feature sizes and parameter byte
// counts reproduce the paper's transfer-time arithmetic):
//  - GoogLeNet (Szegedy et al., CVPR'15): 1000-class ImageNet classifier,
//    ~7.0M parameters ≈ 27 MB of fp32 weights.
//  - AgeNet / GenderNet (Levi & Hassner, CVPR-W'15): 8-class age bins /
//    2-class gender on 227x227 faces, ~11.4M parameters ≈ 44 MB.
// Weights are synthetic (deterministic Xavier init) — see DESIGN.md.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/nn/network.h"

namespace offload::nn {

std::unique_ptr<Network> build_googlenet(std::uint64_t param_seed = 7);
std::unique_ptr<Network> build_agenet(std::uint64_t param_seed = 11);
std::unique_ptr<Network> build_gendernet(std::uint64_t param_seed = 13);

/// A small CNN (32x32x3 input, ~120k params) used by unit tests and the
/// privacy inversion experiment where full-size models would be wasteful.
std::unique_ptr<Network> build_tiny_cnn(std::uint64_t param_seed = 17,
                                        std::int64_t classes = 10);
/// Function-pointer-compatible wrapper (10 classes) for BenchmarkModel.
std::unique_ptr<Network> build_tiny_cnn_default(std::uint64_t param_seed);

/// All benchmark apps, in the paper's order.
struct BenchmarkModel {
  const char* app_name;   ///< e.g. "GoogleNet"
  std::unique_ptr<Network> (*build)(std::uint64_t);
  std::uint64_t seed;
  std::int64_t input_hw;  ///< input spatial size (224 or 227)
};
std::vector<BenchmarkModel> benchmark_models();

}  // namespace offload::nn
