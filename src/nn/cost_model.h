// Neurosurgeon-style layer latency prediction (Kang et al., ASPLOS'17,
// cited by the paper as the source of its partition-point estimator). A
// per-layer-kind linear regression time = a·FLOPs + b is trained from
// profiled executions and then used to predict latencies of layers of
// *unseen* networks — exactly how the paper picks its front/rear split.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/nn/device.h"
#include "src/nn/layer.h"
#include "src/nn/network.h"

namespace offload::nn {

class LayerCostModel {
 public:
  /// Record one profiled layer execution.
  void add_sample(LayerKind kind, std::uint64_t flops, double seconds);

  /// Least-squares fit per layer kind. Kinds with a single sample get a
  /// zero-intercept fit; kinds with none fall back to a global fit.
  void fit();

  bool fitted(LayerKind kind) const;

  /// Predicted execution time for one layer. Requires fit().
  double predict(LayerKind kind, std::uint64_t flops) const;

  /// Predicted time for nodes [begin, end) of a network.
  double predict_range(const Network& net, std::size_t begin,
                       std::size_t end) const;
  double predict_network(const Network& net) const {
    return predict_range(net, 0, net.size());
  }

  /// Build a model by profiling `nets` on `device` (per-layer simulated
  /// executions — the reproduction's analogue of running microbenchmarks on
  /// the target hardware).
  static LayerCostModel profile_device(const DeviceProfile& device,
                                       std::span<const Network* const> nets);

 private:
  struct Fit {
    double slope = 0.0;      // seconds per FLOP
    double intercept = 0.0;  // seconds
    bool valid = false;
  };
  struct Series {
    std::vector<double> x;  // FLOPs
    std::vector<double> y;  // seconds
  };

  static Fit least_squares(const Series& s);

  std::array<Series, 10> samples_{};
  std::array<Fit, 10> fits_{};
  Fit global_{};
  bool fitted_any_ = false;
};

}  // namespace offload::nn
