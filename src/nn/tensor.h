// Dense float32 tensor in CHW layout. This is the value type flowing
// between DNN layers and — serialized as a typed array — inside snapshots.
// A tensor either holds one sample (a CHW image is {C, H, W}) or, for the
// serving runtime's fused batches, N samples with a leading batch
// dimension ({N, C, H, W}); stack()/sample() convert between the two.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/util/aligned.h"
#include "src/util/rng.h"

namespace offload::nn {

/// Tensor element storage: 64-byte aligned so SIMD kernels can issue full
/// cache-line loads from any tensor without peeling.
using AlignedFloats = std::vector<float, util::AlignedAllocator<float, 64>>;

/// Tensor extents, outermost first. A CHW image is {C, H, W}; a flat
/// feature vector is {N}.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {}

  std::size_t rank() const { return dims_.size(); }
  std::int64_t dim(std::size_t i) const { return dims_.at(i); }
  std::int64_t operator[](std::size_t i) const { return dims_.at(i); }
  const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Total element count (1 for rank-0).
  std::int64_t elements() const;
  std::string str() const;  ///< e.g. "64x56x56"

  bool operator==(const Shape&) const = default;

 private:
  std::vector<std::int64_t> dims_;
};

/// Owning float32 tensor. Copyable (deep), movable (cheap).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, AlignedFloats data);
  /// Compatibility ctors for callers holding a plain vector or a brace
  /// list; both copy into aligned storage.
  Tensor(Shape shape, const std::vector<float>& data);
  Tensor(Shape shape, std::initializer_list<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  /// I.i.d. uniform values in [lo, hi) from a caller-owned RNG.
  static Tensor random_uniform(Shape shape, util::Pcg32& rng, float lo = -1.0f,
                               float hi = 1.0f);

  const Shape& shape() const { return shape_; }
  std::int64_t elements() const { return shape_.elements(); }
  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(elements()) * sizeof(float);
  }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  /// CHW accessor for rank-3 tensors (no bounds check in release paths;
  /// used by layer kernels).
  float& at(std::int64_t c, std::int64_t h, std::int64_t w) {
    return data_[static_cast<std::size_t>((c * shape_[1] + h) * shape_[2] + w)];
  }
  float at(std::int64_t c, std::int64_t h, std::int64_t w) const {
    return data_[static_cast<std::size_t>((c * shape_[1] + h) * shape_[2] + w)];
  }

  /// Same storage, new shape (element counts must match).
  Tensor reshaped(Shape new_shape) const;

  /// Stack samples (all the same shape) into a batched tensor whose shape
  /// is {N, dims...}.
  static Tensor stack(std::span<const Tensor> samples);
  /// Copy sample `b` out of a batched tensor (leading dim = batch count);
  /// the result drops the batch dimension.
  Tensor sample(std::int64_t b) const;

  /// Index of the maximum element (argmax over the flat data).
  std::int64_t argmax() const;

  /// Max |a-b| over elements; shapes must match.
  static float max_abs_diff(const Tensor& a, const Tensor& b);

 private:
  Shape shape_;
  AlignedFloats data_;
};

}  // namespace offload::nn
