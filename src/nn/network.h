// DNN as a DAG of named layers. Nodes are appended in topological order
// (inputs must already exist), which keeps forward execution a simple left-
// to-right sweep — the same "series of layer execution" (forward execution)
// the paper describes in Section II.A.
//
// Partial inference (Section III.B.2) is expressed through *cut points*:
// node indices where the entire downstream graph depends only on that
// node's output, so transferring one feature tensor suffices.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/nn/layer.h"

namespace offload::nn {

class Network {
 public:
  explicit Network(std::string name) : name_(std::move(name)) {}

  /// Append a node. `inputs` are names of earlier nodes; defaults to the
  /// previous node (chain topology). Returns the node index.
  std::size_t add(LayerPtr layer, std::vector<std::string> inputs = {});

  const std::string& name() const { return name_; }
  std::size_t size() const { return nodes_.size(); }
  const Layer& layer(std::size_t i) const { return *nodes_.at(i).layer; }
  Layer& layer(std::size_t i) { return *nodes_.at(i).layer; }
  const std::vector<std::size_t>& inputs_of(std::size_t i) const {
    return nodes_.at(i).inputs;
  }
  /// Throws std::out_of_range for unknown names.
  std::size_t index_of(std::string_view layer_name) const;
  bool has_layer(std::string_view layer_name) const;

  /// Deterministically initialize all parameters from `seed`.
  void init_params(std::uint64_t seed);

  std::uint64_t param_count() const;
  std::uint64_t param_bytes() const { return param_count() * sizeof(float); }
  /// Parameters held by nodes in [begin, end) — sizes the front/rear model
  /// split of the privacy scheme.
  std::uint64_t param_count_in_range(std::size_t begin, std::size_t end) const;

  /// Static per-node analysis (no tensor traffic): output shapes, FLOPs,
  /// output byte sizes. Cached after the first call.
  struct Analysis {
    std::vector<Shape> shapes;
    std::vector<std::uint64_t> flops;
    std::vector<std::uint64_t> output_bytes;
    std::uint64_t total_flops = 0;
  };
  const Analysis& analyze() const;

  struct ForwardResult {
    Tensor output;                      ///< Output of the last node.
    std::vector<std::uint64_t> flops;   ///< Per node.
    std::vector<std::uint64_t> output_bytes;
  };
  /// Full forward pass. The input feeds node 0 (which must be kInput).
  ForwardResult forward(const Tensor& input) const;

  /// Run nodes [0, cut] and return node `cut`'s output (the feature data).
  Tensor forward_front(const Tensor& input, std::size_t cut) const;
  /// Run nodes (cut, end) from a feature tensor produced at `cut`.
  Tensor forward_rear(const Tensor& feature, std::size_t cut) const;

  /// Full forward over a batched input {B, dims...}; returns the batched
  /// output of the last node. Bit-identical to forwarding each sample alone
  /// and stacking the results, at any batch size and thread count.
  Tensor forward_batch(const Tensor& input) const;
  /// Run nodes (cut, end) from a batched feature tensor {B, dims-of-cut...}.
  /// The serving scheduler's fused-dispatch path.
  Tensor forward_rear_batch(const Tensor& features, std::size_t cut) const;

  /// Node indices that are valid offloading points: every edge into the
  /// downstream subgraph originates at that node. Always contains node 0
  /// (the input = full offloading) and the last node.
  std::vector<std::size_t> cut_points() const;

 private:
  struct Node {
    LayerPtr layer;
    std::vector<std::size_t> inputs;
  };

  /// Execute nodes [begin, end); `values` must hold outputs of all nodes
  /// < begin that the range reads. Returns output of node end-1.
  Tensor run_range(std::size_t begin, std::size_t end,
                   std::vector<Tensor>& values,
                   ForwardResult* result) const;

  /// Batched analogue of run_range: every value carries a leading batch dim.
  Tensor run_range_batch(std::size_t begin, std::size_t end,
                         std::vector<Tensor>& values,
                         std::int64_t batch) const;

  std::string name_;
  std::vector<Node> nodes_;
  std::unordered_map<std::string, std::size_t> by_name_;
  mutable Analysis analysis_;
  mutable bool analyzed_ = false;
};

}  // namespace offload::nn
