// The observability bundle every instrumented component receives: one
// Tracer plus one MetricsRegistry. Components hold a nullable `obs::Obs*`
// and guard each instrumentation site with a single branch — the disabled
// path is one pointer test.
//
// Env knobs (read by ExportOptions::from_env, honoured by the runtime and
// the traced example):
//   OFFLOAD_TRACE       "chrome" | "jsonl" | "" (off, default)
//   OFFLOAD_TRACE_PATH  output path (default offload_trace.json / .jsonl)
//   OFFLOAD_METRICS     path for a metrics JSON dump ("-" = text to stderr)
#pragma once

#include <string>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace offload::obs {

struct Obs {
  Tracer trace;
  MetricsRegistry metrics;
};

struct ExportOptions {
  std::string trace_format;  // "chrome", "jsonl", or "" (off)
  std::string trace_path;    // "" -> format-specific default
  std::string metrics_path;  // "" off, "-" text to stderr, else JSON file

  static ExportOptions from_env();
  bool any() const { return !trace_format.empty() || !metrics_path.empty(); }
};

/// Write trace/metrics per `opts`. Unknown trace formats are reported to
/// stderr and skipped. Returns false if any requested write failed.
bool export_obs(const Obs& obs, const ExportOptions& opts);

}  // namespace offload::obs
