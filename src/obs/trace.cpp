#include "src/obs/trace.h"

namespace offload::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kInference: return "inference";
    case SpanKind::kClientExec: return "client_exec";
    case SpanKind::kClientCapture: return "client_capture";
    case SpanKind::kTransmitUp: return "transmit_up";
    case SpanKind::kQueueWait: return "queue_wait";
    case SpanKind::kBatchWait: return "batch_wait";
    case SpanKind::kServerRestore: return "server_restore";
    case SpanKind::kServerExec: return "server_exec";
    case SpanKind::kServerCapture: return "server_capture";
    case SpanKind::kTransmitDown: return "transmit_down";
    case SpanKind::kClientRestore: return "client_restore";
    case SpanKind::kRetryBackoff: return "retry_backoff";
    case SpanKind::kCrashRecovery: return "crash_recovery";
    case SpanKind::kPresend: return "presend";
    case SpanKind::kTransmitAttempt: return "transmit_attempt";
    case SpanKind::kLaneBusy: return "lane_busy";
    case SpanKind::kMarker: return "marker";
    case SpanKind::kCtrlDecision: return "ctrl_decision";
    case SpanKind::kEscalate: return "escalate";
    case SpanKind::kMigrate: return "migrate";
    case SpanKind::kSteal: return "steal";
  }
  return "unknown";
}

SpanId Tracer::open(TraceId trace, SpanId parent, SpanKind kind,
                    std::string_view name, std::string_view resource,
                    sim::SimTime start) {
  Span s;
  s.id = static_cast<SpanId>(spans_.size()) + 1;
  s.parent = parent;
  s.trace = trace;
  s.kind = kind;
  s.name = std::string(name);
  s.resource = std::string(resource);
  s.start = start;
  s.end = start;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void Tracer::close(SpanId id, sim::SimTime end) {
  Span* s = mutable_find(id);
  if (!s || s->closed) return;
  s->end = end;
  s->dur_s = (end - s->start).to_seconds();
  s->closed = true;
}

void Tracer::close(SpanId id, sim::SimTime end, double exact_dur_s) {
  Span* s = mutable_find(id);
  if (!s || s->closed) return;
  s->end = end;
  s->dur_s = exact_dur_s;
  s->closed = true;
}

SpanId Tracer::emit(TraceId trace, SpanId parent, SpanKind kind,
                    std::string_view name, std::string_view resource,
                    sim::SimTime start, sim::SimTime end, double exact_dur_s) {
  SpanId id = open(trace, parent, kind, name, resource, start);
  close(id, end, exact_dur_s);
  return id;
}

SpanId Tracer::marker(TraceId trace, SpanId parent, std::string_view name,
                      std::string_view resource, sim::SimTime at) {
  return emit(trace, parent, SpanKind::kMarker, name, resource, at, at, 0.0);
}

void Tracer::attr(SpanId id, std::string_view key, std::string_view value) {
  if (Span* s = mutable_find(id)) {
    s->attrs.emplace_back(std::string(key), std::string(value));
  }
}

void Tracer::attr(SpanId id, std::string_view key, std::int64_t value) {
  attr(id, key, std::to_string(value));
}

const Span* Tracer::find(SpanId id) const {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

Span* Tracer::mutable_find(SpanId id) {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

}  // namespace offload::obs
