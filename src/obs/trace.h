// Deterministic span recorder. All spans are created from the single
// simulation thread, in event order, and get sequential ids — so the same
// seed yields the same span stream byte-for-byte at any OFFLOAD_THREADS
// (worker threads only parallelize inside NN kernels and never touch the
// tracer). No wall clock anywhere: every timestamp is sim::SimTime.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/span.h"
#include "src/sim/time.h"

namespace offload::obs {

class Tracer {
 public:
  /// Allocate a fresh trace id (1, 2, ...). Trace 0 is the session trace.
  TraceId new_trace() { return ++last_trace_; }

  /// Open a span. Returns its id; close it with `close()` (or let a
  /// ScopedSpan do it). `dur_s` stays 0 until closed.
  SpanId open(TraceId trace, SpanId parent, SpanKind kind,
              std::string_view name, std::string_view resource,
              sim::SimTime start);

  /// Close an open span at `end`; `dur_s` defaults to the SimTime interval
  /// unless an exact charged duration is supplied. Closing id 0 or an
  /// already-closed span is a no-op (duplicate deliveries re-ack spans).
  void close(SpanId id, sim::SimTime end);
  void close(SpanId id, sim::SimTime end, double exact_dur_s);

  /// Emit an already-closed span in one call (charged-cost sites).
  SpanId emit(TraceId trace, SpanId parent, SpanKind kind,
              std::string_view name, std::string_view resource,
              sim::SimTime start, sim::SimTime end, double exact_dur_s);

  /// Instant marker (start == end, dur 0).
  SpanId marker(TraceId trace, SpanId parent, std::string_view name,
                std::string_view resource, sim::SimTime at);

  /// Attach a key=value attribute to a span (open or closed).
  void attr(SpanId id, std::string_view key, std::string_view value);
  void attr(SpanId id, std::string_view key, std::int64_t value);

  const std::vector<Span>& spans() const { return spans_; }
  const Span* find(SpanId id) const;
  std::size_t size() const { return spans_.size(); }

 private:
  Span* mutable_find(SpanId id);

  std::vector<Span> spans_;
  TraceId last_trace_ = 0;
};

/// RAII handle: opens on construction, closes at destruction time using the
/// supplied clock callback... sim components close at explicit sim times, so
/// the scope holds a tracer + id and the owner calls `close_at()`; if the
/// scope dies without an explicit close it closes at the recorded start (a
/// zero-length span), never at a wall-clock time.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, TraceId trace, SpanId parent, SpanKind kind,
             std::string_view name, std::string_view resource,
             sim::SimTime start)
      : tracer_(tracer), start_(start) {
    if (tracer_) {
      id_ = tracer_->open(trace, parent, kind, name, resource, start);
    }
  }
  ScopedSpan(ScopedSpan&& other) noexcept { *this = std::move(other); }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    tracer_ = other.tracer_;
    id_ = other.id_;
    start_ = other.start_;
    other.tracer_ = nullptr;
    other.id_ = 0;
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ && id_) tracer_->close(id_, start_);
  }

  SpanId id() const { return id_; }
  void close_at(sim::SimTime end) {
    if (tracer_ && id_) tracer_->close(id_, end);
    tracer_ = nullptr;
  }
  void close_at(sim::SimTime end, double exact_dur_s) {
    if (tracer_ && id_) tracer_->close(id_, end, exact_dur_s);
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_ = nullptr;
  SpanId id_ = 0;
  sim::SimTime start_;
};

}  // namespace offload::obs
