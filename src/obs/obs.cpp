#include "src/obs/obs.h"

#include <cstdio>
#include <cstdlib>

namespace offload::obs {

ExportOptions ExportOptions::from_env() {
  ExportOptions opts;
  if (const char* fmt = std::getenv("OFFLOAD_TRACE")) opts.trace_format = fmt;
  if (const char* path = std::getenv("OFFLOAD_TRACE_PATH")) {
    opts.trace_path = path;
  }
  if (const char* m = std::getenv("OFFLOAD_METRICS")) opts.metrics_path = m;
  return opts;
}

bool export_obs(const Obs& obs, const ExportOptions& opts) {
  bool ok = true;
  if (opts.trace_format == "chrome") {
    std::string path =
        opts.trace_path.empty() ? "offload_trace.json" : opts.trace_path;
    ok &= write_file(path, to_chrome_trace(obs.trace));
  } else if (opts.trace_format == "jsonl") {
    std::string path =
        opts.trace_path.empty() ? "offload_trace.jsonl" : opts.trace_path;
    ok &= write_file(path, to_jsonl(obs.trace));
  } else if (!opts.trace_format.empty()) {
    std::fprintf(stderr, "obs: unknown OFFLOAD_TRACE format '%s'\n",
                 opts.trace_format.c_str());
    ok = false;
  }
  if (opts.metrics_path == "-") {
    std::fputs(obs.metrics.dump_text().c_str(), stderr);
  } else if (!opts.metrics_path.empty()) {
    ok &= write_file(opts.metrics_path, obs.metrics.dump_json());
  }
  return ok;
}

}  // namespace offload::obs
