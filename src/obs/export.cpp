#include "src/obs/export.h"

#include <cstdio>
#include <map>
#include <vector>

#include "bench/json_writer.h"

namespace offload::obs {

namespace {

// Stable resource -> tid mapping in first-appearance order.
std::map<std::string, int, std::less<>> resource_tids(
    const std::vector<Span>& spans) {
  std::map<std::string, int, std::less<>> tids;
  for (const Span& s : spans) {
    if (!tids.count(s.resource)) {
      int next = static_cast<int>(tids.size()) + 1;
      tids.emplace(s.resource, next);
    }
  }
  return tids;
}

std::string span_args(const Span& s) {
  std::string args = "{\"trace\": " + std::to_string(s.trace) +
                     ", \"span\": " + std::to_string(s.id) +
                     ", \"parent\": " + std::to_string(s.parent);
  for (const auto& [k, v] : s.attrs) {
    args += ", \"" + bench::json_escape(k) + "\": \"" +
            bench::json_escape(v) + "\"";
  }
  args += "}";
  return args;
}

}  // namespace

std::string to_chrome_trace(const Tracer& tracer) {
  const auto& spans = tracer.spans();
  auto tids = resource_tids(spans);
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  char buf[64];
  auto append = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += "  " + line;
  };
  // tids iterate in resource-name order; first-appearance numbering keeps
  // the mapping stable either way.
  for (const auto& [resource, tid] : tids) {
    append("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " +
           std::to_string(tid) + ", \"args\": {\"name\": \"" +
           bench::json_escape(resource) + "\"}}");
  }
  for (const Span& s : spans) {
    bool instant = s.kind == SpanKind::kMarker;
    std::string line = "{\"name\": \"" +
                       bench::json_escape(
                           s.name.empty() ? span_kind_name(s.kind) : s.name) +
                       "\", \"cat\": \"" + span_kind_name(s.kind) + "\"";
    line += instant ? ", \"ph\": \"i\", \"s\": \"t\"" : ", \"ph\": \"X\"";
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(s.start.ns()) * 1e-3);
    line += ", \"ts\": " + std::string(buf);
    if (!instant) {
      std::snprintf(buf, sizeof buf, "%.3f", s.dur_s * 1e6);
      line += ", \"dur\": " + std::string(buf);
    }
    line += ", \"pid\": 1, \"tid\": " +
            std::to_string(tids.find(s.resource)->second);
    line += ", \"args\": " + span_args(s) + "}";
    append(line);
  }
  out += "\n]}\n";
  return out;
}

std::string to_jsonl(const Tracer& tracer) {
  std::string out;
  char buf[64];
  for (const Span& s : tracer.spans()) {
    bench::JsonObject o;
    o.set("id", static_cast<std::int64_t>(s.id));
    o.set("parent", static_cast<std::int64_t>(s.parent));
    o.set("trace", static_cast<std::int64_t>(s.trace));
    o.set("kind", span_kind_name(s.kind));
    o.set("name", s.name);
    o.set("res", s.resource);
    o.set("start_ns", s.start.ns());
    o.set("end_ns", s.end.ns());
    std::snprintf(buf, sizeof buf, "%.17g", s.dur_s);
    o.set("dur_s", std::string(buf));
    o.set("closed", static_cast<std::int64_t>(s.closed ? 1 : 0));
    std::string attrs;
    for (const auto& [k, v] : s.attrs) {
      attrs += (attrs.empty() ? "" : " ") + k + "=" + v;
    }
    o.set("attrs", attrs);
    out += o.str();
    out += "\n";
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace offload::obs
