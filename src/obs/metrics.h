// Deterministic metrics registry: counters, gauges (with peak tracking),
// and fixed-bucket histograms. Keys are plain strings; storage is ordered
// maps so every dump iterates in one stable, sorted order regardless of
// insertion history. All mutation happens on the simulation thread.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace offload::obs {

struct Counter {
  std::uint64_t value = 0;
};

struct Gauge {
  std::int64_t value = 0;
  std::int64_t peak = 0;
};

/// Fixed upper-bound buckets plus exact sum/count/min/max, so means are
/// exact and quantiles interpolate within one bucket. An implicit final
/// +inf bucket catches overflow.
struct Histogram {
  std::vector<double> bounds;   // strictly increasing upper bounds
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// bucket holding the q-th observation; exact at the recorded min/max.
  double quantile(double q) const;
};

class MetricsRegistry {
 public:
  void add(std::string_view name, std::uint64_t delta = 1);
  std::uint64_t counter(std::string_view name) const;

  void set_gauge(std::string_view name, std::int64_t value);
  void gauge_delta(std::string_view name, std::int64_t delta);
  std::int64_t gauge(std::string_view name) const;
  std::int64_t gauge_peak(std::string_view name) const;

  /// Register a histogram with explicit bucket bounds; observing an
  /// unregistered name lazily creates one with default latency-style
  /// bounds (sub-ms .. minutes, log-spaced).
  void define_histogram(std::string_view name, std::vector<double> bounds);
  void observe(std::string_view name, double value);
  const Histogram* histogram(std::string_view name) const;

  /// "name value" lines, sorted by name; histograms dump count/sum/min/
  /// max/mean plus each bucket.
  std::string dump_text() const;
  /// One stable-sorted JSON object per metric (via bench/json_writer.h).
  std::string dump_json() const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Thread-local ambient registry, for instrumenting leaf code (NN kernels)
/// without threading an obs pointer through its API. Null by default; a
/// ScopedMetrics installs one for the duration of a call tree.
MetricsRegistry* tls_metrics();

class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry* m);
  ~ScopedMetrics();
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  MetricsRegistry* prev_;
};

}  // namespace offload::obs
