#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "bench/json_writer.h"

namespace offload::obs {

namespace {

// Default log-spaced upper bounds (unit-agnostic; callers observing
// milliseconds get sub-ms..minutes coverage).
std::vector<double> default_bounds() {
  std::vector<double> b;
  for (double v = 0.1; v < 2.0e5; v *= 2.0) b.push_back(v);
  return b;
}

thread_local MetricsRegistry* g_tls_metrics = nullptr;

}  // namespace

double Histogram::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) >= target && counts[i] > 0) {
      double lo = i == 0 ? min : bounds[i - 1];
      double hi = i < bounds.size() ? bounds[i] : max;
      lo = std::max(lo, min);
      hi = std::min(hi, max);
      if (hi < lo) return lo;
      double before = static_cast<double>(seen - counts[i]);
      double frac = (target - before) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return max;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  counters_[std::string(name)].value += delta;
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value;
}

void MetricsRegistry::set_gauge(std::string_view name, std::int64_t value) {
  Gauge& g = gauges_[std::string(name)];
  g.value = value;
  g.peak = std::max(g.peak, value);
}

void MetricsRegistry::gauge_delta(std::string_view name, std::int64_t delta) {
  auto it = gauges_.find(name);
  std::int64_t cur = it == gauges_.end() ? 0 : it->second.value;
  set_gauge(name, cur + delta);
}

std::int64_t MetricsRegistry::gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second.value;
}

std::int64_t MetricsRegistry::gauge_peak(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second.peak;
}

void MetricsRegistry::define_histogram(std::string_view name,
                                       std::vector<double> bounds) {
  Histogram& h = histograms_[std::string(name)];
  if (h.count > 0) return;  // keep observed data; bounds are fixed at first use
  h.bounds = std::move(bounds);
  h.counts.assign(h.bounds.size() + 1, 0);
}

void MetricsRegistry::observe(std::string_view name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    define_histogram(name, default_bounds());
    it = histograms_.find(name);
  }
  Histogram& h = it->second;
  std::size_t i = static_cast<std::size_t>(
      std::upper_bound(h.bounds.begin(), h.bounds.end(), value) -
      h.bounds.begin());
  h.counts[i] += 1;
  h.count += 1;
  h.sum += value;
  h.min = std::min(h.min, value);
  h.max = std::max(h.max, value);
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::dump_text() const {
  std::string out;
  char buf[96];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof buf, " %llu\n",
                  static_cast<unsigned long long>(c.value));
    out += "counter " + name + buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof buf, " %lld peak %lld\n",
                  static_cast<long long>(g.value),
                  static_cast<long long>(g.peak));
    out += "gauge " + name + buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof buf,
                  " count %llu sum %.17g min %.17g max %.17g\n",
                  static_cast<unsigned long long>(h.count),
                  h.sum, h.count ? h.min : 0.0, h.count ? h.max : 0.0);
    out += "histogram " + name + buf;
  }
  return out;
}

std::string MetricsRegistry::dump_json() const {
  std::vector<bench::JsonObject> rows;
  for (const auto& [name, c] : counters_) {
    bench::JsonObject o;
    o.set("type", "counter").set("name", name)
        .set("value", static_cast<std::int64_t>(c.value));
    rows.push_back(std::move(o));
  }
  for (const auto& [name, g] : gauges_) {
    bench::JsonObject o;
    o.set("type", "gauge").set("name", name)
        .set("value", g.value).set("peak", g.peak);
    rows.push_back(std::move(o));
  }
  for (const auto& [name, h] : histograms_) {
    bench::JsonObject o;
    o.set("type", "histogram").set("name", name)
        .set("count", static_cast<std::int64_t>(h.count))
        .set("sum", h.sum, "%.17g")
        .set("min", h.count ? h.min : 0.0, "%.17g")
        .set("max", h.count ? h.max : 0.0, "%.17g");
    std::string buckets;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;
      char b[64];
      if (i < h.bounds.size()) {
        std::snprintf(b, sizeof b, "%s%.6g:%llu", buckets.empty() ? "" : " ",
                      h.bounds[i], (unsigned long long)h.counts[i]);
      } else {
        std::snprintf(b, sizeof b, "%sinf:%llu", buckets.empty() ? "" : " ",
                      (unsigned long long)h.counts[i]);
      }
      buckets += b;
    }
    o.set("buckets", buckets);
    rows.push_back(std::move(o));
  }
  std::string out = "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out += "  " + rows[i].str() + (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out += "]\n";
  return out;
}

MetricsRegistry* tls_metrics() { return g_tls_metrics; }

ScopedMetrics::ScopedMetrics(MetricsRegistry* m) : prev_(g_tls_metrics) {
  g_tls_metrics = m;
}

ScopedMetrics::~ScopedMetrics() { g_tls_metrics = prev_; }

}  // namespace offload::obs
