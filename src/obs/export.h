// Trace and metrics exporters. Two formats, both deterministic byte streams
// built through bench/json_writer.h:
//   - Chrome trace_event JSON ("chrome"): loadable in Perfetto / about:tracing.
//     One complete ("X") event per closed span, instant ("i") events for
//     markers, with one tid per resource and thread_name metadata.
//   - Compact JSONL ("jsonl"): one flat JSON object per span, in creation
//     order. This is the golden-trace format — smallest diff surface.
#pragma once

#include <string>

#include "src/obs/trace.h"

namespace offload::obs {

std::string to_chrome_trace(const Tracer& tracer);
std::string to_jsonl(const Tracer& tracer);

/// Write `content` to `path`. Returns false (and logs to stderr) on error.
bool write_file(const std::string& path, const std::string& content);

}  // namespace offload::obs
