// Span records for the deterministic tracing layer. A span is a closed (or
// still-open) interval on the simulation clock, attributed to one trace
// (trace id = request id; trace 0 is the session-level protocol trace), one
// parent span, and one resource (the serialized timeline it occupies, e.g.
// "client" or "server/lane0").
//
// Spans carry both the integer-nanosecond [start, end] interval (used by the
// structural well-formedness checks) and an exact double duration `dur_s`.
// The double is authoritative for accounting: instrumentation sites emit the
// very same double the timing model charged, so sums over spans reproduce
// `InferenceBreakdown` bit-for-bit instead of re-rounding through SimTime.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace offload::obs {

using SpanId = std::uint64_t;   // 0 = "no span"
using TraceId = std::uint64_t;  // 0 = session-level trace

/// Span taxonomy. The first block maps 1:1 onto InferenceBreakdown
/// categories (phase spans); the second block is structural.
enum class SpanKind : std::uint8_t {
  kInference = 0,   // root: one per request, [clicked, finished]
  kClientExec,      // client-side DNN execution (incl. hedged runs)
  kClientCapture,   // snapshot capture / compress on the client
  kTransmitUp,      // snapshot in flight, [last send, server receive]
  kQueueWait,       // scheduler admission queue, [submitted, available]
  kBatchWait,       // batch-formation hold, [available, dispatched]
  kServerRestore,   // snapshot restore on a server lane
  kServerExec,      // DNN execution on a server lane
  kServerCapture,   // result-snapshot capture on a server lane
  kTransmitDown,    // result snapshot in flight
  kClientRestore,   // result restore / merge on the client
  kRetryBackoff,    // supervisor backoff wait before a retry
  kCrashRecovery,   // crash detected -> model re-presend ACK
  // --- structural spans (never summed into the breakdown) ---
  kPresend,         // model/app presend, [send, ACK]
  kTransmitAttempt, // one physical channel transmission attempt
  kLaneBusy,        // a scheduler lane occupied by one launch
  kMarker,          // instant event (crash, restart, shed, expired, ...)
  kCtrlDecision,    // one controller cut decision (adaptive policies only)
  kEscalate,        // a shed/expiring job forwarded up-tier (src/tier)
  kMigrate,         // a queued session drained to a peer or the cloud
  kSteal,           // an idle edge pulling a queued job from a hot peer
};

const char* span_kind_name(SpanKind kind);

/// True for kinds whose durations feed InferenceBreakdown categories and
/// which must obey the child-within-parent containment rule.
inline bool is_phase_kind(SpanKind kind) {
  return kind <= SpanKind::kCrashRecovery;
}

/// Trace coordinates carried across component boundaries (e.g. on a
/// net::Message). `span` is the sender's span for this hop (the transmit
/// span a receiver should close); `root` is the request's root span, the
/// parent for any server-side phase spans.
struct TraceContext {
  TraceId trace = 0;
  SpanId span = 0;
  SpanId root = 0;
};

struct Span {
  SpanId id = 0;
  SpanId parent = 0;
  TraceId trace = 0;
  SpanKind kind = SpanKind::kMarker;
  std::string name;
  std::string resource;
  sim::SimTime start;
  sim::SimTime end;
  double dur_s = 0.0;  // exact charged duration; authoritative for sums
  bool closed = false;
  std::vector<std::pair<std::string, std::string>> attrs;  // insertion order
};

}  // namespace offload::obs
