#include "src/tier/topology.h"

#include <algorithm>
#include <utility>

#include "src/edge/protocol.h"
#include "src/util/hash.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace offload::tier {

namespace {

/// Model files belonging to `app` in `store` ("<app>.desc",
/// "<app>.weights", "<app>.rear.weights").
std::vector<const nn::ModelFile*> app_files(const edge::ModelStore& store,
                                            const std::string& app) {
  std::vector<const nn::ModelFile*> out;
  const std::string prefix = app + ".";
  for (const nn::ModelFile& f : store.files()) {
    if (util::starts_with(f.name, prefix)) out.push_back(&f);
  }
  return out;
}

obs::SpanKind kind_for(const char* label) {
  if (label[0] == 's') return obs::SpanKind::kSteal;
  if (label[0] == 'm') return obs::SpanKind::kMigrate;
  return obs::SpanKind::kEscalate;
}

}  // namespace

net::ChannelConfig TierConfig::default_uplink() {
  // Edge → regional cloud: a fat WAN path, but 20 ms away each way.
  net::ChannelConfig ch;
  ch.a_to_b.bandwidth_bps = 200e6;
  ch.a_to_b.latency = sim::SimTime::millis(20);
  ch.b_to_a.bandwidth_bps = 200e6;
  ch.b_to_a.latency = sim::SimTime::millis(20);
  return ch;
}

net::ChannelConfig TierConfig::default_peer_link() {
  // Edge ↔ edge: same-rack LAN.
  net::ChannelConfig ch;
  ch.a_to_b.bandwidth_bps = 1e9;
  ch.a_to_b.latency = sim::SimTime::micros(500);
  ch.b_to_a.bandwidth_bps = 1e9;
  ch.b_to_a.latency = sim::SimTime::micros(500);
  return ch;
}

Topology::Topology(sim::Simulation& sim, fleet::EdgeFleet& fleet,
                   TierConfig config)
    : sim_(sim),
      fleet_(fleet),
      config_(std::move(config)),
      steal_rng_(config_.steal_seed) {
  anchor_ = net::Channel::make(sim_, config_.uplink, "tier/uplink", "cloud");
  if (config_.obs) anchor_->set_obs(config_.obs);
  if (config_.on_channel) config_.on_channel(*anchor_);

  edge::EdgeServerConfig cloud;
  cloud.profile = config_.cloud_profile;
  cloud.scheduler.replicas = config_.cloud_replicas;
  // The cloud is a vanilla EdgeServer speaking the unmodified protocol.
  // No receipts (the origin edge already gave the client its "accepted:";
  // the topology synthesizes "done:" when relaying the result) and no
  // sessions (escalated jobs are one-shot self-contained snapshots).
  cloud.ack_snapshots = false;
  cloud.keep_sessions = false;
  cloud.obs = config_.obs;
  cloud.obs_name = "cloud";
  cloud_ = std::make_unique<edge::EdgeServer>(sim_, anchor_->b(),
                                              std::move(cloud));

  for (std::size_t k = 0; k < fleet_.servers_up(); ++k) {
    fleet_.server(k).set_escalation_handler(
        [this, k](edge::EscalationRequest req) {
          return escalate(k, std::move(req));
        });
    if (config_.steal) {
      fleet_.server(k).set_admission_hook([this] { arm_steal_tick(); });
    }
  }
}

Topology::~Topology() = default;

std::string Topology::server_label(std::size_t index) const {
  return index == kCloud ? "cloud" : fleet_.server_name(index);
}

bool Topology::escalate(std::size_t origin, edge::EscalationRequest req) {
  // Up-tier execution needs the model pushed from the origin's store; a
  // job whose model never finished pre-sending sheds normally instead.
  if (!fleet_.server(origin).model_store().can_instantiate(req.app)) {
    return false;
  }
  ++stats_.escalations;
  count("escalations");
  start_relay(origin, std::move(req), kCloud, "escalate");
  return true;
}

void Topology::start_relay(std::size_t origin, edge::EscalationRequest req,
                           std::size_t target, const char* kind) {
  const std::uint64_t id = next_relay_++;
  Relay r;
  r.id = id;
  r.origin = origin;
  r.target = target;
  r.app = std::move(req.app);
  r.payload = std::move(req.payload);
  r.reply_to = req.reply_to;
  r.ctx = req.ctx;
  r.origin_epoch = fleet_.server(origin).boot_epoch();
  r.origin_acks = fleet_.server(origin).acks();

  // One dedicated channel per relayed job: a reply arriving on it can
  // only belong to this job, so there is no correlation ambiguity, and
  // anything arriving after the relay closed is simply ignored.
  const std::string label = "tier/relay" + std::to_string(id);
  r.channel = net::Channel::make(
      sim_, target == kCloud ? config_.uplink : config_.peer_link, label,
      server_label(target));
  if (config_.obs) r.channel->set_obs(config_.obs);
  if (config_.on_channel) config_.on_channel(*r.channel);
  (target == kCloud ? *cloud_ : fleet_.server(target)).attach(r.channel->b());
  r.channel->a().set_handler([this, id](const net::Message& m) {
    on_relay_message(id, m);
  });
  r.channel->a().set_failure_handler(
      [this, id](const net::Message&, int) {
        // The tier link gave up (ARQ exhausted — e.g. a blackout window
        // outlasted the retransmit budget): one typed failure, now.
        auto it = relays_.find(id);
        if (it != relays_.end() && !it->second.done) {
          fail_relay(it->second, "expired:" + it->second.app);
        }
      });

  if (config_.obs) {
    r.span = config_.obs->trace.open(r.ctx.trace, r.ctx.root, kind_for(kind),
                                     std::string(kind) + ":" + r.app, label,
                                     sim_.now());
    config_.obs->trace.attr(r.span, "origin", server_label(origin));
    config_.obs->trace.attr(r.span, "target", server_label(target));
  }

  // The per-hop deadline budget: no result by then → the client hears a
  // typed "expired:" (and anything later lands on a dead relay).
  r.watchdog = sim_.schedule(config_.escalation_budget, [this, id] {
    auto it = relays_.find(id);
    if (it != relays_.end() && !it->second.done) {
      fail_relay(it->second, "expired:" + it->second.app);
    }
  });

  auto [it, inserted] = relays_.emplace(id, std::move(r));
  send_offer(it->second);
}

void Topology::send_offer(Relay& r) {
  // Content-addressed model push: digests first, bodies only for what the
  // executor's blob cache is missing. Repeat escalations of an app are
  // digest-sized after the first.
  edge::ModelOfferPayload offer;
  for (const nn::ModelFile* f :
       app_files(fleet_.server(r.origin).model_store(), r.app)) {
    offer.files.push_back(
        {f->name, util::fnv1a(std::span(f->content)), f->size()});
  }
  net::Message msg;
  msg.type = net::MessageType::kModelOffer;
  msg.name = r.app;
  msg.payload = offer.encode();
  r.channel->a().send(std::move(msg));
}

void Topology::send_files(Relay& r, const std::vector<std::string>& names) {
  edge::ModelFilesPayload payload;
  for (const nn::ModelFile* f :
       app_files(fleet_.server(r.origin).model_store(), r.app)) {
    if (std::find(names.begin(), names.end(), f->name) != names.end()) {
      payload.files.push_back(*f);
    }
  }
  ++stats_.model_pushes;
  count("model_pushes");
  net::Message msg;
  msg.type = net::MessageType::kModelFiles;
  msg.name = r.app;
  msg.payload = payload.encode();
  r.channel->a().send(std::move(msg));
}

void Topology::send_snapshot(Relay& r) {
  net::Message msg;
  msg.type = net::MessageType::kSnapshot;
  msg.name = r.app;
  msg.payload = r.payload;
  // No transmit span to close at the executor (span 0 is a no-op there);
  // the relay's own escalate/steal/migrate span covers the whole hop.
  msg.ctx = {r.ctx.trace, 0, r.ctx.root};
  r.snapshot_sent = true;
  r.channel->a().send(std::move(msg));
}

void Topology::on_relay_message(std::uint64_t id, const net::Message& m) {
  auto it = relays_.find(id);
  if (it == relays_.end() || it->second.done) return;
  Relay& r = it->second;
  if (!m.payload.empty() && !edge::payload_intact(m)) {
    // Corrupted on the tier link (a corrupt-migration fault). Endpoint::
    // send stamps a *fresh* CRC, so relaying these bytes onward would
    // launder the damage into a checksum-valid message the client trusts.
    // Never forward them: re-drive the exchange from our pristine copy —
    // bounded — and fail typed when the budget runs out.
    if (r.retries++ < config_.max_relay_retries) {
      if (r.snapshot_sent) {
        send_snapshot(r);  // the executor simply runs it again
      } else {
        send_offer(r);
      }
    } else {
      fail_relay(r, "expired:" + r.app);
    }
    return;
  }
  switch (m.type) {
    case net::MessageType::kAck:
      // "have:<app>" (cache covered the offer) or the post-store ACK —
      // either way the executor now holds the model.
      if (!r.snapshot_sent) send_snapshot(r);
      return;
    case net::MessageType::kResultSnapshot:
      finish_relay(r, m);
      return;
    case net::MessageType::kControl:
      break;
    default:
      return;
  }
  const std::string& name = m.name;
  if (util::starts_with(name, "send_files:")) {
    send_files(r, edge::FileListPayload::decode(std::span(m.payload)).names);
    return;
  }
  if (util::starts_with(name, "overloaded:") ||
      util::starts_with(name, "expired:")) {
    // The executor shed or deadline-cancelled the job: relay the typed
    // verdict verbatim; the client falls back exactly as if its own edge
    // had said it.
    fail_relay(r, name);
    return;
  }
  if (util::starts_with(name, "model_missing:")) {
    // The executor crashed between our push and the snapshot: push again,
    // a bounded number of times.
    if (r.retries++ < config_.max_relay_retries) {
      r.snapshot_sent = false;
      send_offer(r);
    } else {
      fail_relay(r, "expired:" + r.app);
    }
    return;
  }
  if (util::starts_with(name, "corrupt_payload:")) {
    // Damaged in flight (a corrupt-migration fault): the bytes are still
    // pristine here, so resend — bounded — whatever leg was corrupted.
    if (r.retries++ < config_.max_relay_retries) {
      if (r.snapshot_sent) {
        send_snapshot(r);
      } else {
        send_offer(r);
      }
    } else {
      fail_relay(r, "expired:" + r.app);
    }
    return;
  }
  if (util::starts_with(name, "need_full:") ||
      util::starts_with(name, "not_installed:")) {
    // Structurally impossible (relays carry self-contained snapshots to
    // installed executors); if it happens anyway, fail typed, never hang.
    fail_relay(r, "expired:" + r.app);
    return;
  }
  // "accepted:"/"done:" receipts from an acking executor: the client
  // already holds the origin's receipts; the topology synthesizes its own
  // "done:" when the result comes back.
}

bool Topology::origin_alive(const Relay& r) {
  const edge::EdgeServer& origin = fleet_.server(r.origin);
  return !origin.down() && origin.boot_epoch() == r.origin_epoch;
}

void Topology::finish_relay(Relay& r, const net::Message& result) {
  if (r.done) return;
  if (!origin_alive(r)) {
    // The edge the client is talking to died since the job climbed; its
    // endpoint must stay silent (a dead host cannot speak). The client's
    // supervisor times out and recovers — it never adopts this result, so
    // it can never diverge from the retry it is about to make.
    ++stats_.results_dropped;
    count("results_dropped");
    close_relay(r, "dropped");
    return;
  }
  if (r.origin_acks) {
    // The origin promised receipts; honor its contract before the result.
    net::Message done;
    done.type = net::MessageType::kControl;
    done.name = "done:" + r.app;
    r.reply_to->send(std::move(done));
  }
  net::Message reply;
  reply.type = net::MessageType::kResultSnapshot;
  reply.name = result.name;
  reply.payload = result.payload;
  reply.ctx = result.ctx;
  r.reply_to->send(std::move(reply));
  ++stats_.relays_completed;
  count("relays_completed");
  close_relay(r, "completed");
}

void Topology::fail_relay(Relay& r, const std::string& control) {
  if (r.done) return;
  if (!origin_alive(r)) {
    ++stats_.results_dropped;
    count("results_dropped");
    close_relay(r, "dropped");
    return;
  }
  net::Message msg;
  msg.type = net::MessageType::kControl;
  msg.name = control;
  r.reply_to->send(std::move(msg));
  ++stats_.relays_failed;
  count("relays_failed");
  close_relay(r, "failed");
}

void Topology::close_relay(Relay& r, const char* outcome) {
  r.done = true;
  if (r.watchdog.valid()) sim_.cancel(r.watchdog);
  r.payload.clear();
  if (config_.obs && r.span) {
    config_.obs->trace.attr(r.span, "outcome", outcome);
    config_.obs->trace.close(r.span, sim_.now());
  }
  // The channel stays alive (in-flight deliveries may still reference
  // it); its handler ignores everything now that the relay is done.
}

std::size_t Topology::drain(std::size_t victim, std::size_t target) {
  edge::EdgeServer& v = fleet_.server(victim);
  const bool to_cloud = target == kCloud;
  std::size_t moved = 0;
  // Draining to the cloud leaves differential jobs queued at the victim:
  // their session realm lives there, and the client has no cloud
  // endpoint to be redirected to.
  while (auto job = v.steal_job(/*relayable_only=*/to_cloud)) {
    if (job->differential) {
      // Client-visible redirect: the supervisor re-targets the named
      // peer, re-presends, and replays — the one migration the snapshot
      // cannot make transparent.
      net::Message msg;
      msg.type = net::MessageType::kControl;
      msg.name = "redirect:" + std::to_string(target) + ":" + job->app;
      job->reply_to->send(std::move(msg));
      ++stats_.redirects;
      count("redirects");
      if (config_.obs) {
        config_.obs->trace.emit(job->ctx.trace, job->ctx.root,
                                obs::SpanKind::kMigrate,
                                "redirect:" + server_label(target), "tier",
                                sim_.now(), sim_.now(), 0.0);
      }
      ++moved;
      continue;
    }
    if (!v.model_store().can_instantiate(job->app)) {
      // Defensive: without the model the job cannot run anywhere else.
      // One typed failure beats a silent drop.
      net::Message msg;
      msg.type = net::MessageType::kControl;
      msg.name = "expired:" + job->app;
      job->reply_to->send(std::move(msg));
      ++stats_.relays_failed;
      count("relays_failed");
      ++moved;
      continue;
    }
    edge::EscalationRequest req;
    req.app = std::move(job->app);
    req.payload = std::move(job->payload);
    req.reply_to = job->reply_to;
    req.ctx = job->ctx;
    req.reason = "migrate";
    start_relay(victim, std::move(req), target, "migrate");
    ++stats_.drained;
    count("drained");
    ++moved;
  }
  return moved;
}

int Topology::outstanding_relays(std::size_t server) const {
  int n = 0;
  for (const auto& [id, r] : relays_) {
    if (!r.done && r.origin == server) ++n;
  }
  return n;
}

void Topology::arm_steal_tick() {
  if (!config_.steal || tick_armed_) return;
  tick_armed_ = true;
  sim_.schedule(config_.steal_interval, [this] { steal_tick(); });
}

void Topology::steal_tick() {
  tick_armed_ = false;
  ++stats_.steal_ticks;
  const std::size_t n = fleet_.servers_up();
  const sim::SimTime now = sim_.now();
  // A thief takes at most one job per tick (its queue gauge lags the
  // relay's model push, so without the cap one idle edge would soak up a
  // whole backlog sight-unseen).
  std::vector<char> took(n, 0);
  for (;;) {
    // Victim: the deepest backlog at or above the threshold (ties go to
    // the lowest index — deterministic).
    std::size_t victim = n;
    std::size_t deepest = std::max<std::size_t>(config_.steal_min_backlog, 1);
    for (std::size_t k = 0; k < n; ++k) {
      if (fleet_.server(k).down()) continue;
      const std::size_t depth = fleet_.server(k).scheduler().queue_depth();
      if (depth >= deepest && (victim == n || depth > deepest)) {
        victim = k;
        deepest = depth;
      }
    }
    if (victim == n) break;
    // Thieves: fully idle peers that have not taken a job this tick.
    std::vector<std::size_t> idle;
    for (std::size_t k = 0; k < n; ++k) {
      if (k == victim || took[k] || fleet_.server(k).down()) continue;
      const serve::Scheduler& sched = fleet_.server(k).scheduler();
      if (sched.queue_depth() == 0 && sched.busy_lanes(now) == 0) {
        idle.push_back(k);
      }
    }
    if (idle.empty()) break;
    const std::size_t thief =
        idle[steal_rng_.next_below(static_cast<std::uint32_t>(idle.size()))];
    auto job = fleet_.server(victim).steal_job(/*relayable_only=*/true);
    if (!job ||
        !fleet_.server(victim).model_store().can_instantiate(job->app)) {
      if (job) {
        // Withdrawn but unrunnable elsewhere: typed failure, never lost.
        net::Message msg;
        msg.type = net::MessageType::kControl;
        msg.name = "expired:" + job->app;
        job->reply_to->send(std::move(msg));
        ++stats_.relays_failed;
        count("relays_failed");
      }
      break;
    }
    took[thief] = 1;
    edge::EscalationRequest req;
    req.app = std::move(job->app);
    req.payload = std::move(job->payload);
    req.reply_to = job->reply_to;
    req.ctx = job->ctx;
    req.reason = "steal";
    start_relay(victim, std::move(req), thief, "steal");
    ++stats_.steals;
    count("steals");
  }
  // Keep ticking while backlog remains; otherwise the tick dies with the
  // load and the next admission re-arms it.
  for (std::size_t k = 0; k < n; ++k) {
    if (!fleet_.server(k).down() &&
        fleet_.server(k).scheduler().queue_depth() > 0) {
      arm_steal_tick();
      break;
    }
  }
}

}  // namespace offload::tier
