// The edge→cloud tier topology. Layers one regional cloud server (a
// bigger DeviceProfile behind a fatter, higher-latency WAN uplink) above
// an edge::EdgeFleet, and closes three robustness gaps the flat fleet
// leaves open:
//
//  * Overflow escalation — a job an edge would shed at admission, or
//    cancel at its queue deadline, is forwarded up-tier instead (the
//    snapshot is self-contained; the model rides along as content-
//    addressed digest offers). The result returns through the origin
//    edge's client-facing endpoint, so the client sees only a slower
//    "accepted:" → result and never learns the cloud exists.
//
//  * Transparent session migration — drain() withdraws every still-queued
//    job from a loaded edge. Self-contained snapshots relay to a peer (or
//    the cloud) exactly like escalations; differential jobs, which only
//    the origin's session realm can apply, redirect their client to a
//    named peer with a "redirect:<target>:<app>" control reply.
//
//  * Deterministic work stealing — an idle edge pulls the oldest queued
//    job off the most-backlogged peer on a seeded, byte-reproducible
//    schedule (ticks are armed by admissions and die with the workload,
//    so the simulation still quiesces).
//
// Correlation design: every relayed job gets its own dedicated channel to
// its executor, so a reply on that channel can only belong to that job —
// there is no cross-job reply ambiguity to misattribute, and a message
// arriving after the relay's deadline lands on a dead relay and is
// ignored. Per relay, the client hears exactly one outcome: the result,
// or one typed control failure ("overloaded:"/"expired:"). Results and
// failures are epoch-guarded — if the origin edge crashed since the job
// was taken, the relay stays silent and the client's supervisor recovers,
// never adopting a result the dead server could not have sent.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/edge/edge_server.h"
#include "src/fleet/fleet.h"
#include "src/net/channel.h"
#include "src/obs/obs.h"
#include "src/sim/simulation.h"
#include "src/util/rng.h"

namespace offload::tier {

struct TierConfig {
  /// The cloud machine (defaults to the 3x-edge cloud_server profile,
  /// several lanes: it absorbs overflow from every edge).
  nn::DeviceProfile cloud_profile = nn::DeviceProfile::cloud_server();
  int cloud_replicas = 4;
  /// Edge→cloud WAN uplink shape: fatter but farther than the client
  /// links (defaults: 200 Mbps, 20 ms each way).
  net::ChannelConfig uplink = default_uplink();
  /// Edge→edge LAN shape for stolen/migrated relays.
  net::ChannelConfig peer_link = default_peer_link();
  /// Per-hop deadline budget: a relay that has not delivered its result
  /// this long after taking the job fails with a typed "expired:<app>".
  /// Must fit inside the client supervisor's execute deadline, or the
  /// client gives up first and the relay's outcome arrives late (and is
  /// ignored — the guard rails hold, the budget is just wasted).
  sim::SimTime escalation_budget = sim::SimTime::seconds(2);
  /// Bounded model re-push / snapshot re-send attempts within one relay
  /// before it fails typed.
  int max_relay_retries = 2;
  /// Work stealing between edges.
  bool steal = false;
  sim::SimTime steal_interval = sim::SimTime::millis(50);
  std::uint64_t steal_seed = 1;
  /// A victim must have at least this many queued jobs to be stolen from.
  std::size_t steal_min_backlog = 2;
  /// Called once for every channel the topology creates (the cloud anchor
  /// and each per-relay channel) — the runtime uses it to attach fault
  /// plans (blackout windows) to the tier links.
  std::function<void(net::Channel&)> on_channel;
  obs::Obs* obs = nullptr;

  static net::ChannelConfig default_uplink();
  static net::ChannelConfig default_peer_link();
};

class Topology {
 public:
  /// Target index meaning "the cloud" for drain().
  static constexpr std::size_t kCloud = SIZE_MAX;

  /// Builds the cloud server and installs the escalation handler on every
  /// fleet server currently up. The fleet must outlive the topology.
  Topology(sim::Simulation& sim, fleet::EdgeFleet& fleet, TierConfig config);
  ~Topology();

  edge::EdgeServer& cloud() { return *cloud_; }
  const edge::EdgeServer& cloud() const { return *cloud_; }

  /// Drain every still-queued job off edge `victim`: self-contained jobs
  /// relay to `target` (a fleet server index, or kCloud); differential
  /// jobs redirect their client to `target` (skipped when the target is
  /// the cloud — clients have no cloud endpoint). Returns the number of
  /// jobs moved.
  std::size_t drain(std::size_t victim, std::size_t target);

  /// Jobs edge `server` currently has in flight up-tier or cross-peer
  /// (escalated, stolen, or drained, result still pending) — load its
  /// queue gauges no longer show; feeds ctrl::LinkSignals::escalations.
  int outstanding_relays(std::size_t server) const;

  struct Stats {
    int escalations = 0;      ///< overflow/deadline jobs taken up-tier
    int steals = 0;           ///< jobs pulled to an idle peer
    int drained = 0;          ///< jobs relayed away by drain()
    int redirects = 0;        ///< differential jobs redirected by drain()
    int relays_completed = 0; ///< results delivered to clients
    int relays_failed = 0;    ///< typed failures delivered to clients
    int results_dropped = 0;  ///< origin crashed; outcome suppressed
    int model_pushes = 0;     ///< kModelFiles bodies shipped up-tier
    int steal_ticks = 0;      ///< scheduler passes of the stealing loop
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Relay;

  /// The EdgeServer escalation hook for edge `origin` ("overloaded" /
  /// "expired" reasons). False = cannot take it (the edge sheds normally).
  bool escalate(std::size_t origin, edge::EscalationRequest req);
  /// Start a relay executing `job` (from `origin`) on `target` (kCloud or
  /// a fleet index). `kind` labels the span: "escalate"/"steal"/"migrate".
  void start_relay(std::size_t origin, edge::EscalationRequest req,
                   std::size_t target, const char* kind);
  void on_relay_message(std::uint64_t id, const net::Message& message);
  void send_offer(Relay& r);
  void send_files(Relay& r, const std::vector<std::string>& names);
  void send_snapshot(Relay& r);
  /// Deliver the relayed result (plus "done:" when the origin edge sends
  /// receipts) through the origin's client-facing endpoint.
  void finish_relay(Relay& r, const net::Message& result);
  /// Deliver one typed control failure ("overloaded:<app>", …).
  void fail_relay(Relay& r, const std::string& control);
  /// Epoch/liveness guard: true when the origin edge can still speak for
  /// this relay. False increments results_dropped.
  bool origin_alive(const Relay& r);
  void close_relay(Relay& r, const char* outcome);
  void arm_steal_tick();
  void steal_tick();
  std::string server_label(std::size_t index) const;
  void count(const char* key) {
    if (config_.obs) config_.obs->metrics.add(std::string("tier.") + key);
  }

  sim::Simulation& sim_;
  fleet::EdgeFleet& fleet_;
  TierConfig config_;
  /// The cloud's constructor endpoint rides this otherwise-unused anchor
  /// channel; each relay then attaches its own channel.
  std::unique_ptr<net::Channel> anchor_;
  std::unique_ptr<edge::EdgeServer> cloud_;

  struct Relay {
    std::uint64_t id = 0;
    std::size_t origin = 0;       ///< fleet index the job came from
    std::size_t target = kCloud;  ///< executor: kCloud or a fleet index
    std::string app;
    util::Bytes payload;          ///< encoded SnapshotPayload, verbatim
    net::Endpoint* reply_to = nullptr;  ///< origin's client-facing b side
    obs::TraceContext ctx;
    std::uint64_t origin_epoch = 0;
    bool origin_acks = false;
    std::unique_ptr<net::Channel> channel;
    sim::EventHandle watchdog;
    int retries = 0;
    bool snapshot_sent = false;
    bool done = false;
    obs::SpanId span = 0;
  };
  std::map<std::uint64_t, Relay> relays_;
  std::uint64_t next_relay_ = 1;
  util::Pcg32 steal_rng_;
  bool tick_armed_ = false;
  Stats stats_;
};

}  // namespace offload::tier
