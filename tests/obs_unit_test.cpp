// Unit tests for the obs primitives: tracer span lifecycle, the metrics
// registry (counters / gauges / histograms, stable-sorted dumps), the
// thread-local ambient registry, and the trace exporters.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace offload::obs {
namespace {

sim::SimTime ms(std::int64_t v) { return sim::SimTime::millis(v); }

TEST(TracerTest, SpanLifecycleAndIds) {
  Tracer tracer;
  const TraceId t1 = tracer.new_trace();
  const TraceId t2 = tracer.new_trace();
  EXPECT_EQ(t1, 1u);
  EXPECT_EQ(t2, 2u);

  SpanId root = tracer.open(t1, 0, SpanKind::kInference, "inference#1",
                            "client", ms(10));
  SpanId child = tracer.open(t1, root, SpanKind::kClientExec, "exec",
                             "client", ms(10));
  EXPECT_EQ(root, 1u);
  EXPECT_EQ(child, 2u);
  EXPECT_FALSE(tracer.find(root)->closed);

  tracer.close(child, ms(15));
  tracer.close(root, ms(20));
  const Span* r = tracer.find(root);
  const Span* c = tracer.find(child);
  ASSERT_NE(r, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(r->closed);
  EXPECT_EQ(c->parent, root);
  // Default charge is the SimTime interval; an exact charge overrides it.
  EXPECT_DOUBLE_EQ(c->dur_s, 0.005);
  SpanId exact = tracer.emit(t1, root, SpanKind::kClientCapture, "cap",
                             "client", ms(15), ms(16), 0.00123456789);
  EXPECT_EQ(tracer.find(exact)->dur_s, 0.00123456789);
}

TEST(TracerTest, CloseIsIdempotentAndIgnoresNullSpan) {
  Tracer tracer;
  SpanId s = tracer.open(1, 0, SpanKind::kTransmitUp, "up", "net", ms(0));
  tracer.close(s, ms(5));
  tracer.close(s, ms(99));  // duplicate delivery re-acks: no-op
  EXPECT_EQ(tracer.find(s)->end.ns(), ms(5).ns());
  tracer.close(0, ms(7));  // null span id: no-op
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(TracerTest, AttrsKeepInsertionOrder) {
  Tracer tracer;
  SpanId s = tracer.open(1, 0, SpanKind::kInference, "i", "client", ms(0));
  tracer.attr(s, "zeta", "first");
  tracer.attr(s, "alpha", std::int64_t{42});
  const Span* span = tracer.find(s);
  ASSERT_EQ(span->attrs.size(), 2u);
  EXPECT_EQ(span->attrs[0].first, "zeta");
  EXPECT_EQ(span->attrs[1].second, "42");
}

TEST(MetricsTest, CountersGaugesPeaks) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.add("a.count");
  m.add("a.count", 4);
  EXPECT_EQ(m.counter("a.count"), 5u);
  EXPECT_EQ(m.counter("missing"), 0u);

  m.set_gauge("q.depth", 3);
  m.gauge_delta("q.depth", 2);
  m.gauge_delta("q.depth", -4);
  EXPECT_EQ(m.gauge("q.depth"), 1);
  EXPECT_EQ(m.gauge_peak("q.depth"), 5);
}

TEST(MetricsTest, HistogramExactMomentsAndQuantiles) {
  MetricsRegistry m;
  m.define_histogram("lat_ms", {1.0, 10.0, 100.0});
  for (double v : {0.5, 2.0, 3.0, 50.0, 500.0}) m.observe("lat_ms", v);
  const Histogram* h = m.histogram("lat_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 5u);
  EXPECT_DOUBLE_EQ(h->sum, 555.5);
  EXPECT_DOUBLE_EQ(h->min, 0.5);
  EXPECT_DOUBLE_EQ(h->max, 500.0);
  ASSERT_EQ(h->counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h->counts[0], 1u);
  EXPECT_EQ(h->counts[1], 2u);
  EXPECT_EQ(h->counts[2], 1u);
  EXPECT_EQ(h->counts[3], 1u);
  EXPECT_DOUBLE_EQ(h->quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h->quantile(1.0), 500.0);
  // Lazily-created histograms get default bounds instead of throwing.
  m.observe("unregistered", 3.0);
  EXPECT_NE(m.histogram("unregistered"), nullptr);
}

TEST(MetricsTest, DumpIsStableSortedRegardlessOfInsertion) {
  MetricsRegistry a;
  a.add("z.last");
  a.add("a.first");
  a.set_gauge("m.mid", 7);
  MetricsRegistry b;
  b.set_gauge("m.mid", 7);
  b.add("a.first");
  b.add("z.last");
  EXPECT_EQ(a.dump_text(), b.dump_text());
  EXPECT_EQ(a.dump_json(), b.dump_json());
  EXPECT_LT(a.dump_text().find("a.first"), a.dump_text().find("z.last"));
}

TEST(MetricsTest, ScopedMetricsInstallsAndRestoresTls) {
  EXPECT_EQ(tls_metrics(), nullptr);
  MetricsRegistry outer, inner;
  {
    ScopedMetrics o(&outer);
    EXPECT_EQ(tls_metrics(), &outer);
    {
      ScopedMetrics i(&inner);
      EXPECT_EQ(tls_metrics(), &inner);
    }
    EXPECT_EQ(tls_metrics(), &outer);  // previous sink restored, not nulled
  }
  EXPECT_EQ(tls_metrics(), nullptr);
}

TEST(ExportTest, JsonlOneLinePerSpanChromeEnvelope) {
  Tracer tracer;
  TraceId t = tracer.new_trace();
  SpanId root =
      tracer.open(t, 0, SpanKind::kInference, "inference#1", "client", ms(0));
  tracer.emit(t, root, SpanKind::kClientExec, "exec", "client", ms(0), ms(4),
              0.004);
  tracer.marker(t, root, "crash", "server", ms(2));
  tracer.close(root, ms(5));

  const std::string jsonl = to_jsonl(tracer);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 3);
  EXPECT_NE(jsonl.find("\"inference#1\""), std::string::npos);
  EXPECT_NE(jsonl.find("client_exec"), std::string::npos);

  const std::string chrome = to_chrome_trace(tracer);
  EXPECT_EQ(chrome.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);  // complete span
  EXPECT_NE(chrome.find("\"ph\": \"i\""), std::string::npos);  // marker
  // Same tracer twice -> same bytes (exporters are pure functions).
  EXPECT_EQ(to_chrome_trace(tracer), chrome);
  EXPECT_EQ(to_jsonl(tracer), jsonl);
}

TEST(ExportTest, ExportOptionsParseEnvironmentStrings) {
  ExportOptions off;
  EXPECT_FALSE(off.any());
  ExportOptions on;
  on.trace_format = "chrome";
  on.trace_path = "/tmp/x.json";
  EXPECT_TRUE(on.any());
}

}  // namespace
}  // namespace offload::obs
